//! Quickstart: simulate a tiny Internet, wedge one BGP session, and catch
//! the resulting zombie from the raw MRT archive — the paper's whole
//! pipeline in ~80 lines.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use bgp_zombies::beacon::{apply_schedule, RisBeaconConfig, RisBeacons};
use bgp_zombies::netsim::{EpisodeEnd, FaultPlan, Simulator, Tier, Topology};
use bgp_zombies::ris::{Collector, RisConfig, RisNetwork, RisPeerSpec};
use bgp_zombies::types::{Asn, SimTime};
use bgp_zombies::zombies::{
    classify, infer_root_cause, intervals_from_schedule, scan, ClassifyOptions,
};

fn main() {
    // 1. A five-AS Internet: two Tier-1s peering on top, two transits,
    //    and the beacon origin dual-homed below them.
    let origin = Asn(12_654);
    let topo = Topology::builder()
        .node(Asn(100), Tier::Tier1)
        .node(Asn(101), Tier::Tier1)
        .node(Asn(200), Tier::Tier2)
        .node(Asn(201), Tier::Tier2)
        .node(origin, Tier::Stub)
        .peering(Asn(100), Asn(101))
        .provider_customer(Asn(100), Asn(200))
        .provider_customer(Asn(101), Asn(201))
        .provider_customer(Asn(200), origin)
        .provider_customer(Asn(201), origin)
        .build();

    // 2. The fault: the AS200 → AS100 session silently stops delivering
    //    messages at 01:00 (the stuck-session bug RFC 9687 addresses).
    let start = SimTime::from_ymd_hms(2024, 6, 4, 0, 0, 0);
    let plan = FaultPlan::none().freeze(
        Asn(200),
        Asn(100),
        start + 3_600,
        start + 86_400,
        EpisodeEnd::Resume,
    );

    // 3. RIS: both Tier-1s peer with a collector.
    let ris_config = RisConfig {
        collectors: vec![Collector::numbered(0)],
        peers: vec![
            RisPeerSpec::healthy(Asn(100), "2001:db8:90::100".parse().unwrap(), 0),
            RisPeerSpec::healthy(Asn(101), "2001:db8:90::101".parse().unwrap(), 0),
        ],
        rib_period: 8 * 3_600,
    };

    // 4. One day of RIS beacons: announce every 4 h, withdraw 2 h later.
    let beacons = RisBeacons::new(RisBeaconConfig::historical(origin));
    let schedule = beacons.schedule(start, start + 86_400);

    // 5. Run the world and archive what the collector saw — real MRT bytes.
    let mut sim = Simulator::new(topo, &plan, 7);
    let mut ris = RisNetwork::new(ris_config, start, 7);
    ris.attach(&mut sim);
    apply_schedule(&mut sim, &schedule);
    ris.advance(&mut sim, start + 86_400 + 4 * 3_600);
    let archive = ris.finish();
    println!(
        "archive: {} update bytes, {} RIB dumps",
        archive.updates.len(),
        archive.rib_dumps.len()
    );

    // 6. Detect: reconstruct per-interval state from the raw archive and
    //    classify stuck routes at withdrawal + 90 minutes.
    let intervals = intervals_from_schedule(&schedule);
    let result = scan(archive.updates.clone(), &intervals, 4 * 3_600);
    let report = classify(&result, &ClassifyOptions::default());

    println!(
        "{} of {} beacon announcements led to a zombie outbreak",
        report.outbreak_count(),
        report.announcements
    );
    let outbreak = report.outbreaks.first().expect("the freeze guarantees one");
    println!(
        "first outbreak: {} announced {}",
        outbreak.interval.prefix, outbreak.interval.start
    );
    for route in &outbreak.routes {
        println!("  stuck at {} via path [{}]", route.peer, route.zombie_path);
    }
    let cause = infer_root_cause(outbreak).expect("routes exist");
    println!(
        "palm-tree root cause: {} (chain [{}])",
        cause
            .suspect
            .map(|a| a.to_string())
            .unwrap_or_else(|| "inconclusive".into()),
        cause
            .chain
            .iter()
            .map(|a| a.0.to_string())
            .collect::<Vec<_>>()
            .join(" ")
    );
    assert!(report.outbreak_count() > 0);
}
