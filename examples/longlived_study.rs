//! The long-lived zombie study (paper §5): run the paper's own beacons
//! (daily + 15-day recycle) through the 2024 world, then measure zombie
//! lifespans from ~a year of 8-hourly RIB dumps: durations, the 35–37-day
//! cluster, and the §5.2 case studies.
//!
//! ```text
//! cargo run --release --example longlived_study [quick|standard|full]
//! ```

use bgp_zombies::analysis::experiments::beacon_bundle;
use bgp_zombies::analysis::Scale;
use bgp_zombies::zombies::{classify, infer_root_cause, track_lifespans, ClassifyOptions};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or_else(Scale::quick);
    println!("# scale: {} (pass quick|standard|full)", scale.name);
    println!("# building the 2024 beacon world (this runs both beacon approaches)...");
    let bundle = beacon_bundle(&scale, 42);
    println!(
        "# {} announcements scanned, {} RIB dumps over {} days of observation",
        bundle.scan.announcement_count(),
        bundle.run.archive.rib_dumps.len(),
        (bundle.run.observed_until.secs()
            - bgp_zombies::types::SimTime::from_ymd_hms(2024, 6, 4, 0, 0, 0).secs())
            / 86_400,
    );

    // Zombies at the 3-hour threshold.
    let report = classify(
        &bundle.scan,
        &ClassifyOptions {
            threshold: 180 * 60,
            excluded_peers: bundle.run.noisy_routers.clone(),
            ..ClassifyOptions::default()
        },
    );
    println!(
        "\n{:.2}% of announcements still zombie at 3 h (paper: ~2%)",
        report.outbreak_fraction() * 100.0
    );

    // Lifespans from the dumps.
    let lifespans = track_lifespans(
        &bundle.run.archive.rib_dumps,
        &bundle.finals,
        &bundle.run.noisy_routers,
    );
    let mut days: Vec<f64> = lifespans
        .iter()
        .map(|l| l.duration_days())
        .filter(|&d| d >= 1.0)
        .collect();
    days.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
    println!(
        "{} outbreaks lasted >= 1 day; longest {:.1} days",
        days.len(),
        days.last().copied().unwrap_or(0.0)
    );
    let resurrected = lifespans
        .iter()
        .filter(|l| !l.resurrections.is_empty())
        .count();
    println!("{resurrected} outbreaks resurrected (gap in RIB visibility, no new announcement)");

    // The §5.2 case studies, end to end.
    for prefix_str in ["2a0d:3dc1:2233::/48", "2a0d:3dc1:163::/48"] {
        let prefix = prefix_str.parse().expect("static");
        let Some(outbreak) = classify(
            &bundle.scan,
            &ClassifyOptions {
                threshold: 180 * 60,
                ..ClassifyOptions::default()
            },
        )
        .outbreaks
        .into_iter()
        .filter(|o| o.interval.prefix == prefix)
        .max_by_key(|o| o.routes.len()) else {
            println!("\n{prefix_str}: not stuck in this run");
            continue;
        };
        let cause = infer_root_cause(&outbreak).expect("routes exist");
        let duration = lifespans
            .iter()
            .find(|l| l.prefix == prefix)
            .map(|l| l.duration_days())
            .unwrap_or(0.0);
        println!(
            "\n{prefix_str}: stuck at {} peer routers for {:.1} days; suspected culprit {}",
            outbreak.routes.len(),
            duration,
            cause
                .suspect
                .map(|a| a.to_string())
                .unwrap_or_else(|| "inconclusive".into()),
        );
    }
}
