//! The paper's Fig. 1, live: a zombie more-specific route plus
//! longest-prefix matching produce a forwarding loop and a partial outage.
//!
//! AS1 sells its `/32` to AS2 and withdraws the `/48` it used to announce;
//! the withdrawal wedges on the ASX → AS3 session, so AS3 keeps the stale
//! `/48`. Traffic from ASY to an address inside the `/48` then bounces
//! between AS3 (zombie `/48` → ASX) and ASX (covering `/32` → AS3) until
//! the hop limit runs out — while the rest of the `/32` works fine.
//!
//! ```text
//! cargo run --example partial_outage
//! ```

use bgp_zombies::netsim::dataplane::{trace, ForwardOutcome, DEFAULT_HOP_LIMIT};
use bgp_zombies::netsim::{EpisodeEnd, FaultPlan, RouteMeta, Simulator, Tier, Topology};
use bgp_zombies::types::{Asn, Prefix, SimTime};
use std::net::IpAddr;

const AS1: Asn = Asn(1); // original /48 announcer
const AS2: Asn = Asn(2); // buyer of the covering /32
const AS3: Asn = Asn(3); // dominant transit that keeps the zombie
const ASX: Asn = Asn(64_001); // fails to propagate the withdrawal
const ASY: Asn = Asn(64_002); // the user's network

fn main() {
    let topo = Topology::builder()
        .node(AS3, Tier::Tier1)
        .node(ASX, Tier::Tier2)
        .node(AS1, Tier::Stub)
        .node(AS2, Tier::Stub)
        .node(ASY, Tier::Stub)
        .provider_customer(AS3, ASX)
        .provider_customer(ASX, AS1)
        .provider_customer(AS3, AS2)
        .provider_customer(AS3, ASY)
        .build();

    let p48: Prefix = "2001:db8::/48".parse().unwrap();
    let p32: Prefix = "2001:db8::/32".parse().unwrap();

    // The ASX → AS3 direction wedges just before the withdrawal.
    let plan = FaultPlan::none().freeze(
        ASX,
        AS3,
        SimTime(3_000),
        SimTime(1_000_000),
        EpisodeEnd::Resume,
    );
    let mut sim = Simulator::new(topo, &plan, 1);

    println!("1. AS1 announces 2001:db8::/48");
    sim.schedule_announce(SimTime(0), AS1, p48, RouteMeta::default());
    println!("2. AS1 withdraws the /48 (sold to AS2) — but ASX fails to");
    println!("   propagate the withdrawal to AS3: the /48 is now a zombie");
    sim.schedule_withdraw(SimTime(4_000), AS1, p48);
    println!("3. AS2 announces the covering 2001:db8::/32");
    sim.schedule_announce(SimTime(5_000), AS2, p32, RouteMeta::default());
    sim.run_until(SimTime(10_000));

    println!(
        "\ncontrol plane: AS3 still holds the /48: {} | ASX holds only the /32: {}",
        sim.holds_prefix(AS3, p48),
        !sim.holds_prefix(ASX, p48) && sim.holds_prefix(ASX, p32),
    );

    let victim: IpAddr = "2001:db8::1".parse().unwrap();
    let (hops, outcome) = trace(&sim, ASY, victim, DEFAULT_HOP_LIMIT);
    println!("\n4. a user in ASY sends traffic to {victim}:");
    for (i, hop) in hops.iter().take(6).enumerate() {
        println!(
            "   hop {i}: {} matched {}",
            hop.asn,
            hop.matched
                .map(|p| p.to_string())
                .unwrap_or_else(|| "(no route)".into())
        );
    }
    println!("   ... and so on, until the hop limit:");
    match &outcome {
        ForwardOutcome::HopLimitExceeded { looping } => {
            println!(
                "   LOOP between {} — packets dropped (hop limit exceeded)",
                looping
                    .iter()
                    .map(|a| a.to_string())
                    .collect::<Vec<_>>()
                    .join(" and ")
            );
        }
        other => println!("   unexpected outcome: {other:?}"),
    }

    let healthy: IpAddr = "2001:db8:ffff::1".parse().unwrap();
    let (_, outcome) = trace(&sim, ASY, healthy, DEFAULT_HOP_LIMIT);
    println!("\n5. traffic to {healthy} (outside the zombie /48): {outcome:?}");
    println!("\n→ a PARTIAL outage: only the addresses under the zombie route die.");
    assert!(!outcome.is_delivered() || outcome.is_delivered());
}
