//! Data-plane validation of control-plane zombies — the role RIPE Atlas
//! traceroutes played in the prior study the paper builds on: for each
//! detected zombie, probe the beacon address from vantage ASes on the
//! stuck path and confirm the traffic anomaly (loop or blackhole), while
//! clean vantage points see the prefix as unreachable, as a withdrawn
//! prefix should be.
//!
//! ```text
//! cargo run --release --example atlas_validation
//! ```

use bgp_zombies::beacon::{apply_schedule, BeaconEvent, BeaconEventKind, BeaconSchedule};
use bgp_zombies::netsim::dataplane::{trace, ForwardOutcome, DEFAULT_HOP_LIMIT};
use bgp_zombies::netsim::{EpisodeEnd, FaultPlan, Simulator, Tier, Topology};
use bgp_zombies::ris::{Collector, RisConfig, RisNetwork, RisPeerSpec};
use bgp_zombies::types::{Asn, Prefix, SimTime};
use bgp_zombies::zombies::{classify, intervals_from_schedule, scan, ClassifyOptions};
use std::net::IpAddr;

const ORIGIN: Asn = Asn(210_312);

fn main() {
    // ORIGIN dual-homed; AS100 gets stuck via a frozen session; AS101
    // stays clean. Both peer with the collector; both host "probes".
    let topo = Topology::builder()
        .node(Asn(100), Tier::Tier1)
        .node(Asn(101), Tier::Tier1)
        .node(Asn(200), Tier::Tier2)
        .node(Asn(201), Tier::Tier2)
        .node(ORIGIN, Tier::Stub)
        .peering(Asn(100), Asn(101))
        .provider_customer(Asn(100), Asn(200))
        .provider_customer(Asn(101), Asn(201))
        .provider_customer(Asn(200), ORIGIN)
        .provider_customer(Asn(201), ORIGIN)
        .build();
    let beacon: Prefix = "2a0d:3dc1:1145::/48".parse().unwrap();
    let probe_addr: IpAddr = "2a0d:3dc1:1145::1".parse().unwrap();

    let plan = FaultPlan::none().freeze(
        Asn(200),
        Asn(100),
        SimTime(600),
        SimTime(1_000_000),
        EpisodeEnd::Resume,
    );
    let mut sim = Simulator::new(topo, &plan, 1);
    let ris = RisConfig {
        collectors: vec![Collector::numbered(0)],
        peers: vec![
            RisPeerSpec::healthy(Asn(100), "2001:db8:90::100".parse().unwrap(), 0),
            RisPeerSpec::healthy(Asn(101), "2001:db8:90::101".parse().unwrap(), 0),
        ],
        rib_period: 8 * 3_600,
    };
    let mut network = RisNetwork::new(ris, SimTime(0), 1);
    network.attach(&mut sim);

    let mut schedule = BeaconSchedule::default();
    schedule.events.push(BeaconEvent {
        time: SimTime(0),
        prefix: beacon,
        origin: ORIGIN,
        kind: BeaconEventKind::Announce { aggregator: None },
    });
    schedule.events.push(BeaconEvent {
        time: SimTime(900),
        prefix: beacon,
        origin: ORIGIN,
        kind: BeaconEventKind::Withdraw,
    });
    apply_schedule(&mut sim, &schedule);
    network.advance(&mut sim, SimTime(4 * 3_600));

    // 1. Control plane: detect the zombie from the archive.
    let archive = network.finish();
    let intervals = intervals_from_schedule(&schedule);
    let result = scan(archive.updates.clone(), &intervals, 4 * 3_600);
    let report = classify(&result, &ClassifyOptions::default());
    println!(
        "control plane: {} zombie route(s) detected",
        report.route_count()
    );
    for outbreak in &report.outbreaks {
        for route in &outbreak.routes {
            println!("  stuck at {} via [{}]", route.peer, route.zombie_path);
        }
    }

    // 2. Data plane: Atlas-style probes toward the withdrawn beacon.
    println!("\ndata-plane probes toward {probe_addr}:");
    for vantage in [Asn(100), Asn(101)] {
        let (hops, outcome) = trace(&sim, vantage, probe_addr, DEFAULT_HOP_LIMIT);
        let verdict = match &outcome {
            // The stuck path dead-ends at an AS that already removed the
            // route (or loops if a covering prefix points back).
            ForwardOutcome::NoRoute { at } if *at != vantage => {
                format!("ANOMALY — forwarded along the zombie path, dropped at {at}")
            }
            ForwardOutcome::NoRoute { .. } => {
                "clean — no route, as expected for a withdrawn prefix".to_string()
            }
            ForwardOutcome::HopLimitExceeded { looping } => {
                format!("ANOMALY — forwarding loop between {looping:?}")
            }
            ForwardOutcome::Delivered { at } => {
                format!("ANOMALY — delivered to {at} although withdrawn!")
            }
        };
        println!("  from {vantage}: {} hop(s) — {verdict}", hops.len(),);
    }

    // 3. The validation cross-check the prior study performed: every
    //    control-plane zombie peer shows a data-plane anomaly, every
    //    clean peer does not.
    let zombie_ases: Vec<Asn> = report
        .outbreaks
        .iter()
        .flat_map(|o| o.routes.iter().map(|r| r.peer.asn))
        .collect();
    assert!(zombie_ases.contains(&Asn(100)));
    let (_, outcome_zombie) = trace(&sim, Asn(100), probe_addr, DEFAULT_HOP_LIMIT);
    assert!(
        !outcome_zombie.is_delivered(),
        "the zombie path must not deliver"
    );
    let (hops_clean, _) = trace(&sim, Asn(101), probe_addr, DEFAULT_HOP_LIMIT);
    println!(
        "\nvalidation: zombie peers show anomalies, clean-peer probe used {} hop(s)",
        hops_clean.len()
    );
}
