//! Replication study (paper §3) on the 2018 period: run the RIS beacons
//! through the simulated substrate, detect zombies with and without the
//! Aggregator-clock filter, compare against the 2019-style looking-glass
//! baseline, and flag the noisy peer — Tables 1, 2 and 4 for one period.
//!
//! ```text
//! cargo run --release --example replication_2018 [quick|standard|full]
//! ```

use bgp_zombies::analysis::worlds::{replication_periods, run_replication};
use bgp_zombies::analysis::Scale;
use bgp_zombies::baseline::{classify_baseline, diff_reports, LookingGlassConfig};
use bgp_zombies::zombies::{
    classify, detect_noisy_peers, intervals_from_schedule, scan, ClassifyOptions,
};

fn main() {
    let scale = std::env::args()
        .nth(1)
        .and_then(|s| Scale::parse(&s))
        .unwrap_or_else(Scale::quick);
    println!("# scale: {} (pass quick|standard|full)", scale.name);

    let period = replication_periods(&scale)[0];
    println!("# simulating {} ...", period.name);
    let run = run_replication(&period, &scale, 42);
    let intervals = intervals_from_schedule(&run.schedule);
    let result = scan(run.archive.updates.clone(), &intervals, 4 * 3_600);
    println!(
        "# archive: {} records ({} skipped), {} peers, {} announcements",
        result.read_stats.ok,
        result.read_stats.skipped,
        result.peers.len(),
        result.announcement_count()
    );

    // Detect the noisy peer from the data alone (no ground truth).
    let unfiltered = classify(&result, &ClassifyOptions::default());
    let noisy = detect_noisy_peers(&result, &unfiltered, 3.5, 0.15);
    println!("\nnoisy peers detected:");
    for peer in &noisy.noisy {
        println!(
            "  {} — zombie in {:.1}% of announcements (population mean {:.2}%)",
            peer.peer,
            peer.likelihood * 100.0,
            noisy.clean_mean * 100.0
        );
    }
    assert!(
        noisy.noisy.iter().any(|p| p.peer.addr == run.noisy_peer),
        "the injected noisy peer must be flagged"
    );
    let excluded: Vec<std::net::IpAddr> = noisy.noisy.iter().map(|p| p.peer.addr).collect();

    // Table-1-style comparison.
    let with_dc = classify(
        &result,
        &ClassifyOptions {
            aggregator_filter: false,
            excluded_peers: excluded.clone(),
            ..ClassifyOptions::default()
        },
    );
    let without_dc = classify(
        &result,
        &ClassifyOptions {
            excluded_peers: excluded.clone(),
            ..ClassifyOptions::default()
        },
    );
    let (w4, w6) = with_dc.outbreak_count_by_family();
    let (n4, n6) = without_dc.outbreak_count_by_family();
    println!("\noutbreaks with double counting:    IPv4 {w4:>5}  IPv6 {w6:>5}");
    println!("outbreaks without double counting: IPv4 {n4:>5}  IPv6 {n6:>5}");
    println!(
        "the Aggregator-clock filter removed {:.1}% of outbreaks",
        (1.0 - (n4 + n6) as f64 / (w4 + w6).max(1) as f64) * 100.0
    );

    // Baseline comparison (Table 2/3 style).
    let baseline = classify_baseline(
        &result,
        &LookingGlassConfig {
            excluded_peers: excluded,
            ..LookingGlassConfig::default()
        },
    );
    println!(
        "\n2019-style looking-glass baseline: {} outbreaks (ours with DC: {})",
        baseline.outbreak_count(),
        with_dc.outbreak_count()
    );
    let diff = diff_reports(&with_dc, &baseline);
    println!(
        "methodology diff: baseline misses {} routes, we miss {}",
        diff.routes_missed_by_baseline, diff.routes_missed_by_ours
    );
}
