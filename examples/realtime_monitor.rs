//! Live zombie monitoring (the paper's §6 future work, running): replay an
//! archive through the streaming detector as if it were a RIS Live feed
//! and print alerts the moment they become decidable — including a live
//! resurrection.
//!
//! ```text
//! cargo run --release --example realtime_monitor
//! ```

use bgp_zombies::beacon::{
    apply_schedule, PaperBeaconConfig, PaperBeacons, PrefixClock, RecycleMode,
};
use bgp_zombies::mrt::MrtReader;
use bgp_zombies::netsim::{EpisodeEnd, FaultPlan, Simulator, Tier, Topology};
use bgp_zombies::ris::{Collector, RisConfig, RisNetwork, RisPeerSpec};
use bgp_zombies::types::time::{HOUR, MINUTE};
use bgp_zombies::types::{Asn, SimTime};
use bgp_zombies::zombies::realtime::{RealtimeDetector, RealtimeEvent};
use bgp_zombies::zombies::{intervals_from_schedule, ClassifyOptions};

const ORIGIN: Asn = Asn(210_312);

fn main() {
    // A small 2024-style world running the paper's own 15-minute beacons
    // for six hours, with one wedged session and one scripted late reset
    // (the resurrection).
    let topo = Topology::builder()
        .node(Asn(100), Tier::Tier1)
        .node(Asn(200), Tier::Tier2)
        .node(Asn(201), Tier::Tier2)
        .node(ORIGIN, Tier::Stub)
        .provider_customer(Asn(100), Asn(200))
        .provider_customer(Asn(100), Asn(201))
        .provider_customer(Asn(200), ORIGIN)
        .provider_customer(Asn(201), ORIGIN)
        .build();

    let mut config = PaperBeaconConfig::paper_daily();
    config.end = config.start + 6 * HOUR;
    let beacons = PaperBeacons::new(config.clone());
    let schedule = beacons.schedule();

    // Wedge 200→100 over the 13:00 withdrawal (a plain zombie). For the
    // live resurrection: AS201's RIB sticks on the 14:00 beacon, its
    // session to AS100 is dark across the whole detection window, and the
    // session resets 170 minutes after the withdrawal — the resync
    // re-announces the stale route to an AS100 that had been clean.
    let w1 = SimTime::from_ymd_hms(2024, 6, 4, 12, 55, 0);
    let clock = PrefixClock::paper(RecycleMode::Daily);
    let target = clock.encode(SimTime::from_ymd_hms(2024, 6, 4, 14, 0, 0));
    let w2_withdraw = SimTime::from_ymd_hms(2024, 6, 4, 14, 15, 0);
    let plan = FaultPlan::none()
        .freeze(Asn(200), Asn(100), w1, w1 + 3 * HOUR, EpisodeEnd::Reset)
        .sticky_prefix(Asn(201), target)
        .freeze(
            Asn(201),
            Asn(100),
            SimTime(w2_withdraw.secs() - 20 * MINUTE),
            w2_withdraw + 170 * MINUTE,
            EpisodeEnd::Reset,
        );

    let ris = RisConfig {
        collectors: vec![Collector::numbered(0)],
        peers: vec![RisPeerSpec::healthy(
            Asn(100),
            "2001:db8:90::100".parse().unwrap(),
            0,
        )],
        rib_period: 8 * HOUR,
    };
    let mut sim = Simulator::new(topo, &plan, 1);
    let mut network = RisNetwork::new(ris, config.start, 1);
    network.attach(&mut sim);
    apply_schedule(&mut sim, &schedule);
    network.advance(&mut sim, config.end + 6 * HOUR);
    let archive = network.finish();

    // --- the live side -------------------------------------------------
    // Fluent construction: widen the resurrection window to the paper's
    // 3-hour sweep ceiling and flag peers dark for more than an hour.
    let mut detector = RealtimeDetector::new(ClassifyOptions::default())
        .with_resurrection_window(3 * HOUR)
        .with_staleness_window(HOUR);
    detector.arm_intervals(intervals_from_schedule(&schedule));
    println!("# monitoring the feed (threshold 90 min) ...");
    let mut reader = MrtReader::new(archive.updates.clone());
    let mut last = SimTime::ZERO;
    let mut zombie_count = 0;
    let mut resurrection_count = 0;
    while let Some(record) = reader.next_record() {
        last = record.timestamp;
        for event in detector.push(&record) {
            match event {
                RealtimeEvent::ZombieDetected {
                    prefix,
                    peer,
                    path,
                    lifespan_so_far,
                    detected_at,
                    ..
                } => {
                    zombie_count += 1;
                    println!(
                        "[{detected_at}] ZOMBIE       {prefix} at {peer} via [{path}] \
                         (stuck {} min)",
                        lifespan_so_far / 60
                    );
                }
                RealtimeEvent::Resurrected {
                    prefix,
                    peer,
                    path,
                    lifespan_so_far,
                    detected_at,
                    ..
                } => {
                    resurrection_count += 1;
                    println!(
                        "[{detected_at}] RESURRECTION {prefix} at {peer} via [{path}] \
                         ({} min after withdrawal)",
                        lifespan_so_far / 60
                    );
                }
                RealtimeEvent::PeerStale {
                    peer, last_seen, ..
                } => {
                    println!("# peer {peer} silent since {last_seen}");
                }
            }
        }
    }
    for event in detector.advance(last + 4 * HOUR) {
        if let RealtimeEvent::ZombieDetected {
            prefix,
            peer,
            detected_at,
            ..
        } = event
        {
            zombie_count += 1;
            println!("[{detected_at}] ZOMBIE       {prefix} at {peer}");
        }
    }
    println!("\n{zombie_count} zombie alert(s), {resurrection_count} live resurrection(s)");
    assert!(zombie_count > 0, "the wedged session guarantees alerts");
}
