//! Zombie resurrection (paper §5.1), isolated: an infected router's
//! downstream session resets months after the withdrawal and re-announces
//! the stale route to an AS that had cleanly withdrawn it — the route
//! rises from the dead, and the RIB dumps show the visibility gap.
//!
//! ```text
//! cargo run --example resurrection_hunt
//! ```

use bgp_zombies::netsim::{EpisodeEnd, FaultPlan, RouteMeta, Simulator, Tier, Topology};
use bgp_zombies::ris::{Collector, RisConfig, RisNetwork, RisPeerSpec};
use bgp_zombies::types::time::{DAY, HOUR};
use bgp_zombies::types::{Asn, Prefix, SimTime};
use bgp_zombies::zombies::track_lifespans;

const ORIGIN: Asn = Asn(210_312);
const UPSTREAM: Asn = Asn(8_298);
const INFECTED: Asn = Asn(34_549);
const DOWNSTREAM: Asn = Asn(3_356);
const RIS_PEER: Asn = Asn(61_573);

fn main() {
    // ORIGIN ← UPSTREAM ← INFECTED ← DOWNSTREAM ← RIS_PEER, with
    // DOWNSTREAM multihomed so it withdraws cleanly on the healthy side.
    let topo = Topology::builder()
        .node(DOWNSTREAM, Tier::Tier1)
        .node(Asn(60_000), Tier::Tier1)
        .node(INFECTED, Tier::Tier2)
        .node(UPSTREAM, Tier::Tier2)
        .node(ORIGIN, Tier::Stub)
        .node(RIS_PEER, Tier::Stub)
        .peering(DOWNSTREAM, Asn(60_000))
        .provider_customer(DOWNSTREAM, INFECTED)
        .provider_customer(Asn(60_000), UPSTREAM)
        .provider_customer(INFECTED, UPSTREAM)
        .provider_customer(UPSTREAM, ORIGIN)
        .provider_customer(DOWNSTREAM, RIS_PEER)
        .build();

    let prefix: Prefix = "2a0d:3dc1:1851::/48".parse().unwrap();
    let start = SimTime::from_ymd_hms(2024, 6, 21, 18, 45, 0);
    let withdrawal = start + 15 * 60;
    let dark_until = SimTime::from_ymd_hms(2024, 6, 29, 9, 0, 0);
    let death = SimTime::from_ymd_hms(2024, 9, 15, 0, 0, 0);

    let plan = FaultPlan::none()
        // The withdrawal never reaches INFECTED: it is a zombie holder.
        .freeze(UPSTREAM, INFECTED, start + 60, death, EpisodeEnd::Reset)
        // INFECTED's session to DOWNSTREAM is dark across the whole
        // episode start, so nobody sees the stale route at first...
        .freeze(
            INFECTED,
            DOWNSTREAM,
            SimTime(start.secs() - 300),
            dark_until,
            EpisodeEnd::Reset,
        );
    // ...until the session re-establishes on 2024-06-29 (the freeze ends
    // with a reset), and the resync re-announces the zombie.

    let ris = RisConfig {
        collectors: vec![Collector::numbered(0)],
        peers: vec![RisPeerSpec::healthy(
            RIS_PEER,
            "2001:db8:6157:3::1".parse().unwrap(),
            0,
        )],
        rib_period: 8 * HOUR,
    };

    let mut sim = Simulator::new(topo, &plan, 1);
    let mut network = RisNetwork::new(ris, start, 1);
    network.attach(&mut sim);
    sim.schedule_announce(start, ORIGIN, prefix, RouteMeta::default());
    sim.schedule_withdraw(withdrawal, ORIGIN, prefix);
    network.advance(&mut sim, death + DAY);
    let archive = network.finish();

    println!("withdrawn at {withdrawal}");
    let lifespans = track_lifespans(&archive.rib_dumps, &[(prefix, withdrawal)], &[]);
    match lifespans.first() {
        Some(l) => {
            println!(
                "zombie visible at RIS from {} to {} ({:.1} days after the withdrawal!)",
                l.first_seen,
                l.last_seen,
                l.duration_days()
            );
            let dark_days = l.first_seen.saturating_since(withdrawal) as f64 / 86_400.0;
            println!(
                "it was INVISIBLE for the first {dark_days:.1} days — the resurrection:\n\
                 the infected AS{} re-announced it when its session to AS{} reset,\n\
                 infecting AS{} and its cone with a route withdrawn a week earlier.",
                INFECTED.0, DOWNSTREAM.0, DOWNSTREAM.0
            );
            assert!(dark_days > 5.0, "the dark period is the point");
            assert!(l.duration_days() > 80.0, "and it persists for months");
        }
        None => println!("no zombie — unexpected, the freeze guarantees one"),
    }
}
