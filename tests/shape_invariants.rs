//! Cross-crate integration tests: the headline *shape* claims of the
//! paper, checked end to end at bench scale (full pipeline: simulation →
//! MRT archive → detection → analysis).

use bgp_zombies::analysis::experiments::{
    beacon_bundle, cases, fig2, fig3, replication_bundle, table1, table2, table5,
};
use bgp_zombies::analysis::Scale;
use bgp_zombies::types::Asn;

#[test]
fn replication_shape_holds() {
    let bundle = replication_bundle(&Scale::bench(), 42);

    // Table 1: the Aggregator filter removes a meaningful share of
    // outbreaks (paper: 21.36%), and never adds any.
    let t1 = table1::compute(&bundle);
    assert_eq!(t1.rows.len(), 3);
    for row in &t1.rows {
        assert!(row.without_dc.0 <= row.with_dc.0);
        assert!(row.without_dc.1 <= row.with_dc.1);
        assert!(row.visible > 0);
    }
    let reduction = t1.overall_reduction();
    assert!(
        (0.05..=0.6).contains(&reduction),
        "reduction {reduction} out of plausible band"
    );

    // Table 2: raw data finds MORE than the looking-glass baseline before
    // filtering (paper: +12.5%), FEWER after (paper: −13%).
    let t2 = table2::compute(&bundle);
    assert!(
        t2.surplus_over_study() > 0.0,
        "{:?}",
        t2.surplus_over_study()
    );
    assert!(t2.deficit_after_filter() > 0.0);
}

#[test]
fn beacon_study_shape_holds() {
    let bundle = beacon_bundle(&Scale::bench(), 42);

    // Fig. 2: the outbreak fraction decays with the threshold, and the
    // late resurrections produce the post-160-minute uptick.
    let f2 = fig2::compute(&bundle);
    let at = |m: u64| {
        f2.noisy_excluded
            .iter()
            .find(|&&(minutes, _, _)| minutes == m)
            .map(|&(_, o, _)| o)
            .expect("sampled threshold")
    };
    assert!(at(90) > at(160), "decay missing: {} !> {}", at(90), at(160));
    assert!(f2.has_uptick(), "resurrection uptick missing");
    let survival = f2.survival_to_3h();
    assert!(
        (0.1..=0.8).contains(&survival),
        "survival {survival} out of band (paper: 0.314)"
    );

    // Table 5: the two AS211509 routers show identical counts (one AS-level
    // feed), and the noisy routers dominate.
    let t5 = table5::compute(&bundle);
    assert_eq!(t5.len(), 3);
    let rows_211509: Vec<_> = t5.iter().filter(|r| r.asn == 211_509).collect();
    assert_eq!(rows_211509.len(), 2);
    assert_eq!(rows_211509[0].routes_90, rows_211509[1].routes_90);
    for row in &t5 {
        assert!(row.routes_90 > 0, "noisy router with no zombies");
        assert!(row.routes_180 <= row.routes_90);
    }

    // Fig. 3: durations reach weeks within the (scaled) observation
    // window; the noisy-excluded population is a subset.
    let f3 = fig3::compute(&bundle);
    assert!(f3.noisy_excluded.len() <= f3.all_peers.len());
    let max_days = f3.all_peers.iter().copied().fold(0.0f64, f64::max);
    assert!(max_days > 7.0, "no week-long zombie at all: max {max_days}");
}

#[test]
fn case_studies_pin_the_right_culprits() {
    let bundle = beacon_bundle(&Scale::bench(), 42);
    let report = bgp_zombies::zombies::classify(
        &bundle.scan,
        &bgp_zombies::zombies::ClassifyOptions {
            threshold: 180 * 60,
            ..Default::default()
        },
    );
    for (prefix, _, expected) in cases::case_prefixes() {
        let expected = expected.expect("both cases have an expected culprit");
        let outbreak = report
            .outbreaks
            .iter()
            .filter(|o| o.interval.prefix == prefix)
            .max_by_key(|o| o.routes.len())
            .unwrap_or_else(|| panic!("{prefix} must be stuck"));
        // Background episodes can coincidentally stick the same prefix
        // elsewhere and dilute the global common suffix (a limitation the
        // paper itself flags), so run the palm-tree inference over the
        // routes that actually traverse the scripted culprit.
        let through: Vec<&bgp_zombies::types::AsPath> = outbreak
            .routes
            .iter()
            .map(|r| r.zombie_path.as_ref())
            .filter(|p| p.contains(expected))
            .collect();
        assert!(
            !through.is_empty(),
            "{prefix}: no stuck route through {expected}"
        );
        let cause = bgp_zombies::zombies::rootcause::infer_from_paths(&through).expect("routes");
        assert_eq!(cause.suspect, Some(expected), "{prefix}");
        assert_eq!(cause.chain.last(), Some(&Asn(210_312)));
    }
}

#[test]
fn experiments_are_deterministic() {
    let a = beacon_bundle(&Scale::bench(), 7);
    let b = beacon_bundle(&Scale::bench(), 7);
    assert_eq!(a.run.archive.updates, b.run.archive.updates);
    assert_eq!(a.run.archive.rib_dumps.len(), b.run.archive.rib_dumps.len());
    for (x, y) in a.run.archive.rib_dumps.iter().zip(&b.run.archive.rib_dumps) {
        assert_eq!(x, y);
    }
    let fa = fig2::run(&a);
    let fb = fig2::run(&b);
    assert_eq!(fa.json, fb.json);
}

#[test]
fn different_seeds_differ() {
    let a = replication_bundle(&Scale::bench(), 1);
    let b = replication_bundle(&Scale::bench(), 2);
    assert_ne!(
        a.runs[0].1.read_stats.ok, b.runs[0].1.read_stats.ok,
        "different seeds should produce different archives (overwhelmingly)"
    );
}
