//! End-to-end pipeline tests: simulator → RIS archive (real MRT bytes) →
//! scan → classify → noisy/lifespan analyses.
//!
//! These tests exercise the exact artifact flow of the paper: beacons are
//! announced/withdrawn in a simulated Internet with injected faults, the
//! RIS layer archives what its peers saw, and the detector — which sees
//! only the MRT bytes, never the simulator — must find exactly the
//! injected zombies.

use bgpz_beacon::{apply_schedule, RisBeaconConfig, RisBeacons};
use bgpz_core::{
    classify, detect_noisy_peers, intervals_from_schedule, scan, track_lifespans, ClassifyOptions,
};
use bgpz_netsim::{EpisodeEnd, FaultPlan, Simulator, Tier, Topology};
use bgpz_ris::{Collector, RisConfig, RisNetwork, RisPeerSpec};
use bgpz_types::time::HOUR;
use bgpz_types::{Asn, Prefix, SimTime};

const ORIGIN: Asn = Asn(12_654);

/// Diamond with two RIS peers at the top.
fn world() -> (Topology, RisConfig) {
    let topo = Topology::builder()
        .node(Asn(100), Tier::Tier1)
        .node(Asn(101), Tier::Tier1)
        .node(Asn(200), Tier::Tier2)
        .node(Asn(201), Tier::Tier2)
        .node(ORIGIN, Tier::Stub)
        .peering(Asn(100), Asn(101))
        .provider_customer(Asn(100), Asn(200))
        .provider_customer(Asn(101), Asn(201))
        .provider_customer(Asn(200), ORIGIN)
        .provider_customer(Asn(201), ORIGIN)
        .build();
    let config = RisConfig {
        collectors: vec![Collector::numbered(0)],
        peers: vec![
            RisPeerSpec::healthy(Asn(100), "2001:db8:90::100".parse().unwrap(), 0),
            RisPeerSpec::healthy(Asn(101), "2001:db8:90::101".parse().unwrap(), 0),
        ],
        rib_period: 8 * HOUR,
    };
    (topo, config)
}

/// Runs one day of RIS beacons through the world with the given faults.
fn run_day(plan: FaultPlan) -> (bgpz_ris::RisArchive, bgpz_beacon::BeaconSchedule) {
    let (topo, config) = world();
    let beacons = RisBeacons::new(RisBeaconConfig::historical(ORIGIN));
    let start = SimTime::from_ymd_hms(2018, 7, 19, 0, 0, 0);
    let end = SimTime::from_ymd_hms(2018, 7, 20, 0, 0, 0);
    let schedule = beacons.schedule(start, end);

    let mut sim = Simulator::new(topo, &plan, 1);
    let mut ris = RisNetwork::new(config, start, 2);
    ris.attach(&mut sim);
    apply_schedule(&mut sim, &schedule);
    ris.advance(&mut sim, end + 4 * HOUR);
    (ris.finish(), schedule)
}

#[test]
fn clean_world_has_no_zombies() {
    let (archive, schedule) = run_day(FaultPlan::none());
    let intervals = intervals_from_schedule(&schedule);
    assert_eq!(intervals.len(), 6 * 27);
    let result = scan(archive.updates.clone(), &intervals, 4 * HOUR);
    assert_eq!(result.read_stats.skipped, 0);
    assert!(result.read_stats.ok > 0);
    let report = classify(&result, &ClassifyOptions::default());
    assert_eq!(report.outbreak_count(), 0, "healthy run must be clean");
    // And the RIB dumps show no lifespans either.
    let withdrawn: Vec<(Prefix, SimTime)> = intervals
        .iter()
        .map(|iv| (iv.prefix, iv.withdraw_at))
        .collect();
    let lifespans = track_lifespans(&archive.rib_dumps, &withdrawn, &[]);
    // Routes present between announce and withdraw are fine; only
    // post-final-withdrawal presence counts, and the last withdrawal of
    // each prefix is its last interval's.
    let final_withdrawals: Vec<(Prefix, SimTime)> = {
        let mut map = std::collections::HashMap::new();
        for iv in &intervals {
            let e = map.entry(iv.prefix).or_insert(iv.withdraw_at);
            if iv.withdraw_at > *e {
                *e = iv.withdraw_at;
            }
        }
        map.into_iter().collect()
    };
    let lifespans2 = track_lifespans(&archive.rib_dumps, &final_withdrawals, &[]);
    assert!(lifespans2.is_empty(), "{lifespans:?}");
}

#[test]
fn frozen_edge_zombie_detected_with_correct_root() {
    // Freeze AS200 → AS100 from 01:00 for the rest of the day: every
    // withdrawal after 02:00 leaves AS100 stuck.
    let start = SimTime::from_ymd_hms(2018, 7, 19, 1, 0, 0);
    let end = SimTime::from_ymd_hms(2018, 7, 21, 0, 0, 0);
    let plan = FaultPlan::none().freeze(Asn(200), Asn(100), start, end, EpisodeEnd::Resume);
    let (archive, schedule) = run_day(plan);
    let intervals = intervals_from_schedule(&schedule);
    let result = scan(archive.updates.clone(), &intervals, 4 * HOUR);
    let report = classify(&result, &ClassifyOptions::default());
    assert!(report.outbreak_count() > 0, "zombies must be detected");
    // AS100 is the infected AS; via path hunting its stale customer route
    // also spreads over the peering to AS101 (so both peers can be stuck —
    // the paper's "zombie peers"). Every stuck path must run through the
    // frozen chain [.. 200 ORIGIN], and AS100 must be stuck somewhere.
    let mut saw_100 = false;
    for outbreak in &report.outbreaks {
        for route in &outbreak.routes {
            assert!(
                route.peer.asn == Asn(100) || route.peer.asn == Asn(101),
                "unexpected zombie peer {}",
                route.peer
            );
            saw_100 |= route.peer.asn == Asn(100);
            assert!(route.zombie_path.ends_with(&[Asn(200), ORIGIN]));
        }
        // Palm-tree inference: the shared trunk ends at the origin, and
        // when both peers are stuck the branching point is AS100 — the
        // infected AS.
        let cause = bgpz_core::infer_root_cause(outbreak).unwrap();
        assert_eq!(cause.chain.last(), Some(&ORIGIN));
        assert!(cause.suspect.is_some());
        if outbreak.routes.len() == 2 {
            assert_eq!(cause.suspect, Some(Asn(100)));
        }
    }
    assert!(saw_100, "the infected AS itself must hold zombies");
}

#[test]
fn double_counting_eliminated_by_aggregator_filter() {
    // Freeze across the whole run: the first interval's route freezes in
    // AS100 with its original Aggregator clock; every later interval sees
    // the same stale route. Without the filter each interval counts a
    // "new" outbreak; with it only fresh ones survive.
    let freeze_start = SimTime::from_ymd_hms(2018, 7, 19, 1, 0, 0);
    let freeze_end = SimTime::from_ymd_hms(2018, 7, 22, 0, 0, 0);
    let plan = FaultPlan::none().freeze(
        Asn(200),
        Asn(100),
        freeze_start,
        freeze_end,
        EpisodeEnd::Resume,
    );
    let (archive, schedule) = run_day(plan);
    let intervals = intervals_from_schedule(&schedule);
    let result = scan(archive.updates.clone(), &intervals, 4 * HOUR);

    let without_filter = classify(
        &result,
        &ClassifyOptions {
            aggregator_filter: false,
            ..ClassifyOptions::default()
        },
    );
    let with_filter = classify(&result, &ClassifyOptions::default());
    assert!(
        with_filter.outbreak_count() < without_filter.outbreak_count(),
        "filter must remove duplicates: {} !< {}",
        with_filter.outbreak_count(),
        without_filter.outbreak_count()
    );
    // The duplicates carry an Aggregator time before their interval.
    let dup = without_filter
        .outbreaks
        .iter()
        .flat_map(|o| o.routes.iter())
        .filter(|r| r.is_duplicate)
        .count();
    assert!(dup > 0);
}

#[test]
fn noisy_sticky_router_flagged_and_excluded() {
    // Add a third, chronically sticky peer router (IPv6 only, like
    // AS16347) to the world.
    let (topo, mut config) = world();
    config = config.with_peer(
        RisPeerSpec::healthy(Asn(201), "2001:678:3f4:5::1".parse().unwrap(), 0)
            .with_sticky_family(0.0, 0.9),
    );
    let beacons = RisBeacons::new(RisBeaconConfig::historical(ORIGIN));
    let start = SimTime::from_ymd_hms(2018, 7, 19, 0, 0, 0);
    let end = SimTime::from_ymd_hms(2018, 7, 21, 0, 0, 0);
    let schedule = beacons.schedule(start, end);
    let mut sim = Simulator::new(topo, &FaultPlan::none(), 1);
    let mut ris = RisNetwork::new(config, start, 2);
    ris.attach(&mut sim);
    apply_schedule(&mut sim, &schedule);
    ris.advance(&mut sim, end + 4 * HOUR);
    let archive = ris.finish();

    let intervals = intervals_from_schedule(&schedule);
    let result = scan(archive.updates.clone(), &intervals, 4 * HOUR);
    let report = classify(&result, &ClassifyOptions::default());
    assert!(report.outbreak_count() > 0);

    let noisy = detect_noisy_peers(&result, &report, 10.0, 0.05);
    assert_eq!(noisy.noisy.len(), 1, "{:?}", noisy.noisy);
    let flagged = noisy.noisy[0];
    assert_eq!(flagged.peer.asn, Asn(201));
    // Likelihood is diluted across both families (the router is sticky on
    // IPv6 only — 14 of the 27 beacons).
    assert!(
        flagged.likelihood > 0.3,
        "likelihood {}",
        flagged.likelihood
    );

    // Excluding it silences everything (IPv6 zombies were only there).
    let clean = classify(
        &result,
        &ClassifyOptions {
            excluded_peers: vec![flagged.peer.addr],
            ..ClassifyOptions::default()
        },
    );
    assert_eq!(clean.outbreak_count(), 0);
}

#[test]
fn long_lived_zombie_lifespan_tracked_from_dumps() {
    // Freeze one edge for three days, run one day of beacons, then keep
    // the world running (and dumping) for three more days: the stuck
    // routes of the last interval survive in AS100 until the freeze ends.
    let (topo, config) = world();
    let day0 = SimTime::from_ymd_hms(2018, 7, 19, 0, 0, 0);
    let day1 = SimTime::from_ymd_hms(2018, 7, 20, 0, 0, 0);
    let freeze_end = SimTime::from_ymd_hms(2018, 7, 23, 0, 0, 0);
    let plan = FaultPlan::none().freeze(
        Asn(200),
        Asn(100),
        day0 + HOUR,
        freeze_end,
        EpisodeEnd::Reset,
    );
    let beacons = RisBeacons::new(RisBeaconConfig::historical(ORIGIN));
    let schedule = beacons.schedule(day0, day1);
    let mut sim = Simulator::new(topo, &plan, 1);
    let mut ris = RisNetwork::new(config, day0, 2);
    ris.attach(&mut sim);
    apply_schedule(&mut sim, &schedule);
    ris.advance(&mut sim, freeze_end + HOUR);
    let archive = ris.finish();

    // Final withdrawal per prefix.
    let intervals = intervals_from_schedule(&schedule);
    let mut finals = std::collections::HashMap::new();
    for iv in &intervals {
        let e = finals.entry(iv.prefix).or_insert(iv.withdraw_at);
        if iv.withdraw_at > *e {
            *e = iv.withdraw_at;
        }
    }
    let finals: Vec<(Prefix, SimTime)> = finals.into_iter().collect();
    let lifespans = track_lifespans(&archive.rib_dumps, &finals, &[]);
    assert!(!lifespans.is_empty(), "long-lived zombies expected");
    for l in &lifespans {
        // Every lifespan belongs to the infected AS100 or to AS101, which
        // re-learns the stale route over the peering during path hunting.
        assert!(l
            .peers()
            .iter()
            .all(|p| p.asn == Asn(100) || p.asn == Asn(101)));
        // Persisted for days (withdrawn on day 0, visible until the
        // session reset on day 4).
        assert!(
            l.duration_days() > 2.0,
            "{} lasted only {} days",
            l.prefix,
            l.duration_days()
        );
        // And died with the reset: the withdraw propagates seconds after
        // freeze_end, so the coincident dump may still show it.
        assert!(l.last_seen <= freeze_end);
    }
}
