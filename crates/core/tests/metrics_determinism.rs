//! End-to-end metrics determinism: running the detection pipeline at any
//! worker count must leave the global metrics registry byte-identical —
//! the `metrics.json` contract.
//!
//! Everything lives in ONE `#[test]` function on purpose: integration-test
//! files get their own process, but functions within a file run on
//! parallel threads sharing the process-wide registry. A single function
//! keeps the global state owned by this test alone.

use bgpz_core::{
    classify, detect_noisy_peers, scan_sharded, track_lifespans, BeaconInterval, ClassifyOptions,
};
use bgpz_mrt::bgp4mp::SessionHeader;
use bgpz_mrt::table_dump::{PeerEntry, PeerIndexTable, RibEntry, RibSnapshot};
use bgpz_mrt::{Bgp4mpMessage, Bgp4mpStateChange, BgpState, MrtBody, MrtRecord, MrtWriter};
use bgpz_obs::metrics;
use bgpz_types::attrs::{MpReach, MpUnreach, NextHop, Origin};
use bgpz_types::{Afi, AsPath, Asn, BgpMessage, BgpUpdate, PathAttributes, Prefix, SimTime};
use bytes::Bytes;
use std::net::Ipv4Addr;

fn session(n: u8) -> SessionHeader {
    SessionHeader {
        peer_as: Asn(65_000 + n as u32),
        local_as: Asn(12_654),
        ifindex: 0,
        peer_ip: format!("2001:db8:{n}::1").parse().unwrap(),
        local_ip: "2001:7f8:24::82".parse().unwrap(),
    }
}

fn announce(session: SessionHeader, t: u64, prefix: &str) -> MrtRecord {
    let prefix: Prefix = prefix.parse().unwrap();
    let attrs = PathAttributes {
        origin: Some(Origin::Igp),
        as_path: Some(AsPath::from_sequence([
            session.peer_as.0,
            25_091,
            8_298,
            210_312,
        ])),
        mp_reach: Some(MpReach {
            afi: Afi::Ipv6,
            safi: 1,
            next_hop: NextHop::V6 {
                global: "2a0c:9a40:1031::504".parse().unwrap(),
                link_local: None,
            },
            nlri: vec![prefix],
        }),
        ..PathAttributes::default()
    };
    MrtRecord::new(
        SimTime(t),
        MrtBody::Message(Bgp4mpMessage {
            session,
            message: BgpMessage::Update(BgpUpdate {
                attrs,
                ..BgpUpdate::default()
            }),
        }),
    )
}

fn withdraw(session: SessionHeader, t: u64, prefix: &str) -> MrtRecord {
    let prefix: Prefix = prefix.parse().unwrap();
    MrtRecord::new(
        SimTime(t),
        MrtBody::Message(Bgp4mpMessage {
            session,
            message: BgpMessage::Update(BgpUpdate {
                attrs: PathAttributes {
                    mp_unreach: Some(MpUnreach {
                        afi: Afi::Ipv6,
                        safi: 1,
                        withdrawn: vec![prefix],
                    }),
                    ..PathAttributes::default()
                },
                ..BgpUpdate::default()
            }),
        }),
    )
}

fn session_down(session: SessionHeader, t: u64) -> MrtRecord {
    MrtRecord::new(
        SimTime(t),
        MrtBody::StateChange(Bgp4mpStateChange {
            session,
            old_state: BgpState::Established,
            new_state: BgpState::Idle,
        }),
    )
}

/// A RIB dump at `t` in which each `(peer number, prefixes)` entry lists
/// what that peer holds.
fn dump(t: u64, holdings: &[(u8, &[&str])]) -> (SimTime, Bytes) {
    let mut writer = MrtWriter::new();
    let peers: Vec<PeerEntry> = holdings
        .iter()
        .map(|&(n, _)| PeerEntry {
            bgp_id: Ipv4Addr::new(10, 0, 0, n),
            addr: format!("2001:db8:{n}::1").parse().unwrap(),
            asn: Asn(65_000 + n as u32),
        })
        .collect();
    writer.push(&MrtRecord::new(
        SimTime(t),
        MrtBody::PeerIndex(PeerIndexTable {
            collector_id: Ipv4Addr::new(193, 0, 4, 0),
            view_name: String::new(),
            peers,
        }),
    ));
    let mut all: Vec<Prefix> = holdings
        .iter()
        .flat_map(|&(_, ps)| ps.iter().map(|p| p.parse().unwrap()))
        .collect();
    all.sort_unstable();
    all.dedup();
    for (seq, prefix) in all.into_iter().enumerate() {
        let entries: Vec<RibEntry> = holdings
            .iter()
            .enumerate()
            .filter(|&(_, &(_, ps))| ps.iter().any(|p| p.parse::<Prefix>().unwrap() == prefix))
            .map(|(i, _)| RibEntry {
                peer_index: i as u16,
                originated: SimTime(t),
                attrs: PathAttributes::announcement(AsPath::from_sequence([65_001, 210_312])),
            })
            .collect();
        writer.push(&MrtRecord::new(
            SimTime(t),
            MrtBody::Rib(RibSnapshot {
                sequence: seq as u32,
                prefix,
                entries,
            }),
        ));
    }
    (SimTime(t), writer.finish())
}

/// The multi-prefix multi-peer archive from the `scan_sharded` unit tests:
/// 3 prefixes × 3 intervals, two peers, stuck routes on some intervals, a
/// session drop, and a cross-interval boundary withdrawal.
fn fixture() -> (Bytes, Vec<BeaconInterval>) {
    let prefixes = ["2a0d:3dc1:1::/48", "2a0d:3dc1:2::/48", "2a0d:3dc1:3::/48"];
    let mut intervals = Vec::new();
    for prefix in &prefixes {
        for k in 0..3u64 {
            intervals.push(BeaconInterval {
                prefix: prefix.parse().unwrap(),
                start: SimTime(k * 14_400),
                withdraw_at: SimTime(k * 14_400 + 7_200),
            });
        }
    }
    let mut records = Vec::new();
    for (p, prefix) in prefixes.iter().enumerate() {
        for k in 0..3u64 {
            let base = k * 14_400;
            records.push(announce(session(1), base + 5 + p as u64, prefix));
            if (k + p as u64) % 2 == 0 {
                records.push(withdraw(session(1), base + 7_210, prefix));
            }
            records.push(announce(session(2), base + 9, prefix));
        }
        records.push(withdraw(session(2), 15_000, prefix));
    }
    records.push(session_down(session(1), 8_000));
    records.sort_by_key(|r| r.timestamp);
    let mut writer = MrtWriter::new();
    for record in &records {
        writer.push(record);
    }
    (writer.finish(), intervals)
}

/// Runs the full pipeline against a fresh registry and returns the
/// deterministic snapshot.
fn pipeline_snapshot(
    updates: &Bytes,
    intervals: &[BeaconInterval],
    dumps: &[(SimTime, Bytes)],
    finals: &[(Prefix, SimTime)],
    jobs: usize,
) -> String {
    metrics::global().reset();
    let result = scan_sharded(updates.clone(), intervals, 4 * 3_600, jobs);
    let report = classify(&result, &ClassifyOptions::default());
    let _noisy = detect_noisy_peers(&result, &report, 10.0, 0.05);
    let _lifespans = track_lifespans(dumps, finals, &[]);
    metrics::global().to_json_pretty_with(false)
}

#[test]
fn pipeline_metrics_identical_at_any_job_count() {
    let (updates, intervals) = fixture();
    let tracked: Prefix = "2a0d:3dc1:1::/48".parse().unwrap();
    let finals = [(tracked, SimTime(3 * 14_400 - 7_200))];
    let dumps = [
        dump(4 * 14_400, &[(1, &["2a0d:3dc1:1::/48"][..]), (2, &[][..])]),
        dump(5 * 14_400, &[(1, &["2a0d:3dc1:1::/48"][..]), (2, &[][..])]),
        dump(6 * 14_400, &[(1, &[][..]), (2, &[][..])]),
    ];

    let reference = pipeline_snapshot(&updates, &intervals, &dumps, &finals, 1);

    // The pipeline actually recorded something at every stage.
    for key in [
        "records_ok",
        "records_ok_messages",
        "records_ok_state_changes",
        "\"intervals\": 9",
        "peers_considered",
        "peers_pruned",
        "outbreaks@5400s",
        "zombie_routes@5400s",
        "outbreaks_tracked",
        "duration_days",
        "scan_sharded",
        "track_lifespans",
    ] {
        assert!(reference.contains(key), "missing {key} in:\n{reference}");
    }
    // Span counts are jobs-invariant: scan_sharded is entered once no
    // matter how many shards it fans out to.
    assert!(reference.contains("\"count\": 1"), "{reference}");

    for jobs in [1, 3, 8] {
        let snapshot = pipeline_snapshot(&updates, &intervals, &dumps, &finals, jobs);
        assert_eq!(
            snapshot, reference,
            "metrics snapshot diverged at jobs={jobs}"
        );
    }
}
