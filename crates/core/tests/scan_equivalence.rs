//! Property tests for the zero-copy indexed scan: the raw-byte
//! prefilter path must be observably identical to the eager
//! decode-everything path over archives that interleave well-formed,
//! malformed, and truncated records — including identical tolerant-reader
//! statistics — and the sharded merge must be byte-identical at every
//! worker count.

use bgpz_core::{scan, scan_indexed, BeaconInterval, PeerId, ScanResult};
use bgpz_mrt::bgp4mp::SessionHeader;
use bgpz_mrt::{
    Bgp4mpMessage, Bgp4mpStateChange, BgpState, FrameIndex, MrtBody, MrtRecord, MrtWriter,
};
use bgpz_types::attrs::{MpReach, MpUnreach, NextHop};
use bgpz_types::{AsPath, Asn, BgpMessage, BgpUpdate, PathAttributes, Prefix, SimTime};
use bytes::Bytes;
use proptest::prelude::*;
use std::fmt::Write as _;

/// First four are beacon prefixes with intervals; the rest are noise the
/// prefilter should skip without decoding.
const PREFIXES: [&str; 6] = [
    "2a0d:3dc1:1::/48",
    "2a0d:3dc1:2::/48",
    "2a0d:3dc1:3::/48",
    "2a0d:3dc1:4::/48",
    "2001:db8:aaaa::/48",
    "2001:db8:bbbb::/48",
];

const WINDOW: u64 = 4 * 3_600;

fn intervals() -> Vec<BeaconInterval> {
    let mut out = Vec::new();
    for prefix in &PREFIXES[..4] {
        for k in 0..2u64 {
            out.push(BeaconInterval {
                prefix: prefix.parse().unwrap(),
                start: SimTime(k * 14_400),
                withdraw_at: SimTime(k * 14_400 + 7_200),
            });
        }
    }
    out
}

fn session(peer: u8) -> SessionHeader {
    SessionHeader {
        peer_as: Asn(64_000 + peer as u32),
        local_as: Asn(12_654),
        ifindex: 0,
        peer_ip: format!("2001:db8:90::{}", peer + 1).parse().unwrap(),
        local_ip: "2001:7f8:24::82".parse().unwrap(),
    }
}

#[derive(Debug, Clone)]
enum Action {
    Announce { with_path: bool },
    Withdraw,
    Down,
    Keepalive,
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        3 => any::<bool>().prop_map(|with_path| Action::Announce { with_path }),
        2 => Just(Action::Withdraw),
        1 => Just(Action::Down),
        1 => Just(Action::Keepalive),
    ]
}

fn build_record(ts: u64, peer: u8, prefix_idx: usize, action: &Action) -> MrtRecord {
    let prefix: Prefix = PREFIXES[prefix_idx].parse().unwrap();
    let body = match action {
        Action::Announce { with_path } => {
            let mut attrs = if *with_path {
                PathAttributes::announcement(AsPath::from_sequence([
                    64_000 + peer as u32,
                    25_091,
                    210_312,
                ]))
            } else {
                // An announcement without AS_PATH: the scan must register
                // the peer but record no observation.
                PathAttributes::default()
            };
            attrs.mp_reach = Some(MpReach {
                afi: bgpz_types::Afi::Ipv6,
                safi: 1,
                next_hop: NextHop::V6 {
                    global: "2001:db8::1".parse().unwrap(),
                    link_local: None,
                },
                nlri: vec![prefix],
            });
            MrtBody::Message(Bgp4mpMessage {
                session: session(peer),
                message: BgpMessage::Update(BgpUpdate {
                    attrs,
                    ..BgpUpdate::default()
                }),
            })
        }
        Action::Withdraw => MrtBody::Message(Bgp4mpMessage {
            session: session(peer),
            message: BgpMessage::Update(BgpUpdate {
                attrs: PathAttributes {
                    mp_unreach: Some(MpUnreach {
                        afi: bgpz_types::Afi::Ipv6,
                        safi: 1,
                        withdrawn: vec![prefix],
                    }),
                    ..PathAttributes::default()
                },
                ..BgpUpdate::default()
            }),
        }),
        Action::Down => MrtBody::StateChange(Bgp4mpStateChange {
            session: session(peer),
            old_state: BgpState::Established,
            new_state: BgpState::Idle,
        }),
        Action::Keepalive => MrtBody::Message(Bgp4mpMessage {
            session: session(peer),
            message: BgpMessage::Keepalive,
        }),
    };
    MrtRecord::new(SimTime(ts), body)
}

/// A deterministic, order-insensitive rendering of a [`ScanResult`],
/// including the tolerant-reader statistics.
fn fingerprint(result: &ScanResult) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "intervals={:?}", result.intervals);
    let _ = writeln!(out, "peers={:?}", result.peers);
    let _ = writeln!(out, "stats={:?}", result.read_stats);
    for (i, histories) in result.histories.iter().enumerate() {
        let mut keys: Vec<&PeerId> = histories.keys().collect();
        keys.sort();
        for key in keys {
            let _ = writeln!(out, "history[{i}][{key}]={:?}", histories[key]);
        }
    }
    let mut downs: Vec<(&PeerId, &Vec<SimTime>)> = result.session_downs.iter().collect();
    downs.sort_by_key(|&(peer, _)| peer);
    for (peer, times) in downs {
        let _ = writeln!(out, "downs[{peer}]={times:?}");
    }
    out
}

type ArchiveSpec = (
    Vec<(u64, u8, usize, Action)>,
    Vec<(prop::sample::Index, u8)>,
    Option<prop::sample::Index>,
    Vec<u8>,
);

/// Records (possibly unsorted), byte flips, an optional truncation point,
/// and trailing garbage — together they produce archives interleaving
/// well-formed, malformed, and truncated records.
fn arb_archive() -> impl Strategy<Value = ArchiveSpec> {
    (
        proptest::collection::vec(
            (0u64..40_000, 0u8..3, 0usize..PREFIXES.len(), arb_action()),
            0..24,
        ),
        proptest::collection::vec((any::<prop::sample::Index>(), any::<u8>()), 0..8),
        proptest::option::of(any::<prop::sample::Index>()),
        proptest::collection::vec(any::<u8>(), 0..32),
    )
}

fn assemble(spec: ArchiveSpec) -> Bytes {
    let (actions, flips, truncate, garbage) = spec;
    let mut records: Vec<MrtRecord> = actions
        .iter()
        .map(|(ts, peer, prefix_idx, action)| build_record(*ts, *peer, *prefix_idx, action))
        .collect();
    records.sort_by_key(|r| r.timestamp);
    let mut writer = MrtWriter::new();
    for record in &records {
        writer.push(record);
    }
    let mut bytes = writer.finish().to_vec();
    for (idx, val) in flips {
        if !bytes.is_empty() {
            let i = idx.index(bytes.len());
            bytes[i] = val;
        }
    }
    if let Some(at) = truncate {
        let keep = at.index(bytes.len() + 1);
        bytes.truncate(keep);
    }
    bytes.extend(garbage);
    Bytes::from(bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The lazy-prefilter scan produces a `ScanResult` identical to the
    /// eager decode-everything scan — histories, peers, session downs,
    /// and `read_stats` — over corrupted archives.
    #[test]
    fn indexed_scan_matches_eager(spec in arb_archive()) {
        let bytes = assemble(spec);
        let intervals = intervals();
        let eager = scan(bytes.clone(), &intervals, WINDOW);
        let index = FrameIndex::build(bytes);
        let indexed = scan_indexed(&index, &intervals, WINDOW, 1);
        prop_assert_eq!(fingerprint(&eager), fingerprint(&indexed));
    }

    /// The chunk-parallel merge is byte-identical at every worker count.
    #[test]
    fn indexed_scan_deterministic_across_jobs(spec in arb_archive()) {
        let bytes = assemble(spec);
        let intervals = intervals();
        let index = FrameIndex::build(bytes);
        let reference = fingerprint(&scan_indexed(&index, &intervals, WINDOW, 1));
        for jobs in [2, 8] {
            let sharded = scan_indexed(&index, &intervals, WINDOW, jobs);
            prop_assert_eq!(
                fingerprint(&sharded),
                reference.clone(),
                "jobs={} diverged",
                jobs
            );
        }
    }
}
