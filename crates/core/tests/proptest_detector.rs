//! Property tests for the detection pipeline: synthesize MRT archives
//! with *known* per-(interval, peer) ground truth, then assert the
//! scan + classify pipeline recovers exactly that truth.

use bgpz_core::realtime::{RealtimeDetector, RealtimeEvent};
use bgpz_core::{classify, scan, BeaconInterval, ClassifyOptions};
use bgpz_mrt::bgp4mp::SessionHeader;
use bgpz_mrt::{Bgp4mpMessage, MrtBody, MrtReader, MrtRecord, MrtWriter};
use bgpz_types::attrs::{Aggregator, MpReach, MpUnreach, NextHop};
use bgpz_types::time::HOUR;
use bgpz_types::{Afi, AsPath, Asn, BgpMessage, BgpUpdate, PathAttributes, Prefix, SimTime};
use proptest::prelude::*;
use std::collections::BTreeSet;
use std::net::IpAddr;

/// What one (interval, peer) does in the synthesized archive.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Behavior {
    /// Announce + timely withdraw.
    Clean,
    /// Announce, never withdraw (zombie at every threshold).
    Stuck,
    /// Announce, withdraw `minutes` after the origin's withdrawal.
    SlowWithdraw(u16),
    /// Nothing at all (peer never saw the beacon).
    Silent,
}

fn arb_behavior() -> impl Strategy<Value = Behavior> {
    prop_oneof![
        4 => Just(Behavior::Clean),
        2 => Just(Behavior::Stuck),
        2 => (1u16..170).prop_map(Behavior::SlowWithdraw),
        1 => Just(Behavior::Silent),
    ]
}

fn peer_addr(p: usize) -> IpAddr {
    format!("2001:db8:90::{}", p + 1).parse().unwrap()
}

fn session(p: usize) -> SessionHeader {
    SessionHeader {
        peer_as: Asn(64_000 + p as u32),
        local_as: Asn(12_654),
        ifindex: 0,
        peer_ip: peer_addr(p),
        local_ip: "2001:7f8:24::82".parse().unwrap(),
    }
}

fn prefix() -> Prefix {
    "2a0d:3dc1:1::/48".parse().unwrap()
}

fn announce_record(p: usize, t: SimTime, clock_base: SimTime) -> MrtRecord {
    let mut attrs =
        PathAttributes::announcement(AsPath::from_sequence([64_000 + p as u32, 210_312]));
    attrs.aggregator = Some(Aggregator {
        asn: Asn(12_654),
        addr: bgpz_beacon::aggregator_clock(clock_base),
    });
    attrs.mp_reach = Some(MpReach {
        afi: Afi::Ipv6,
        safi: 1,
        next_hop: NextHop::V6 {
            global: "2001:db8::1".parse().unwrap(),
            link_local: None,
        },
        nlri: vec![prefix()],
    });
    MrtRecord::new(
        t,
        MrtBody::Message(Bgp4mpMessage {
            session: session(p),
            message: BgpMessage::Update(BgpUpdate {
                attrs,
                ..BgpUpdate::default()
            }),
        }),
    )
}

fn withdraw_record(p: usize, t: SimTime) -> MrtRecord {
    MrtRecord::new(
        t,
        MrtBody::Message(Bgp4mpMessage {
            session: session(p),
            message: BgpMessage::Update(BgpUpdate {
                attrs: PathAttributes {
                    mp_unreach: Some(MpUnreach {
                        afi: Afi::Ipv6,
                        safi: 1,
                        withdrawn: vec![prefix()],
                    }),
                    ..PathAttributes::default()
                },
                ..BgpUpdate::default()
            }),
        }),
    )
}

/// Builds the archive and the expected zombie set at `threshold_minutes`.
fn build(
    behaviors: &[Vec<Behavior>], // [interval][peer]
    threshold_minutes: u64,
) -> (bytes::Bytes, Vec<BeaconInterval>, BTreeSet<(usize, usize)>) {
    let base = SimTime::from_ymd_hms(2018, 7, 19, 0, 0, 0);
    let mut records: Vec<MrtRecord> = Vec::new();
    let mut intervals = Vec::new();
    let mut expected = BTreeSet::new();
    for (i, row) in behaviors.iter().enumerate() {
        // 8 h spacing keeps every slow withdrawal (≤ 170 min) well inside
        // its own interval window.
        let start = base + (i as u64) * 8 * HOUR;
        let withdraw_at = start + 2 * HOUR;
        intervals.push(BeaconInterval {
            prefix: prefix(),
            start,
            withdraw_at,
        });
        for (p, behavior) in row.iter().enumerate() {
            match behavior {
                Behavior::Silent => {}
                Behavior::Clean => {
                    records.push(announce_record(p, start + 5, start));
                    records.push(withdraw_record(p, withdraw_at + 30));
                }
                Behavior::Stuck => {
                    records.push(announce_record(p, start + 5, start));
                    expected.insert((i, p));
                }
                Behavior::SlowWithdraw(minutes) => {
                    records.push(announce_record(p, start + 5, start));
                    records.push(withdraw_record(p, withdraw_at + (*minutes as u64) * 60));
                    if (*minutes as u64) > threshold_minutes {
                        expected.insert((i, p));
                    }
                }
            }
        }
    }
    records.sort_by_key(|r| r.timestamp);
    let mut writer = MrtWriter::new();
    for record in &records {
        writer.push(record);
    }
    (writer.finish(), intervals, expected)
}

fn detected_set(
    archive: bytes::Bytes,
    intervals: &[BeaconInterval],
    threshold_minutes: u64,
) -> BTreeSet<(usize, usize)> {
    let result = scan(archive, intervals, 4 * HOUR);
    let report = classify(
        &result,
        &ClassifyOptions {
            threshold: threshold_minutes * 60,
            ..ClassifyOptions::default()
        },
    );
    report
        .outbreaks
        .iter()
        .flat_map(|o| {
            o.routes.iter().map(move |r| {
                let peer_index = match r.peer.addr {
                    IpAddr::V6(a) => (a.segments()[7] - 1) as usize,
                    _ => unreachable!("all peers are v6 here"),
                };
                (o.interval_index, peer_index)
            })
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn classify_recovers_exact_ground_truth(
        behaviors in proptest::collection::vec(
            proptest::collection::vec(arb_behavior(), 1..6),
            1..5,
        ),
        threshold in 90u64..=180,
    ) {
        // Equalize peer counts across intervals.
        let width = behaviors.iter().map(Vec::len).max().unwrap();
        let behaviors: Vec<Vec<Behavior>> = behaviors
            .into_iter()
            .map(|mut row| {
                row.resize(width, Behavior::Silent);
                row
            })
            .collect();
        let (archive, intervals, expected) = build(&behaviors, threshold);
        let detected = detected_set(archive, &intervals, threshold);
        prop_assert_eq!(detected, expected);
    }

    #[test]
    fn higher_threshold_never_adds_zombies_without_resurrections(
        behaviors in proptest::collection::vec(
            proptest::collection::vec(arb_behavior(), 1..5),
            1..4,
        ),
    ) {
        // The synthesized behaviors never re-announce after withdrawing,
        // so the zombie set must shrink monotonically with the threshold.
        let width = behaviors.iter().map(Vec::len).max().unwrap();
        let behaviors: Vec<Vec<Behavior>> = behaviors
            .into_iter()
            .map(|mut row| {
                row.resize(width, Behavior::Silent);
                row
            })
            .collect();
        let (archive, intervals, _) = build(&behaviors, 0);
        let mut previous: Option<BTreeSet<(usize, usize)>> = None;
        for threshold in [90u64, 120, 150, 180] {
            let detected = detected_set(archive.clone(), &intervals, threshold);
            if let Some(prev) = &previous {
                prop_assert!(
                    detected.is_subset(prev),
                    "zombies grew from {prev:?} to {detected:?} at {threshold}"
                );
            }
            previous = Some(detected);
        }
    }

    #[test]
    fn streaming_agrees_with_batch_on_synthesized_archives(
        behaviors in proptest::collection::vec(
            proptest::collection::vec(arb_behavior(), 1..5),
            1..4,
        ),
    ) {
        let width = behaviors.iter().map(Vec::len).max().unwrap();
        let behaviors: Vec<Vec<Behavior>> = behaviors
            .into_iter()
            .map(|mut row| {
                row.resize(width, Behavior::Silent);
                row
            })
            .collect();
        let (archive, intervals, _) = build(&behaviors, 90);
        let batch = detected_set(archive.clone(), &intervals, 90);

        let mut detector = RealtimeDetector::new(ClassifyOptions::default());
        detector.arm_intervals(intervals.iter().copied());
        let mut streaming = BTreeSet::new();
        let mut reader = MrtReader::new(archive);
        let mut last = SimTime::ZERO;
        let drain = |events: Vec<RealtimeEvent>, set: &mut BTreeSet<(usize, usize)>| {
            for event in events {
                if let RealtimeEvent::ZombieDetected { interval_start, peer, .. } = event {
                    let idx = intervals
                        .iter()
                        .position(|iv| iv.start == interval_start)
                        .expect("known interval");
                    let p = match peer.addr {
                        IpAddr::V6(a) => (a.segments()[7] - 1) as usize,
                        _ => unreachable!(),
                    };
                    set.insert((idx, p));
                }
            }
        };
        while let Some(record) = reader.next_record() {
            last = record.timestamp;
            let alerts = detector.push(&record);
            drain(alerts, &mut streaming);
        }
        let alerts = detector.advance(last + 24 * HOUR);
        drain(alerts, &mut streaming);
        prop_assert_eq!(streaming, batch);
    }
}
