//! The streaming detector must agree with the batch pipeline when fed the
//! same records — zombie-for-zombie.

use bgpz_beacon::{apply_schedule, RisBeaconConfig, RisBeacons};
use bgpz_core::realtime::{RealtimeDetector, RealtimeEvent};
use bgpz_core::{classify, intervals_from_schedule, scan, ClassifyOptions};
use bgpz_mrt::MrtReader;
use bgpz_netsim::{EpisodeEnd, FaultPlan, Simulator, Tier, Topology};
use bgpz_ris::{Collector, RisConfig, RisNetwork, RisPeerSpec};
use bgpz_types::time::HOUR;
use bgpz_types::{Asn, Prefix, SimTime};
use std::collections::BTreeSet;

const ORIGIN: Asn = Asn(12_654);

fn run_world(plan: FaultPlan) -> (bgpz_ris::RisArchive, bgpz_beacon::BeaconSchedule) {
    let topo = Topology::builder()
        .node(Asn(100), Tier::Tier1)
        .node(Asn(101), Tier::Tier1)
        .node(Asn(200), Tier::Tier2)
        .node(Asn(201), Tier::Tier2)
        .node(ORIGIN, Tier::Stub)
        .peering(Asn(100), Asn(101))
        .provider_customer(Asn(100), Asn(200))
        .provider_customer(Asn(101), Asn(201))
        .provider_customer(Asn(200), ORIGIN)
        .provider_customer(Asn(201), ORIGIN)
        .build();
    let config = RisConfig {
        collectors: vec![Collector::numbered(0)],
        peers: vec![
            RisPeerSpec::healthy(Asn(100), "2001:db8:90::100".parse().unwrap(), 0),
            RisPeerSpec::healthy(Asn(101), "2001:db8:90::101".parse().unwrap(), 0),
        ],
        rib_period: 8 * HOUR,
    };
    let beacons = RisBeacons::new(RisBeaconConfig::historical(ORIGIN));
    let start = SimTime::from_ymd_hms(2018, 7, 19, 0, 0, 0);
    let end = SimTime::from_ymd_hms(2018, 7, 21, 0, 0, 0);
    let schedule = beacons.schedule(start, end);
    let mut sim = Simulator::new(topo, &plan, 1);
    let mut ris = RisNetwork::new(config, start, 2);
    ris.attach(&mut sim);
    apply_schedule(&mut sim, &schedule);
    ris.advance(&mut sim, end + 4 * HOUR);
    (ris.finish(), schedule)
}

/// (prefix, interval start, peer address) triples.
type Keys = BTreeSet<(Prefix, SimTime, String)>;

fn batch_keys(archive: &bgpz_ris::RisArchive, schedule: &bgpz_beacon::BeaconSchedule) -> Keys {
    let intervals = intervals_from_schedule(schedule);
    let result = scan(archive.updates.clone(), &intervals, 4 * HOUR);
    let report = classify(&result, &ClassifyOptions::default());
    report
        .outbreaks
        .iter()
        .flat_map(|o| {
            o.routes
                .iter()
                .map(move |r| (o.interval.prefix, o.interval.start, r.peer.addr.to_string()))
        })
        .collect()
}

fn streaming_keys(archive: &bgpz_ris::RisArchive, schedule: &bgpz_beacon::BeaconSchedule) -> Keys {
    let mut detector = RealtimeDetector::new(ClassifyOptions::default());
    detector.arm_intervals(intervals_from_schedule(schedule));
    let mut keys = Keys::new();
    let mut reader = MrtReader::new(archive.updates.clone());
    let mut last = SimTime::ZERO;
    while let Some(record) = reader.next_record() {
        last = record.timestamp;
        for event in detector.push(&record) {
            if let RealtimeEvent::ZombieDetected {
                prefix,
                interval_start,
                peer,
                ..
            } = event
            {
                keys.insert((prefix, interval_start, peer.addr.to_string()));
            }
        }
    }
    // Drain deadlines past the last record.
    for event in detector.advance(last + 24 * HOUR) {
        if let RealtimeEvent::ZombieDetected {
            prefix,
            interval_start,
            peer,
            ..
        } = event
        {
            keys.insert((prefix, interval_start, peer.addr.to_string()));
        }
    }
    keys
}

#[test]
fn streaming_matches_batch_on_clean_world() {
    let (archive, schedule) = run_world(FaultPlan::none());
    let batch = batch_keys(&archive, &schedule);
    let streaming = streaming_keys(&archive, &schedule);
    assert!(batch.is_empty());
    assert_eq!(batch, streaming);
}

#[test]
fn streaming_matches_batch_on_zombie_world() {
    let plan = FaultPlan::none().freeze(
        Asn(200),
        Asn(100),
        SimTime::from_ymd_hms(2018, 7, 19, 0, 30, 0),
        SimTime::from_ymd_hms(2018, 7, 22, 0, 0, 0),
        EpisodeEnd::Resume,
    );
    let (archive, schedule) = run_world(plan);
    let batch = batch_keys(&archive, &schedule);
    let streaming = streaming_keys(&archive, &schedule);
    assert!(!batch.is_empty(), "the freeze must produce zombies");
    assert_eq!(batch, streaming, "streaming and batch must agree");
}

#[test]
fn streaming_detects_live_without_full_archive() {
    // Feed only the first interval's records: the detector fires as soon
    // as its clock passes the deadline, no batch post-processing needed.
    let plan = FaultPlan::none().freeze(
        Asn(200),
        Asn(100),
        SimTime::from_ymd_hms(2018, 7, 19, 0, 30, 0),
        SimTime::from_ymd_hms(2018, 7, 22, 0, 0, 0),
        EpisodeEnd::Resume,
    );
    let (archive, schedule) = run_world(plan);
    let mut detector = RealtimeDetector::new(ClassifyOptions::default());
    detector.arm_intervals(intervals_from_schedule(&schedule));
    let cutoff = SimTime::from_ymd_hms(2018, 7, 19, 4, 0, 0);
    let mut reader = MrtReader::new(archive.updates.clone());
    let mut alerts = Vec::new();
    while let Some(record) = reader.next_record() {
        if record.timestamp > cutoff {
            break;
        }
        alerts.extend(detector.push(&record));
    }
    alerts.extend(detector.advance(cutoff));
    let zombies: Vec<_> = alerts
        .iter()
        .filter(|a| matches!(a, RealtimeEvent::ZombieDetected { .. }))
        .collect();
    assert!(
        !zombies.is_empty(),
        "the first interval's zombie must be detected before the archive ends"
    );
    for event in &zombies {
        if let RealtimeEvent::ZombieDetected { detected_at, .. } = event {
            assert!(*detected_at <= cutoff);
        }
    }
}
