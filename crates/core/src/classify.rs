//! Pass 2: zombie classification with the paper's revisions.

use crate::interval::BeaconInterval;
use crate::scan::{normal_path, state_at, PeerId, ScanResult};
use bgpz_beacon::decode_aggregator_clock;
use bgpz_types::{AsPath, SimTime};
use std::collections::HashSet;
use std::net::IpAddr;
use std::sync::Arc;

/// Classification knobs. Defaults follow the paper: 90-minute threshold,
/// Aggregator filtering on, no peers excluded.
#[derive(Debug, Clone)]
pub struct ClassifyOptions {
    /// Seconds after the withdrawal at which stuck routes are zombies.
    pub threshold: u64,
    /// Decode the Aggregator BGP clock and drop stuck routes whose
    /// announcement predates the interval (the double-counting fix).
    pub aggregator_filter: bool,
    /// Peer routers to ignore entirely (noisy peers).
    pub excluded_peers: Vec<IpAddr>,
    /// Honor STATE messages: a session drop after a route's last
    /// announcement removes it (paper §3.1 step 1). Turning this off is
    /// the ablation showing how many false zombies session flaps cause.
    pub honor_state_messages: bool,
}

impl Default for ClassifyOptions {
    fn default() -> ClassifyOptions {
        ClassifyOptions {
            threshold: 90 * 60,
            aggregator_filter: true,
            excluded_peers: Vec::new(),
            honor_state_messages: true,
        }
    }
}

/// One stuck route.
#[derive(Debug, Clone)]
pub struct ZombieRoute {
    /// The peer router holding it.
    pub peer: PeerId,
    /// The stuck AS path (after any path hunting).
    pub zombie_path: Arc<AsPath>,
    /// The path the peer held just before the withdrawal, if any.
    pub normal_path: Option<Arc<AsPath>>,
    /// Decoded Aggregator clock (absolute announcement time), if carried.
    pub aggregator_time: Option<SimTime>,
    /// True if the Aggregator clock shows the route belongs to an earlier
    /// interval — counting it again would be double counting.
    pub is_duplicate: bool,
}

/// All zombie routes of one (prefix, interval).
#[derive(Debug, Clone)]
pub struct Outbreak {
    /// Index into [`ScanResult::intervals`].
    pub interval_index: usize,
    /// The interval itself (copied for convenience).
    pub interval: BeaconInterval,
    /// The stuck routes (excluded peers already removed).
    pub routes: Vec<ZombieRoute>,
}

impl Outbreak {
    /// Routes that are fresh (not double-counted).
    pub fn fresh_routes(&self) -> impl Iterator<Item = &ZombieRoute> {
        self.routes.iter().filter(|r| !r.is_duplicate)
    }

    /// True if the outbreak survives Aggregator filtering.
    pub fn is_fresh(&self) -> bool {
        self.routes.iter().any(|r| !r.is_duplicate)
    }
}

/// The classification result.
#[derive(Debug, Clone, Default)]
pub struct ZombieReport {
    /// Outbreaks (one per (prefix, interval) with ≥ 1 stuck route),
    /// possibly including duplicate-only outbreaks when
    /// `aggregator_filter` is off.
    pub outbreaks: Vec<Outbreak>,
    /// Total announcements classified (the percentage denominator).
    pub announcements: usize,
    /// The threshold used, in seconds.
    pub threshold: u64,
}

impl ZombieReport {
    /// Number of outbreaks.
    pub fn outbreak_count(&self) -> usize {
        self.outbreaks.len()
    }

    /// Total zombie routes across outbreaks.
    pub fn route_count(&self) -> usize {
        self.outbreaks.iter().map(|o| o.routes.len()).sum()
    }

    /// Outbreak count restricted to IPv4 / IPv6 prefixes.
    pub fn outbreak_count_by_family(&self) -> (usize, usize) {
        let v4 = self
            .outbreaks
            .iter()
            .filter(|o| matches!(o.interval.prefix, bgpz_types::Prefix::V4(_)))
            .count();
        (v4, self.outbreaks.len() - v4)
    }

    /// Fraction of announcements that led to an outbreak.
    pub fn outbreak_fraction(&self) -> f64 {
        if self.announcements == 0 {
            0.0
        } else {
            self.outbreaks.len() as f64 / self.announcements as f64
        }
    }

    /// The set of (interval index, peer) zombie-route keys — used for the
    /// Table 3 set-difference comparison between methodologies.
    pub fn route_keys(&self) -> HashSet<(usize, PeerId)> {
        self.outbreaks
            .iter()
            .flat_map(|o| o.routes.iter().map(move |r| (o.interval_index, r.peer)))
            .collect()
    }

    /// The set of outbreak keys (interval indices).
    pub fn outbreak_keys(&self) -> HashSet<usize> {
        self.outbreaks.iter().map(|o| o.interval_index).collect()
    }
}

/// Classifies a scan: finds every stuck route at `withdrawal + threshold`,
/// decodes the Aggregator clock, marks duplicates, drops excluded peers,
/// and groups the rest into outbreaks.
pub fn classify(result: &ScanResult, options: &ClassifyOptions) -> ZombieReport {
    let mut report = ZombieReport {
        announcements: result.intervals.len(),
        threshold: options.threshold,
        ..ZombieReport::default()
    };
    let excluded: HashSet<IpAddr> = options.excluded_peers.iter().copied().collect();
    let empty: Vec<SimTime> = Vec::new();

    let mut duplicates_filtered = 0u64;
    for (idx, interval) in result.intervals.iter().enumerate() {
        let check = interval.check_time(options.threshold);
        let mut routes = Vec::new();
        let mut peers: Vec<&PeerId> = result.histories[idx].keys().collect();
        peers.sort();
        for peer in peers {
            if excluded.contains(&peer.addr) {
                continue;
            }
            let history = &result.histories[idx][peer];
            let downs = if options.honor_state_messages {
                result.session_downs.get(peer).unwrap_or(&empty)
            } else {
                &empty
            };
            let Some((t_announce, path, aggregator)) = state_at(history, downs, interval, check)
            else {
                continue;
            };
            let aggregator_time =
                aggregator.and_then(|addr| decode_aggregator_clock(addr, t_announce));
            let is_duplicate = aggregator_time.is_some_and(|t| t < interval.start);
            routes.push(ZombieRoute {
                peer: *peer,
                zombie_path: path,
                normal_path: normal_path(history, interval),
                aggregator_time,
                is_duplicate,
            });
        }
        if options.aggregator_filter {
            let before = routes.len();
            routes.retain(|r| !r.is_duplicate);
            duplicates_filtered += (before - routes.len()) as u64;
        }
        if !routes.is_empty() {
            report.outbreaks.push(Outbreak {
                interval_index: idx,
                interval: *interval,
                routes,
            });
        }
    }
    // Per-threshold counters: the threshold is part of the key so a sweep
    // over thresholds lands each classification in its own bucket.
    let t = options.threshold;
    bgpz_obs::metrics::counter(
        "core::classify",
        &format!("outbreaks@{t}s"),
        report.outbreak_count() as u64,
    );
    bgpz_obs::metrics::counter(
        "core::classify",
        &format!("zombie_routes@{t}s"),
        report.route_count() as u64,
    );
    bgpz_obs::metrics::counter(
        "core::classify",
        &format!("duplicates_filtered@{t}s"),
        duplicates_filtered,
    );
    bgpz_obs::debug!(
        target: "core::classify",
        "threshold {t}s: {} outbreaks, {} zombie routes, {duplicates_filtered} duplicates filtered",
        report.outbreak_count(),
        report.route_count()
    );
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scan::{History, Observation};
    use bgpz_beacon::aggregator_clock;
    use bgpz_types::{Asn, Prefix};
    use std::collections::HashMap;

    fn peer(n: u8) -> PeerId {
        PeerId {
            addr: format!("2001:db8::{n}").parse().unwrap(),
            asn: Asn(64_000 + n as u32),
        }
    }

    fn path() -> Arc<AsPath> {
        Arc::new(AsPath::from_sequence([64_001, 25_091, 8_298, 210_312]))
    }

    /// Builds a one-interval scan with the given histories.
    fn scan_with(histories: Vec<(PeerId, History)>, start: SimTime) -> ScanResult {
        let interval = BeaconInterval {
            prefix: "2a0d:3dc1:1::/48".parse::<Prefix>().unwrap(),
            start,
            withdraw_at: start + 7_200,
        };
        let mut map = HashMap::new();
        for (p, h) in histories {
            map.insert(p, h);
        }
        ScanResult {
            intervals: vec![interval],
            peers: map.keys().copied().collect(),
            histories: vec![map],
            session_downs: HashMap::new(),
            read_stats: Default::default(),
        }
    }

    #[test]
    fn stuck_route_becomes_outbreak() {
        let start = SimTime::from_ymd_hms(2018, 7, 19, 0, 0, 0);
        let scan = scan_with(
            vec![
                (
                    peer(1),
                    vec![(
                        start + 10,
                        Observation::Announce {
                            path: path(),
                            aggregator: Some(aggregator_clock(start)),
                        },
                    )],
                ),
                (
                    peer(2),
                    vec![
                        (
                            start + 12,
                            Observation::Announce {
                                path: path(),
                                aggregator: Some(aggregator_clock(start)),
                            },
                        ),
                        (start + 7_250, Observation::Withdraw),
                    ],
                ),
            ],
            start,
        );
        let report = classify(&scan, &ClassifyOptions::default());
        assert_eq!(report.outbreak_count(), 1);
        assert_eq!(report.route_count(), 1);
        assert_eq!(report.outbreaks[0].routes[0].peer, peer(1));
        assert!(!report.outbreaks[0].routes[0].is_duplicate);
        assert_eq!(report.outbreak_fraction(), 1.0);
    }

    #[test]
    fn duplicate_detected_and_filtered() {
        // Stuck announce whose Aggregator clock points 2 intervals back.
        let start = SimTime::from_ymd_hms(2018, 7, 19, 8, 0, 0);
        let old = SimTime::from_ymd_hms(2018, 7, 19, 0, 0, 0);
        let scan = scan_with(
            vec![(
                peer(1),
                vec![(
                    start + 10,
                    Observation::Announce {
                        path: path(),
                        aggregator: Some(aggregator_clock(old)),
                    },
                )],
            )],
            start,
        );
        // With the filter: no outbreak.
        let filtered = classify(&scan, &ClassifyOptions::default());
        assert_eq!(filtered.outbreak_count(), 0);
        // Without: one (this is the overestimation the paper quantifies).
        let unfiltered = classify(
            &scan,
            &ClassifyOptions {
                aggregator_filter: false,
                ..ClassifyOptions::default()
            },
        );
        assert_eq!(unfiltered.outbreak_count(), 1);
        assert!(unfiltered.outbreaks[0].routes[0].is_duplicate);
        assert_eq!(unfiltered.outbreaks[0].routes[0].aggregator_time, Some(old));
        assert!(!unfiltered.outbreaks[0].is_fresh());
    }

    #[test]
    fn excluded_peer_is_ignored() {
        let start = SimTime::from_ymd_hms(2018, 7, 19, 0, 0, 0);
        let scan = scan_with(
            vec![(
                peer(1),
                vec![(
                    start + 10,
                    Observation::Announce {
                        path: path(),
                        aggregator: None,
                    },
                )],
            )],
            start,
        );
        let report = classify(
            &scan,
            &ClassifyOptions {
                excluded_peers: vec![peer(1).addr],
                ..ClassifyOptions::default()
            },
        );
        assert_eq!(report.outbreak_count(), 0);
    }

    #[test]
    fn threshold_separates_slow_withdrawals_from_zombies() {
        let start = SimTime::from_ymd_hms(2018, 7, 19, 0, 0, 0);
        // Withdrawal arrives 80 minutes after the origin's instant — slow
        // but not a zombie at the 90-minute threshold.
        let scan = scan_with(
            vec![(
                peer(1),
                vec![
                    (
                        start + 10,
                        Observation::Announce {
                            path: path(),
                            aggregator: None,
                        },
                    ),
                    (start + 7_200 + 80 * 60, Observation::Withdraw),
                ],
            )],
            start,
        );
        let at_90 = classify(&scan, &ClassifyOptions::default());
        assert_eq!(at_90.outbreak_count(), 0);
        let at_60 = classify(
            &scan,
            &ClassifyOptions {
                threshold: 60 * 60,
                ..ClassifyOptions::default()
            },
        );
        assert_eq!(at_60.outbreak_count(), 1);
    }

    #[test]
    fn route_and_outbreak_keys() {
        let start = SimTime::from_ymd_hms(2018, 7, 19, 0, 0, 0);
        let scan = scan_with(
            vec![(
                peer(1),
                vec![(
                    start + 10,
                    Observation::Announce {
                        path: path(),
                        aggregator: None,
                    },
                )],
            )],
            start,
        );
        let report = classify(&scan, &ClassifyOptions::default());
        assert!(report.route_keys().contains(&(0, peer(1))));
        assert!(report.outbreak_keys().contains(&0));
        let (v4, v6) = report.outbreak_count_by_family();
        assert_eq!((v4, v6), (0, 1));
    }

    #[test]
    fn missing_aggregator_counts_as_fresh() {
        // The paper's own beacons set no Aggregator; nothing to filter on.
        let start = SimTime::from_ymd_hms(2024, 6, 10, 11, 30, 0);
        let scan = scan_with(
            vec![(
                peer(1),
                vec![(
                    start + 10,
                    Observation::Announce {
                        path: path(),
                        aggregator: None,
                    },
                )],
            )],
            start,
        );
        let report = classify(&scan, &ClassifyOptions::default());
        assert_eq!(report.outbreak_count(), 1);
        assert!(report.outbreaks[0].routes[0].aggregator_time.is_none());
    }
}
