//! # bgpz-core
//!
//! The paper's primary contribution: accurate BGP zombie detection from
//! archived RIS raw data, plus the analyses built on it.
//!
//! Pipeline (paper §3.1 and §5):
//!
//! 1. [`scan`] — reconstruct the per-`(peer router, prefix)` state from the
//!    MRT update stream at message granularity, one **beacon interval** at
//!    a time with *no prior knowledge* (stale RIB entries from earlier
//!    intervals cannot leak in), honouring STATE messages (a session drop
//!    removes every route of that peer). [`scan_sharded`] frames the
//!    archive once into a zero-copy index, prefilters frames on raw bytes
//!    (decoding only records that mention a beacon prefix), partitions the
//!    frame list over worker threads, and merges deterministically — same
//!    input ⇒ byte-identical [`ScanResult`] at any thread count.
//!    [`scan_indexed`] accepts a prebuilt `FrameIndex` so several scans of
//!    one archive pay the framing pass once.
//! 2. [`classify`] — at `withdrawal + threshold` (90 minutes by default,
//!    like all prior work), a peer whose last message for the prefix is an
//!    announcement holds a **zombie route**; all zombie routes of one
//!    `(prefix, interval)` form a **zombie outbreak**. The **Aggregator
//!    BGP clock** carried by RIS beacons is decoded, and a stuck route
//!    whose clock predates the interval is a **duplicate** — counting it
//!    again is the double-counting bug this paper fixes.
//! 3. [`noisy`] — per-peer zombie likelihood and outlier detection (the
//!    replication's AS16347; the beacon study's AS211380/AS211509).
//! 4. [`lifespan`] — scan 8-hourly RIB dumps to measure how long each
//!    zombie outbreak stays visible, including **resurrections**: the
//!    route vanishes from all peers and reappears later with no new beacon
//!    announcement (paper §5.1, Fig. 4).
//! 5. [`rootcause`] — palm-tree inference: the zombie AS paths of an
//!    outbreak share an origin-side chain; the last AS of that chain is
//!    the likely culprit (paper §5.2).

#![forbid(unsafe_code)]

pub mod classify;
pub mod interval;
pub mod lifespan;
pub mod noisy;
pub mod paths;
pub mod realtime;
pub mod rootcause;
pub mod scan;
pub mod sweep;

pub use classify::{classify, ClassifyOptions, Outbreak, ZombieReport, ZombieRoute};
pub use interval::{intervals_from_schedule, BeaconInterval};
pub use lifespan::{track_lifespans, OutbreakLifespan, Resurrection, VisibilitySpell};
pub use noisy::{
    detect_noisy_peers, pair_likelihoods, peer_likelihoods, NoisyPeerReport, PairLikelihood,
    PeerLikelihood,
};
pub use paths::{path_length_samples, PathLengthSamples};
pub use realtime::{RealtimeDetector, RealtimeEvent};
pub use rootcause::{infer_root_cause, RootCause};
pub use scan::{record_scan_metrics, scan, scan_indexed, scan_sharded, PeerId, ScanResult};
pub use sweep::{threshold_sweep, SweepPoint};
