//! Real-time zombie detection (the paper's §6 "future work", built).
//!
//! The batch pipeline ([`crate::scan`] → [`crate::classify`]) needs the
//! whole archive up front. [`RealtimeDetector`] instead consumes MRT
//! records *as they arrive* — e.g. from a RIS Live-style feed — keeping
//! only the latest observation per `(interval, peer)`, and emits a
//! [`RealtimeEvent`] stream: [`RealtimeEvent::ZombieDetected`] the moment
//! a beacon interval's check deadline passes with a stuck route,
//! [`RealtimeEvent::Resurrected`] when a withdrawn-and-clean prefix is
//! announced again after its deadline with no new beacon cycle (the
//! paper's §5.1 phenomenon, detected live), and — when a staleness window
//! is armed — [`RealtimeEvent::PeerStale`] for feeds that have gone dark.
//!
//! Fed the same records, it raises exactly the zombie routes the batch
//! classifier reports (asserted by the equivalence tests below). The
//! detector also tolerates imperfect feeds: a record older than the
//! latest observation for its `(interval, peer)` slot never clobbers
//! newer state, and exact duplicates are idempotent — the properties the
//! `bgpz serve` ingest path leans on when collector streams interleave.

use crate::classify::ClassifyOptions;
use crate::interval::BeaconInterval;
use crate::scan::PeerId;
use bgpz_beacon::decode_aggregator_clock;
use bgpz_mrt::{BgpState, FrameIndex, FrameKind, MrtBody, MrtRecord};
use bgpz_types::{AsPath, BgpMessage, MessageKind, Prefix, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// A live detection event.
///
/// Every variant carries its detection timestamp, and the route-level
/// variants carry the zombie's lifespan-so-far (seconds since the missed
/// withdrawal), so consumers — the `bgpz serve` daemon, the
/// `realtime_monitor` example — never recompute either from interval
/// bookkeeping.
#[derive(Debug, Clone)]
pub enum RealtimeEvent {
    /// A stuck route at the interval's check deadline.
    ZombieDetected {
        /// The beacon prefix.
        prefix: Prefix,
        /// The interval's announcement instant.
        interval_start: SimTime,
        /// The withdrawal the route failed to honor.
        withdrawn_at: SimTime,
        /// The peer holding the stuck route.
        peer: PeerId,
        /// The stuck AS path.
        path: Arc<AsPath>,
        /// Decoded Aggregator clock, if the route carried one.
        aggregator_time: Option<SimTime>,
        /// True if the clock shows the route predates the interval
        /// (a duplicate under the paper's revised methodology).
        is_duplicate: bool,
        /// Seconds the route has been stuck at detection
        /// (`detected_at - withdrawn_at`).
        lifespan_so_far: u64,
        /// When the event fired (the check deadline).
        detected_at: SimTime,
    },
    /// A prefix that was clean at its deadline got announced again with no
    /// new beacon cycle — a live resurrection.
    Resurrected {
        /// The beacon prefix.
        prefix: Prefix,
        /// The interval whose deadline had already passed.
        interval_start: SimTime,
        /// The withdrawal the resurrected route ignores.
        withdrawn_at: SimTime,
        /// The peer that re-learned the route.
        peer: PeerId,
        /// The resurrected AS path.
        path: Arc<AsPath>,
        /// Seconds since the withdrawal when the route came back.
        lifespan_so_far: u64,
        /// When the late announcement arrived.
        detected_at: SimTime,
    },
    /// A peer whose feed has been silent past the armed staleness window
    /// (see [`RealtimeDetector::with_staleness_window`]) — the per-peer
    /// health signal a monitoring service surfaces.
    PeerStale {
        /// The silent peer.
        peer: PeerId,
        /// Its last observed activity.
        last_seen: SimTime,
        /// When the staleness check fired.
        detected_at: SimTime,
    },
}

impl RealtimeEvent {
    /// The prefix concerned (`None` for peer-health events).
    pub fn prefix(&self) -> Option<Prefix> {
        match self {
            RealtimeEvent::ZombieDetected { prefix, .. }
            | RealtimeEvent::Resurrected { prefix, .. } => Some(*prefix),
            RealtimeEvent::PeerStale { .. } => None,
        }
    }

    /// The peer concerned.
    pub fn peer(&self) -> PeerId {
        match self {
            RealtimeEvent::ZombieDetected { peer, .. }
            | RealtimeEvent::Resurrected { peer, .. }
            | RealtimeEvent::PeerStale { peer, .. } => *peer,
        }
    }

    /// When the event fired.
    pub fn detected_at(&self) -> SimTime {
        match self {
            RealtimeEvent::ZombieDetected { detected_at, .. }
            | RealtimeEvent::Resurrected { detected_at, .. }
            | RealtimeEvent::PeerStale { detected_at, .. } => *detected_at,
        }
    }

    /// Seconds since the missed withdrawal (`None` for peer-health
    /// events, which have no route).
    pub fn lifespan_so_far(&self) -> Option<u64> {
        match self {
            RealtimeEvent::ZombieDetected {
                lifespan_so_far, ..
            }
            | RealtimeEvent::Resurrected {
                lifespan_so_far, ..
            } => Some(*lifespan_so_far),
            RealtimeEvent::PeerStale { .. } => None,
        }
    }
}

/// Latest observation for one (interval, peer). Both variants remember
/// when they were stamped so a late-arriving older record cannot clobber
/// newer state (out-of-order tolerance).
#[derive(Debug, Clone)]
enum LastObs {
    Announce {
        time: SimTime,
        path: Arc<AsPath>,
        aggregator: Option<Ipv4Addr>,
    },
    Withdraw {
        time: SimTime,
    },
}

impl LastObs {
    fn time(&self) -> SimTime {
        match self {
            LastObs::Announce { time, .. } | LastObs::Withdraw { time } => *time,
        }
    }
}

/// Per-interval live state.
#[derive(Debug, Default)]
struct IntervalState {
    last: HashMap<PeerId, LastObs>,
    /// Set once the deadline fired; used for resurrection detection.
    checked: bool,
    /// Peers alerted at the deadline (not eligible for resurrection
    /// alerts — they never got clean).
    alerted: Vec<PeerId>,
}

/// The streaming detector.
///
/// Construction is fluent and infallible:
///
/// ```ignore
/// let mut detector = RealtimeDetector::new(ClassifyOptions::default())
///     .with_resurrection_window(3 * 3_600)
///     .with_staleness_window(1_800);
/// detector.arm_intervals(intervals_from_schedule(&schedule));
/// ```
pub struct RealtimeDetector {
    options: ClassifyOptions,
    intervals: Vec<BeaconInterval>,
    states: Vec<IntervalState>,
    /// Interval lookup: prefix → interval indices sorted by start.
    by_prefix: HashMap<Prefix, Vec<usize>>,
    /// Pending deadlines, earliest first.
    deadlines: BinaryHeap<Reverse<(SimTime, usize)>>,
    /// Per-peer latest session-down instant.
    last_down: HashMap<PeerId, SimTime>,
    /// Per-peer latest activity of any kind (feed-health bookkeeping).
    last_activity: HashMap<PeerId, SimTime>,
    /// Peers currently flagged stale (re-armed by fresh activity).
    stale: Vec<PeerId>,
    /// High-water mark of observed time.
    now: SimTime,
    /// How long after the deadline resurrection alerts stay armed.
    resurrection_window: u64,
    /// Idle seconds after which [`RealtimeDetector::advance`] raises
    /// [`RealtimeEvent::PeerStale`]; `None` disables the check.
    staleness_window: Option<u64>,
}

impl RealtimeDetector {
    /// Creates a detector with the given classification options.
    pub fn new(options: ClassifyOptions) -> RealtimeDetector {
        RealtimeDetector {
            options,
            intervals: Vec::new(),
            states: Vec::new(),
            by_prefix: HashMap::new(),
            deadlines: BinaryHeap::new(),
            last_down: HashMap::new(),
            last_activity: HashMap::new(),
            stale: Vec::new(),
            now: SimTime::ZERO,
            resurrection_window: 2 * 3_600,
            staleness_window: None,
        }
    }

    /// Widens/narrows the post-deadline window in which late announcements
    /// raise resurrection events (default 2 h, mirroring the paper's
    /// Fig. 2 sweep ceiling).
    pub fn with_resurrection_window(mut self, secs: u64) -> RealtimeDetector {
        self.resurrection_window = secs;
        self
    }

    /// Arms the per-peer staleness check: [`RealtimeDetector::advance`]
    /// raises [`RealtimeEvent::PeerStale`] for any known peer silent for
    /// more than `secs` (once per silence; fresh activity re-arms).
    pub fn with_staleness_window(mut self, secs: u64) -> RealtimeDetector {
        self.staleness_window = Some(secs);
        self
    }

    /// Registers an upcoming beacon interval (call when the beacon
    /// controller schedules the announcement).
    pub fn arm_interval(&mut self, interval: BeaconInterval) {
        let idx = self.intervals.len();
        self.deadlines
            .push(Reverse((interval.check_time(self.options.threshold), idx)));
        let intervals = &self.intervals;
        let list = self.by_prefix.entry(interval.prefix).or_default();
        list.push(idx);
        list.sort_by_key(|&i| {
            if i == idx {
                interval.start
            } else {
                intervals[i].start
            }
        });
        self.intervals.push(interval);
        self.states.push(IntervalState::default());
    }

    /// Registers a whole schedule's intervals.
    pub fn arm_intervals<I: IntoIterator<Item = BeaconInterval>>(&mut self, intervals: I) {
        for interval in intervals {
            self.arm_interval(interval);
        }
    }

    /// Locates the interval an observation at `t` for `prefix` belongs to.
    fn locate(&self, prefix: Prefix, t: SimTime) -> Option<usize> {
        let list = self.by_prefix.get(&prefix)?;
        let pos = list.partition_point(|&i| self.intervals[i].start <= t);
        if pos == 0 {
            return None;
        }
        let idx = list[pos - 1];
        let interval = &self.intervals[idx];
        let horizon = interval.check_time(self.options.threshold) + self.resurrection_window;
        (t <= horizon).then_some(idx)
    }

    /// Notes activity from a peer (feed-health bookkeeping; fresh
    /// activity clears a standing stale flag).
    fn record_activity(&mut self, peer: PeerId, t: SimTime) {
        let entry = self.last_activity.entry(peer).or_insert(t);
        if t > *entry {
            *entry = t;
        }
        self.stale.retain(|p| *p != peer);
    }

    /// Feeds one record; returns any events that became due.
    ///
    /// Deadline/record ties follow the batch semantics: an observation
    /// stamped exactly at the check instant is part of the checked state,
    /// so deadlines strictly before the record fire first, the record is
    /// applied, and deadlines at the record's own timestamp fire last.
    pub fn push(&mut self, record: &MrtRecord) -> Vec<RealtimeEvent> {
        self.now = self.now.max(record.timestamp);
        let mut events = self.fire_due(record.timestamp, false);
        match &record.body {
            MrtBody::Message(msg) => {
                let peer = PeerId {
                    addr: msg.session.peer_ip,
                    asn: msg.session.peer_as,
                };
                self.record_activity(peer, record.timestamp);
                if self.options.excluded_peers.contains(&peer.addr) {
                    return events;
                }
                let BgpMessage::Update(update) = &msg.message else {
                    return events;
                };
                let aggregator = update.attrs.aggregator.map(|a| a.addr);
                let path = update.attrs.as_path.clone().map(Arc::new);
                for prefix in update.announced() {
                    let Some(idx) = self.locate(prefix, record.timestamp) else {
                        continue;
                    };
                    let Some(path) = path.clone() else { continue };
                    let interval = self.intervals[idx];
                    let check_at = interval.check_time(self.options.threshold);
                    let state = &mut self.states[idx];
                    // Out-of-order tolerance: an older record never
                    // clobbers newer state for this (interval, peer).
                    let newer = state
                        .last
                        .get(&peer)
                        .is_none_or(|prev| record.timestamp >= prev.time());
                    // A late announcement after a clean deadline = live
                    // resurrection. The timestamp guard keeps a delayed
                    // *pre-deadline* record (out-of-order arrival) from
                    // counting as one.
                    if state.checked
                        && record.timestamp > check_at
                        && !state.alerted.contains(&peer)
                    {
                        events.push(RealtimeEvent::Resurrected {
                            prefix,
                            interval_start: interval.start,
                            withdrawn_at: interval.withdraw_at,
                            peer,
                            path: Arc::clone(&path),
                            lifespan_so_far: record
                                .timestamp
                                .secs()
                                .saturating_sub(interval.withdraw_at.secs()),
                            detected_at: record.timestamp,
                        });
                        state.alerted.push(peer);
                    }
                    if newer {
                        state.last.insert(
                            peer,
                            LastObs::Announce {
                                time: record.timestamp,
                                path,
                                aggregator,
                            },
                        );
                    }
                }
                for prefix in update.withdrawn_all() {
                    let Some(idx) = self.locate(prefix, record.timestamp) else {
                        continue;
                    };
                    let state = &mut self.states[idx];
                    let newer = state
                        .last
                        .get(&peer)
                        .is_none_or(|prev| record.timestamp >= prev.time());
                    if newer {
                        state.last.insert(
                            peer,
                            LastObs::Withdraw {
                                time: record.timestamp,
                            },
                        );
                    }
                }
            }
            MrtBody::StateChange(change) => {
                let peer = PeerId {
                    addr: change.session.peer_ip,
                    asn: change.session.peer_as,
                };
                self.record_activity(peer, record.timestamp);
                if change.old_state == BgpState::Established
                    && change.new_state != BgpState::Established
                {
                    let entry = self.last_down.entry(peer).or_insert(record.timestamp);
                    *entry = (*entry).max(record.timestamp);
                }
            }
            _ => {}
        }
        events.extend(self.fire_due(record.timestamp, true));
        events
    }

    /// Feeds a whole pre-framed archive, decoding only the frames that can
    /// affect detector state; returns every event in firing order.
    ///
    /// Equivalent to decoding the archive with the tolerant reader and
    /// [`RealtimeDetector::push`]ing each record — asserted by the
    /// equivalence test below — but BGP UPDATEs that mention no expected
    /// prefix only pay for a raw-byte NLRI peek, not a full decode. The
    /// early-return structure of `push` is mirrored exactly: undecodable
    /// frames do nothing (the reader never yields them), and non-UPDATE
    /// or excluded-peer messages advance the clock, note the peer's
    /// activity, and run only the pre-record deadline pass.
    pub fn ingest_index(&mut self, index: &FrameIndex) -> Vec<RealtimeEvent> {
        let mut events = Vec::new();
        for frame in index.frames() {
            match frame.peek_kind() {
                FrameKind::Message { .. } => {
                    if !frame.validate() {
                        continue;
                    }
                    let ts = frame.peek_timestamp();
                    let is_update = frame.peek_bgp_kind() == Some(MessageKind::Update);
                    let peer = frame.peer_addr().map(|(addr, asn)| PeerId { addr, asn });
                    let excluded = peer.map(|p| self.options.excluded_peers.contains(&p.addr));
                    if !is_update || excluded == Some(true) {
                        // `push` returns before touching per-interval state.
                        self.now = self.now.max(ts);
                        events.extend(self.fire_due(ts, false));
                        if let Some(peer) = peer {
                            self.record_activity(peer, ts);
                        }
                        continue;
                    }
                    let relevant = frame
                        .nlri_prefixes()
                        .any(|(_, prefix)| self.by_prefix.contains_key(&prefix));
                    if relevant || excluded.is_none() {
                        let record = frame.decode().expect("validated frame must decode");
                        events.extend(self.push(&record));
                    } else {
                        // Irrelevant UPDATE: both state loops are no-ops, so
                        // only the activity note and the two deadline passes
                        // remain.
                        self.now = self.now.max(ts);
                        events.extend(self.fire_due(ts, false));
                        if let Some(peer) = peer {
                            self.record_activity(peer, ts);
                        }
                        events.extend(self.fire_due(ts, true));
                    }
                }
                FrameKind::StateChange { .. } | FrameKind::PeerIndex | FrameKind::Rib => {
                    if let Ok(record) = frame.decode() {
                        events.extend(self.push(&record));
                    }
                }
                FrameKind::Unknown => {}
            }
        }
        events
    }

    /// Advances the clock without data, firing any due deadlines and —
    /// when a staleness window is armed — flagging silent peers (call
    /// this on a timer when the feed is quiet).
    pub fn advance(&mut self, now: SimTime) -> Vec<RealtimeEvent> {
        if now < self.now {
            return Vec::new();
        }
        self.now = now;
        let mut events = self.fire_due(now, true);
        if let Some(window) = self.staleness_window {
            let mut idle: Vec<(PeerId, SimTime)> = self
                .last_activity
                .iter()
                .filter(|(peer, &seen)| {
                    now.secs().saturating_sub(seen.secs()) > window && !self.stale.contains(peer)
                })
                .map(|(&peer, &seen)| (peer, seen))
                .collect();
            idle.sort();
            for (peer, last_seen) in idle {
                self.stale.push(peer);
                events.push(RealtimeEvent::PeerStale {
                    peer,
                    last_seen,
                    detected_at: now,
                });
            }
        }
        events
    }

    /// Fires deadlines up to `now` (`inclusive` controls the boundary).
    fn fire_due(&mut self, now: SimTime, inclusive: bool) -> Vec<RealtimeEvent> {
        let mut events = Vec::new();
        while let Some(&Reverse((deadline, idx))) = self.deadlines.peek() {
            let due = if inclusive {
                deadline <= now
            } else {
                deadline < now
            };
            if !due {
                break;
            }
            self.deadlines.pop();
            events.extend(self.fire(idx, deadline));
        }
        events
    }

    /// Fires one interval's deadline check.
    fn fire(&mut self, idx: usize, deadline: SimTime) -> Vec<RealtimeEvent> {
        let interval = self.intervals[idx];
        let state = &mut self.states[idx];
        state.checked = true;
        let mut events = Vec::new();
        let mut peers: Vec<PeerId> = state.last.keys().copied().collect();
        peers.sort();
        for peer in peers {
            let Some(LastObs::Announce {
                time,
                path,
                aggregator,
            }) = state.last.get(&peer)
            else {
                continue;
            };
            // A session drop after the announce removed the route.
            if self
                .last_down
                .get(&peer)
                .is_some_and(|&down| down > *time && down <= deadline)
            {
                continue;
            }
            let aggregator_time = aggregator.and_then(|addr| decode_aggregator_clock(addr, *time));
            let is_duplicate = aggregator_time.is_some_and(|t| t < interval.start);
            if self.options.aggregator_filter && is_duplicate {
                continue;
            }
            state.alerted.push(peer);
            events.push(RealtimeEvent::ZombieDetected {
                prefix: interval.prefix,
                interval_start: interval.start,
                withdrawn_at: interval.withdraw_at,
                peer,
                path: Arc::clone(path),
                aggregator_time,
                is_duplicate,
                lifespan_so_far: deadline.secs().saturating_sub(interval.withdraw_at.secs()),
                detected_at: deadline,
            });
        }
        events
    }

    /// Number of intervals still awaiting their deadline.
    pub fn pending(&self) -> usize {
        self.deadlines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpz_mrt::bgp4mp::SessionHeader;
    use bgpz_mrt::{Bgp4mpMessage, Bgp4mpStateChange, MrtBody};
    use bgpz_types::attrs::{MpReach, MpUnreach, NextHop};
    use bgpz_types::{Afi, Asn, BgpUpdate, PathAttributes};

    const PEER_AS: Asn = Asn(64_001);

    fn session() -> SessionHeader {
        SessionHeader {
            peer_as: PEER_AS,
            local_as: Asn(12_654),
            ifindex: 0,
            peer_ip: "2001:db8:90::1".parse().unwrap(),
            local_ip: "2001:7f8:24::82".parse().unwrap(),
        }
    }

    fn peer() -> PeerId {
        PeerId {
            addr: "2001:db8:90::1".parse().unwrap(),
            asn: PEER_AS,
        }
    }

    fn prefix() -> Prefix {
        "2a0d:3dc1:1::/48".parse().unwrap()
    }

    fn announce(ts: u64) -> MrtRecord {
        let mut attrs = PathAttributes::announcement(AsPath::from_sequence([64_001, 210_312]));
        attrs.mp_reach = Some(MpReach {
            afi: Afi::Ipv6,
            safi: 1,
            next_hop: NextHop::V6 {
                global: "2001:db8::1".parse().unwrap(),
                link_local: None,
            },
            nlri: vec![prefix()],
        });
        MrtRecord::new(
            SimTime(ts),
            MrtBody::Message(Bgp4mpMessage {
                session: session(),
                message: BgpMessage::Update(BgpUpdate {
                    attrs,
                    ..BgpUpdate::default()
                }),
            }),
        )
    }

    fn withdraw(ts: u64) -> MrtRecord {
        MrtRecord::new(
            SimTime(ts),
            MrtBody::Message(Bgp4mpMessage {
                session: session(),
                message: BgpMessage::Update(BgpUpdate {
                    attrs: PathAttributes {
                        mp_unreach: Some(MpUnreach {
                            afi: Afi::Ipv6,
                            safi: 1,
                            withdrawn: vec![prefix()],
                        }),
                        ..PathAttributes::default()
                    },
                    ..BgpUpdate::default()
                }),
            }),
        )
    }

    fn detector() -> RealtimeDetector {
        let mut detector = RealtimeDetector::new(ClassifyOptions::default());
        detector.arm_interval(BeaconInterval {
            prefix: prefix(),
            start: SimTime(0),
            withdraw_at: SimTime(900),
        });
        detector
    }

    #[test]
    fn clean_cycle_raises_nothing() {
        let mut d = detector();
        assert!(d.push(&announce(10)).is_empty());
        assert!(d.push(&withdraw(930)).is_empty());
        let events = d.advance(SimTime(10_000));
        assert!(events.is_empty());
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn stuck_route_raises_zombie_at_deadline() {
        let mut d = detector();
        assert!(d.push(&announce(10)).is_empty());
        // Deadline = withdraw_at (900) + 90 min.
        let events = d.advance(SimTime(900 + 90 * 60));
        assert_eq!(events.len(), 1);
        match &events[0] {
            RealtimeEvent::ZombieDetected {
                prefix: p,
                peer: who,
                is_duplicate,
                lifespan_so_far,
                detected_at,
                withdrawn_at,
                ..
            } => {
                assert_eq!(*p, prefix());
                assert_eq!(*who, peer());
                assert!(!is_duplicate);
                assert_eq!(*detected_at, SimTime(900 + 90 * 60));
                assert_eq!(*withdrawn_at, SimTime(900));
                assert_eq!(*lifespan_so_far, 90 * 60);
            }
            other => panic!("{other:?}"),
        }
        // Fires once.
        assert!(d.advance(SimTime(100_000)).is_empty());
    }

    #[test]
    fn deadline_fires_lazily_on_next_record() {
        let mut d = detector();
        d.push(&announce(10));
        // A much later record for an unrelated prefix triggers the check.
        let mut late = announce(20_000);
        if let MrtBody::Message(m) = &mut late.body {
            if let BgpMessage::Update(u) = &mut m.message {
                u.attrs.mp_reach.as_mut().unwrap().nlri =
                    vec!["2001:db8:ffff::/48".parse().unwrap()];
            }
        }
        let events = d.push(&late);
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], RealtimeEvent::ZombieDetected { .. }));
    }

    #[test]
    fn session_down_clears_pending_zombie() {
        let mut d = detector();
        d.push(&announce(10));
        d.push(&MrtRecord::new(
            SimTime(2_000),
            MrtBody::StateChange(Bgp4mpStateChange {
                session: session(),
                old_state: BgpState::Established,
                new_state: BgpState::Idle,
            }),
        ));
        assert!(d.advance(SimTime(100_000)).is_empty());
    }

    #[test]
    fn duplicate_suppressed_when_filter_on() {
        // Announce carrying a clock that predates the interval: make the
        // interval start late in the month so the clock (pointing at the
        // 1st) is "old".
        let mut det = RealtimeDetector::new(ClassifyOptions::default());
        let start = SimTime::from_ymd_hms(2018, 7, 19, 8, 0, 0);
        det.arm_interval(BeaconInterval {
            prefix: prefix(),
            start,
            withdraw_at: start + 7_200,
        });
        let mut rec = announce(start.secs() + 10);
        if let MrtBody::Message(m) = &mut rec.body {
            if let BgpMessage::Update(u) = &mut m.message {
                u.attrs.aggregator = Some(bgpz_types::attrs::Aggregator {
                    asn: Asn(12_654),
                    addr: bgpz_beacon::aggregator_clock(SimTime::from_ymd_hms(
                        2018, 7, 19, 0, 0, 0,
                    )),
                });
            }
        }
        det.push(&rec);
        let events = det.advance(SimTime(start.secs() + 100_000));
        assert!(events.is_empty(), "{events:?}");
    }

    #[test]
    fn late_announce_raises_resurrection() {
        let mut d = detector();
        d.push(&announce(10));
        d.push(&withdraw(930));
        // Deadline passes clean.
        assert!(d.advance(SimTime(900 + 90 * 60)).is_empty());
        // The route comes back 20 minutes later — §5.1 live.
        let events = d.push(&announce(900 + 110 * 60));
        assert_eq!(events.len(), 1);
        match &events[0] {
            RealtimeEvent::Resurrected {
                lifespan_so_far,
                detected_at,
                ..
            } => {
                assert_eq!(*detected_at, SimTime(900 + 110 * 60));
                assert_eq!(*lifespan_so_far, 110 * 60);
            }
            other => panic!("{other:?}"),
        }
        // Only once per peer.
        assert!(d.push(&announce(900 + 115 * 60)).is_empty());
    }

    #[test]
    fn excluded_peer_ignored() {
        let mut d = RealtimeDetector::new(ClassifyOptions {
            excluded_peers: vec![peer().addr],
            ..ClassifyOptions::default()
        });
        d.arm_interval(BeaconInterval {
            prefix: prefix(),
            start: SimTime(0),
            withdraw_at: SimTime(900),
        });
        d.push(&announce(10));
        assert!(d.advance(SimTime(100_000)).is_empty());
    }

    #[test]
    fn out_of_order_announce_does_not_clobber_withdraw() {
        // The withdraw (t=930) arrives before a delayed copy of the
        // announce (t=10): the stale announce must not resurrect the
        // route in the state table, so the deadline stays clean.
        let mut d = detector();
        d.push(&withdraw(930));
        d.push(&announce(10));
        assert!(d.advance(SimTime(100_000)).is_empty());
    }

    #[test]
    fn duplicate_records_are_idempotent() {
        let mut d = detector();
        d.push(&announce(10));
        d.push(&announce(10));
        d.push(&withdraw(930));
        d.push(&withdraw(930));
        assert!(d.advance(SimTime(100_000)).is_empty());

        let mut d = detector();
        d.push(&announce(10));
        d.push(&announce(10));
        let events = d.advance(SimTime(100_000));
        assert_eq!(events.len(), 1, "one zombie despite the duplicate");
    }

    #[test]
    fn delayed_pre_deadline_record_is_not_a_resurrection() {
        // The peer was silent through the deadline; a pre-deadline
        // announce that arrives *after* the check fired must not raise a
        // resurrection (its timestamp shows it is not a late announce).
        let mut d = detector();
        assert!(d.advance(SimTime(900 + 90 * 60)).is_empty());
        assert!(d.push(&announce(500)).is_empty());
    }

    #[test]
    fn stale_peer_flagged_once_and_rearmed_by_activity() {
        let mut d = RealtimeDetector::new(ClassifyOptions::default()).with_staleness_window(3_600);
        d.arm_interval(BeaconInterval {
            prefix: prefix(),
            start: SimTime(0),
            withdraw_at: SimTime(900),
        });
        d.push(&announce(10));
        d.push(&withdraw(930));
        let events = d.advance(SimTime(930 + 3_700));
        assert_eq!(events.len(), 1);
        match &events[0] {
            RealtimeEvent::PeerStale {
                peer: who,
                last_seen,
                detected_at,
            } => {
                assert_eq!(*who, peer());
                assert_eq!(*last_seen, SimTime(930));
                assert_eq!(*detected_at, SimTime(930 + 3_700));
                assert!(events[0].prefix().is_none());
                assert!(events[0].lifespan_so_far().is_none());
            }
            other => panic!("{other:?}"),
        }
        // Flagged once per silence...
        assert!(d.advance(SimTime(930 + 7_400)).is_empty());
        // ...and fresh activity re-arms the check. The keepalive-shaped
        // late record is outside every interval window, so only the
        // activity bookkeeping sees it.
        let mut rec = announce(20_000);
        if let MrtBody::Message(m) = &mut rec.body {
            m.message = BgpMessage::Keepalive;
        }
        d.push(&rec);
        let events = d.advance(SimTime(20_000 + 3_700));
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], RealtimeEvent::PeerStale { .. }));
    }

    /// The indexed ingest and the decode-everything push loop must raise
    /// identical events over an archive mixing relevant updates, an
    /// irrelevant update (which must still fire due deadlines), a
    /// KEEPALIVE, a session reset, a malformed-but-framed record, and
    /// trailing garbage.
    #[test]
    fn ingest_index_matches_push() {
        use bgpz_mrt::{FrameIndex, MrtReader, MrtWriter};

        let mut writer = MrtWriter::new();
        writer.push(&announce(10));
        writer.push(&withdraw(930));
        writer.push(&MrtRecord::new(
            SimTime(1_000),
            MrtBody::Message(Bgp4mpMessage {
                session: session(),
                message: BgpMessage::Keepalive,
            }),
        ));
        writer.push(&MrtRecord::new(
            SimTime(2_000),
            MrtBody::StateChange(Bgp4mpStateChange {
                session: session(),
                old_state: BgpState::Established,
                new_state: BgpState::Idle,
            }),
        ));
        // Resurrection: the route comes back after a clean deadline...
        writer.push(&announce(900 + 110 * 60));
        // ...and an unrelated prefix much later forces the next deadline
        // to fire from the irrelevant-update tick.
        let mut late = announce(100_000);
        if let MrtBody::Message(m) = &mut late.body {
            if let BgpMessage::Update(u) = &mut m.message {
                u.attrs.mp_reach.as_mut().unwrap().nlri =
                    vec!["2001:db8:ffff::/48".parse().unwrap()];
            }
        }
        writer.push(&late);
        let mut bytes = writer.finish().to_vec();
        // A framed record with an undecodable body, then a truncated header.
        bytes.extend_from_slice(&[0, 0, 0, 50, 0, 16, 0, 1, 0, 0, 0, 2, 0xde, 0xad]);
        bytes.extend_from_slice(&[1, 2, 3]);
        let bytes = bytes::Bytes::from(bytes);

        let schedule = [
            BeaconInterval {
                prefix: prefix(),
                start: SimTime(0),
                withdraw_at: SimTime(900),
            },
            BeaconInterval {
                prefix: prefix(),
                start: SimTime(14_400),
                withdraw_at: SimTime(14_400 + 900),
            },
        ];

        let mut eager = RealtimeDetector::new(ClassifyOptions::default());
        eager.arm_intervals(schedule);
        let mut eager_events = Vec::new();
        let mut reader = MrtReader::new(bytes.clone());
        while let Some(record) = reader.next_record() {
            eager_events.extend(eager.push(&record));
        }

        let mut lazy = RealtimeDetector::new(ClassifyOptions::default());
        lazy.arm_intervals(schedule);
        let lazy_events = lazy.ingest_index(&FrameIndex::build(bytes));

        assert!(!eager_events.is_empty(), "archive exercises events");
        assert_eq!(format!("{eager_events:?}"), format!("{lazy_events:?}"));
        assert_eq!(eager.pending(), lazy.pending());
        // The activity bookkeeping must agree too, or staleness checks
        // would diverge between the two ingest paths.
        assert_eq!(
            format!("{:?}", eager.advance(SimTime(200_000))),
            format!("{:?}", lazy.advance(SimTime(200_000)))
        );
    }

    #[test]
    fn event_accessors() {
        let mut d = detector();
        d.push(&announce(10));
        let events = d.advance(SimTime(100_000));
        assert_eq!(events[0].prefix(), Some(prefix()));
        assert_eq!(events[0].peer(), peer());
        assert_eq!(events[0].detected_at(), SimTime(900 + 90 * 60));
        assert_eq!(events[0].lifespan_so_far(), Some(90 * 60));
    }
}
