//! Real-time zombie detection (the paper's §6 "future work", built).
//!
//! The batch pipeline ([`crate::scan`] → [`crate::classify`]) needs the
//! whole archive up front. [`RealtimeDetector`] instead consumes MRT
//! records *as they arrive* — e.g. from a RIS Live-style feed — keeping
//! only the latest observation per `(interval, peer)`, and emits a
//! [`ZombieAlert`] the moment a beacon interval's check deadline passes
//! with a stuck route, plus a [`ZombieAlert::Resurrection`] when a
//! withdrawn-and-clean prefix is announced again after its deadline with
//! no new beacon cycle — the paper's §5.1 phenomenon, detected live.
//!
//! Fed the same records, it raises exactly the zombie routes the batch
//! classifier reports (asserted by the equivalence tests below).

use crate::classify::ClassifyOptions;
use crate::interval::BeaconInterval;
use crate::scan::PeerId;
use bgpz_beacon::decode_aggregator_clock;
use bgpz_mrt::{BgpState, FrameIndex, FrameKind, MrtBody, MrtRecord};
use bgpz_types::{AsPath, BgpMessage, MessageKind, Prefix, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::net::Ipv4Addr;
use std::sync::Arc;

/// A live detection event.
#[derive(Debug, Clone)]
pub enum ZombieAlert {
    /// A stuck route at the interval's check deadline.
    Zombie {
        /// The beacon prefix.
        prefix: Prefix,
        /// The interval's announcement instant.
        interval_start: SimTime,
        /// The peer holding the stuck route.
        peer: PeerId,
        /// The stuck AS path.
        path: Arc<AsPath>,
        /// Decoded Aggregator clock, if the route carried one.
        aggregator_time: Option<SimTime>,
        /// True if the clock shows the route predates the interval
        /// (a duplicate under the paper's revised methodology).
        is_duplicate: bool,
        /// When the alert fired (the check deadline).
        detected_at: SimTime,
    },
    /// A prefix that was clean at its deadline got announced again with no
    /// new beacon cycle — a live resurrection.
    Resurrection {
        /// The beacon prefix.
        prefix: Prefix,
        /// The interval whose deadline had already passed.
        interval_start: SimTime,
        /// The peer that re-learned the route.
        peer: PeerId,
        /// The resurrected AS path.
        path: Arc<AsPath>,
        /// When the late announcement arrived.
        detected_at: SimTime,
    },
}

impl ZombieAlert {
    /// The prefix concerned.
    pub fn prefix(&self) -> Prefix {
        match self {
            ZombieAlert::Zombie { prefix, .. } | ZombieAlert::Resurrection { prefix, .. } => {
                *prefix
            }
        }
    }

    /// The peer concerned.
    pub fn peer(&self) -> PeerId {
        match self {
            ZombieAlert::Zombie { peer, .. } | ZombieAlert::Resurrection { peer, .. } => *peer,
        }
    }
}

/// Latest observation for one (interval, peer).
#[derive(Debug, Clone)]
enum LastObs {
    Announce {
        time: SimTime,
        path: Arc<AsPath>,
        aggregator: Option<Ipv4Addr>,
    },
    Withdraw,
}

/// Per-interval live state.
#[derive(Debug, Default)]
struct IntervalState {
    last: HashMap<PeerId, LastObs>,
    /// Set once the deadline fired; used for resurrection detection.
    checked: bool,
    /// Peers alerted at the deadline (not eligible for resurrection
    /// alerts — they never got clean).
    alerted: Vec<PeerId>,
}

/// The streaming detector.
pub struct RealtimeDetector {
    options: ClassifyOptions,
    intervals: Vec<BeaconInterval>,
    states: Vec<IntervalState>,
    /// Interval lookup: prefix → interval indices sorted by start.
    by_prefix: HashMap<Prefix, Vec<usize>>,
    /// Pending deadlines, earliest first.
    deadlines: BinaryHeap<Reverse<(SimTime, usize)>>,
    /// Per-peer latest session-down instant.
    last_down: HashMap<PeerId, SimTime>,
    /// High-water mark of observed time.
    now: SimTime,
    /// How long after the deadline resurrection alerts stay armed.
    resurrection_window: u64,
}

impl RealtimeDetector {
    /// Creates a detector with the given classification options.
    pub fn new(options: ClassifyOptions) -> RealtimeDetector {
        RealtimeDetector {
            options,
            intervals: Vec::new(),
            states: Vec::new(),
            by_prefix: HashMap::new(),
            deadlines: BinaryHeap::new(),
            last_down: HashMap::new(),
            now: SimTime::ZERO,
            resurrection_window: 2 * 3_600,
        }
    }

    /// Widens/narrows the post-deadline window in which late announcements
    /// raise resurrection alerts (default 2 h, mirroring the paper's
    /// Fig. 2 sweep ceiling).
    pub fn set_resurrection_window(&mut self, secs: u64) {
        self.resurrection_window = secs;
    }

    /// Registers an upcoming beacon interval (call when the beacon
    /// controller schedules the announcement).
    pub fn expect(&mut self, interval: BeaconInterval) {
        let idx = self.intervals.len();
        self.deadlines
            .push(Reverse((interval.check_time(self.options.threshold), idx)));
        self.by_prefix.entry(interval.prefix).or_default().push(idx);
        self.by_prefix
            .get_mut(&interval.prefix)
            .expect("just inserted")
            .sort_by_key(|&i| {
                if i == idx {
                    interval.start
                } else {
                    self.intervals[i].start
                }
            });
        self.intervals.push(interval);
        self.states.push(IntervalState::default());
    }

    /// Registers a whole schedule's intervals.
    pub fn expect_all<I: IntoIterator<Item = BeaconInterval>>(&mut self, intervals: I) {
        for interval in intervals {
            self.expect(interval);
        }
    }

    /// Locates the interval an observation at `t` for `prefix` belongs to.
    fn locate(&self, prefix: Prefix, t: SimTime) -> Option<usize> {
        let list = self.by_prefix.get(&prefix)?;
        let pos = list.partition_point(|&i| self.intervals[i].start <= t);
        if pos == 0 {
            return None;
        }
        let idx = list[pos - 1];
        let interval = &self.intervals[idx];
        let horizon = interval.check_time(self.options.threshold) + self.resurrection_window;
        (t <= horizon).then_some(idx)
    }

    /// Feeds one record; returns any alerts that became due.
    ///
    /// Deadline/record ties follow the batch semantics: an observation
    /// stamped exactly at the check instant is part of the checked state,
    /// so deadlines strictly before the record fire first, the record is
    /// applied, and deadlines at the record's own timestamp fire last.
    pub fn push(&mut self, record: &MrtRecord) -> Vec<ZombieAlert> {
        self.now = self.now.max(record.timestamp);
        let mut alerts = self.fire_due(record.timestamp, false);
        match &record.body {
            MrtBody::Message(msg) => {
                let peer = PeerId {
                    addr: msg.session.peer_ip,
                    asn: msg.session.peer_as,
                };
                if self.options.excluded_peers.contains(&peer.addr) {
                    return alerts;
                }
                let BgpMessage::Update(update) = &msg.message else {
                    return alerts;
                };
                let aggregator = update.attrs.aggregator.map(|a| a.addr);
                let path = update.attrs.as_path.clone().map(Arc::new);
                for prefix in update.announced() {
                    let Some(idx) = self.locate(prefix, record.timestamp) else {
                        continue;
                    };
                    let Some(path) = path.clone() else { continue };
                    let interval_start = self.intervals[idx].start;
                    let state = &mut self.states[idx];
                    // A late announcement after a clean deadline = live
                    // resurrection.
                    if state.checked && !state.alerted.contains(&peer) {
                        alerts.push(ZombieAlert::Resurrection {
                            prefix,
                            interval_start,
                            peer,
                            path: Arc::clone(&path),
                            detected_at: record.timestamp,
                        });
                        state.alerted.push(peer);
                    }
                    state.last.insert(
                        peer,
                        LastObs::Announce {
                            time: record.timestamp,
                            path,
                            aggregator,
                        },
                    );
                }
                for prefix in update.withdrawn_all() {
                    let Some(idx) = self.locate(prefix, record.timestamp) else {
                        continue;
                    };
                    self.states[idx].last.insert(peer, LastObs::Withdraw);
                }
            }
            MrtBody::StateChange(change)
                if change.old_state == BgpState::Established
                    && change.new_state != BgpState::Established =>
            {
                let peer = PeerId {
                    addr: change.session.peer_ip,
                    asn: change.session.peer_as,
                };
                self.last_down.insert(peer, record.timestamp);
            }
            _ => {}
        }
        alerts.extend(self.fire_due(record.timestamp, true));
        alerts
    }

    /// Feeds a whole pre-framed archive, decoding only the frames that can
    /// affect detector state; returns every alert in firing order.
    ///
    /// Equivalent to decoding the archive with the tolerant reader and
    /// [`RealtimeDetector::push`]ing each record — asserted by the
    /// equivalence test below — but BGP UPDATEs that mention no expected
    /// prefix only pay for a raw-byte NLRI peek, not a full decode. The
    /// early-return structure of `push` is mirrored exactly: undecodable
    /// frames do nothing (the reader never yields them), and non-UPDATE
    /// or excluded-peer messages advance the clock and run only the
    /// pre-record deadline pass.
    pub fn ingest_index(&mut self, index: &FrameIndex) -> Vec<ZombieAlert> {
        let mut alerts = Vec::new();
        for frame in index.frames() {
            match frame.peek_kind() {
                FrameKind::Message { .. } => {
                    if !frame.validate() {
                        continue;
                    }
                    let ts = frame.peek_timestamp();
                    let is_update = frame.peek_bgp_kind() == Some(MessageKind::Update);
                    let excluded = frame
                        .peer_addr()
                        .map(|(addr, _)| self.options.excluded_peers.contains(&addr));
                    if !is_update || excluded == Some(true) {
                        // `push` returns before touching per-interval state.
                        self.now = self.now.max(ts);
                        alerts.extend(self.fire_due(ts, false));
                        continue;
                    }
                    let relevant = frame
                        .nlri_prefixes()
                        .any(|(_, prefix)| self.by_prefix.contains_key(&prefix));
                    if relevant || excluded.is_none() {
                        let record = frame.decode().expect("validated frame must decode");
                        alerts.extend(self.push(&record));
                    } else {
                        // Irrelevant UPDATE: both state loops are no-ops, so
                        // only the two deadline passes remain.
                        self.now = self.now.max(ts);
                        alerts.extend(self.fire_due(ts, false));
                        alerts.extend(self.fire_due(ts, true));
                    }
                }
                FrameKind::StateChange { .. } | FrameKind::PeerIndex | FrameKind::Rib => {
                    if let Ok(record) = frame.decode() {
                        alerts.extend(self.push(&record));
                    }
                }
                FrameKind::Unknown => {}
            }
        }
        alerts
    }

    /// Advances the clock without data, firing any due deadlines (call
    /// this on a timer when the feed is quiet).
    pub fn advance(&mut self, now: SimTime) -> Vec<ZombieAlert> {
        if now < self.now {
            return Vec::new();
        }
        self.now = now;
        self.fire_due(now, true)
    }

    /// Fires deadlines up to `now` (`inclusive` controls the boundary).
    fn fire_due(&mut self, now: SimTime, inclusive: bool) -> Vec<ZombieAlert> {
        let mut alerts = Vec::new();
        while let Some(&Reverse((deadline, idx))) = self.deadlines.peek() {
            let due = if inclusive {
                deadline <= now
            } else {
                deadline < now
            };
            if !due {
                break;
            }
            self.deadlines.pop();
            alerts.extend(self.fire(idx, deadline));
        }
        alerts
    }

    /// Fires one interval's deadline check.
    fn fire(&mut self, idx: usize, deadline: SimTime) -> Vec<ZombieAlert> {
        let interval = self.intervals[idx];
        let state = &mut self.states[idx];
        state.checked = true;
        let mut alerts = Vec::new();
        let mut peers: Vec<PeerId> = state.last.keys().copied().collect();
        peers.sort();
        for peer in peers {
            let Some(LastObs::Announce {
                time,
                path,
                aggregator,
            }) = state.last.get(&peer)
            else {
                continue;
            };
            // A session drop after the announce removed the route.
            if self
                .last_down
                .get(&peer)
                .is_some_and(|&down| down > *time && down <= deadline)
            {
                continue;
            }
            let aggregator_time = aggregator.and_then(|addr| decode_aggregator_clock(addr, *time));
            let is_duplicate = aggregator_time.is_some_and(|t| t < interval.start);
            if self.options.aggregator_filter && is_duplicate {
                continue;
            }
            state.alerted.push(peer);
            alerts.push(ZombieAlert::Zombie {
                prefix: interval.prefix,
                interval_start: interval.start,
                peer,
                path: Arc::clone(path),
                aggregator_time,
                is_duplicate,
                detected_at: deadline,
            });
        }
        alerts
    }

    /// Number of intervals still awaiting their deadline.
    pub fn pending(&self) -> usize {
        self.deadlines.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpz_mrt::bgp4mp::SessionHeader;
    use bgpz_mrt::{Bgp4mpMessage, Bgp4mpStateChange, MrtBody};
    use bgpz_types::attrs::{MpReach, MpUnreach, NextHop};
    use bgpz_types::{Afi, Asn, BgpUpdate, PathAttributes};

    const PEER_AS: Asn = Asn(64_001);

    fn session() -> SessionHeader {
        SessionHeader {
            peer_as: PEER_AS,
            local_as: Asn(12_654),
            ifindex: 0,
            peer_ip: "2001:db8:90::1".parse().unwrap(),
            local_ip: "2001:7f8:24::82".parse().unwrap(),
        }
    }

    fn peer() -> PeerId {
        PeerId {
            addr: "2001:db8:90::1".parse().unwrap(),
            asn: PEER_AS,
        }
    }

    fn prefix() -> Prefix {
        "2a0d:3dc1:1::/48".parse().unwrap()
    }

    fn announce(ts: u64) -> MrtRecord {
        let mut attrs = PathAttributes::announcement(AsPath::from_sequence([64_001, 210_312]));
        attrs.mp_reach = Some(MpReach {
            afi: Afi::Ipv6,
            safi: 1,
            next_hop: NextHop::V6 {
                global: "2001:db8::1".parse().unwrap(),
                link_local: None,
            },
            nlri: vec![prefix()],
        });
        MrtRecord::new(
            SimTime(ts),
            MrtBody::Message(Bgp4mpMessage {
                session: session(),
                message: BgpMessage::Update(BgpUpdate {
                    attrs,
                    ..BgpUpdate::default()
                }),
            }),
        )
    }

    fn withdraw(ts: u64) -> MrtRecord {
        MrtRecord::new(
            SimTime(ts),
            MrtBody::Message(Bgp4mpMessage {
                session: session(),
                message: BgpMessage::Update(BgpUpdate {
                    attrs: PathAttributes {
                        mp_unreach: Some(MpUnreach {
                            afi: Afi::Ipv6,
                            safi: 1,
                            withdrawn: vec![prefix()],
                        }),
                        ..PathAttributes::default()
                    },
                    ..BgpUpdate::default()
                }),
            }),
        )
    }

    fn detector() -> RealtimeDetector {
        let mut detector = RealtimeDetector::new(ClassifyOptions::default());
        detector.expect(BeaconInterval {
            prefix: prefix(),
            start: SimTime(0),
            withdraw_at: SimTime(900),
        });
        detector
    }

    #[test]
    fn clean_cycle_raises_nothing() {
        let mut d = detector();
        assert!(d.push(&announce(10)).is_empty());
        assert!(d.push(&withdraw(930)).is_empty());
        let alerts = d.advance(SimTime(10_000));
        assert!(alerts.is_empty());
        assert_eq!(d.pending(), 0);
    }

    #[test]
    fn stuck_route_raises_zombie_at_deadline() {
        let mut d = detector();
        assert!(d.push(&announce(10)).is_empty());
        // Deadline = withdraw_at (900) + 90 min.
        let alerts = d.advance(SimTime(900 + 90 * 60));
        assert_eq!(alerts.len(), 1);
        match &alerts[0] {
            ZombieAlert::Zombie {
                prefix: p,
                peer: who,
                is_duplicate,
                detected_at,
                ..
            } => {
                assert_eq!(*p, prefix());
                assert_eq!(*who, peer());
                assert!(!is_duplicate);
                assert_eq!(*detected_at, SimTime(900 + 90 * 60));
            }
            other => panic!("{other:?}"),
        }
        // Fires once.
        assert!(d.advance(SimTime(100_000)).is_empty());
    }

    #[test]
    fn deadline_fires_lazily_on_next_record() {
        let mut d = detector();
        d.push(&announce(10));
        // A much later record for an unrelated prefix triggers the check.
        let mut late = announce(20_000);
        if let MrtBody::Message(m) = &mut late.body {
            if let BgpMessage::Update(u) = &mut m.message {
                u.attrs.mp_reach.as_mut().unwrap().nlri =
                    vec!["2001:db8:ffff::/48".parse().unwrap()];
            }
        }
        let alerts = d.push(&late);
        assert_eq!(alerts.len(), 1);
        assert!(matches!(alerts[0], ZombieAlert::Zombie { .. }));
    }

    #[test]
    fn session_down_clears_pending_zombie() {
        let mut d = detector();
        d.push(&announce(10));
        d.push(&MrtRecord::new(
            SimTime(2_000),
            MrtBody::StateChange(Bgp4mpStateChange {
                session: session(),
                old_state: BgpState::Established,
                new_state: BgpState::Idle,
            }),
        ));
        assert!(d.advance(SimTime(100_000)).is_empty());
    }

    #[test]
    fn duplicate_suppressed_when_filter_on() {
        let d = detector();
        // Announce carrying a clock that predates the interval: make the
        // interval start late in the month so the clock (pointing at the
        // 1st) is "old".
        let mut det = RealtimeDetector::new(ClassifyOptions::default());
        let start = SimTime::from_ymd_hms(2018, 7, 19, 8, 0, 0);
        det.expect(BeaconInterval {
            prefix: prefix(),
            start,
            withdraw_at: start + 7_200,
        });
        let mut rec = announce(start.secs() + 10);
        if let MrtBody::Message(m) = &mut rec.body {
            if let BgpMessage::Update(u) = &mut m.message {
                u.attrs.aggregator = Some(bgpz_types::attrs::Aggregator {
                    asn: Asn(12_654),
                    addr: bgpz_beacon::aggregator_clock(SimTime::from_ymd_hms(
                        2018, 7, 19, 0, 0, 0,
                    )),
                });
            }
        }
        det.push(&rec);
        let alerts = det.advance(SimTime(start.secs() + 100_000));
        assert!(alerts.is_empty(), "{alerts:?}");
        drop(d);
    }

    #[test]
    fn late_announce_raises_resurrection() {
        let mut d = detector();
        d.push(&announce(10));
        d.push(&withdraw(930));
        // Deadline passes clean.
        assert!(d.advance(SimTime(900 + 90 * 60)).is_empty());
        // The route comes back 20 minutes later — §5.1 live.
        let alerts = d.push(&announce(900 + 110 * 60));
        assert_eq!(alerts.len(), 1);
        assert!(matches!(alerts[0], ZombieAlert::Resurrection { .. }));
        // Only once per peer.
        assert!(d.push(&announce(900 + 115 * 60)).is_empty());
    }

    #[test]
    fn excluded_peer_ignored() {
        let mut d = RealtimeDetector::new(ClassifyOptions {
            excluded_peers: vec![peer().addr],
            ..ClassifyOptions::default()
        });
        d.expect(BeaconInterval {
            prefix: prefix(),
            start: SimTime(0),
            withdraw_at: SimTime(900),
        });
        d.push(&announce(10));
        assert!(d.advance(SimTime(100_000)).is_empty());
    }

    /// The indexed ingest and the decode-everything push loop must raise
    /// identical alerts over an archive mixing relevant updates, an
    /// irrelevant update (which must still fire due deadlines), a
    /// KEEPALIVE, a session reset, a malformed-but-framed record, and
    /// trailing garbage.
    #[test]
    fn ingest_index_matches_push() {
        use bgpz_mrt::{FrameIndex, MrtReader, MrtWriter};

        let mut writer = MrtWriter::new();
        writer.push(&announce(10));
        writer.push(&withdraw(930));
        writer.push(&MrtRecord::new(
            SimTime(1_000),
            MrtBody::Message(Bgp4mpMessage {
                session: session(),
                message: BgpMessage::Keepalive,
            }),
        ));
        writer.push(&MrtRecord::new(
            SimTime(2_000),
            MrtBody::StateChange(Bgp4mpStateChange {
                session: session(),
                old_state: BgpState::Established,
                new_state: BgpState::Idle,
            }),
        ));
        // Resurrection: the route comes back after a clean deadline...
        writer.push(&announce(900 + 110 * 60));
        // ...and an unrelated prefix much later forces the next deadline
        // to fire from the irrelevant-update tick.
        let mut late = announce(100_000);
        if let MrtBody::Message(m) = &mut late.body {
            if let BgpMessage::Update(u) = &mut m.message {
                u.attrs.mp_reach.as_mut().unwrap().nlri =
                    vec!["2001:db8:ffff::/48".parse().unwrap()];
            }
        }
        writer.push(&late);
        let mut bytes = writer.finish().to_vec();
        // A framed record with an undecodable body, then a truncated header.
        bytes.extend_from_slice(&[0, 0, 0, 50, 0, 16, 0, 1, 0, 0, 0, 2, 0xde, 0xad]);
        bytes.extend_from_slice(&[1, 2, 3]);
        let bytes = bytes::Bytes::from(bytes);

        let schedule = [
            BeaconInterval {
                prefix: prefix(),
                start: SimTime(0),
                withdraw_at: SimTime(900),
            },
            BeaconInterval {
                prefix: prefix(),
                start: SimTime(14_400),
                withdraw_at: SimTime(14_400 + 900),
            },
        ];

        let mut eager = RealtimeDetector::new(ClassifyOptions::default());
        eager.expect_all(schedule);
        let mut eager_alerts = Vec::new();
        let mut reader = MrtReader::new(bytes.clone());
        while let Some(record) = reader.next_record() {
            eager_alerts.extend(eager.push(&record));
        }

        let mut lazy = RealtimeDetector::new(ClassifyOptions::default());
        lazy.expect_all(schedule);
        let lazy_alerts = lazy.ingest_index(&FrameIndex::build(bytes));

        assert!(!eager_alerts.is_empty(), "archive exercises alerts");
        assert_eq!(format!("{eager_alerts:?}"), format!("{lazy_alerts:?}"));
        assert_eq!(eager.pending(), lazy.pending());
    }

    #[test]
    fn alert_accessors() {
        let mut d = detector();
        d.push(&announce(10));
        let alerts = d.advance(SimTime(100_000));
        assert_eq!(alerts[0].prefix(), prefix());
        assert_eq!(alerts[0].peer(), peer());
    }
}
