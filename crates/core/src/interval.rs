//! Beacon intervals: the unit of zombie detection.

use bgpz_beacon::{BeaconEventKind, BeaconSchedule};
use bgpz_types::{Prefix, SimTime};
use std::collections::HashMap;

/// One beacon announcement/withdrawal cycle for one prefix.
///
/// The detection window of an interval runs from `start` (the announcement)
/// to `withdraw_at + threshold`; the paper processes each interval
/// independently, with no state carried over.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeaconInterval {
    /// The beacon prefix.
    pub prefix: Prefix,
    /// Announcement instant (interval start).
    pub start: SimTime,
    /// Withdrawal instant at the origin.
    pub withdraw_at: SimTime,
}

impl BeaconInterval {
    /// The instant at which a stuck route becomes a zombie for a given
    /// threshold (seconds past the withdrawal).
    pub fn check_time(&self, threshold: u64) -> SimTime {
        self.withdraw_at + threshold
    }
}

/// Pairs every announcement in `schedule` with its following withdrawal of
/// the same prefix, producing the interval list.
///
/// An announcement with no following withdrawal (experiment ended while
/// announced) is skipped — its zombie status is undefined. Announcements of
/// a prefix that is re-announced *before* being withdrawn (the footnote-3
/// collision case) are also paired with the next withdrawal; callers that
/// follow the paper drop the earlier, polluted interval via
/// [`bgpz_beacon::PaperBeacons::polluted_announcements`].
pub fn intervals_from_schedule(schedule: &BeaconSchedule) -> Vec<BeaconInterval> {
    let mut by_prefix: HashMap<Prefix, Vec<(SimTime, bool)>> = HashMap::new();
    for event in &schedule.events {
        let is_announce = matches!(event.kind, BeaconEventKind::Announce { .. });
        by_prefix
            .entry(event.prefix)
            .or_default()
            .push((event.time, is_announce));
    }
    let mut out = Vec::new();
    for (prefix, mut events) in by_prefix {
        events.sort_unstable();
        let mut pending: Option<SimTime> = None;
        for (time, is_announce) in events {
            if is_announce {
                // A second announce before any withdraw replaces the
                // pending one (collision case: the wire carries both, the
                // later wins).
                pending = Some(time);
            } else if let Some(start) = pending.take() {
                out.push(BeaconInterval {
                    prefix,
                    start,
                    withdraw_at: time,
                });
            }
        }
    }
    out.sort_by_key(|iv| (iv.start, iv.prefix));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpz_beacon::BeaconEvent;
    use bgpz_types::Asn;

    fn ev(time: u64, prefix: &str, announce: bool) -> BeaconEvent {
        BeaconEvent {
            time: SimTime(time),
            prefix: prefix.parse().unwrap(),
            origin: Asn(210_312),
            kind: if announce {
                BeaconEventKind::Announce { aggregator: None }
            } else {
                BeaconEventKind::Withdraw
            },
        }
    }

    #[test]
    fn pairs_announce_with_withdraw() {
        let schedule = BeaconSchedule {
            events: vec![
                ev(0, "2a0d:3dc1:1::/48", true),
                ev(900, "2a0d:3dc1:1::/48", false),
                ev(14_400, "2a0d:3dc1:1::/48", true),
                ev(15_300, "2a0d:3dc1:1::/48", false),
            ],
        };
        let intervals = intervals_from_schedule(&schedule);
        assert_eq!(intervals.len(), 2);
        assert_eq!(intervals[0].start, SimTime(0));
        assert_eq!(intervals[0].withdraw_at, SimTime(900));
        assert_eq!(intervals[1].start, SimTime(14_400));
        assert_eq!(intervals[0].check_time(5_400), SimTime(6_300));
    }

    #[test]
    fn dangling_announce_skipped() {
        let schedule = BeaconSchedule {
            events: vec![
                ev(0, "2a0d:3dc1:1::/48", true),
                ev(900, "2a0d:3dc1:1::/48", false),
                ev(14_400, "2a0d:3dc1:1::/48", true), // never withdrawn
            ],
        };
        let intervals = intervals_from_schedule(&schedule);
        assert_eq!(intervals.len(), 1);
    }

    #[test]
    fn double_announce_keeps_later() {
        // Footnote-3 collision: two announces, then one withdraw.
        let schedule = BeaconSchedule {
            events: vec![
                ev(0, "2a0d:3dc1:30::/48", true),
                ev(9_000, "2a0d:3dc1:30::/48", true),
                ev(9_900, "2a0d:3dc1:30::/48", false),
            ],
        };
        let intervals = intervals_from_schedule(&schedule);
        assert_eq!(intervals.len(), 1);
        assert_eq!(intervals[0].start, SimTime(9_000));
    }

    #[test]
    fn sorted_across_prefixes() {
        let schedule = BeaconSchedule {
            events: vec![
                ev(1_000, "2a0d:3dc1:2::/48", true),
                ev(1_900, "2a0d:3dc1:2::/48", false),
                ev(0, "2a0d:3dc1:1::/48", true),
                ev(900, "2a0d:3dc1:1::/48", false),
            ],
        };
        let intervals = intervals_from_schedule(&schedule);
        assert_eq!(intervals[0].start, SimTime(0));
        assert_eq!(intervals[1].start, SimTime(1_000));
    }
}
