//! Pass 1: reconstruct per-(peer, prefix) message history per interval.
//!
//! This is the paper's §3.1 step 1 — "reconstructing the state of a
//! prefix" — done solely from archived raw data: BGP UPDATE messages give
//! announce/withdraw transitions, STATE messages give session failures.
//! Each interval is processed with no knowledge of earlier intervals.

use crate::interval::BeaconInterval;
use bgpz_mrt::{BgpState, MrtBody, MrtReadStats, MrtReader};
use bgpz_types::{AsPath, Asn, BgpMessage, Prefix, SimTime};
use bytes::Bytes;
use std::collections::HashMap;
use std::net::{IpAddr, Ipv4Addr};
use std::sync::Arc;

/// Identity of one peer router as seen in the archive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId {
    /// Router session address — the primary key (the paper names noisy
    /// peers by address because one AS can have several routers).
    pub addr: IpAddr,
    /// The peer AS.
    pub asn: Asn,
}

impl std::fmt::Display for PeerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.addr, self.asn)
    }
}

/// One message observed for a (interval, peer) pair.
#[derive(Debug, Clone)]
pub enum Observation {
    /// The peer announced the prefix with this path; the Aggregator IP is
    /// kept for BGP-clock decoding.
    Announce {
        /// Exported AS path.
        path: Arc<AsPath>,
        /// Aggregator attribute IP, if present.
        aggregator: Option<Ipv4Addr>,
    },
    /// The peer withdrew the prefix.
    Withdraw,
}

/// The message history of one (interval, peer).
pub type History = Vec<(SimTime, Observation)>;

/// Scan output: everything classification needs, for every threshold.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// The intervals scanned, in input order.
    pub intervals: Vec<BeaconInterval>,
    /// All peers seen in the archive, sorted.
    pub peers: Vec<PeerId>,
    /// Per interval (outer index parallel to `intervals`): the observation
    /// history of each peer that said anything about the prefix.
    pub histories: Vec<HashMap<PeerId, History>>,
    /// Session-down instants per peer (from STATE messages), sorted.
    pub session_downs: HashMap<PeerId, Vec<SimTime>>,
    /// Raw-archive read statistics (tolerant reader).
    pub read_stats: MrtReadStats,
}

impl ScanResult {
    /// Number of beacon announcements scanned — the denominator of the
    /// paper's percentages and the "visible prefixes" of Table 1.
    pub fn announcement_count(&self) -> usize {
        self.intervals.len()
    }
}

/// Scans `updates` (an MRT BGP4MP stream) against `intervals`.
///
/// `window_after_withdraw` bounds how far past each withdrawal
/// observations are collected — make it at least the largest threshold you
/// will classify with (the paper sweeps to 180 minutes).
pub fn scan(
    updates: Bytes,
    intervals: &[BeaconInterval],
    window_after_withdraw: u64,
) -> ScanResult {
    // Index intervals by prefix, sorted by start, for window lookup.
    let mut by_prefix: HashMap<Prefix, Vec<usize>> = HashMap::new();
    for (i, interval) in intervals.iter().enumerate() {
        by_prefix.entry(interval.prefix).or_default().push(i);
    }
    for list in by_prefix.values_mut() {
        list.sort_by_key(|&i| intervals[i].start);
    }
    let window_end = |iv: &BeaconInterval| -> SimTime { iv.withdraw_at + window_after_withdraw };

    // Locates the interval whose window contains (prefix, t), preferring
    // the latest-starting one (collision safety).
    let locate = |prefix: Prefix, t: SimTime| -> Option<usize> {
        let list = by_prefix.get(&prefix)?;
        // Binary search for the last interval with start <= t.
        let pos = list.partition_point(|&i| intervals[i].start <= t);
        if pos == 0 {
            return None;
        }
        let idx = list[pos - 1];
        (t <= window_end(&intervals[idx])).then_some(idx)
    };

    let mut result = ScanResult {
        intervals: intervals.to_vec(),
        histories: vec![HashMap::new(); intervals.len()],
        ..ScanResult::default()
    };
    let mut peers_seen: HashMap<PeerId, ()> = HashMap::new();

    let mut reader = MrtReader::new(updates);
    while let Some(record) = reader.next_record() {
        match record.body {
            MrtBody::Message(msg) => {
                let peer = PeerId {
                    addr: msg.session.peer_ip,
                    asn: msg.session.peer_as,
                };
                let BgpMessage::Update(update) = msg.message else {
                    continue;
                };
                peers_seen.entry(peer).or_default();
                let aggregator = update.attrs.aggregator.map(|a| a.addr);
                let path = update.attrs.as_path.clone().map(Arc::new);
                for prefix in update.announced() {
                    let Some(idx) = locate(prefix, record.timestamp) else {
                        continue;
                    };
                    let Some(path) = path.clone() else {
                        continue; // an announcement without AS_PATH is bogus
                    };
                    result.histories[idx]
                        .entry(peer)
                        .or_default()
                        .push((record.timestamp, Observation::Announce { path, aggregator }));
                }
                for prefix in update.withdrawn_all() {
                    let Some(idx) = locate(prefix, record.timestamp) else {
                        continue;
                    };
                    result.histories[idx]
                        .entry(peer)
                        .or_default()
                        .push((record.timestamp, Observation::Withdraw));
                }
            }
            MrtBody::StateChange(change) => {
                let peer = PeerId {
                    addr: change.session.peer_ip,
                    asn: change.session.peer_as,
                };
                peers_seen.entry(peer).or_default();
                if change.old_state == BgpState::Established
                    && change.new_state != BgpState::Established
                {
                    result
                        .session_downs
                        .entry(peer)
                        .or_default()
                        .push(record.timestamp);
                }
            }
            MrtBody::PeerIndex(_) | MrtBody::Rib(_) => {
                // RIB dumps are consumed by the lifespan tracker, not here.
            }
        }
    }
    for downs in result.session_downs.values_mut() {
        downs.sort_unstable();
    }
    result.peers = peers_seen.into_keys().collect();
    result.peers.sort();
    result.read_stats = reader.stats();
    result
}

/// Records post-merge scan metrics. Called exactly once per
/// [`scan_sharded`] call — never per shard, where totals would scale with
/// the worker count — so every counter is invariant under `jobs`.
fn record_scan_metrics(result: &ScanResult) {
    use bgpz_obs::metrics::counter;
    let stats = result.read_stats;
    counter("mrt::read", "records_ok", stats.ok as u64);
    counter("mrt::read", "records_skipped", stats.skipped as u64);
    counter("mrt::read", "trailing_bytes", stats.trailing_bytes as u64);
    counter("mrt::read", "records_ok_messages", stats.ok_messages as u64);
    counter(
        "mrt::read",
        "records_ok_state_changes",
        stats.ok_state_changes as u64,
    );
    counter("mrt::read", "records_ok_rib", stats.ok_rib as u64);
    counter(
        "mrt::read",
        "records_ok_peer_index",
        stats.ok_peer_index as u64,
    );
    let observations: usize = result
        .histories
        .iter()
        .map(|h| h.values().map(|history| history.len()).sum::<usize>())
        .sum();
    counter("core::scan", "intervals", result.intervals.len() as u64);
    counter("core::scan", "peers", result.peers.len() as u64);
    counter("core::scan", "observations", observations as u64);
    bgpz_obs::debug!(
        target: "core::scan",
        "scanned {} intervals: {} peers, {} observations, {} records ok / {} skipped",
        result.intervals.len(),
        result.peers.len(),
        observations,
        stats.ok,
        stats.skipped
    );
}

/// Scans `updates` against `intervals` on `jobs` worker threads, producing
/// a [`ScanResult`] byte-identical to the serial [`scan`].
///
/// The intervals are partitioned by **prefix** (all intervals of one
/// prefix land in the same shard) because interval location prefers the
/// latest-starting interval of a prefix whose window still covers the
/// observation: splitting a prefix's intervals across shards could hand an
/// observation to an older interval that the serial path assigns to a
/// newer one. Prefix groups are dealt round-robin over the shards in
/// sorted-prefix order and each shard's histories are scattered back into
/// the original interval positions, so the merge is deterministic and
/// independent of both thread count and scheduling order: same input ⇒
/// identical output for every `jobs`.
///
/// `jobs <= 1` (or a trivially small input) delegates to [`scan`].
pub fn scan_sharded(
    updates: Bytes,
    intervals: &[BeaconInterval],
    window_after_withdraw: u64,
    jobs: usize,
) -> ScanResult {
    let _span = bgpz_obs::span("core::scan", "scan_sharded");
    // Group interval indices by prefix.
    let mut by_prefix: HashMap<Prefix, Vec<usize>> = HashMap::new();
    for (i, interval) in intervals.iter().enumerate() {
        by_prefix.entry(interval.prefix).or_default().push(i);
    }
    let shard_count = jobs.min(by_prefix.len());
    if shard_count <= 1 {
        let result = scan(updates, intervals, window_after_withdraw);
        record_scan_metrics(&result);
        return result;
    }
    bgpz_obs::debug!(
        target: "core::scan",
        "scanning {} intervals across {shard_count} shards",
        intervals.len()
    );

    // Deterministic shard assignment: sorted prefixes, round-robin.
    let mut prefixes: Vec<Prefix> = by_prefix.keys().copied().collect();
    prefixes.sort_unstable();
    let mut shards: Vec<Vec<usize>> = vec![Vec::new(); shard_count];
    for (k, prefix) in prefixes.iter().enumerate() {
        shards[k % shard_count].extend(by_prefix[prefix].iter().copied());
    }

    // Scan every shard against the shared archive (Bytes clones share the
    // underlying buffer) and collect in shard order.
    let shard_results: Vec<ScanResult> = crossbeam::thread::scope(|s| {
        let handles: Vec<_> = shards
            .iter()
            .map(|indices| {
                let updates = updates.clone();
                s.spawn(move |_| {
                    let subset: Vec<BeaconInterval> =
                        indices.iter().map(|&i| intervals[i]).collect();
                    scan(updates, &subset, window_after_withdraw)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scan shard worker panicked"))
            .collect()
    })
    .expect("scan shard scope panicked");

    // Merge. Peers, session downs, and read stats are derived from the
    // whole archive, so every shard computed identical copies — take the
    // first. Histories are scattered back to their original positions.
    let mut merged = ScanResult {
        intervals: intervals.to_vec(),
        histories: (0..intervals.len()).map(|_| HashMap::new()).collect(),
        ..ScanResult::default()
    };
    let mut shard_results = shard_results;
    let first = &mut shard_results[0];
    merged.peers = std::mem::take(&mut first.peers);
    merged.session_downs = std::mem::take(&mut first.session_downs);
    merged.read_stats = first.read_stats;
    for (indices, result) in shards.iter().zip(shard_results) {
        for (&orig, history) in indices.iter().zip(result.histories) {
            merged.histories[orig] = history;
        }
    }
    record_scan_metrics(&merged);
    merged
}

/// The peer's route state for an interval at `check_time`, derived from
/// its history and session-down record. `None` = removed / never present.
pub fn state_at(
    history: &History,
    session_downs: &[SimTime],
    interval: &BeaconInterval,
    check_time: SimTime,
) -> Option<(SimTime, Arc<AsPath>, Option<Ipv4Addr>)> {
    let mut last: Option<(SimTime, &Observation)> = None;
    for (t, obs) in history {
        if *t > check_time {
            break;
        }
        if *t >= interval.start {
            last = Some((*t, obs));
        }
    }
    let (t, obs) = last?;
    match obs {
        Observation::Withdraw => None,
        Observation::Announce { path, aggregator } => {
            // A session drop after the last announcement removes the route.
            let dropped = session_downs
                .iter()
                .any(|&down| down > t && down <= check_time);
            if dropped {
                None
            } else {
                Some((t, Arc::clone(path), *aggregator))
            }
        }
    }
}

/// The peer's "normal path": its last announced path at or before the
/// origin's withdrawal instant.
pub fn normal_path(history: &History, interval: &BeaconInterval) -> Option<Arc<AsPath>> {
    let mut normal = None;
    for (t, obs) in history {
        if *t > interval.withdraw_at {
            break;
        }
        if *t < interval.start {
            continue;
        }
        match obs {
            Observation::Announce { path, .. } => normal = Some(Arc::clone(path)),
            Observation::Withdraw => normal = None,
        }
    }
    normal
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpz_mrt::bgp4mp::SessionHeader;
    use bgpz_mrt::{Bgp4mpMessage, Bgp4mpStateChange, MrtRecord, MrtWriter};
    use bgpz_types::attrs::{Aggregator, MpReach, MpUnreach, NextHop, Origin};
    use bgpz_types::{Afi, BgpUpdate, PathAttributes};

    const PEER: Asn = Asn(211_380);

    fn session() -> SessionHeader {
        SessionHeader {
            peer_as: PEER,
            local_as: Asn(12_654),
            ifindex: 0,
            peer_ip: "2a0c:9a40:1031::504".parse().unwrap(),
            local_ip: "2001:7f8:24::82".parse().unwrap(),
        }
    }

    fn peer_id() -> PeerId {
        PeerId {
            addr: "2a0c:9a40:1031::504".parse().unwrap(),
            asn: PEER,
        }
    }

    fn announce_record(t: u64, prefix: &str, aggregator: Option<Ipv4Addr>) -> MrtRecord {
        let prefix: Prefix = prefix.parse().unwrap();
        let attrs = PathAttributes {
            origin: Some(Origin::Igp),
            as_path: Some(AsPath::from_sequence([PEER.0, 25_091, 8_298, 210_312])),
            aggregator: aggregator.map(|addr| Aggregator {
                asn: Asn(210_312),
                addr,
            }),
            mp_reach: Some(MpReach {
                afi: Afi::Ipv6,
                safi: 1,
                next_hop: NextHop::V6 {
                    global: "2a0c:9a40:1031::504".parse().unwrap(),
                    link_local: None,
                },
                nlri: vec![prefix],
            }),
            ..PathAttributes::default()
        };
        MrtRecord::new(
            SimTime(t),
            MrtBody::Message(Bgp4mpMessage {
                session: session(),
                message: BgpMessage::Update(BgpUpdate {
                    attrs,
                    ..BgpUpdate::default()
                }),
            }),
        )
    }

    fn withdraw_record(t: u64, prefix: &str) -> MrtRecord {
        let prefix: Prefix = prefix.parse().unwrap();
        MrtRecord::new(
            SimTime(t),
            MrtBody::Message(Bgp4mpMessage {
                session: session(),
                message: BgpMessage::Update(BgpUpdate {
                    attrs: PathAttributes {
                        mp_unreach: Some(MpUnreach {
                            afi: Afi::Ipv6,
                            safi: 1,
                            withdrawn: vec![prefix],
                        }),
                        ..PathAttributes::default()
                    },
                    ..BgpUpdate::default()
                }),
            }),
        )
    }

    fn down_record(t: u64) -> MrtRecord {
        MrtRecord::new(
            SimTime(t),
            MrtBody::StateChange(Bgp4mpStateChange {
                session: session(),
                old_state: BgpState::Established,
                new_state: BgpState::Idle,
            }),
        )
    }

    fn interval() -> BeaconInterval {
        BeaconInterval {
            prefix: "2a0d:3dc1:1::/48".parse().unwrap(),
            start: SimTime(0),
            withdraw_at: SimTime(7_200),
        }
    }

    fn run_scan(records: Vec<MrtRecord>) -> ScanResult {
        let mut writer = MrtWriter::new();
        for r in &records {
            writer.push(r);
        }
        scan(writer.finish(), &[interval()], 4 * 3_600)
    }

    #[test]
    fn announce_then_withdraw_is_clean() {
        let result = run_scan(vec![
            announce_record(5, "2a0d:3dc1:1::/48", None),
            withdraw_record(7_210, "2a0d:3dc1:1::/48"),
        ]);
        assert_eq!(result.announcement_count(), 1);
        let history = &result.histories[0][&peer_id()];
        assert_eq!(history.len(), 2);
        let state = state_at(history, &[], &interval(), SimTime(7_200 + 5_400));
        assert!(state.is_none());
        let normal = normal_path(history, &interval()).unwrap();
        assert_eq!(normal.origin(), Some(Asn(210_312)));
    }

    #[test]
    fn missing_withdraw_is_stuck() {
        let result = run_scan(vec![announce_record(5, "2a0d:3dc1:1::/48", None)]);
        let history = &result.histories[0][&peer_id()];
        let state = state_at(history, &[], &interval(), SimTime(12_600));
        let (t, path, _) = state.expect("stuck route expected");
        assert_eq!(t, SimTime(5));
        assert_eq!(path.origin(), Some(Asn(210_312)));
    }

    #[test]
    fn session_down_clears_state() {
        let result = run_scan(vec![
            announce_record(5, "2a0d:3dc1:1::/48", None),
            down_record(8_000),
        ]);
        let history = &result.histories[0][&peer_id()];
        let downs = &result.session_downs[&peer_id()];
        assert_eq!(downs, &vec![SimTime(8_000)]);
        assert!(state_at(history, downs, &interval(), SimTime(12_600)).is_none());
        // But before the drop it was present.
        assert!(state_at(history, downs, &interval(), SimTime(7_000)).is_some());
    }

    #[test]
    fn reannounce_after_down_is_present_again() {
        let result = run_scan(vec![
            announce_record(5, "2a0d:3dc1:1::/48", None),
            down_record(8_000),
            announce_record(9_000, "2a0d:3dc1:1::/48", None),
        ]);
        let history = &result.histories[0][&peer_id()];
        let downs = &result.session_downs[&peer_id()];
        assert!(state_at(history, downs, &interval(), SimTime(12_600)).is_some());
    }

    #[test]
    fn observations_before_interval_ignored() {
        // An announce 10 s before the interval start must not count
        // (no prior knowledge — paper §3.1).
        let result = run_scan(vec![announce_record(0, "2a0d:3dc1:1::/48", None)]);
        let iv = BeaconInterval {
            start: SimTime(10),
            ..interval()
        };
        let history = &result.histories[0][&peer_id()];
        assert!(state_at(history, &[], &iv, SimTime(12_600)).is_none());
    }

    #[test]
    fn observations_outside_window_not_collected() {
        let result = run_scan(vec![
            announce_record(5, "2a0d:3dc1:1::/48", None),
            // Past withdraw + window (7 200 + 14 400).
            withdraw_record(30_000, "2a0d:3dc1:1::/48"),
        ]);
        let history = &result.histories[0][&peer_id()];
        assert_eq!(history.len(), 1);
    }

    #[test]
    fn unrelated_prefixes_ignored() {
        let result = run_scan(vec![announce_record(5, "2a0d:3dc1:2::/48", None)]);
        assert!(result.histories[0].is_empty());
    }

    #[test]
    fn aggregator_is_preserved() {
        let clock = Ipv4Addr::new(10, 19, 29, 192);
        let result = run_scan(vec![announce_record(5, "2a0d:3dc1:1::/48", Some(clock))]);
        let history = &result.histories[0][&peer_id()];
        let (_, _, agg) = state_at(history, &[], &interval(), SimTime(12_600)).unwrap();
        assert_eq!(agg, Some(clock));
    }

    #[test]
    fn normal_path_is_none_after_pre_withdrawal_withdraw() {
        // Peer withdrew before the origin's withdrawal instant (e.g. local
        // policy change): no normal path.
        let result = run_scan(vec![
            announce_record(5, "2a0d:3dc1:1::/48", None),
            withdraw_record(3_000, "2a0d:3dc1:1::/48"),
        ]);
        let history = &result.histories[0][&peer_id()];
        assert!(normal_path(history, &interval()).is_none());
    }

    #[test]
    fn peers_listed_sorted() {
        let result = run_scan(vec![announce_record(5, "2a0d:3dc1:1::/48", None)]);
        assert_eq!(result.peers, vec![peer_id()]);
    }

    // ---- sharded-scan determinism --------------------------------------

    fn session_b() -> SessionHeader {
        SessionHeader {
            peer_as: Asn(65_001),
            local_as: Asn(12_654),
            ifindex: 0,
            peer_ip: "2001:db8:b::1".parse().unwrap(),
            local_ip: "2001:7f8:24::82".parse().unwrap(),
        }
    }

    fn announce_as(session: SessionHeader, t: u64, prefix: &str) -> MrtRecord {
        let prefix: Prefix = prefix.parse().unwrap();
        let attrs = PathAttributes {
            origin: Some(Origin::Igp),
            as_path: Some(AsPath::from_sequence([
                session.peer_as.0,
                25_091,
                8_298,
                210_312,
            ])),
            mp_reach: Some(MpReach {
                afi: Afi::Ipv6,
                safi: 1,
                next_hop: NextHop::V6 {
                    global: "2a0c:9a40:1031::504".parse().unwrap(),
                    link_local: None,
                },
                nlri: vec![prefix],
            }),
            ..PathAttributes::default()
        };
        MrtRecord::new(
            SimTime(t),
            MrtBody::Message(Bgp4mpMessage {
                session,
                message: BgpMessage::Update(BgpUpdate {
                    attrs,
                    ..BgpUpdate::default()
                }),
            }),
        )
    }

    fn withdraw_as(session: SessionHeader, t: u64, prefix: &str) -> MrtRecord {
        let prefix: Prefix = prefix.parse().unwrap();
        MrtRecord::new(
            SimTime(t),
            MrtBody::Message(Bgp4mpMessage {
                session,
                message: BgpMessage::Update(BgpUpdate {
                    attrs: PathAttributes {
                        mp_unreach: Some(MpUnreach {
                            afi: Afi::Ipv6,
                            safi: 1,
                            withdrawn: vec![prefix],
                        }),
                        ..PathAttributes::default()
                    },
                    ..BgpUpdate::default()
                }),
            }),
        )
    }

    /// A deterministic, order-insensitive rendering of a [`ScanResult`]
    /// (HashMap iteration order normalized by sorting keys).
    fn fingerprint(result: &ScanResult) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "intervals={:?}", result.intervals);
        let _ = writeln!(out, "peers={:?}", result.peers);
        let _ = writeln!(out, "stats={:?}", result.read_stats);
        for (i, histories) in result.histories.iter().enumerate() {
            let mut keys: Vec<&PeerId> = histories.keys().collect();
            keys.sort();
            for key in keys {
                let _ = writeln!(out, "history[{i}][{key}]={:?}", histories[key]);
            }
        }
        let mut downs: Vec<(&PeerId, &Vec<SimTime>)> = result.session_downs.iter().collect();
        downs.sort_by_key(|&(peer, _)| peer);
        for (peer, times) in downs {
            let _ = writeln!(out, "downs[{peer}]={times:?}");
        }
        out
    }

    /// Serial vs sharded scans over a multi-prefix, multi-interval,
    /// multi-peer archive — including the boundary case where an
    /// observation falls inside an older interval's window *and* after a
    /// newer interval's start (the newer must win on every path).
    #[test]
    fn sharded_scan_matches_serial() {
        let prefixes = ["2a0d:3dc1:1::/48", "2a0d:3dc1:2::/48", "2a0d:3dc1:3::/48"];
        let mut intervals = Vec::new();
        for prefix in &prefixes {
            for k in 0..3u64 {
                intervals.push(BeaconInterval {
                    prefix: prefix.parse().unwrap(),
                    start: SimTime(k * 14_400),
                    withdraw_at: SimTime(k * 14_400 + 7_200),
                });
            }
        }

        let mut records = Vec::new();
        for (p, prefix) in prefixes.iter().enumerate() {
            for k in 0..3u64 {
                let base = k * 14_400;
                records.push(announce_as(session(), base + 5 + p as u64, prefix));
                if (k + p as u64) % 2 == 0 {
                    records.push(withdraw_as(session(), base + 7_210, prefix));
                }
                records.push(announce_as(session_b(), base + 9, prefix));
            }
            // Boundary observation: t = 15 000 is within interval 0's
            // window (7 200 + 14 400 = 21 600) but after interval 1's
            // start (14 400) — it must land in interval 1 everywhere.
            records.push(withdraw_as(session_b(), 15_000, prefix));
        }
        records.push(down_record(8_000));
        records.sort_by_key(|r| r.timestamp);

        let mut writer = MrtWriter::new();
        for record in &records {
            writer.push(record);
        }
        let bytes = writer.finish();

        let serial = scan(bytes.clone(), &intervals, 4 * 3_600);
        let reference = fingerprint(&serial);
        assert!(
            !serial.histories[1].is_empty(),
            "archive exercises histories"
        );
        for jobs in [1, 2, 3, 8] {
            let sharded = scan_sharded(bytes.clone(), &intervals, 4 * 3_600, jobs);
            assert_eq!(
                fingerprint(&sharded),
                reference,
                "sharded scan with {jobs} worker(s) diverged from serial"
            );
        }
    }
}
