//! Pass 1: reconstruct per-(peer, prefix) message history per interval.
//!
//! This is the paper's §3.1 step 1 — "reconstructing the state of a
//! prefix" — done solely from archived raw data: BGP UPDATE messages give
//! announce/withdraw transitions, STATE messages give session failures.
//! Each interval is processed with no knowledge of earlier intervals.
//!
//! Two equivalent execution paths produce byte-identical [`ScanResult`]s:
//!
//! * [`scan`] — the eager reference path: decode every record with the
//!   tolerant [`MrtReader`] and fold it into the accumulator.
//! * [`scan_indexed`] — the fast path: frame the archive once into a
//!   [`FrameIndex`], then *prefilter on raw bytes*. Each frame is
//!   validated and classified without allocating; a BGP UPDATE pays for
//!   a full decode only when its NLRI mentions a beacon prefix. STATE
//!   records (session downs) and relevant UPDATEs decode fully;
//!   everything else is counted and skipped at the byte level.
//!
//! [`scan_sharded`] is the public entry point used by experiments: it
//! builds the index and delegates to [`scan_indexed`].

use crate::interval::BeaconInterval;
use bgpz_mrt::{
    BgpState, FrameIndex, FrameKind, MrtBody, MrtReadStats, MrtReader, MrtRecord, ScanMessage,
    UpdateView,
};
use bgpz_types::{Afi, AsPath, Asn, BgpMessage, Prefix, SimTime};
use bytes::Bytes;
use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};
use std::net::{IpAddr, Ipv4Addr};
use std::ops::Range;
use std::sync::Arc;

/// Multiplicative byte hasher (FxHash-style) for the scan's *internal*
/// lookup tables: the per-frame relevance probe, the peer set, and the
/// AS-path interner. These keys are trusted simulator/archive data, not
/// attacker input, so SipHash's DoS hardening buys nothing here while
/// costing a measurable slice of every frame. The tables never escape
/// into [`ScanResult`] (its public maps keep the std hasher), and every
/// consumer of these tables sorts before exposure, so iteration order is
/// irrelevant.
#[derive(Default)]
struct FxHasher(u64);

/// `BuildHasher` for [`FxHasher`] — deterministic, no per-map seed.
type FxBuild = BuildHasherDefault<FxHasher>;

impl FxHasher {
    const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

    #[inline]
    fn mix(&mut self, word: u64) {
        self.0 = (self.0.rotate_left(5) ^ word).wrapping_mul(Self::SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().unwrap_or_default()));
        }
        let mut tail = 0u64;
        for &b in chunks.remainder() {
            tail = (tail << 8) | u64::from(b);
        }
        self.mix(tail);
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.mix(u64::from(v));
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.mix(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.mix(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }
}

/// Identity of one peer router as seen in the archive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId {
    /// Router session address — the primary key (the paper names noisy
    /// peers by address because one AS can have several routers).
    pub addr: IpAddr,
    /// The peer AS.
    pub asn: Asn,
}

impl std::fmt::Display for PeerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.addr, self.asn)
    }
}

/// One message observed for a (interval, peer) pair.
#[derive(Debug, Clone)]
pub enum Observation {
    /// The peer announced the prefix with this path; the Aggregator IP is
    /// kept for BGP-clock decoding.
    Announce {
        /// Exported AS path.
        path: Arc<AsPath>,
        /// Aggregator attribute IP, if present.
        aggregator: Option<Ipv4Addr>,
    },
    /// The peer withdrew the prefix.
    Withdraw,
}

/// The message history of one (interval, peer).
pub type History = Vec<(SimTime, Observation)>;

/// Scan output: everything classification needs, for every threshold.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// The intervals scanned, in input order.
    pub intervals: Vec<BeaconInterval>,
    /// All peers seen in the archive, sorted.
    pub peers: Vec<PeerId>,
    /// Per interval (outer index parallel to `intervals`): the observation
    /// history of each peer that said anything about the prefix.
    pub histories: Vec<HashMap<PeerId, History>>,
    /// Session-down instants per peer (from STATE messages), sorted.
    pub session_downs: HashMap<PeerId, Vec<SimTime>>,
    /// Raw-archive read statistics (tolerant reader).
    pub read_stats: MrtReadStats,
}

impl ScanResult {
    /// Number of beacon announcements scanned — the denominator of the
    /// paper's percentages and the "visible prefixes" of Table 1.
    pub fn announcement_count(&self) -> usize {
        self.intervals.len()
    }
}

/// Prefix → interval lookup shared by every scan path.
///
/// Locating prefers the latest-starting interval of a prefix whose window
/// still covers the observation (collision safety when windows overlap).
struct IntervalLocator<'a> {
    intervals: &'a [BeaconInterval],
    /// Interval indices per prefix, sorted by interval start.
    by_prefix: HashMap<Prefix, Vec<usize>, FxBuild>,
    /// Byte-level beacon needles — (AFI, bit length, masked prefix
    /// bytes), one per distinct beacon prefix — for
    /// [`IntervalLocator::relevant_wire`].
    needles: Vec<(Afi, u8, [u8; 16])>,
    window_after_withdraw: u64,
}

/// A prefix's byte-level needle: its AFI, bit length, and (masked)
/// network bytes, zero-padded to 16.
fn needle_of(prefix: Prefix) -> (Afi, u8, [u8; 16]) {
    match prefix {
        Prefix::V4(p) => {
            let [a, b, c, d] = p.addr().octets();
            let bytes = [a, b, c, d, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0];
            (Afi::Ipv4, p.len(), bytes)
        }
        Prefix::V6(p) => (Afi::Ipv6, p.len(), p.addr().octets()),
    }
}

impl<'a> IntervalLocator<'a> {
    fn new(intervals: &'a [BeaconInterval], window_after_withdraw: u64) -> IntervalLocator<'a> {
        let mut by_prefix: HashMap<Prefix, Vec<usize>, FxBuild> = HashMap::default();
        let mut needles = Vec::new();
        for (i, interval) in intervals.iter().enumerate() {
            by_prefix.entry(interval.prefix).or_default().push(i);
            let needle = needle_of(interval.prefix);
            if !needles.contains(&needle) {
                needles.push(needle);
            }
        }
        for list in by_prefix.values_mut() {
            list.sort_by_key(|&i| intervals[i].start);
        }
        IntervalLocator {
            intervals,
            by_prefix,
            needles,
            window_after_withdraw,
        }
    }

    /// Cheap relevance test on a raw NLRI item: does it encode a beacon
    /// prefix? Exactly equivalent to decoding the item and probing the
    /// prefix table — the item's trailing host bits are masked the way
    /// [`Prefix::decode_nlri`] masks them — but pays a handful of byte
    /// compares instead of a `Prefix` construction plus a hash. Windows
    /// are checked later by [`IntervalLocator::locate`], so a `true` here
    /// is a superset of what actually lands in a history.
    fn relevant_wire(&self, afi: Afi, bits: u8, item: &[u8]) -> bool {
        self.needles.iter().any(|&(nafi, nbits, ref nbytes)| {
            if nafi != afi || nbits != bits {
                return false;
            }
            // A /0 item carries no bytes and matches a /0 needle.
            let Some((&last, head)) = item.split_last() else {
                return true;
            };
            let Some((&nlast, nhead)) = nbytes.get(..item.len()).and_then(<[u8]>::split_last)
            else {
                return false;
            };
            let mask = 0xFFu8 << ((8 - bits % 8) % 8);
            head == nhead && (last & mask) == nlast
        })
    }

    /// Locates the interval whose window contains (prefix, t), preferring
    /// the latest-starting one.
    fn locate(&self, prefix: Prefix, t: SimTime) -> Option<usize> {
        let list = self.by_prefix.get(&prefix)?;
        // Binary search for the last interval with start <= t.
        let pos = list.partition_point(|&i| self.intervals[i].start <= t);
        if pos == 0 {
            return None;
        }
        let idx = list[pos - 1];
        let end = self.intervals[idx].withdraw_at + self.window_after_withdraw;
        (t <= end).then_some(idx)
    }
}

/// Hash-consing cache for AS paths: one `Arc<AsPath>` per distinct path
/// per scan. Archives repeat the same handful of paths thousands of
/// times; interning collapses them to shared allocations.
///
/// Two keyings share the store of interned paths:
/// * [`PathInterner::intern`] — by decoded [`AsPath`], used by the eager
///   reference path;
/// * [`PathInterner::intern_wire`] — by raw attribute-value bytes (plus
///   the AS width byte), used by the fused scan path so a repeated wire
///   encoding never pays for an `AsPath` decode at all. Distinct wire
///   encodings of an equal path yield distinct (value-equal) `Arc`s,
///   which is invisible to every consumer — observations compare paths by
///   value, never by pointer.
#[derive(Default)]
struct PathInterner {
    paths: HashMap<AsPath, Arc<AsPath>, FxBuild>,
    by_wire: HashMap<Box<[u8]>, Arc<AsPath>, FxBuild>,
}

impl PathInterner {
    fn intern(&mut self, path: &AsPath) -> Arc<AsPath> {
        if let Some(interned) = self.paths.get(path) {
            return Arc::clone(interned);
        }
        let interned = Arc::new(path.clone());
        self.paths.insert(path.clone(), Arc::clone(&interned));
        interned
    }

    /// Interns an AS path straight from its attribute-value wire bytes,
    /// decoding only on the first sighting of an encoding. `key_buf` is
    /// caller-provided scratch so the lookup allocates nothing on a hit.
    /// `None` only if the (already validated) bytes fail to decode —
    /// unreachable in practice, tolerated defensively.
    fn intern_wire(
        &mut self,
        wire: &[u8],
        four_byte: bool,
        key_buf: &mut Vec<u8>,
    ) -> Option<Arc<AsPath>> {
        key_buf.clear();
        key_buf.push(u8::from(four_byte));
        key_buf.extend_from_slice(wire);
        if let Some(interned) = self.by_wire.get(key_buf.as_slice()) {
            return Some(Arc::clone(interned));
        }
        let mut buf = wire;
        let path = AsPath::decode(&mut buf, wire.len(), four_byte).ok()?;
        let interned = Arc::new(path);
        self.by_wire
            .insert(key_buf.as_slice().into(), Arc::clone(&interned));
        Some(interned)
    }
}

/// Per-worker reusable decode scratch for the fused scan path: announced
/// and withdrawn NLRI prefix buffers plus the AS-path interning key. The
/// buffers are cleared, never dropped, so the ≤1-visit-per-relevant-frame
/// hot loop stops allocating per record.
#[derive(Default)]
struct ScratchArena {
    announced: Vec<Prefix>,
    withdrawn: Vec<Prefix>,
    path_key: Vec<u8>,
}

/// Mutable scan state folded over records in archive order. Both the
/// eager and the indexed path funnel decoded records through
/// [`Accum::apply`], so their per-record semantics cannot drift.
///
/// Every map here is [`FxBuild`]-keyed: the accumulator is internal fold
/// state touched once per observation, and [`finish`] converts the
/// history and session maps to the std hasher when it builds the public
/// [`ScanResult`] — one rehash per distinct key instead of a SipHash per
/// observation.
struct Accum {
    histories: Vec<HashMap<PeerId, History, FxBuild>>,
    peers: HashSet<PeerId, FxBuild>,
    session_downs: HashMap<PeerId, Vec<SimTime>, FxBuild>,
    interner: PathInterner,
}

impl Accum {
    fn new(interval_count: usize) -> Accum {
        Accum {
            histories: vec![HashMap::default(); interval_count],
            peers: HashSet::default(),
            session_downs: HashMap::default(),
            interner: PathInterner::default(),
        }
    }

    fn apply(&mut self, record: &MrtRecord, locator: &IntervalLocator<'_>) {
        match &record.body {
            MrtBody::Message(msg) => {
                let peer = PeerId {
                    addr: msg.session.peer_ip,
                    asn: msg.session.peer_as,
                };
                let BgpMessage::Update(update) = &msg.message else {
                    return;
                };
                self.peers.insert(peer);
                let aggregator = update.attrs.aggregator.as_ref().map(|a| a.addr);
                let path = update
                    .attrs
                    .as_path
                    .as_ref()
                    .map(|p| self.interner.intern(p));
                for prefix in update.announced_iter() {
                    let Some(idx) = locator.locate(prefix, record.timestamp) else {
                        continue;
                    };
                    let Some(path) = path.clone() else {
                        continue; // an announcement without AS_PATH is bogus
                    };
                    self.histories[idx]
                        .entry(peer)
                        .or_default()
                        .push((record.timestamp, Observation::Announce { path, aggregator }));
                }
                for prefix in update.withdrawn_iter() {
                    let Some(idx) = locator.locate(prefix, record.timestamp) else {
                        continue;
                    };
                    self.histories[idx]
                        .entry(peer)
                        .or_default()
                        .push((record.timestamp, Observation::Withdraw));
                }
            }
            MrtBody::StateChange(change) => {
                let peer = PeerId {
                    addr: change.session.peer_ip,
                    asn: change.session.peer_as,
                };
                self.peers.insert(peer);
                if change.old_state == BgpState::Established
                    && change.new_state != BgpState::Established
                {
                    self.session_downs
                        .entry(peer)
                        .or_default()
                        .push(record.timestamp);
                }
            }
            MrtBody::PeerIndex(_) | MrtBody::Rib(_) => {
                // RIB dumps are consumed by the lifespan tracker, not here.
            }
        }
    }

    /// Folds one *relevant* UPDATE in, straight from its zero-copy
    /// [`UpdateView`] — the fused-path twin of the `MrtBody::Message` arm
    /// of [`Accum::apply`], with identical per-record semantics: peer
    /// already registered by the caller, aggregator/path captured with
    /// last-wins, announcements without an AS path skipped, withdrawal
    /// order preserved. NLRI decodes land in `scratch`, not fresh `Vec`s.
    fn apply_view(
        &mut self,
        view: &UpdateView<'_>,
        peer: PeerId,
        t: SimTime,
        locator: &IntervalLocator<'_>,
        scratch: &mut ScratchArena,
    ) {
        let aggregator = view.aggregator();
        let path = view.as_path_wire().and_then(|(wire, four_byte)| {
            self.interner
                .intern_wire(wire, four_byte, &mut scratch.path_key)
        });
        scratch.announced.clear();
        view.announced_into(&mut scratch.announced);
        for &prefix in &scratch.announced {
            let Some(idx) = locator.locate(prefix, t) else {
                continue;
            };
            let Some(path) = path.clone() else {
                continue; // an announcement without AS_PATH is bogus
            };
            let Some(history) = self.histories.get_mut(idx) else {
                continue;
            };
            history
                .entry(peer)
                .or_default()
                .push((t, Observation::Announce { path, aggregator }));
        }
        scratch.withdrawn.clear();
        view.withdrawn_into(&mut scratch.withdrawn);
        for &prefix in &scratch.withdrawn {
            let Some(idx) = locator.locate(prefix, t) else {
                continue;
            };
            let Some(history) = self.histories.get_mut(idx) else {
                continue;
            };
            history
                .entry(peer)
                .or_default()
                .push((t, Observation::Withdraw));
        }
    }
}

/// Finalizes an accumulator into a [`ScanResult`]: sorts downs and peers,
/// converts the Fx-keyed fold maps to the std-hashed public maps (one
/// rehash per distinct key), attaches the read statistics.
fn finish(acc: Accum, intervals: &[BeaconInterval], read_stats: MrtReadStats) -> ScanResult {
    let mut result = ScanResult {
        intervals: intervals.to_vec(),
        histories: acc
            .histories
            // lint: allow(determinism_taint) — `acc.histories` is a Vec, one map per interval
            .into_iter()
            // lint: allow(determinism_taint) — rekeying Fx maps into std maps; both sides are keyed, so order cannot show
            .map(|h| h.into_iter().collect())
            .collect(),
        // lint: allow(determinism_taint) — map-to-map rekeying, order-free
        session_downs: acc.session_downs.into_iter().collect(),
        read_stats,
        ..ScanResult::default()
    };
    for downs in result.session_downs.values_mut() {
        downs.sort_unstable();
    }
    result.peers = acc.peers.into_iter().collect();
    result.peers.sort();
    result
}

/// Scans `updates` (an MRT BGP4MP stream) against `intervals`.
///
/// `window_after_withdraw` bounds how far past each withdrawal
/// observations are collected — make it at least the largest threshold you
/// will classify with (the paper sweeps to 180 minutes).
///
/// This is the eager reference path: every record is fully decoded. Prefer
/// [`scan_sharded`] (or [`scan_indexed`] with a prebuilt [`FrameIndex`]),
/// which skips irrelevant records at the byte level and parallelizes.
pub fn scan(
    updates: Bytes,
    intervals: &[BeaconInterval],
    window_after_withdraw: u64,
) -> ScanResult {
    let locator = IntervalLocator::new(intervals, window_after_withdraw);
    let mut acc = Accum::new(intervals.len());
    let mut reader = MrtReader::new(updates);
    while let Some(record) = reader.next_record() {
        acc.apply(&record, &locator);
    }
    let stats = reader.stats();
    finish(acc, intervals, stats)
}

/// Records post-merge scan metrics. Called exactly once per
/// [`scan_indexed`] call — never per worker, where totals would scale with
/// the thread count — so every counter is invariant under `jobs`.
///
/// Public so a scan-cache hit (which skips the scan entirely) can replay
/// the metrics from the cached [`ScanResult`]: warm and cold runs then
/// record identical scan counters, differing only in cache counters.
pub fn record_scan_metrics(result: &ScanResult) {
    use bgpz_obs::metrics::counter;
    let stats = result.read_stats;
    counter("mrt::read", "records_ok", stats.ok as u64);
    counter("mrt::read", "records_skipped", stats.skipped as u64);
    counter("mrt::read", "trailing_bytes", stats.trailing_bytes as u64);
    counter("mrt::read", "records_ok_messages", stats.ok_messages as u64);
    counter(
        "mrt::read",
        "records_ok_state_changes",
        stats.ok_state_changes as u64,
    );
    counter("mrt::read", "records_ok_rib", stats.ok_rib as u64);
    counter(
        "mrt::read",
        "records_ok_peer_index",
        stats.ok_peer_index as u64,
    );
    let observations: usize = result
        .histories
        .iter()
        .map(|h| h.values().map(|history| history.len()).sum::<usize>())
        .sum();
    counter("core::scan", "intervals", result.intervals.len() as u64);
    counter("core::scan", "peers", result.peers.len() as u64);
    counter("core::scan", "observations", observations as u64);
    bgpz_obs::debug!(
        target: "core::scan",
        "scanned {} intervals: {} peers, {} observations, {} records ok / {} skipped",
        result.intervals.len(),
        result.peers.len(),
        observations,
        stats.ok,
        stats.skipped
    );
}

/// One worker's output: the fold state plus the read statistics for its
/// frame range (trailing bytes are accounted once by the index, not here).
struct ChunkScan {
    acc: Accum,
    stats: MrtReadStats,
}

/// Splits `count` frames into at most `workers` contiguous, near-equal
/// ranges (first `count % workers` ranges get one extra frame).
fn chunk_ranges(count: usize, workers: usize) -> Vec<Range<usize>> {
    let base = count / workers;
    let extra = count % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    for k in 0..workers {
        let len = base + usize::from(k < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Frames per scan trace block. Chunk spans are emitted at fixed
/// *absolute* frame boundaries rather than per worker range: exactly one
/// worker processes any block's first frame, so the set of span
/// identities a scan emits is invariant under `jobs` — only `ts`/`dur`/
/// `tid` vary, which is precisely what the CI trace comparison masks.
const SCAN_TRACE_BLOCK: usize = 8_192;

/// Closes the open scan block span, if any.
fn close_scan_block(block: &mut Option<(u64, u64)>) {
    if let Some((id, start_us)) = block.take() {
        let end = bgpz_obs::trace::now_us();
        bgpz_obs::trace::emit(
            "core::scan",
            "scan_chunk",
            3_000 + id,
            bgpz_obs::trace::TraceCtx::root("scan", id, 0),
            start_us,
            end.saturating_sub(start_us),
        );
    }
}

/// Scans one contiguous range of indexed frames with the raw-byte
/// prefilter: a frame is fully decoded at most once, and a BGP UPDATE is
/// decoded only if its NLRI mentions a beacon prefix.
fn scan_frames(
    index: &FrameIndex,
    range: Range<usize>,
    locator: &IntervalLocator<'_>,
) -> ChunkScan {
    let mut acc = Accum::new(locator.intervals.len());
    let mut stats = MrtReadStats::default();
    let mut scratch = ScratchArena::default();
    // Direct-mapped recent-peer cache (keyed on the ASN's low bits): an
    // UPDATE stream cycles through a small set of session headers, so
    // most frames would re-hash a PeerId the set already holds. A slot
    // hit skips the insert; a miss or collision just pays the insert the
    // uncached code always paid. The resulting peer set is identical.
    let mut recent_peers: [Option<PeerId>; 16] = [None; 16];
    let tracing = bgpz_obs::trace::enabled();
    let mut block: Option<(u64, u64)> = None;
    for i in range {
        if tracing && i.is_multiple_of(SCAN_TRACE_BLOCK) {
            close_scan_block(&mut block);
            block = Some(((i / SCAN_TRACE_BLOCK) as u64, bgpz_obs::trace::now_us()));
        }
        let frame = index.frame(i);
        match frame.peek_kind() {
            FrameKind::Message { .. } => {
                // One fused walk validates the frame *and* captures peer,
                // attributes and NLRI regions: `scan_message()` classifies
                // a frame Invalid exactly when `MrtRecord::decode` would
                // fail, so the tolerant-reader accounting is unchanged —
                // but the separate validate / peek / peer / NLRI passes
                // (and the full decode for relevant frames) are gone.
                match frame.scan_message() {
                    ScanMessage::Invalid => {
                        stats.skipped += 1;
                        bgpz_obs::debug!(
                            target: "mrt::read",
                            "skipped malformed record ({} body bytes)",
                            frame.meta().body_len()
                        );
                    }
                    ScanMessage::NonUpdate => {
                        // OPEN / KEEPALIVE / NOTIFICATION: counts as a
                        // decoded message but has no peer, no NLRI.
                        stats.ok += 1;
                        stats.ok_messages += 1;
                    }
                    ScanMessage::Update(view) => {
                        stats.ok += 1;
                        stats.ok_messages += 1;
                        let (addr, asn) = view.peer();
                        let peer = PeerId { addr, asn };
                        // The eager path registers the peer of every valid
                        // UPDATE, relevant or not.
                        let slot = asn.0 as usize & (recent_peers.len() - 1);
                        match recent_peers.get_mut(slot) {
                            Some(entry) if *entry == Some(peer) => {}
                            Some(entry) => {
                                *entry = Some(peer);
                                acc.peers.insert(peer);
                            }
                            // Unreachable (slot is masked); stay correct.
                            None => {
                                acc.peers.insert(peer);
                            }
                        }
                        if view
                            .mentions_wire(|afi, bits, item| locator.relevant_wire(afi, bits, item))
                        {
                            acc.apply_view(
                                &view,
                                peer,
                                frame.peek_timestamp(),
                                locator,
                                &mut scratch,
                            );
                        }
                    }
                }
            }
            FrameKind::StateChange { .. } | FrameKind::PeerIndex | FrameKind::Rib => {
                // Session downs always matter; RIB records are rare in
                // update archives. Decode fully, tolerant-reader style.
                match frame.decode() {
                    Ok(record) => {
                        stats.record_ok(&record.body);
                        acc.apply(&record, locator);
                    }
                    Err(e) => {
                        stats.skipped += 1;
                        bgpz_obs::debug!(
                            target: "mrt::read",
                            "skipped malformed record ({} body bytes): {e}",
                            frame.meta().body_len()
                        );
                    }
                }
            }
            FrameKind::Unknown => {
                // The decoder's dispatch table rejects exactly these
                // type/subtype combinations, so no decode is needed to know
                // the tolerant reader would skip the frame.
                stats.skipped += 1;
                bgpz_obs::debug!(
                    target: "mrt::read",
                    "skipped malformed record ({} body bytes)",
                    frame.meta().body_len()
                );
            }
        }
    }
    close_scan_block(&mut block);
    // Chunk workers are joined before the drain that writes the trace,
    // but flush eagerly so scoped-thread teardown order never matters.
    if tracing {
        bgpz_obs::trace::flush_thread();
    }
    ChunkScan { acc, stats }
}

/// Scans a prebuilt [`FrameIndex`] against `intervals` on up to `jobs`
/// worker threads, producing a [`ScanResult`] byte-identical to the serial
/// eager [`scan`] at every thread count.
///
/// The index's frame list is split into contiguous near-equal ranges, one
/// per worker; each worker folds its range with the raw-byte prefilter
/// (see [`scan_frames`]) into an independent accumulator. Merging walks
/// the chunks in archive order and appends per-(interval, peer) histories,
/// so concatenation reproduces exactly the order the serial fold would
/// have produced — deterministic and independent of scheduling. Peers are
/// a set union; session downs are concatenated then sorted; read
/// statistics are summed, with trailing bytes taken from the index (they
/// belong to the archive, not to any frame range).
pub fn scan_indexed(
    index: &FrameIndex,
    intervals: &[BeaconInterval],
    window_after_withdraw: u64,
    jobs: usize,
) -> ScanResult {
    let _span = bgpz_obs::span("core::scan", "scan_sharded");
    let locator = IntervalLocator::new(intervals, window_after_withdraw);
    let frame_count = index.len();
    let workers = jobs.max(1).min(frame_count.max(1));

    let chunks: Vec<ChunkScan> = if workers <= 1 {
        vec![scan_frames(index, 0..frame_count, &locator)]
    } else {
        bgpz_obs::debug!(
            target: "core::scan",
            "scanning {frame_count} frames across {workers} chunks"
        );
        let ranges = chunk_ranges(frame_count, workers);
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|range| {
                    let locator = &locator;
                    s.spawn(move |_| scan_frames(index, range, locator))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        })
        .unwrap_or_else(|p| std::panic::resume_unwind(p))
    };

    // Merge in chunk (= archive) order. A single chunk (jobs = 1) already
    // *is* the serial fold, so it skips the merge rather than paying one
    // map re-insertion per (interval, peer).
    let mut chunks = chunks;
    let (merged, mut stats) = if chunks.len() == 1 {
        let chunk = chunks.remove(0);
        (chunk.acc, chunk.stats)
    } else {
        let mut merged = Accum::new(intervals.len());
        let mut stats = MrtReadStats::default();
        for chunk in chunks {
            stats.absorb(&chunk.stats);
            merged.peers.extend(chunk.acc.peers);
            // lint: allow(determinism_taint) — `acc.histories` is a Vec, one map per interval
            for (idx, histories) in chunk.acc.histories.into_iter().enumerate() {
                // lint: allow(determinism_taint) — each peer appears once per chunk map, so visit order cannot reorder any per-peer history
                for (peer, mut history) in histories {
                    merged.histories[idx]
                        .entry(peer)
                        .or_default()
                        .append(&mut history);
                }
            }
            // lint: allow(determinism_taint) — same shape: per-peer append, one entry per chunk
            for (peer, mut times) in chunk.acc.session_downs {
                merged
                    .session_downs
                    .entry(peer)
                    .or_default()
                    .append(&mut times);
            }
        }
        (merged, stats)
    };
    stats.trailing_bytes = index.trailing_bytes();

    let result = finish(merged, intervals, stats);
    record_scan_metrics(&result);
    result
}

/// Scans `updates` against `intervals` on `jobs` worker threads: frames
/// the archive once into a [`FrameIndex`] and delegates to
/// [`scan_indexed`]. Same input ⇒ byte-identical [`ScanResult`] at every
/// `jobs`. Callers scanning the same archive against several interval sets
/// should build the index themselves and call [`scan_indexed`] directly so
/// the framing pass is paid once.
pub fn scan_sharded(
    updates: Bytes,
    intervals: &[BeaconInterval],
    window_after_withdraw: u64,
    jobs: usize,
) -> ScanResult {
    scan_indexed(
        &FrameIndex::build_parallel(updates, jobs),
        intervals,
        window_after_withdraw,
        jobs,
    )
}

/// The peer's route state for an interval at `check_time`, derived from
/// its history and session-down record. `None` = removed / never present.
pub fn state_at(
    history: &History,
    session_downs: &[SimTime],
    interval: &BeaconInterval,
    check_time: SimTime,
) -> Option<(SimTime, Arc<AsPath>, Option<Ipv4Addr>)> {
    let mut last: Option<(SimTime, &Observation)> = None;
    for (t, obs) in history {
        if *t > check_time {
            break;
        }
        if *t >= interval.start {
            last = Some((*t, obs));
        }
    }
    let (t, obs) = last?;
    match obs {
        Observation::Withdraw => None,
        Observation::Announce { path, aggregator } => {
            // A session drop after the last announcement removes the route.
            let dropped = session_downs
                .iter()
                .any(|&down| down > t && down <= check_time);
            if dropped {
                None
            } else {
                Some((t, Arc::clone(path), *aggregator))
            }
        }
    }
}

/// The peer's "normal path": its last announced path at or before the
/// origin's withdrawal instant.
pub fn normal_path(history: &History, interval: &BeaconInterval) -> Option<Arc<AsPath>> {
    let mut normal = None;
    for (t, obs) in history {
        if *t > interval.withdraw_at {
            break;
        }
        if *t < interval.start {
            continue;
        }
        match obs {
            Observation::Announce { path, .. } => normal = Some(Arc::clone(path)),
            Observation::Withdraw => normal = None,
        }
    }
    normal
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpz_mrt::bgp4mp::SessionHeader;
    use bgpz_mrt::{Bgp4mpMessage, Bgp4mpStateChange, MrtRecord, MrtWriter};
    use bgpz_types::attrs::{Aggregator, MpReach, MpUnreach, NextHop, Origin};
    use bgpz_types::{Afi, BgpUpdate, PathAttributes};

    const PEER: Asn = Asn(211_380);

    fn session() -> SessionHeader {
        SessionHeader {
            peer_as: PEER,
            local_as: Asn(12_654),
            ifindex: 0,
            peer_ip: "2a0c:9a40:1031::504".parse().unwrap(),
            local_ip: "2001:7f8:24::82".parse().unwrap(),
        }
    }

    fn peer_id() -> PeerId {
        PeerId {
            addr: "2a0c:9a40:1031::504".parse().unwrap(),
            asn: PEER,
        }
    }

    fn announce_record(t: u64, prefix: &str, aggregator: Option<Ipv4Addr>) -> MrtRecord {
        let prefix: Prefix = prefix.parse().unwrap();
        let attrs = PathAttributes {
            origin: Some(Origin::Igp),
            as_path: Some(AsPath::from_sequence([PEER.0, 25_091, 8_298, 210_312])),
            aggregator: aggregator.map(|addr| Aggregator {
                asn: Asn(210_312),
                addr,
            }),
            mp_reach: Some(MpReach {
                afi: Afi::Ipv6,
                safi: 1,
                next_hop: NextHop::V6 {
                    global: "2a0c:9a40:1031::504".parse().unwrap(),
                    link_local: None,
                },
                nlri: vec![prefix],
            }),
            ..PathAttributes::default()
        };
        MrtRecord::new(
            SimTime(t),
            MrtBody::Message(Bgp4mpMessage {
                session: session(),
                message: BgpMessage::Update(BgpUpdate {
                    attrs,
                    ..BgpUpdate::default()
                }),
            }),
        )
    }

    fn withdraw_record(t: u64, prefix: &str) -> MrtRecord {
        let prefix: Prefix = prefix.parse().unwrap();
        MrtRecord::new(
            SimTime(t),
            MrtBody::Message(Bgp4mpMessage {
                session: session(),
                message: BgpMessage::Update(BgpUpdate {
                    attrs: PathAttributes {
                        mp_unreach: Some(MpUnreach {
                            afi: Afi::Ipv6,
                            safi: 1,
                            withdrawn: vec![prefix],
                        }),
                        ..PathAttributes::default()
                    },
                    ..BgpUpdate::default()
                }),
            }),
        )
    }

    fn down_record(t: u64) -> MrtRecord {
        MrtRecord::new(
            SimTime(t),
            MrtBody::StateChange(Bgp4mpStateChange {
                session: session(),
                old_state: BgpState::Established,
                new_state: BgpState::Idle,
            }),
        )
    }

    fn interval() -> BeaconInterval {
        BeaconInterval {
            prefix: "2a0d:3dc1:1::/48".parse().unwrap(),
            start: SimTime(0),
            withdraw_at: SimTime(7_200),
        }
    }

    fn run_scan(records: Vec<MrtRecord>) -> ScanResult {
        let mut writer = MrtWriter::new();
        for r in &records {
            writer.push(r);
        }
        scan(writer.finish(), &[interval()], 4 * 3_600)
    }

    #[test]
    fn announce_then_withdraw_is_clean() {
        let result = run_scan(vec![
            announce_record(5, "2a0d:3dc1:1::/48", None),
            withdraw_record(7_210, "2a0d:3dc1:1::/48"),
        ]);
        assert_eq!(result.announcement_count(), 1);
        let history = &result.histories[0][&peer_id()];
        assert_eq!(history.len(), 2);
        let state = state_at(history, &[], &interval(), SimTime(7_200 + 5_400));
        assert!(state.is_none());
        let normal = normal_path(history, &interval()).unwrap();
        assert_eq!(normal.origin(), Some(Asn(210_312)));
    }

    #[test]
    fn missing_withdraw_is_stuck() {
        let result = run_scan(vec![announce_record(5, "2a0d:3dc1:1::/48", None)]);
        let history = &result.histories[0][&peer_id()];
        let state = state_at(history, &[], &interval(), SimTime(12_600));
        let (t, path, _) = state.expect("stuck route expected");
        assert_eq!(t, SimTime(5));
        assert_eq!(path.origin(), Some(Asn(210_312)));
    }

    #[test]
    fn session_down_clears_state() {
        let result = run_scan(vec![
            announce_record(5, "2a0d:3dc1:1::/48", None),
            down_record(8_000),
        ]);
        let history = &result.histories[0][&peer_id()];
        let downs = &result.session_downs[&peer_id()];
        assert_eq!(downs, &vec![SimTime(8_000)]);
        assert!(state_at(history, downs, &interval(), SimTime(12_600)).is_none());
        // But before the drop it was present.
        assert!(state_at(history, downs, &interval(), SimTime(7_000)).is_some());
    }

    #[test]
    fn reannounce_after_down_is_present_again() {
        let result = run_scan(vec![
            announce_record(5, "2a0d:3dc1:1::/48", None),
            down_record(8_000),
            announce_record(9_000, "2a0d:3dc1:1::/48", None),
        ]);
        let history = &result.histories[0][&peer_id()];
        let downs = &result.session_downs[&peer_id()];
        assert!(state_at(history, downs, &interval(), SimTime(12_600)).is_some());
    }

    #[test]
    fn observations_before_interval_ignored() {
        // An announce 10 s before the interval start must not count
        // (no prior knowledge — paper §3.1).
        let result = run_scan(vec![announce_record(0, "2a0d:3dc1:1::/48", None)]);
        let iv = BeaconInterval {
            start: SimTime(10),
            ..interval()
        };
        let history = &result.histories[0][&peer_id()];
        assert!(state_at(history, &[], &iv, SimTime(12_600)).is_none());
    }

    #[test]
    fn observations_outside_window_not_collected() {
        let result = run_scan(vec![
            announce_record(5, "2a0d:3dc1:1::/48", None),
            // Past withdraw + window (7 200 + 14 400).
            withdraw_record(30_000, "2a0d:3dc1:1::/48"),
        ]);
        let history = &result.histories[0][&peer_id()];
        assert_eq!(history.len(), 1);
    }

    #[test]
    fn unrelated_prefixes_ignored() {
        let result = run_scan(vec![announce_record(5, "2a0d:3dc1:2::/48", None)]);
        assert!(result.histories[0].is_empty());
    }

    #[test]
    fn aggregator_is_preserved() {
        let clock = Ipv4Addr::new(10, 19, 29, 192);
        let result = run_scan(vec![announce_record(5, "2a0d:3dc1:1::/48", Some(clock))]);
        let history = &result.histories[0][&peer_id()];
        let (_, _, agg) = state_at(history, &[], &interval(), SimTime(12_600)).unwrap();
        assert_eq!(agg, Some(clock));
    }

    #[test]
    fn normal_path_is_none_after_pre_withdrawal_withdraw() {
        // Peer withdrew before the origin's withdrawal instant (e.g. local
        // policy change): no normal path.
        let result = run_scan(vec![
            announce_record(5, "2a0d:3dc1:1::/48", None),
            withdraw_record(3_000, "2a0d:3dc1:1::/48"),
        ]);
        let history = &result.histories[0][&peer_id()];
        assert!(normal_path(history, &interval()).is_none());
    }

    #[test]
    fn peers_listed_sorted() {
        let result = run_scan(vec![announce_record(5, "2a0d:3dc1:1::/48", None)]);
        assert_eq!(result.peers, vec![peer_id()]);
    }

    // ---- sharded-scan determinism --------------------------------------

    fn session_b() -> SessionHeader {
        SessionHeader {
            peer_as: Asn(65_001),
            local_as: Asn(12_654),
            ifindex: 0,
            peer_ip: "2001:db8:b::1".parse().unwrap(),
            local_ip: "2001:7f8:24::82".parse().unwrap(),
        }
    }

    fn announce_as(session: SessionHeader, t: u64, prefix: &str) -> MrtRecord {
        let prefix: Prefix = prefix.parse().unwrap();
        let attrs = PathAttributes {
            origin: Some(Origin::Igp),
            as_path: Some(AsPath::from_sequence([
                session.peer_as.0,
                25_091,
                8_298,
                210_312,
            ])),
            mp_reach: Some(MpReach {
                afi: Afi::Ipv6,
                safi: 1,
                next_hop: NextHop::V6 {
                    global: "2a0c:9a40:1031::504".parse().unwrap(),
                    link_local: None,
                },
                nlri: vec![prefix],
            }),
            ..PathAttributes::default()
        };
        MrtRecord::new(
            SimTime(t),
            MrtBody::Message(Bgp4mpMessage {
                session,
                message: BgpMessage::Update(BgpUpdate {
                    attrs,
                    ..BgpUpdate::default()
                }),
            }),
        )
    }

    fn withdraw_as(session: SessionHeader, t: u64, prefix: &str) -> MrtRecord {
        let prefix: Prefix = prefix.parse().unwrap();
        MrtRecord::new(
            SimTime(t),
            MrtBody::Message(Bgp4mpMessage {
                session,
                message: BgpMessage::Update(BgpUpdate {
                    attrs: PathAttributes {
                        mp_unreach: Some(MpUnreach {
                            afi: Afi::Ipv6,
                            safi: 1,
                            withdrawn: vec![prefix],
                        }),
                        ..PathAttributes::default()
                    },
                    ..BgpUpdate::default()
                }),
            }),
        )
    }

    /// A deterministic, order-insensitive rendering of a [`ScanResult`]
    /// (HashMap iteration order normalized by sorting keys).
    fn fingerprint(result: &ScanResult) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "intervals={:?}", result.intervals);
        let _ = writeln!(out, "peers={:?}", result.peers);
        let _ = writeln!(out, "stats={:?}", result.read_stats);
        for (i, histories) in result.histories.iter().enumerate() {
            let mut keys: Vec<&PeerId> = histories.keys().collect();
            keys.sort();
            for key in keys {
                let _ = writeln!(out, "history[{i}][{key}]={:?}", histories[key]);
            }
        }
        let mut downs: Vec<(&PeerId, &Vec<SimTime>)> = result.session_downs.iter().collect();
        downs.sort_by_key(|&(peer, _)| peer);
        for (peer, times) in downs {
            let _ = writeln!(out, "downs[{peer}]={times:?}");
        }
        out
    }

    /// Serial vs sharded scans over a multi-prefix, multi-interval,
    /// multi-peer archive — including the boundary case where an
    /// observation falls inside an older interval's window *and* after a
    /// newer interval's start (the newer must win on every path).
    #[test]
    fn sharded_scan_matches_serial() {
        let prefixes = ["2a0d:3dc1:1::/48", "2a0d:3dc1:2::/48", "2a0d:3dc1:3::/48"];
        let mut intervals = Vec::new();
        for prefix in &prefixes {
            for k in 0..3u64 {
                intervals.push(BeaconInterval {
                    prefix: prefix.parse().unwrap(),
                    start: SimTime(k * 14_400),
                    withdraw_at: SimTime(k * 14_400 + 7_200),
                });
            }
        }

        let mut records = Vec::new();
        for (p, prefix) in prefixes.iter().enumerate() {
            for k in 0..3u64 {
                let base = k * 14_400;
                records.push(announce_as(session(), base + 5 + p as u64, prefix));
                if (k + p as u64) % 2 == 0 {
                    records.push(withdraw_as(session(), base + 7_210, prefix));
                }
                records.push(announce_as(session_b(), base + 9, prefix));
            }
            // Boundary observation: t = 15 000 is within interval 0's
            // window (7 200 + 14 400 = 21 600) but after interval 1's
            // start (14 400) — it must land in interval 1 everywhere.
            records.push(withdraw_as(session_b(), 15_000, prefix));
        }
        records.push(down_record(8_000));
        records.sort_by_key(|r| r.timestamp);

        let mut writer = MrtWriter::new();
        for record in &records {
            writer.push(record);
        }
        let bytes = writer.finish();

        let serial = scan(bytes.clone(), &intervals, 4 * 3_600);
        let reference = fingerprint(&serial);
        assert!(
            !serial.histories[1].is_empty(),
            "archive exercises histories"
        );
        for jobs in [1, 2, 3, 8] {
            let sharded = scan_sharded(bytes.clone(), &intervals, 4 * 3_600, jobs);
            assert_eq!(
                fingerprint(&sharded),
                reference,
                "sharded scan with {jobs} worker(s) diverged from serial"
            );
        }
    }
}
