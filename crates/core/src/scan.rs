//! Pass 1: reconstruct per-(peer, prefix) message history per interval.
//!
//! This is the paper's §3.1 step 1 — "reconstructing the state of a
//! prefix" — done solely from archived raw data: BGP UPDATE messages give
//! announce/withdraw transitions, STATE messages give session failures.
//! Each interval is processed with no knowledge of earlier intervals.
//!
//! Two equivalent execution paths produce byte-identical [`ScanResult`]s:
//!
//! * [`scan`] — the eager reference path: decode every record with the
//!   tolerant [`MrtReader`] and fold it into the accumulator.
//! * [`scan_indexed`] — the fast path: frame the archive once into a
//!   [`FrameIndex`], then *prefilter on raw bytes*. Each frame is
//!   validated and classified without allocating; a BGP UPDATE pays for
//!   a full decode only when its NLRI mentions a beacon prefix. STATE
//!   records (session downs) and relevant UPDATEs decode fully;
//!   everything else is counted and skipped at the byte level.
//!
//! [`scan_sharded`] is the public entry point used by experiments: it
//! builds the index and delegates to [`scan_indexed`].

use crate::interval::BeaconInterval;
use bgpz_mrt::{BgpState, FrameIndex, FrameKind, MrtBody, MrtReadStats, MrtReader, MrtRecord};
use bgpz_types::{AsPath, Asn, BgpMessage, MessageKind, Prefix, SimTime};
use bytes::Bytes;
use std::collections::{HashMap, HashSet};
use std::net::{IpAddr, Ipv4Addr};
use std::ops::Range;
use std::sync::Arc;

/// Identity of one peer router as seen in the archive.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PeerId {
    /// Router session address — the primary key (the paper names noisy
    /// peers by address because one AS can have several routers).
    pub addr: IpAddr,
    /// The peer AS.
    pub asn: Asn,
}

impl std::fmt::Display for PeerId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{} ({})", self.addr, self.asn)
    }
}

/// One message observed for a (interval, peer) pair.
#[derive(Debug, Clone)]
pub enum Observation {
    /// The peer announced the prefix with this path; the Aggregator IP is
    /// kept for BGP-clock decoding.
    Announce {
        /// Exported AS path.
        path: Arc<AsPath>,
        /// Aggregator attribute IP, if present.
        aggregator: Option<Ipv4Addr>,
    },
    /// The peer withdrew the prefix.
    Withdraw,
}

/// The message history of one (interval, peer).
pub type History = Vec<(SimTime, Observation)>;

/// Scan output: everything classification needs, for every threshold.
#[derive(Debug, Default)]
pub struct ScanResult {
    /// The intervals scanned, in input order.
    pub intervals: Vec<BeaconInterval>,
    /// All peers seen in the archive, sorted.
    pub peers: Vec<PeerId>,
    /// Per interval (outer index parallel to `intervals`): the observation
    /// history of each peer that said anything about the prefix.
    pub histories: Vec<HashMap<PeerId, History>>,
    /// Session-down instants per peer (from STATE messages), sorted.
    pub session_downs: HashMap<PeerId, Vec<SimTime>>,
    /// Raw-archive read statistics (tolerant reader).
    pub read_stats: MrtReadStats,
}

impl ScanResult {
    /// Number of beacon announcements scanned — the denominator of the
    /// paper's percentages and the "visible prefixes" of Table 1.
    pub fn announcement_count(&self) -> usize {
        self.intervals.len()
    }
}

/// Prefix → interval lookup shared by every scan path.
///
/// Locating prefers the latest-starting interval of a prefix whose window
/// still covers the observation (collision safety when windows overlap).
struct IntervalLocator<'a> {
    intervals: &'a [BeaconInterval],
    /// Interval indices per prefix, sorted by interval start.
    by_prefix: HashMap<Prefix, Vec<usize>>,
    window_after_withdraw: u64,
}

impl<'a> IntervalLocator<'a> {
    fn new(intervals: &'a [BeaconInterval], window_after_withdraw: u64) -> IntervalLocator<'a> {
        let mut by_prefix: HashMap<Prefix, Vec<usize>> = HashMap::new();
        for (i, interval) in intervals.iter().enumerate() {
            by_prefix.entry(interval.prefix).or_default().push(i);
        }
        for list in by_prefix.values_mut() {
            list.sort_by_key(|&i| intervals[i].start);
        }
        IntervalLocator {
            intervals,
            by_prefix,
            window_after_withdraw,
        }
    }

    /// Cheap relevance test: is `prefix` a beacon prefix at all? Used by
    /// the raw-byte prefilter before paying for a full decode; windows are
    /// checked later by [`IntervalLocator::locate`], so a `true` here is a
    /// superset of what actually lands in a history.
    fn relevant(&self, prefix: Prefix) -> bool {
        self.by_prefix.contains_key(&prefix)
    }

    /// Locates the interval whose window contains (prefix, t), preferring
    /// the latest-starting one.
    fn locate(&self, prefix: Prefix, t: SimTime) -> Option<usize> {
        let list = self.by_prefix.get(&prefix)?;
        // Binary search for the last interval with start <= t.
        let pos = list.partition_point(|&i| self.intervals[i].start <= t);
        if pos == 0 {
            return None;
        }
        let idx = list[pos - 1];
        let end = self.intervals[idx].withdraw_at + self.window_after_withdraw;
        (t <= end).then_some(idx)
    }
}

/// Hash-consing cache for AS paths: one `Arc<AsPath>` per distinct path
/// per scan. Archives repeat the same handful of paths thousands of
/// times; interning collapses them to shared allocations.
#[derive(Default)]
struct PathInterner {
    paths: HashMap<AsPath, Arc<AsPath>>,
}

impl PathInterner {
    fn intern(&mut self, path: &AsPath) -> Arc<AsPath> {
        if let Some(interned) = self.paths.get(path) {
            return Arc::clone(interned);
        }
        let interned = Arc::new(path.clone());
        self.paths.insert(path.clone(), Arc::clone(&interned));
        interned
    }
}

/// Mutable scan state folded over records in archive order. Both the
/// eager and the indexed path funnel decoded records through
/// [`Accum::apply`], so their per-record semantics cannot drift.
struct Accum {
    histories: Vec<HashMap<PeerId, History>>,
    peers: HashSet<PeerId>,
    session_downs: HashMap<PeerId, Vec<SimTime>>,
    interner: PathInterner,
}

impl Accum {
    fn new(interval_count: usize) -> Accum {
        Accum {
            histories: vec![HashMap::new(); interval_count],
            peers: HashSet::new(),
            session_downs: HashMap::new(),
            interner: PathInterner::default(),
        }
    }

    fn apply(&mut self, record: &MrtRecord, locator: &IntervalLocator<'_>) {
        match &record.body {
            MrtBody::Message(msg) => {
                let peer = PeerId {
                    addr: msg.session.peer_ip,
                    asn: msg.session.peer_as,
                };
                let BgpMessage::Update(update) = &msg.message else {
                    return;
                };
                self.peers.insert(peer);
                let aggregator = update.attrs.aggregator.as_ref().map(|a| a.addr);
                let path = update
                    .attrs
                    .as_path
                    .as_ref()
                    .map(|p| self.interner.intern(p));
                for prefix in update.announced() {
                    let Some(idx) = locator.locate(prefix, record.timestamp) else {
                        continue;
                    };
                    let Some(path) = path.clone() else {
                        continue; // an announcement without AS_PATH is bogus
                    };
                    self.histories[idx]
                        .entry(peer)
                        .or_default()
                        .push((record.timestamp, Observation::Announce { path, aggregator }));
                }
                for prefix in update.withdrawn_all() {
                    let Some(idx) = locator.locate(prefix, record.timestamp) else {
                        continue;
                    };
                    self.histories[idx]
                        .entry(peer)
                        .or_default()
                        .push((record.timestamp, Observation::Withdraw));
                }
            }
            MrtBody::StateChange(change) => {
                let peer = PeerId {
                    addr: change.session.peer_ip,
                    asn: change.session.peer_as,
                };
                self.peers.insert(peer);
                if change.old_state == BgpState::Established
                    && change.new_state != BgpState::Established
                {
                    self.session_downs
                        .entry(peer)
                        .or_default()
                        .push(record.timestamp);
                }
            }
            MrtBody::PeerIndex(_) | MrtBody::Rib(_) => {
                // RIB dumps are consumed by the lifespan tracker, not here.
            }
        }
    }
}

/// Finalizes an accumulator into a [`ScanResult`]: sorts downs and peers,
/// attaches the read statistics.
fn finish(acc: Accum, intervals: &[BeaconInterval], read_stats: MrtReadStats) -> ScanResult {
    let mut result = ScanResult {
        intervals: intervals.to_vec(),
        histories: acc.histories,
        session_downs: acc.session_downs,
        read_stats,
        ..ScanResult::default()
    };
    for downs in result.session_downs.values_mut() {
        downs.sort_unstable();
    }
    result.peers = acc.peers.into_iter().collect();
    result.peers.sort();
    result
}

/// Scans `updates` (an MRT BGP4MP stream) against `intervals`.
///
/// `window_after_withdraw` bounds how far past each withdrawal
/// observations are collected — make it at least the largest threshold you
/// will classify with (the paper sweeps to 180 minutes).
///
/// This is the eager reference path: every record is fully decoded. Prefer
/// [`scan_sharded`] (or [`scan_indexed`] with a prebuilt [`FrameIndex`]),
/// which skips irrelevant records at the byte level and parallelizes.
pub fn scan(
    updates: Bytes,
    intervals: &[BeaconInterval],
    window_after_withdraw: u64,
) -> ScanResult {
    let locator = IntervalLocator::new(intervals, window_after_withdraw);
    let mut acc = Accum::new(intervals.len());
    let mut reader = MrtReader::new(updates);
    while let Some(record) = reader.next_record() {
        acc.apply(&record, &locator);
    }
    let stats = reader.stats();
    finish(acc, intervals, stats)
}

/// Records post-merge scan metrics. Called exactly once per
/// [`scan_indexed`] call — never per worker, where totals would scale with
/// the thread count — so every counter is invariant under `jobs`.
fn record_scan_metrics(result: &ScanResult) {
    use bgpz_obs::metrics::counter;
    let stats = result.read_stats;
    counter("mrt::read", "records_ok", stats.ok as u64);
    counter("mrt::read", "records_skipped", stats.skipped as u64);
    counter("mrt::read", "trailing_bytes", stats.trailing_bytes as u64);
    counter("mrt::read", "records_ok_messages", stats.ok_messages as u64);
    counter(
        "mrt::read",
        "records_ok_state_changes",
        stats.ok_state_changes as u64,
    );
    counter("mrt::read", "records_ok_rib", stats.ok_rib as u64);
    counter(
        "mrt::read",
        "records_ok_peer_index",
        stats.ok_peer_index as u64,
    );
    let observations: usize = result
        .histories
        .iter()
        .map(|h| h.values().map(|history| history.len()).sum::<usize>())
        .sum();
    counter("core::scan", "intervals", result.intervals.len() as u64);
    counter("core::scan", "peers", result.peers.len() as u64);
    counter("core::scan", "observations", observations as u64);
    bgpz_obs::debug!(
        target: "core::scan",
        "scanned {} intervals: {} peers, {} observations, {} records ok / {} skipped",
        result.intervals.len(),
        result.peers.len(),
        observations,
        stats.ok,
        stats.skipped
    );
}

/// One worker's output: the fold state plus the read statistics for its
/// frame range (trailing bytes are accounted once by the index, not here).
struct ChunkScan {
    acc: Accum,
    stats: MrtReadStats,
}

/// Splits `count` frames into at most `workers` contiguous, near-equal
/// ranges (first `count % workers` ranges get one extra frame).
fn chunk_ranges(count: usize, workers: usize) -> Vec<Range<usize>> {
    let base = count / workers;
    let extra = count % workers;
    let mut ranges = Vec::with_capacity(workers);
    let mut start = 0;
    for k in 0..workers {
        let len = base + usize::from(k < extra);
        ranges.push(start..start + len);
        start += len;
    }
    ranges
}

/// Frames per scan trace block. Chunk spans are emitted at fixed
/// *absolute* frame boundaries rather than per worker range: exactly one
/// worker processes any block's first frame, so the set of span
/// identities a scan emits is invariant under `jobs` — only `ts`/`dur`/
/// `tid` vary, which is precisely what the CI trace comparison masks.
const SCAN_TRACE_BLOCK: usize = 8_192;

/// Closes the open scan block span, if any.
fn close_scan_block(block: &mut Option<(u64, u64)>) {
    if let Some((id, start_us)) = block.take() {
        let end = bgpz_obs::trace::now_us();
        bgpz_obs::trace::emit(
            "core::scan",
            "scan_chunk",
            3_000 + id,
            bgpz_obs::trace::TraceCtx::root("scan", id, 0),
            start_us,
            end.saturating_sub(start_us),
        );
    }
}

/// Scans one contiguous range of indexed frames with the raw-byte
/// prefilter: a frame is fully decoded at most once, and a BGP UPDATE is
/// decoded only if its NLRI mentions a beacon prefix.
fn scan_frames(
    index: &FrameIndex,
    range: Range<usize>,
    locator: &IntervalLocator<'_>,
) -> ChunkScan {
    let mut acc = Accum::new(locator.intervals.len());
    let mut stats = MrtReadStats::default();
    let tracing = bgpz_obs::trace::enabled();
    let mut block: Option<(u64, u64)> = None;
    for i in range {
        if tracing && i.is_multiple_of(SCAN_TRACE_BLOCK) {
            close_scan_block(&mut block);
            block = Some(((i / SCAN_TRACE_BLOCK) as u64, bgpz_obs::trace::now_us()));
        }
        let frame = index.frame(i);
        match frame.peek_kind() {
            FrameKind::Message { .. } => {
                // Zero-allocation validation stands in for the decode the
                // tolerant reader would have attempted: `validate()` agrees
                // with `MrtRecord::decode(..).is_ok()` byte for byte.
                if !frame.validate() {
                    stats.skipped += 1;
                    bgpz_obs::debug!(
                        target: "mrt::read",
                        "skipped malformed record ({} body bytes)",
                        frame.meta().body_len()
                    );
                    continue;
                }
                stats.ok += 1;
                stats.ok_messages += 1;
                if frame.peek_bgp_kind() != Some(MessageKind::Update) {
                    continue; // OPEN / KEEPALIVE / NOTIFICATION: no peer, no NLRI
                }
                let peer = frame.peer_addr().map(|(addr, asn)| PeerId { addr, asn });
                let relevant = frame
                    .nlri_prefixes()
                    .any(|(_, prefix)| locator.relevant(prefix));
                match (relevant, peer) {
                    (false, Some(peer)) => {
                        // Irrelevant UPDATE: register the peer (the eager
                        // path does) and skip the decode entirely.
                        acc.peers.insert(peer);
                    }
                    _ => match frame.decode() {
                        Ok(record) => acc.apply(&record, locator),
                        Err(e) => {
                            // `validate()` is meant to guarantee this decode
                            // succeeds; stay tolerant anyway and reclassify
                            // the frame as skipped.
                            stats.ok -= 1;
                            stats.ok_messages -= 1;
                            stats.skipped += 1;
                            bgpz_obs::debug!(
                                target: "mrt::read",
                                "skipped record that validated but failed decode \
                                 ({} body bytes): {e}",
                                frame.meta().body_len()
                            );
                        }
                    },
                }
            }
            FrameKind::StateChange { .. } | FrameKind::PeerIndex | FrameKind::Rib => {
                // Session downs always matter; RIB records are rare in
                // update archives. Decode fully, tolerant-reader style.
                match frame.decode() {
                    Ok(record) => {
                        stats.record_ok(&record.body);
                        acc.apply(&record, locator);
                    }
                    Err(e) => {
                        stats.skipped += 1;
                        bgpz_obs::debug!(
                            target: "mrt::read",
                            "skipped malformed record ({} body bytes): {e}",
                            frame.meta().body_len()
                        );
                    }
                }
            }
            FrameKind::Unknown => {
                // The decoder's dispatch table rejects exactly these
                // type/subtype combinations, so no decode is needed to know
                // the tolerant reader would skip the frame.
                stats.skipped += 1;
                bgpz_obs::debug!(
                    target: "mrt::read",
                    "skipped malformed record ({} body bytes)",
                    frame.meta().body_len()
                );
            }
        }
    }
    close_scan_block(&mut block);
    // Chunk workers are joined before the drain that writes the trace,
    // but flush eagerly so scoped-thread teardown order never matters.
    if tracing {
        bgpz_obs::trace::flush_thread();
    }
    ChunkScan { acc, stats }
}

/// Scans a prebuilt [`FrameIndex`] against `intervals` on up to `jobs`
/// worker threads, producing a [`ScanResult`] byte-identical to the serial
/// eager [`scan`] at every thread count.
///
/// The index's frame list is split into contiguous near-equal ranges, one
/// per worker; each worker folds its range with the raw-byte prefilter
/// (see [`scan_frames`]) into an independent accumulator. Merging walks
/// the chunks in archive order and appends per-(interval, peer) histories,
/// so concatenation reproduces exactly the order the serial fold would
/// have produced — deterministic and independent of scheduling. Peers are
/// a set union; session downs are concatenated then sorted; read
/// statistics are summed, with trailing bytes taken from the index (they
/// belong to the archive, not to any frame range).
pub fn scan_indexed(
    index: &FrameIndex,
    intervals: &[BeaconInterval],
    window_after_withdraw: u64,
    jobs: usize,
) -> ScanResult {
    let _span = bgpz_obs::span("core::scan", "scan_sharded");
    let locator = IntervalLocator::new(intervals, window_after_withdraw);
    let frame_count = index.len();
    let workers = jobs.max(1).min(frame_count.max(1));

    let chunks: Vec<ChunkScan> = if workers <= 1 {
        vec![scan_frames(index, 0..frame_count, &locator)]
    } else {
        bgpz_obs::debug!(
            target: "core::scan",
            "scanning {frame_count} frames across {workers} chunks"
        );
        let ranges = chunk_ranges(frame_count, workers);
        crossbeam::thread::scope(|s| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|range| {
                    let locator = &locator;
                    s.spawn(move |_| scan_frames(index, range, locator))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().unwrap_or_else(|p| std::panic::resume_unwind(p)))
                .collect()
        })
        .unwrap_or_else(|p| std::panic::resume_unwind(p))
    };

    // Merge in chunk (= archive) order.
    let mut merged = Accum::new(intervals.len());
    let mut stats = MrtReadStats::default();
    for chunk in chunks {
        stats.absorb(&chunk.stats);
        merged.peers.extend(chunk.acc.peers);
        for (idx, histories) in chunk.acc.histories.into_iter().enumerate() {
            for (peer, mut history) in histories {
                merged.histories[idx]
                    .entry(peer)
                    .or_default()
                    .append(&mut history);
            }
        }
        for (peer, mut times) in chunk.acc.session_downs {
            merged
                .session_downs
                .entry(peer)
                .or_default()
                .append(&mut times);
        }
    }
    stats.trailing_bytes = index.trailing_bytes();

    let result = finish(merged, intervals, stats);
    record_scan_metrics(&result);
    result
}

/// Scans `updates` against `intervals` on `jobs` worker threads: frames
/// the archive once into a [`FrameIndex`] and delegates to
/// [`scan_indexed`]. Same input ⇒ byte-identical [`ScanResult`] at every
/// `jobs`. Callers scanning the same archive against several interval sets
/// should build the index themselves and call [`scan_indexed`] directly so
/// the framing pass is paid once.
pub fn scan_sharded(
    updates: Bytes,
    intervals: &[BeaconInterval],
    window_after_withdraw: u64,
    jobs: usize,
) -> ScanResult {
    scan_indexed(
        &FrameIndex::build(updates),
        intervals,
        window_after_withdraw,
        jobs,
    )
}

/// The peer's route state for an interval at `check_time`, derived from
/// its history and session-down record. `None` = removed / never present.
pub fn state_at(
    history: &History,
    session_downs: &[SimTime],
    interval: &BeaconInterval,
    check_time: SimTime,
) -> Option<(SimTime, Arc<AsPath>, Option<Ipv4Addr>)> {
    let mut last: Option<(SimTime, &Observation)> = None;
    for (t, obs) in history {
        if *t > check_time {
            break;
        }
        if *t >= interval.start {
            last = Some((*t, obs));
        }
    }
    let (t, obs) = last?;
    match obs {
        Observation::Withdraw => None,
        Observation::Announce { path, aggregator } => {
            // A session drop after the last announcement removes the route.
            let dropped = session_downs
                .iter()
                .any(|&down| down > t && down <= check_time);
            if dropped {
                None
            } else {
                Some((t, Arc::clone(path), *aggregator))
            }
        }
    }
}

/// The peer's "normal path": its last announced path at or before the
/// origin's withdrawal instant.
pub fn normal_path(history: &History, interval: &BeaconInterval) -> Option<Arc<AsPath>> {
    let mut normal = None;
    for (t, obs) in history {
        if *t > interval.withdraw_at {
            break;
        }
        if *t < interval.start {
            continue;
        }
        match obs {
            Observation::Announce { path, .. } => normal = Some(Arc::clone(path)),
            Observation::Withdraw => normal = None,
        }
    }
    normal
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpz_mrt::bgp4mp::SessionHeader;
    use bgpz_mrt::{Bgp4mpMessage, Bgp4mpStateChange, MrtRecord, MrtWriter};
    use bgpz_types::attrs::{Aggregator, MpReach, MpUnreach, NextHop, Origin};
    use bgpz_types::{Afi, BgpUpdate, PathAttributes};

    const PEER: Asn = Asn(211_380);

    fn session() -> SessionHeader {
        SessionHeader {
            peer_as: PEER,
            local_as: Asn(12_654),
            ifindex: 0,
            peer_ip: "2a0c:9a40:1031::504".parse().unwrap(),
            local_ip: "2001:7f8:24::82".parse().unwrap(),
        }
    }

    fn peer_id() -> PeerId {
        PeerId {
            addr: "2a0c:9a40:1031::504".parse().unwrap(),
            asn: PEER,
        }
    }

    fn announce_record(t: u64, prefix: &str, aggregator: Option<Ipv4Addr>) -> MrtRecord {
        let prefix: Prefix = prefix.parse().unwrap();
        let attrs = PathAttributes {
            origin: Some(Origin::Igp),
            as_path: Some(AsPath::from_sequence([PEER.0, 25_091, 8_298, 210_312])),
            aggregator: aggregator.map(|addr| Aggregator {
                asn: Asn(210_312),
                addr,
            }),
            mp_reach: Some(MpReach {
                afi: Afi::Ipv6,
                safi: 1,
                next_hop: NextHop::V6 {
                    global: "2a0c:9a40:1031::504".parse().unwrap(),
                    link_local: None,
                },
                nlri: vec![prefix],
            }),
            ..PathAttributes::default()
        };
        MrtRecord::new(
            SimTime(t),
            MrtBody::Message(Bgp4mpMessage {
                session: session(),
                message: BgpMessage::Update(BgpUpdate {
                    attrs,
                    ..BgpUpdate::default()
                }),
            }),
        )
    }

    fn withdraw_record(t: u64, prefix: &str) -> MrtRecord {
        let prefix: Prefix = prefix.parse().unwrap();
        MrtRecord::new(
            SimTime(t),
            MrtBody::Message(Bgp4mpMessage {
                session: session(),
                message: BgpMessage::Update(BgpUpdate {
                    attrs: PathAttributes {
                        mp_unreach: Some(MpUnreach {
                            afi: Afi::Ipv6,
                            safi: 1,
                            withdrawn: vec![prefix],
                        }),
                        ..PathAttributes::default()
                    },
                    ..BgpUpdate::default()
                }),
            }),
        )
    }

    fn down_record(t: u64) -> MrtRecord {
        MrtRecord::new(
            SimTime(t),
            MrtBody::StateChange(Bgp4mpStateChange {
                session: session(),
                old_state: BgpState::Established,
                new_state: BgpState::Idle,
            }),
        )
    }

    fn interval() -> BeaconInterval {
        BeaconInterval {
            prefix: "2a0d:3dc1:1::/48".parse().unwrap(),
            start: SimTime(0),
            withdraw_at: SimTime(7_200),
        }
    }

    fn run_scan(records: Vec<MrtRecord>) -> ScanResult {
        let mut writer = MrtWriter::new();
        for r in &records {
            writer.push(r);
        }
        scan(writer.finish(), &[interval()], 4 * 3_600)
    }

    #[test]
    fn announce_then_withdraw_is_clean() {
        let result = run_scan(vec![
            announce_record(5, "2a0d:3dc1:1::/48", None),
            withdraw_record(7_210, "2a0d:3dc1:1::/48"),
        ]);
        assert_eq!(result.announcement_count(), 1);
        let history = &result.histories[0][&peer_id()];
        assert_eq!(history.len(), 2);
        let state = state_at(history, &[], &interval(), SimTime(7_200 + 5_400));
        assert!(state.is_none());
        let normal = normal_path(history, &interval()).unwrap();
        assert_eq!(normal.origin(), Some(Asn(210_312)));
    }

    #[test]
    fn missing_withdraw_is_stuck() {
        let result = run_scan(vec![announce_record(5, "2a0d:3dc1:1::/48", None)]);
        let history = &result.histories[0][&peer_id()];
        let state = state_at(history, &[], &interval(), SimTime(12_600));
        let (t, path, _) = state.expect("stuck route expected");
        assert_eq!(t, SimTime(5));
        assert_eq!(path.origin(), Some(Asn(210_312)));
    }

    #[test]
    fn session_down_clears_state() {
        let result = run_scan(vec![
            announce_record(5, "2a0d:3dc1:1::/48", None),
            down_record(8_000),
        ]);
        let history = &result.histories[0][&peer_id()];
        let downs = &result.session_downs[&peer_id()];
        assert_eq!(downs, &vec![SimTime(8_000)]);
        assert!(state_at(history, downs, &interval(), SimTime(12_600)).is_none());
        // But before the drop it was present.
        assert!(state_at(history, downs, &interval(), SimTime(7_000)).is_some());
    }

    #[test]
    fn reannounce_after_down_is_present_again() {
        let result = run_scan(vec![
            announce_record(5, "2a0d:3dc1:1::/48", None),
            down_record(8_000),
            announce_record(9_000, "2a0d:3dc1:1::/48", None),
        ]);
        let history = &result.histories[0][&peer_id()];
        let downs = &result.session_downs[&peer_id()];
        assert!(state_at(history, downs, &interval(), SimTime(12_600)).is_some());
    }

    #[test]
    fn observations_before_interval_ignored() {
        // An announce 10 s before the interval start must not count
        // (no prior knowledge — paper §3.1).
        let result = run_scan(vec![announce_record(0, "2a0d:3dc1:1::/48", None)]);
        let iv = BeaconInterval {
            start: SimTime(10),
            ..interval()
        };
        let history = &result.histories[0][&peer_id()];
        assert!(state_at(history, &[], &iv, SimTime(12_600)).is_none());
    }

    #[test]
    fn observations_outside_window_not_collected() {
        let result = run_scan(vec![
            announce_record(5, "2a0d:3dc1:1::/48", None),
            // Past withdraw + window (7 200 + 14 400).
            withdraw_record(30_000, "2a0d:3dc1:1::/48"),
        ]);
        let history = &result.histories[0][&peer_id()];
        assert_eq!(history.len(), 1);
    }

    #[test]
    fn unrelated_prefixes_ignored() {
        let result = run_scan(vec![announce_record(5, "2a0d:3dc1:2::/48", None)]);
        assert!(result.histories[0].is_empty());
    }

    #[test]
    fn aggregator_is_preserved() {
        let clock = Ipv4Addr::new(10, 19, 29, 192);
        let result = run_scan(vec![announce_record(5, "2a0d:3dc1:1::/48", Some(clock))]);
        let history = &result.histories[0][&peer_id()];
        let (_, _, agg) = state_at(history, &[], &interval(), SimTime(12_600)).unwrap();
        assert_eq!(agg, Some(clock));
    }

    #[test]
    fn normal_path_is_none_after_pre_withdrawal_withdraw() {
        // Peer withdrew before the origin's withdrawal instant (e.g. local
        // policy change): no normal path.
        let result = run_scan(vec![
            announce_record(5, "2a0d:3dc1:1::/48", None),
            withdraw_record(3_000, "2a0d:3dc1:1::/48"),
        ]);
        let history = &result.histories[0][&peer_id()];
        assert!(normal_path(history, &interval()).is_none());
    }

    #[test]
    fn peers_listed_sorted() {
        let result = run_scan(vec![announce_record(5, "2a0d:3dc1:1::/48", None)]);
        assert_eq!(result.peers, vec![peer_id()]);
    }

    // ---- sharded-scan determinism --------------------------------------

    fn session_b() -> SessionHeader {
        SessionHeader {
            peer_as: Asn(65_001),
            local_as: Asn(12_654),
            ifindex: 0,
            peer_ip: "2001:db8:b::1".parse().unwrap(),
            local_ip: "2001:7f8:24::82".parse().unwrap(),
        }
    }

    fn announce_as(session: SessionHeader, t: u64, prefix: &str) -> MrtRecord {
        let prefix: Prefix = prefix.parse().unwrap();
        let attrs = PathAttributes {
            origin: Some(Origin::Igp),
            as_path: Some(AsPath::from_sequence([
                session.peer_as.0,
                25_091,
                8_298,
                210_312,
            ])),
            mp_reach: Some(MpReach {
                afi: Afi::Ipv6,
                safi: 1,
                next_hop: NextHop::V6 {
                    global: "2a0c:9a40:1031::504".parse().unwrap(),
                    link_local: None,
                },
                nlri: vec![prefix],
            }),
            ..PathAttributes::default()
        };
        MrtRecord::new(
            SimTime(t),
            MrtBody::Message(Bgp4mpMessage {
                session,
                message: BgpMessage::Update(BgpUpdate {
                    attrs,
                    ..BgpUpdate::default()
                }),
            }),
        )
    }

    fn withdraw_as(session: SessionHeader, t: u64, prefix: &str) -> MrtRecord {
        let prefix: Prefix = prefix.parse().unwrap();
        MrtRecord::new(
            SimTime(t),
            MrtBody::Message(Bgp4mpMessage {
                session,
                message: BgpMessage::Update(BgpUpdate {
                    attrs: PathAttributes {
                        mp_unreach: Some(MpUnreach {
                            afi: Afi::Ipv6,
                            safi: 1,
                            withdrawn: vec![prefix],
                        }),
                        ..PathAttributes::default()
                    },
                    ..BgpUpdate::default()
                }),
            }),
        )
    }

    /// A deterministic, order-insensitive rendering of a [`ScanResult`]
    /// (HashMap iteration order normalized by sorting keys).
    fn fingerprint(result: &ScanResult) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "intervals={:?}", result.intervals);
        let _ = writeln!(out, "peers={:?}", result.peers);
        let _ = writeln!(out, "stats={:?}", result.read_stats);
        for (i, histories) in result.histories.iter().enumerate() {
            let mut keys: Vec<&PeerId> = histories.keys().collect();
            keys.sort();
            for key in keys {
                let _ = writeln!(out, "history[{i}][{key}]={:?}", histories[key]);
            }
        }
        let mut downs: Vec<(&PeerId, &Vec<SimTime>)> = result.session_downs.iter().collect();
        downs.sort_by_key(|&(peer, _)| peer);
        for (peer, times) in downs {
            let _ = writeln!(out, "downs[{peer}]={times:?}");
        }
        out
    }

    /// Serial vs sharded scans over a multi-prefix, multi-interval,
    /// multi-peer archive — including the boundary case where an
    /// observation falls inside an older interval's window *and* after a
    /// newer interval's start (the newer must win on every path).
    #[test]
    fn sharded_scan_matches_serial() {
        let prefixes = ["2a0d:3dc1:1::/48", "2a0d:3dc1:2::/48", "2a0d:3dc1:3::/48"];
        let mut intervals = Vec::new();
        for prefix in &prefixes {
            for k in 0..3u64 {
                intervals.push(BeaconInterval {
                    prefix: prefix.parse().unwrap(),
                    start: SimTime(k * 14_400),
                    withdraw_at: SimTime(k * 14_400 + 7_200),
                });
            }
        }

        let mut records = Vec::new();
        for (p, prefix) in prefixes.iter().enumerate() {
            for k in 0..3u64 {
                let base = k * 14_400;
                records.push(announce_as(session(), base + 5 + p as u64, prefix));
                if (k + p as u64) % 2 == 0 {
                    records.push(withdraw_as(session(), base + 7_210, prefix));
                }
                records.push(announce_as(session_b(), base + 9, prefix));
            }
            // Boundary observation: t = 15 000 is within interval 0's
            // window (7 200 + 14 400 = 21 600) but after interval 1's
            // start (14 400) — it must land in interval 1 everywhere.
            records.push(withdraw_as(session_b(), 15_000, prefix));
        }
        records.push(down_record(8_000));
        records.sort_by_key(|r| r.timestamp);

        let mut writer = MrtWriter::new();
        for record in &records {
            writer.push(record);
        }
        let bytes = writer.finish();

        let serial = scan(bytes.clone(), &intervals, 4 * 3_600);
        let reference = fingerprint(&serial);
        assert!(
            !serial.histories[1].is_empty(),
            "archive exercises histories"
        );
        for jobs in [1, 2, 3, 8] {
            let sharded = scan_sharded(bytes.clone(), &intervals, 4 * 3_600, jobs);
            assert_eq!(
                fingerprint(&sharded),
                reference,
                "sharded scan with {jobs} worker(s) diverged from serial"
            );
        }
    }
}
