//! Palm-tree root-cause inference (paper §5.2).
//!
//! The AS graph of an outbreak's zombie paths looks like a palm tree:
//! starting at the origin there is a single chain of ASes that eventually
//! branches into subtrees. The last AS of the chain — the branching point —
//! is the one plausibly re-exporting the stale route. The paper is careful
//! to note the caveats (the previous AS may have failed to propagate the
//! withdrawal *to* it; invisible IXP route servers), which we surface via
//! [`RootCause::chain`] so callers can inspect the full trunk.

use crate::classify::Outbreak;
use bgpz_types::{AsPath, Asn};

/// The outcome of root-cause inference for one outbreak.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RootCause {
    /// The shared origin-side chain (trunk of the palm tree), origin last.
    /// The first element is the branching point.
    pub chain: Vec<Asn>,
    /// The suspected culprit: the last AS of the single chain (the first
    /// element of `chain`), unless the chain is just the origin itself.
    pub suspect: Option<Asn>,
    /// Number of zombie routes the inference used.
    pub routes_used: usize,
}

/// Infers the root cause of an outbreak from its zombie AS paths.
///
/// Returns `None` when the outbreak has no routes. With a single route the
/// whole path is the chain and the suspect is the AS adjacent to the
/// origin-side trunk's top — consistent with the multi-route case.
pub fn infer_root_cause(outbreak: &Outbreak) -> Option<RootCause> {
    let paths: Vec<&AsPath> = outbreak
        .routes
        .iter()
        .map(|r| r.zombie_path.as_ref())
        .collect();
    infer_from_paths(&paths)
}

/// Inference over raw paths (exposed for testing and for ad-hoc use on
/// traceroute-derived paths).
pub fn infer_from_paths(paths: &[&AsPath]) -> Option<RootCause> {
    if paths.is_empty() {
        return None;
    }
    let chain = AsPath::common_suffix(paths);
    if chain.is_empty() {
        // No common origin: aggregated or inconsistent paths.
        return Some(RootCause {
            chain,
            suspect: None,
            routes_used: paths.len(),
        });
    }
    // The suspect is the top of the shared trunk, but only if it is not
    // the origin itself (an outbreak visible through a single first-hop AS
    // still identifies that AS).
    let suspect = if chain.len() >= 2 {
        Some(chain[0])
    } else {
        None
    };
    Some(RootCause {
        chain,
        suspect,
        routes_used: paths.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn paths(specs: &[&[u32]]) -> Vec<AsPath> {
        specs
            .iter()
            .map(|s| AsPath::from_sequence(s.iter().copied()))
            .collect()
    }

    #[test]
    fn core_backbone_case() {
        // Paper §5.2: 24 routes all sharing "33891 25091 8298 210312";
        // suspect = AS33891 (Core-Backbone).
        let owned = paths(&[
            &[64_001, 33_891, 25_091, 8_298, 210_312],
            &[64_002, 64_003, 33_891, 25_091, 8_298, 210_312],
            &[64_004, 33_891, 25_091, 8_298, 210_312],
        ]);
        let refs: Vec<&AsPath> = owned.iter().collect();
        let cause = infer_from_paths(&refs).unwrap();
        assert_eq!(cause.suspect, Some(Asn(33_891)));
        assert_eq!(
            cause.chain,
            vec![Asn(33_891), Asn(25_091), Asn(8_298), Asn(210_312)]
        );
        assert_eq!(cause.routes_used, 3);
    }

    #[test]
    fn hgc_case() {
        // "9304 6939 43100 25091 8298 210312" — HGC, seen from multiple
        // peers with the same full path: the chain is the whole path and
        // the suspect its top.
        let owned = paths(&[
            &[9_304, 6_939, 43_100, 25_091, 8_298, 210_312],
            &[9_304, 6_939, 43_100, 25_091, 8_298, 210_312],
        ]);
        let refs: Vec<&AsPath> = owned.iter().collect();
        let cause = infer_from_paths(&refs).unwrap();
        assert_eq!(cause.suspect, Some(Asn(9_304)));
    }

    #[test]
    fn single_route_uses_whole_path() {
        let owned = paths(&[&[64_001, 4_637, 1_299, 25_091, 8_298, 210_312]]);
        let refs: Vec<&AsPath> = owned.iter().collect();
        let cause = infer_from_paths(&refs).unwrap();
        assert_eq!(cause.suspect, Some(Asn(64_001)));
        assert_eq!(cause.chain.len(), 6);
    }

    #[test]
    fn origin_only_chain_has_no_suspect() {
        let owned = paths(&[&[64_001, 210_312], &[64_002, 210_312]]);
        let refs: Vec<&AsPath> = owned.iter().collect();
        let cause = infer_from_paths(&refs).unwrap();
        assert_eq!(cause.chain, vec![Asn(210_312)]);
        assert_eq!(cause.suspect, None);
    }

    #[test]
    fn disjoint_paths_yield_empty_chain() {
        let owned = paths(&[&[1, 2, 3], &[4, 5, 6]]);
        let refs: Vec<&AsPath> = owned.iter().collect();
        let cause = infer_from_paths(&refs).unwrap();
        assert!(cause.chain.is_empty());
        assert_eq!(cause.suspect, None);
    }

    #[test]
    fn empty_input() {
        assert!(infer_from_paths(&[]).is_none());
    }
}
