//! Pass 3: noisy-peer detection (paper §3.2 and §5).
//!
//! A peer's **zombie likelihood** is the fraction of beacon announcements
//! for which it held a zombie route. The replication found AS16347 at
//! ≈42.8% against an average of ≈1.58% for everyone else; the beacon study
//! found three such peer routers. Peers that far outside the population
//! are excluded to avoid overestimating zombies.

use crate::classify::ZombieReport;
use crate::scan::{PeerId, ScanResult};
use std::collections::HashMap;

/// Zombie likelihood of one peer router.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PeerLikelihood {
    /// The peer.
    pub peer: PeerId,
    /// Number of announcements for which this peer held a zombie route.
    pub zombie_count: usize,
    /// Number of announcements considered.
    pub announcements: usize,
    /// `zombie_count / announcements`.
    pub likelihood: f64,
}

/// The outcome of outlier detection.
#[derive(Debug, Clone, Default)]
pub struct NoisyPeerReport {
    /// Every peer's likelihood, sorted descending.
    pub likelihoods: Vec<PeerLikelihood>,
    /// The peers flagged as noisy.
    pub noisy: Vec<PeerLikelihood>,
    /// Mean likelihood of the non-noisy population.
    pub clean_mean: f64,
}

/// Computes every peer's zombie likelihood from a classification report.
///
/// Peers that never appear in any history still count as 0 — the paper's
/// 18.76% of `<beacon, peerAS>` pairs with no zombies at all.
pub fn peer_likelihoods(scan: &ScanResult, report: &ZombieReport) -> Vec<PeerLikelihood> {
    let mut counts: HashMap<PeerId, usize> = scan.peers.iter().map(|&p| (p, 0)).collect();
    for outbreak in &report.outbreaks {
        for route in &outbreak.routes {
            *counts.entry(route.peer).or_insert(0) += 1;
        }
    }
    let announcements = report.announcements.max(1);
    let mut out: Vec<PeerLikelihood> = counts
        .into_iter()
        .map(|(peer, zombie_count)| PeerLikelihood {
            peer,
            zombie_count,
            announcements,
            likelihood: zombie_count as f64 / announcements as f64,
        })
        .collect();
    out.sort_by(|a, b| {
        b.likelihood
            .total_cmp(&a.likelihood)
            .then(a.peer.cmp(&b.peer))
    });
    out
}

/// Zombie likelihood of one `<beacon prefix, peer>` pair — the unit of the
/// paper's Fig. 5 CDF and of the Table 4 AS16347 statistics.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PairLikelihood {
    /// The beacon prefix.
    pub prefix: bgpz_types::Prefix,
    /// The peer.
    pub peer: PeerId,
    /// Announcements of this prefix in the scan.
    pub announcements: usize,
    /// How many of them left a zombie at this peer.
    pub zombie_count: usize,
    /// `zombie_count / announcements`.
    pub likelihood: f64,
}

/// Computes the likelihood of every `<beacon prefix, peer>` pair, for all
/// peers seen in the scan (pairs with zero zombies included).
pub fn pair_likelihoods(scan: &ScanResult, report: &ZombieReport) -> Vec<PairLikelihood> {
    let mut per_prefix_intervals: HashMap<bgpz_types::Prefix, usize> = HashMap::new();
    for interval in &scan.intervals {
        *per_prefix_intervals.entry(interval.prefix).or_insert(0) += 1;
    }
    let mut counts: HashMap<(bgpz_types::Prefix, PeerId), usize> = HashMap::new();
    // lint: allow(determinism_taint) — seeds a keyed map with zeros; insertion order cannot show in `counts`
    for (&prefix, _) in per_prefix_intervals.iter() {
        for &peer in &scan.peers {
            counts.insert((prefix, peer), 0);
        }
    }
    for outbreak in &report.outbreaks {
        for route in &outbreak.routes {
            *counts
                .entry((outbreak.interval.prefix, route.peer))
                .or_insert(0) += 1;
        }
    }
    let mut out: Vec<PairLikelihood> = counts
        // lint: allow(determinism_taint) — `out` is sorted by (prefix, peer) immediately below
        .into_iter()
        .map(|((prefix, peer), zombie_count)| {
            let announcements = per_prefix_intervals.get(&prefix).copied().unwrap_or(1);
            PairLikelihood {
                prefix,
                peer,
                announcements,
                zombie_count,
                likelihood: zombie_count as f64 / announcements.max(1) as f64,
            }
        })
        .collect();
    out.sort_by_key(|a| (a.prefix, a.peer));
    out
}

/// Flags peers whose likelihood exceeds `factor ×` the mean of the rest
/// (computed iteratively: remove the worst offender, recompute, repeat).
/// `min_likelihood` guards against flagging peers in runs where everything
/// is near zero.
pub fn detect_noisy_peers(
    scan: &ScanResult,
    report: &ZombieReport,
    factor: f64,
    min_likelihood: f64,
) -> NoisyPeerReport {
    let likelihoods = peer_likelihoods(scan, report);
    let mut noisy: Vec<PeerLikelihood> = Vec::new();
    let mut rest = likelihoods.clone();
    loop {
        if rest.is_empty() {
            break;
        }
        // rest is sorted descending; candidate = worst remaining.
        let candidate = rest[0];
        let others = &rest[1..];
        let mean = if others.is_empty() {
            0.0
        } else {
            others.iter().map(|p| p.likelihood).sum::<f64>() / others.len() as f64
        };
        if candidate.likelihood >= min_likelihood && candidate.likelihood > factor * mean.max(1e-9)
        {
            noisy.push(candidate);
            rest.remove(0);
        } else {
            break;
        }
    }
    let clean_mean = if rest.is_empty() {
        0.0
    } else {
        rest.iter().map(|p| p.likelihood).sum::<f64>() / rest.len() as f64
    };
    bgpz_obs::metrics::counter("core::noisy", "peers_considered", likelihoods.len() as u64);
    bgpz_obs::metrics::counter("core::noisy", "peers_pruned", noisy.len() as u64);
    for pruned in &noisy {
        bgpz_obs::debug!(
            target: "core::noisy",
            "pruned noisy peer {}: likelihood {:.4} vs clean mean {clean_mean:.4}",
            pruned.peer,
            pruned.likelihood
        );
    }
    NoisyPeerReport {
        likelihoods,
        noisy,
        clean_mean,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classify::{classify, ClassifyOptions};
    use crate::interval::BeaconInterval;
    use crate::scan::Observation;
    use bgpz_types::{AsPath, Asn, SimTime};
    use std::collections::HashMap;
    use std::sync::Arc;

    fn peer(n: u8) -> PeerId {
        PeerId {
            addr: format!("2001:db8::{n}").parse().unwrap(),
            asn: Asn(64_000 + n as u32),
        }
    }

    /// Builds a scan of `n_intervals`; `stuck[p]` = set of intervals in
    /// which peer p is stuck (others announce+withdraw cleanly).
    fn build_scan(n_intervals: usize, stuck: &[(PeerId, Vec<usize>)]) -> ScanResult {
        let mut intervals = Vec::new();
        let mut histories = Vec::new();
        for i in 0..n_intervals {
            let start = SimTime((i as u64) * 14_400);
            intervals.push(BeaconInterval {
                prefix: "2a0d:3dc1:1::/48".parse().unwrap(),
                start,
                withdraw_at: start + 7_200,
            });
            let mut map = HashMap::new();
            for (p, stuck_at) in stuck {
                let mut history = vec![(
                    start + 10,
                    Observation::Announce {
                        path: Arc::new(AsPath::from_sequence([p.asn.0, 210_312])),
                        aggregator: None,
                    },
                )];
                if !stuck_at.contains(&i) {
                    history.push((start + 7_230, Observation::Withdraw));
                }
                map.insert(*p, history);
            }
            histories.push(map);
        }
        ScanResult {
            intervals,
            peers: stuck.iter().map(|&(p, _)| p).collect(),
            histories,
            session_downs: HashMap::new(),
            read_stats: Default::default(),
        }
    }

    #[test]
    fn likelihoods_computed_per_peer() {
        let scan = build_scan(
            10,
            &[
                (peer(1), (0..10).collect()), // always stuck: 100%
                (peer(2), vec![0]),           // once: 10%
                (peer(3), vec![]),            // never: 0%
            ],
        );
        let report = classify(&scan, &ClassifyOptions::default());
        let likelihoods = peer_likelihoods(&scan, &report);
        assert_eq!(likelihoods.len(), 3);
        assert_eq!(likelihoods[0].peer, peer(1));
        assert!((likelihoods[0].likelihood - 1.0).abs() < 1e-9);
        assert!((likelihoods[1].likelihood - 0.1).abs() < 1e-9);
        assert_eq!(likelihoods[2].zombie_count, 0);
    }

    #[test]
    fn outlier_flagged_like_as16347() {
        // One peer at ~43%, eleven peers near 1.5%: the paper's situation.
        let mut stuck = vec![(peer(1), (0..43).collect::<Vec<_>>())];
        for n in 2..=12 {
            stuck.push((peer(n), vec![n as usize])); // 1 of 100 ⇒ 1%
        }
        let scan = build_scan(100, &stuck);
        let report = classify(&scan, &ClassifyOptions::default());
        let noisy = detect_noisy_peers(&scan, &report, 10.0, 0.05);
        assert_eq!(noisy.noisy.len(), 1);
        assert_eq!(noisy.noisy[0].peer, peer(1));
        assert!((noisy.noisy[0].likelihood - 0.43).abs() < 1e-9);
        assert!(noisy.clean_mean < 0.02);
    }

    #[test]
    fn homogeneous_population_has_no_outliers() {
        let stuck: Vec<(PeerId, Vec<usize>)> =
            (1..=10).map(|n| (peer(n), vec![n as usize])).collect();
        let scan = build_scan(100, &stuck);
        let report = classify(&scan, &ClassifyOptions::default());
        let noisy = detect_noisy_peers(&scan, &report, 10.0, 0.05);
        assert!(noisy.noisy.is_empty());
    }

    #[test]
    fn multiple_outliers_removed_iteratively() {
        // Three noisy routers (the beacon study's situation) at ~7-10%,
        // everyone else at ~0.1%.
        let mut stuck = vec![
            (peer(1), (0..10).collect::<Vec<_>>()),
            (peer(2), (0..10).collect::<Vec<_>>()),
            (peer(3), (0..7).collect::<Vec<_>>()),
        ];
        for n in 4..=40 {
            stuck.push((peer(n), if n % 10 == 0 { vec![0] } else { vec![] }));
        }
        let scan = build_scan(100, &stuck);
        let report = classify(&scan, &ClassifyOptions::default());
        let noisy = detect_noisy_peers(&scan, &report, 10.0, 0.05);
        let flagged: Vec<PeerId> = noisy.noisy.iter().map(|p| p.peer).collect();
        assert_eq!(flagged.len(), 3);
        assert!(flagged.contains(&peer(1)));
        assert!(flagged.contains(&peer(2)));
        assert!(flagged.contains(&peer(3)));
    }

    #[test]
    fn empty_scan_is_quiet() {
        let scan = ScanResult::default();
        let report = classify(&scan, &ClassifyOptions::default());
        let noisy = detect_noisy_peers(&scan, &report, 10.0, 0.05);
        assert!(noisy.likelihoods.is_empty());
        assert!(noisy.noisy.is_empty());
    }
}
