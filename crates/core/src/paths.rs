//! AS-path statistics (paper Fig. 6 and §B.2).
//!
//! For every (interval, peer) the paper compares three path populations:
//! the **normal path** at peers that correctly withdrew, the **normal
//! path** at peers that got stuck (zombie peers), and the **zombie path**
//! itself (the stuck route after path hunting). Zombie paths are longer —
//! they were not the routes BGP originally selected — and the vast
//! majority differ from the pre-withdrawal path.

use crate::classify::ClassifyOptions;
use crate::scan::{normal_path, state_at, ScanResult};
use std::collections::HashSet;
use std::net::IpAddr;

/// Path-length samples for the three populations of Fig. 6.
#[derive(Debug, Clone, Default)]
pub struct PathLengthSamples {
    /// Normal-path lengths at peers that withdrew the prefix in time.
    pub normal_at_normal_peers: Vec<usize>,
    /// Normal-path lengths at peers that ended up stuck.
    pub normal_at_zombie_peers: Vec<usize>,
    /// The stuck (zombie) path lengths.
    pub zombie_paths: Vec<usize>,
    /// Zombie routes whose stuck path differs from their normal path.
    pub changed: usize,
    /// Zombie routes with both paths known (denominator for `changed`).
    pub comparable: usize,
}

impl PathLengthSamples {
    /// Fraction of zombie paths that differ from the pre-withdrawal path
    /// (the paper reports 79–96% depending on family and filtering).
    pub fn changed_fraction(&self) -> f64 {
        if self.comparable == 0 {
            0.0
        } else {
            self.changed as f64 / self.comparable as f64
        }
    }
}

/// Collects the Fig. 6 samples at the given threshold/options,
/// optionally restricted to one address family (the paper plots IPv4 and
/// IPv6 separately).
pub fn path_length_samples(
    scan: &ScanResult,
    options: &ClassifyOptions,
    family: Option<bgpz_types::Afi>,
) -> PathLengthSamples {
    let mut samples = PathLengthSamples::default();
    let excluded: HashSet<IpAddr> = options.excluded_peers.iter().copied().collect();
    let empty = Vec::new();
    for (idx, interval) in scan.intervals.iter().enumerate() {
        if family.is_some_and(|f| interval.prefix.afi() != f) {
            continue;
        }
        let check = interval.check_time(options.threshold);
        let mut peers: Vec<_> = scan.histories[idx].keys().collect();
        peers.sort();
        for peer in peers {
            if excluded.contains(&peer.addr) {
                continue;
            }
            let history = &scan.histories[idx][peer];
            let downs = scan.session_downs.get(peer).unwrap_or(&empty);
            let normal = normal_path(history, interval);
            match state_at(history, downs, interval, check) {
                Some((t_announce, zombie, aggregator)) => {
                    if options.aggregator_filter {
                        let is_duplicate = aggregator
                            .and_then(|addr| bgpz_beacon::decode_aggregator_clock(addr, t_announce))
                            .is_some_and(|t| t < interval.start);
                        if is_duplicate {
                            continue;
                        }
                    }
                    samples.zombie_paths.push(zombie.hop_count());
                    if let Some(normal) = normal {
                        samples.normal_at_zombie_peers.push(normal.hop_count());
                        samples.comparable += 1;
                        if *normal != *zombie {
                            samples.changed += 1;
                        }
                    }
                }
                None => {
                    if let Some(normal) = normal {
                        samples.normal_at_normal_peers.push(normal.hop_count());
                    }
                }
            }
        }
    }
    samples
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::BeaconInterval;
    use crate::scan::{Observation, PeerId};
    use bgpz_types::{AsPath, Asn, SimTime};
    use std::collections::HashMap;
    use std::sync::Arc;

    fn peer(n: u8) -> PeerId {
        PeerId {
            addr: format!("2001:db8::{n}").parse().unwrap(),
            asn: Asn(64_000 + n as u32),
        }
    }

    fn path(hops: &[u32]) -> Arc<AsPath> {
        Arc::new(AsPath::from_sequence(hops.iter().copied()))
    }

    fn scan() -> ScanResult {
        let start = SimTime(0);
        let interval = BeaconInterval {
            prefix: "2a0d:3dc1:1::/48".parse().unwrap(),
            start,
            withdraw_at: start + 7_200,
        };
        let mut map = HashMap::new();
        // Peer 1: clean withdrawal, normal path of 3 hops.
        map.insert(
            peer(1),
            vec![
                (
                    start + 10,
                    Observation::Announce {
                        path: path(&[64_001, 8_298, 210_312]),
                        aggregator: None,
                    },
                ),
                (start + 7_230, Observation::Withdraw),
            ],
        );
        // Peer 2: stuck; normal path 3 hops, zombie path (after hunting)
        // 5 hops.
        map.insert(
            peer(2),
            vec![
                (
                    start + 12,
                    Observation::Announce {
                        path: path(&[64_002, 8_298, 210_312]),
                        aggregator: None,
                    },
                ),
                (
                    start + 7_400,
                    Observation::Announce {
                        path: path(&[64_002, 64_009, 64_010, 8_298, 210_312]),
                        aggregator: None,
                    },
                ),
            ],
        );
        ScanResult {
            intervals: vec![interval],
            peers: vec![peer(1), peer(2)],
            histories: vec![map],
            session_downs: HashMap::new(),
            read_stats: Default::default(),
        }
    }

    #[test]
    fn three_populations_sorted_out() {
        let samples = path_length_samples(&scan(), &ClassifyOptions::default(), None);
        assert_eq!(samples.normal_at_normal_peers, vec![3]);
        assert_eq!(samples.normal_at_zombie_peers, vec![3]);
        assert_eq!(samples.zombie_paths, vec![5]);
        assert_eq!(samples.comparable, 1);
        assert_eq!(samples.changed, 1);
        assert!((samples.changed_fraction() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn unchanged_zombie_path_counted() {
        let mut s = scan();
        // Make peer 2's zombie path identical to its normal path.
        let h = s.histories[0].get_mut(&peer(2)).unwrap();
        h.truncate(1);
        let samples = path_length_samples(&s, &ClassifyOptions::default(), None);
        assert_eq!(samples.zombie_paths, vec![3]);
        assert_eq!(samples.changed, 0);
        assert_eq!(samples.changed_fraction(), 0.0);
    }

    #[test]
    fn exclusion_respected() {
        let samples = path_length_samples(
            &scan(),
            &ClassifyOptions {
                excluded_peers: vec![peer(2).addr],
                ..ClassifyOptions::default()
            },
            None,
        );
        assert!(samples.zombie_paths.is_empty());
        assert_eq!(samples.normal_at_normal_peers, vec![3]);
    }
}
