//! Threshold sweep (paper Fig. 2).
//!
//! The paper varies the stuck-route threshold from 90 to 180 minutes and
//! plots, with and without the noisy peers, (i) the absolute number of
//! zombie outbreaks and (ii) the percentage of beacon announcements that
//! led to one. The curve *decreases* as slow withdrawals drop out — and
//! then *increases* after ~160 minutes when resurrected routes (late
//! re-announcements, §5.1) come back into scope.

use crate::classify::{classify, ClassifyOptions, ZombieReport};
use crate::scan::ScanResult;
use std::net::IpAddr;

/// One sweep sample.
#[derive(Debug, Clone)]
pub struct SweepPoint {
    /// Threshold in seconds.
    pub threshold: u64,
    /// Absolute number of outbreaks.
    pub outbreaks: usize,
    /// Total zombie routes.
    pub routes: usize,
    /// Fraction of announcements leading to an outbreak.
    pub fraction: f64,
    /// The full report (for downstream analyses).
    pub report: ZombieReport,
}

/// Classifies at every threshold in `thresholds_secs`, with the given peer
/// exclusions.
pub fn threshold_sweep(
    scan: &ScanResult,
    thresholds_secs: &[u64],
    excluded_peers: &[IpAddr],
    aggregator_filter: bool,
) -> Vec<SweepPoint> {
    thresholds_secs
        .iter()
        .map(|&threshold| {
            let report = classify(
                scan,
                &ClassifyOptions {
                    threshold,
                    aggregator_filter,
                    excluded_peers: excluded_peers.to_vec(),
                    ..ClassifyOptions::default()
                },
            );
            SweepPoint {
                threshold,
                outbreaks: report.outbreak_count(),
                routes: report.route_count(),
                fraction: report.outbreak_fraction(),
                report,
            }
        })
        .collect()
}

/// The paper's sweep grid: 90 to 180 minutes in 10-minute steps.
pub fn paper_thresholds() -> Vec<u64> {
    (9..=18).map(|deci| deci * 10 * 60).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interval::BeaconInterval;
    use crate::scan::{Observation, PeerId};
    use bgpz_types::{AsPath, Asn, SimTime};
    use std::collections::HashMap;
    use std::sync::Arc;

    fn peer(n: u8) -> PeerId {
        PeerId {
            addr: format!("2001:db8::{n}").parse().unwrap(),
            asn: Asn(64_000 + n as u32),
        }
    }

    /// One interval; peer 1 withdraws at +100 min (slow), peer 2 never
    /// withdraws, peer 3 withdraws at +150 min then re-announces at
    /// +170 min (resurrection).
    fn scan() -> ScanResult {
        let start = SimTime(0);
        let interval = BeaconInterval {
            prefix: "2a0d:3dc1:1::/48".parse().unwrap(),
            start,
            withdraw_at: start + 900,
        };
        let announce = |p: &PeerId| Observation::Announce {
            path: Arc::new(AsPath::from_sequence([p.asn.0, 210_312])),
            aggregator: None,
        };
        let mut map = HashMap::new();
        let p1 = peer(1);
        map.insert(
            p1,
            vec![
                (start + 10, announce(&p1)),
                (start + 900 + 100 * 60, Observation::Withdraw),
            ],
        );
        let p2 = peer(2);
        map.insert(p2, vec![(start + 12, announce(&p2))]);
        let p3 = peer(3);
        map.insert(
            p3,
            vec![
                (start + 14, announce(&p3)),
                (start + 900 + 150 * 60, Observation::Withdraw),
                (start + 900 + 170 * 60, announce(&p3)),
            ],
        );
        ScanResult {
            intervals: vec![interval],
            peers: vec![p1, p2, p3],
            histories: vec![map],
            session_downs: HashMap::new(),
            read_stats: Default::default(),
        }
    }

    #[test]
    fn routes_decrease_then_resurrect() {
        let scan = scan();
        let points = threshold_sweep(&scan, &paper_thresholds(), &[], true);
        assert_eq!(points.len(), 10);
        let by_minutes: HashMap<u64, usize> = points
            .iter()
            .map(|p| (p.threshold / 60, p.routes))
            .collect();
        // 90 min: peers 1 (slow withdrawal pending), 2, 3 all stuck → 3.
        assert_eq!(by_minutes[&90], 3);
        // 110 min: peer 1's withdrawal landed → 2.
        assert_eq!(by_minutes[&110], 2);
        // 160 min: peer 3 withdrew too → 1.
        assert_eq!(by_minutes[&160], 1);
        // 180 min: peer 3 re-announced (resurrection) → back to 2.
        assert_eq!(by_minutes[&180], 2);
    }

    #[test]
    fn exclusion_applies_across_sweep() {
        let scan = scan();
        let points = threshold_sweep(&scan, &[90 * 60], &[peer(2).addr], true);
        assert_eq!(points[0].routes, 2);
    }

    #[test]
    fn fraction_consistent() {
        let scan = scan();
        let points = threshold_sweep(&scan, &[90 * 60], &[], true);
        assert_eq!(points[0].outbreaks, 1);
        assert!((points[0].fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn paper_grid_is_90_to_180() {
        let grid = paper_thresholds();
        assert_eq!(grid.first(), Some(&(90 * 60)));
        assert_eq!(grid.last(), Some(&(180 * 60)));
        assert_eq!(grid.len(), 10);
    }
}
