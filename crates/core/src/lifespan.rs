//! Pass 4: zombie lifespan tracking over RIB dumps (paper §5, Figs. 3–4).
//!
//! RIPE RIS dumps every peer's RIB every 8 hours. Scanning ~a year of
//! dumps tells how long each zombie outbreak stayed visible — and reveals
//! **resurrections**: a stuck route that disappears from the dumps and
//! reappears later although the beacon was never announced again.

use crate::scan::PeerId;
use bgpz_mrt::{MrtBody, MrtReader};
use bgpz_types::{Prefix, SimTime};
use bytes::Bytes;
use std::collections::{BTreeMap, HashMap};
use std::net::IpAddr;

/// A run of consecutive dumps in which one peer held the prefix.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct VisibilitySpell {
    /// The peer.
    pub peer: PeerId,
    /// First dump instant of the spell.
    pub first: SimTime,
    /// Last dump instant of the spell.
    pub last: SimTime,
}

/// A reappearance of a withdrawn prefix with no new beacon announcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Resurrection {
    /// The peer in whose RIB the route reappeared.
    pub peer: PeerId,
    /// Last dump of the previous spell (visibility gap start).
    pub gap_started: SimTime,
    /// First dump of the new spell.
    pub reappeared_at: SimTime,
}

/// Lifespan of one zombie outbreak (one prefix after its final
/// withdrawal).
#[derive(Debug, Clone)]
pub struct OutbreakLifespan {
    /// The prefix.
    pub prefix: Prefix,
    /// The beacon's final withdrawal instant.
    pub withdrawn_at: SimTime,
    /// Per-peer visibility spells, ordered by (peer, first).
    pub spells: Vec<VisibilitySpell>,
    /// First dump in which any peer held the zombie.
    pub first_seen: SimTime,
    /// Last dump in which any peer held the zombie.
    pub last_seen: SimTime,
    /// Per-peer resurrections (visibility gaps).
    pub resurrections: Vec<Resurrection>,
}

impl OutbreakLifespan {
    /// Outbreak duration: from the withdrawal to the last sighting.
    pub fn duration_secs(&self) -> u64 {
        self.last_seen.saturating_since(self.withdrawn_at)
    }

    /// Duration in (fractional) days.
    pub fn duration_days(&self) -> f64 {
        self.duration_secs() as f64 / 86_400.0
    }

    /// Global gaps: windows in which *no* peer held the route, between two
    /// sightings (Fig. 4's invisible periods).
    pub fn global_gaps(&self) -> Vec<(SimTime, SimTime)> {
        let mut intervals: Vec<(SimTime, SimTime)> =
            self.spells.iter().map(|s| (s.first, s.last)).collect();
        intervals.sort_unstable();
        let mut gaps = Vec::new();
        let mut covered_until: Option<SimTime> = None;
        for (first, last) in intervals {
            match covered_until {
                Some(until) if first > until => {
                    gaps.push((until, first));
                    covered_until = Some(last);
                }
                Some(until) => covered_until = Some(until.max(last)),
                None => covered_until = Some(last),
            }
        }
        gaps
    }

    /// Peers that ever held the zombie.
    pub fn peers(&self) -> Vec<PeerId> {
        let mut out: Vec<PeerId> = self.spells.iter().map(|s| s.peer).collect();
        out.sort();
        out.dedup();
        out
    }

    /// This lifespan with every spell and resurrection of the `excluded`
    /// peer routers removed, or `None` if no other peer ever held the
    /// route.
    ///
    /// Per-peer spells and resurrections are independent, so dropping a
    /// peer from an already-tracked lifespan is exactly what
    /// [`track_lifespans`] returns when called with the same exclusion
    /// list — the derivation lets callers share one full tracking pass
    /// and carve peer-filtered views out of it for free.
    pub fn without_peers(&self, excluded: &[IpAddr]) -> Option<OutbreakLifespan> {
        let spells: Vec<VisibilitySpell> = self
            .spells
            .iter()
            .filter(|s| !excluded.contains(&s.peer.addr))
            .copied()
            .collect();
        let first_seen = spells.iter().map(|s| s.first).min()?;
        let last_seen = spells.iter().map(|s| s.last).max()?;
        let resurrections = self
            .resurrections
            .iter()
            .filter(|r| !excluded.contains(&r.peer.addr))
            .copied()
            .collect();
        Some(OutbreakLifespan {
            prefix: self.prefix,
            withdrawn_at: self.withdrawn_at,
            spells,
            first_seen,
            last_seen,
            resurrections,
        })
    }
}

/// Scans `rib_dumps` for the given `(prefix, final withdrawal)` pairs and
/// returns a lifespan for every prefix that stayed (or reappeared) in some
/// RIB after its withdrawal. Dumps taken at or before a prefix's
/// withdrawal are ignored for that prefix. Peers in `excluded_peers` are
/// skipped (noisy-peer exclusion, Fig. 3's orange line).
pub fn track_lifespans(
    rib_dumps: &[(SimTime, Bytes)],
    prefixes: &[(Prefix, SimTime)],
    excluded_peers: &[IpAddr],
) -> Vec<OutbreakLifespan> {
    let _span = bgpz_obs::span("core::lifespan", "track_lifespans");
    let withdrawal: HashMap<Prefix, SimTime> = prefixes.iter().copied().collect();
    // (prefix, peer) → sorted list of dump-index sightings.
    let mut sightings: BTreeMap<(Prefix, PeerId), Vec<usize>> = BTreeMap::new();

    for (dump_idx, (dump_time, bytes)) in rib_dumps.iter().enumerate() {
        let mut peer_table: Vec<PeerId> = Vec::new();
        let mut reader = MrtReader::new(bytes.clone());
        while let Some(record) = reader.next_record() {
            match record.body {
                MrtBody::PeerIndex(table) => {
                    peer_table = table
                        .peers
                        .iter()
                        .map(|p| PeerId {
                            addr: p.addr,
                            asn: p.asn,
                        })
                        .collect();
                }
                MrtBody::Rib(rib) => {
                    let Some(&withdrawn_at) = withdrawal.get(&rib.prefix) else {
                        continue;
                    };
                    if *dump_time <= withdrawn_at {
                        continue;
                    }
                    for entry in &rib.entries {
                        let Some(&peer) = peer_table.get(entry.peer_index as usize) else {
                            continue; // corrupt index: tolerate
                        };
                        if excluded_peers.contains(&peer.addr) {
                            continue;
                        }
                        sightings
                            .entry((rib.prefix, peer))
                            .or_default()
                            .push(dump_idx);
                    }
                }
                _ => {}
            }
        }
    }

    // Group per prefix, build spells out of consecutive dump indices.
    let mut per_prefix: BTreeMap<Prefix, Vec<(PeerId, Vec<usize>)>> = BTreeMap::new();
    for ((prefix, peer), idxs) in sightings {
        per_prefix.entry(prefix).or_default().push((peer, idxs));
    }

    let mut out = Vec::new();
    for (prefix, peers) in per_prefix {
        let withdrawn_at = withdrawal[&prefix];
        let mut spells = Vec::new();
        let mut resurrections = Vec::new();
        for (peer, idxs) in peers {
            let mut run_start = idxs[0];
            let mut prev = idxs[0];
            let flush = |run_start: usize, prev: usize, spells: &mut Vec<VisibilitySpell>| {
                spells.push(VisibilitySpell {
                    peer,
                    first: rib_dumps[run_start].0,
                    last: rib_dumps[prev].0,
                });
            };
            for &idx in &idxs[1..] {
                if idx == prev + 1 {
                    prev = idx;
                } else {
                    flush(run_start, prev, &mut spells);
                    resurrections.push(Resurrection {
                        peer,
                        gap_started: rib_dumps[prev].0,
                        reappeared_at: rib_dumps[idx].0,
                    });
                    run_start = idx;
                    prev = idx;
                }
            }
            flush(run_start, prev, &mut spells);
        }
        spells.sort_by_key(|s| (s.peer, s.first));
        resurrections.sort_by_key(|r| (r.reappeared_at, r.peer));
        let first_seen = spells.iter().map(|s| s.first).min().expect("non-empty");
        let last_seen = spells.iter().map(|s| s.last).max().expect("non-empty");
        out.push(OutbreakLifespan {
            prefix,
            withdrawn_at,
            spells,
            first_seen,
            last_seen,
            resurrections,
        });
    }
    use bgpz_obs::metrics::{counter, observe};
    counter("core::lifespan", "rib_dumps", rib_dumps.len() as u64);
    counter("core::lifespan", "outbreaks_tracked", out.len() as u64);
    counter(
        "core::lifespan",
        "spells",
        out.iter().map(|l| l.spells.len() as u64).sum(),
    );
    counter(
        "core::lifespan",
        "resurrections",
        out.iter().map(|l| l.resurrections.len() as u64).sum(),
    );
    for lifespan in &out {
        // Bounds follow the paper's lifespan bands (days).
        observe(
            "core::lifespan",
            "duration_days",
            &[1, 7, 30, 90, 180],
            lifespan.duration_days() as u64,
        );
    }
    bgpz_obs::debug!(
        target: "core::lifespan",
        "tracked {} outbreaks over {} dumps ({} resurrections)",
        out.len(),
        rib_dumps.len(),
        out.iter().map(|l| l.resurrections.len()).sum::<usize>()
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpz_mrt::table_dump::{PeerEntry, PeerIndexTable, RibEntry, RibSnapshot};
    use bgpz_mrt::{MrtRecord, MrtWriter};
    use bgpz_types::{AsPath, Asn, PathAttributes};
    use std::net::Ipv4Addr;

    fn peer_id(n: u8) -> PeerId {
        PeerId {
            addr: format!("2001:db8::{n}").parse().unwrap(),
            asn: Asn(64_000 + n as u32),
        }
    }

    fn peer_entry(n: u8) -> PeerEntry {
        PeerEntry {
            bgp_id: Ipv4Addr::new(10, 0, 0, n),
            addr: format!("2001:db8::{n}").parse().unwrap(),
            asn: Asn(64_000 + n as u32),
        }
    }

    /// Builds a dump at `t` where each `(peer number, prefixes)` entry
    /// lists what that peer holds.
    fn dump(t: u64, holdings: &[(u8, &[&str])]) -> (SimTime, Bytes) {
        let mut writer = MrtWriter::new();
        let peers: Vec<PeerEntry> = holdings.iter().map(|&(n, _)| peer_entry(n)).collect();
        writer.push(&MrtRecord::new(
            SimTime(t),
            MrtBody::PeerIndex(PeerIndexTable {
                collector_id: Ipv4Addr::new(193, 0, 4, 0),
                view_name: String::new(),
                peers,
            }),
        ));
        let mut all: Vec<Prefix> = holdings
            .iter()
            .flat_map(|&(_, ps)| ps.iter().map(|p| p.parse().unwrap()))
            .collect();
        all.sort_unstable();
        all.dedup();
        for (seq, prefix) in all.into_iter().enumerate() {
            let entries: Vec<RibEntry> = holdings
                .iter()
                .enumerate()
                .filter(|&(_, &(_, ps))| ps.iter().any(|p| p.parse::<Prefix>().unwrap() == prefix))
                .map(|(i, _)| RibEntry {
                    peer_index: i as u16,
                    originated: SimTime(t),
                    attrs: PathAttributes::announcement(AsPath::from_sequence([64_001, 210_312])),
                })
                .collect();
            writer.push(&MrtRecord::new(
                SimTime(t),
                MrtBody::Rib(RibSnapshot {
                    sequence: seq as u32,
                    prefix,
                    entries,
                }),
            ));
        }
        (SimTime(t), writer.finish())
    }

    const P: &str = "2a0d:3dc1:1851::/48";
    const H8: u64 = 8 * 3_600;

    #[test]
    fn continuous_visibility_single_spell() {
        let dumps = vec![
            dump(H8, &[(1, &[P])]),
            dump(2 * H8, &[(1, &[P])]),
            dump(3 * H8, &[(1, &[P])]),
            dump(4 * H8, &[(1, &[])]),
        ];
        let lifespans = track_lifespans(&dumps, &[(P.parse().unwrap(), SimTime(900))], &[]);
        assert_eq!(lifespans.len(), 1);
        let l = &lifespans[0];
        assert_eq!(l.spells.len(), 1);
        assert_eq!(l.spells[0].peer, peer_id(1));
        assert_eq!(l.first_seen, SimTime(H8));
        assert_eq!(l.last_seen, SimTime(3 * H8));
        assert_eq!(l.duration_secs(), 3 * H8 - 900);
        assert!(l.resurrections.is_empty());
        assert!(l.global_gaps().is_empty());
    }

    #[test]
    fn gap_means_resurrection() {
        // Fig. 4 pattern: visible, gone for two dumps, visible again.
        let dumps = vec![
            dump(H8, &[(1, &[P])]),
            dump(2 * H8, &[(1, &[])]),
            dump(3 * H8, &[(1, &[])]),
            dump(4 * H8, &[(1, &[P])]),
            dump(5 * H8, &[(1, &[P])]),
        ];
        let lifespans = track_lifespans(&dumps, &[(P.parse().unwrap(), SimTime(900))], &[]);
        let l = &lifespans[0];
        assert_eq!(l.spells.len(), 2);
        assert_eq!(l.resurrections.len(), 1);
        assert_eq!(l.resurrections[0].gap_started, SimTime(H8));
        assert_eq!(l.resurrections[0].reappeared_at, SimTime(4 * H8));
        assert_eq!(l.global_gaps(), vec![(SimTime(H8), SimTime(4 * H8))]);
        assert_eq!(l.duration_secs(), 5 * H8 - 900);
    }

    #[test]
    fn dumps_before_withdrawal_ignored() {
        let dumps = vec![dump(H8, &[(1, &[P])]), dump(2 * H8, &[(1, &[])])];
        // Withdrawal after the first dump: that sighting is the normal
        // announced phase, not a zombie.
        let lifespans = track_lifespans(&dumps, &[(P.parse().unwrap(), SimTime(H8 + 10))], &[]);
        assert!(lifespans.is_empty());
    }

    #[test]
    fn multiple_peers_merge_into_outbreak() {
        let dumps = vec![
            dump(H8, &[(1, &[P]), (2, &[P])]),
            dump(2 * H8, &[(1, &[]), (2, &[P])]),
        ];
        let lifespans = track_lifespans(&dumps, &[(P.parse().unwrap(), SimTime(900))], &[]);
        let l = &lifespans[0];
        assert_eq!(l.peers(), vec![peer_id(1), peer_id(2)]);
        assert_eq!(l.spells.len(), 2);
        assert_eq!(l.last_seen, SimTime(2 * H8));
        // No global gap: peer 2 bridges.
        assert!(l.global_gaps().is_empty());
    }

    #[test]
    fn excluded_peer_not_tracked() {
        let dumps = vec![dump(H8, &[(1, &[P])])];
        let lifespans = track_lifespans(
            &dumps,
            &[(P.parse().unwrap(), SimTime(900))],
            &[peer_id(1).addr],
        );
        assert!(lifespans.is_empty());
    }

    /// `without_peers` must agree with re-tracking under the same
    /// exclusion list — the contract that lets the analysis layer share
    /// one tracking pass.
    #[test]
    fn without_peers_matches_tracking_with_exclusion() {
        // Peer 1 has a gap (a resurrection); peer 2 bridges it; peer 3
        // appears only late.
        let dumps = vec![
            dump(H8, &[(1, &[P]), (2, &[P]), (3, &[])]),
            dump(2 * H8, &[(1, &[]), (2, &[P]), (3, &[])]),
            dump(3 * H8, &[(1, &[P]), (2, &[P]), (3, &[P])]),
            dump(4 * H8, &[(1, &[]), (2, &[]), (3, &[P])]),
        ];
        let finals = [(P.parse().unwrap(), SimTime(900))];
        let full = track_lifespans(&dumps, &finals, &[]);
        assert_eq!(full.len(), 1);
        for excluded in [
            vec![peer_id(1).addr],
            vec![peer_id(2).addr],
            vec![peer_id(1).addr, peer_id(3).addr],
        ] {
            let retracked = track_lifespans(&dumps, &finals, &excluded);
            let derived = full[0].without_peers(&excluded).expect("peers remain");
            assert_eq!(retracked.len(), 1, "excluded {excluded:?}");
            let want = &retracked[0];
            assert_eq!(derived.prefix, want.prefix);
            assert_eq!(derived.withdrawn_at, want.withdrawn_at);
            assert_eq!(derived.spells, want.spells, "excluded {excluded:?}");
            assert_eq!(
                derived.resurrections, want.resurrections,
                "excluded {excluded:?}"
            );
            assert_eq!(derived.first_seen, want.first_seen);
            assert_eq!(derived.last_seen, want.last_seen);
        }
        // Excluding every peer yields None, matching an empty re-track.
        let all = vec![peer_id(1).addr, peer_id(2).addr, peer_id(3).addr];
        assert!(full[0].without_peers(&all).is_none());
        assert!(track_lifespans(&dumps, &finals, &all).is_empty());
    }

    #[test]
    fn untracked_prefixes_ignored() {
        let dumps = vec![dump(H8, &[(1, &["2a0d:3dc1:9999::/48"])])];
        let lifespans = track_lifespans(&dumps, &[(P.parse().unwrap(), SimTime(900))], &[]);
        assert!(lifespans.is_empty());
    }

    #[test]
    fn duration_days() {
        let dumps = vec![
            dump(H8, &[(1, &[P])]),
            dump(86_400 * 30, &[(1, &[P])]),
            dump(86_400 * 30 + H8, &[(1, &[])]),
        ];
        // Non-consecutive dumps (indices 0 and 1 are adjacent here — both
        // sightings) — durations measured to the last sighting.
        let lifespans = track_lifespans(&dumps, &[(P.parse().unwrap(), SimTime(0))], &[]);
        let l = &lifespans[0];
        assert!((l.duration_days() - 30.0).abs() < 0.01);
    }
}
