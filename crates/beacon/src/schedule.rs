//! Common beacon schedule form and the simulator driver.

use bgpz_netsim::{RouteMeta, Simulator};
use bgpz_types::attrs::Aggregator;
use bgpz_types::{Asn, Prefix, SimTime};

/// What a beacon does at an instant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BeaconEventKind {
    /// Announce, carrying the Aggregator BGP clock if the system sets one.
    Announce {
        /// Aggregator attribute (ASN + clock IP), if used.
        aggregator: Option<Aggregator>,
    },
    /// Withdraw.
    Withdraw,
}

/// One scheduled beacon action.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BeaconEvent {
    /// When.
    pub time: SimTime,
    /// Which prefix.
    pub prefix: Prefix,
    /// Origin AS performing the action.
    pub origin: Asn,
    /// Announce or withdraw.
    pub kind: BeaconEventKind,
}

/// A complete, time-ordered schedule.
#[derive(Debug, Clone, Default)]
pub struct BeaconSchedule {
    /// Events sorted by time (ties broken by prefix).
    pub events: Vec<BeaconEvent>,
}

impl BeaconSchedule {
    /// Number of announcement events (the paper's "visible prefixes" count
    /// in Table 1 is exactly this).
    pub fn announcement_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, BeaconEventKind::Announce { .. }))
            .count()
    }

    /// All distinct prefixes in the schedule, sorted.
    pub fn prefixes(&self) -> Vec<Prefix> {
        let mut out: Vec<Prefix> = self.events.iter().map(|e| e.prefix).collect();
        out.sort_unstable();
        out.dedup();
        out
    }

    /// The announcement events, in order.
    pub fn announcements(&self) -> impl Iterator<Item = &BeaconEvent> {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, BeaconEventKind::Announce { .. }))
    }

    /// Sorts events by (time, prefix) — generators call this last.
    pub fn normalize(&mut self) {
        self.events.sort_by_key(|e| (e.time, e.prefix));
    }
}

/// Feeds a schedule into the simulator: each announce/withdraw becomes an
/// origination event, with a fresh ground-truth generation per announce.
pub fn apply_schedule(sim: &mut Simulator, schedule: &BeaconSchedule) {
    for event in &schedule.events {
        match event.kind {
            BeaconEventKind::Announce { aggregator } => {
                let generation = sim.next_generation();
                sim.schedule_announce(
                    event.time,
                    event.origin,
                    event.prefix,
                    RouteMeta {
                        aggregator,
                        origin_time: event.time,
                        generation,
                    },
                );
            }
            BeaconEventKind::Withdraw => {
                sim.schedule_withdraw(event.time, event.origin, event.prefix);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpz_netsim::{FaultPlan, Tier, Topology};

    #[test]
    fn schedule_counts_and_prefixes() {
        let prefix: Prefix = "2a0d:3dc1:30::/48".parse().unwrap();
        let mut schedule = BeaconSchedule::default();
        schedule.events.push(BeaconEvent {
            time: SimTime(900),
            prefix,
            origin: Asn(210_312),
            kind: BeaconEventKind::Withdraw,
        });
        schedule.events.push(BeaconEvent {
            time: SimTime(0),
            prefix,
            origin: Asn(210_312),
            kind: BeaconEventKind::Announce { aggregator: None },
        });
        schedule.normalize();
        assert_eq!(schedule.events[0].time, SimTime(0));
        assert_eq!(schedule.announcement_count(), 1);
        assert_eq!(schedule.prefixes(), vec![prefix]);
        assert_eq!(schedule.announcements().count(), 1);
    }

    #[test]
    fn apply_schedule_drives_simulator() {
        let topo = Topology::builder()
            .node(Asn(1), Tier::Tier1)
            .node(Asn(210_312), Tier::Stub)
            .provider_customer(Asn(1), Asn(210_312))
            .build();
        let mut sim = Simulator::new(topo, &FaultPlan::none(), 1);
        let prefix: Prefix = "2a0d:3dc1:30::/48".parse().unwrap();
        let mut schedule = BeaconSchedule::default();
        schedule.events.push(BeaconEvent {
            time: SimTime(0),
            prefix,
            origin: Asn(210_312),
            kind: BeaconEventKind::Announce { aggregator: None },
        });
        schedule.events.push(BeaconEvent {
            time: SimTime(900),
            prefix,
            origin: Asn(210_312),
            kind: BeaconEventKind::Withdraw,
        });
        apply_schedule(&mut sim, &schedule);
        sim.run_until(SimTime(600));
        assert!(sim.holds_prefix(Asn(1), prefix));
        sim.run_to_completion();
        assert!(!sim.holds_prefix(Asn(1), prefix));
    }
}
