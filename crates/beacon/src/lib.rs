//! # bgpz-beacon
//!
//! The two beacon systems the paper works with:
//!
//! * [`ris`] — the RIPE RIS routing beacons: fixed IPv4/IPv6 prefixes
//!   announced every 4 hours and withdrawn 2 hours later, carrying a BGP
//!   clock in the **Aggregator IP address** (`10.x.y.z` = 24-bit seconds
//!   since the start of the month). Used for the replication study (§3).
//! * [`paper`] — the paper's own beaconing methodology (§4): 96 fresh IPv6
//!   `/48`s per day under `2a0d:3dc1::/32`, announced on every quarter hour
//!   and withdrawn 15 minutes later, with the announcement time encoded in
//!   the **prefix bits** — `2a0d:3dc1:(HHMM)::/48` for the 24-hour-recycle
//!   approach, `2a0d:3dc1:(HH)(minute+day%15)::/48` for the 15-day one.
//!   The second encoding has the collision bug of the paper's footnote 3,
//!   reproduced faithfully (and exploited by the tests).
//!
//! [`clock`] implements both clock codecs; [`schedule`] defines the common
//! event form and the driver that feeds a schedule into a
//! [`bgpz_netsim::Simulator`].

#![forbid(unsafe_code)]

pub mod clock;
pub mod paper;
pub mod ris;
pub mod schedule;
pub mod v4clock;

pub use clock::{aggregator_clock, decode_aggregator_clock, PrefixClock, RecycleMode};
pub use paper::{PaperBeaconConfig, PaperBeacons};
pub use ris::{RisBeaconConfig, RisBeacons};
pub use schedule::{apply_schedule, BeaconEvent, BeaconEventKind, BeaconSchedule};
pub use v4clock::{V4PrefixClock, V4RecycleMode};
