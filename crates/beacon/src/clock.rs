//! BGP clocks: timestamps smuggled through BGP attributes and prefix bits.
//!
//! Two codecs live here:
//!
//! 1. The **Aggregator clock** of the RIPE RIS beacons: the Aggregator IP
//!    address is `10.x.y.z` where `x.y.z` is the 24-bit number of seconds
//!    between midnight UTC on the 1st of the month and the announcement.
//!    The paper's §3.1 uses it to decide whether a stuck route belongs to
//!    the current beacon interval (fresh zombie) or to an earlier one
//!    (already counted — double counting eliminated).
//! 2. The **prefix clock** of the paper's own beacons: the announcement
//!    time encoded in the third hextet of `2a0d:3dc1:xxxx::/48`, with two
//!    formats depending on the recycle mode — including the ambiguous
//!    concatenation of the 15-day format that produces the footnote-3
//!    collisions.

use bgpz_types::time;
use bgpz_types::{Ipv6Net, Prefix, SimTime};
use std::net::{Ipv4Addr, Ipv6Addr};

/// Builds the RIS beacon Aggregator IP (`10.x.y.z`) for an announcement at
/// `t`. Truncates to 24 bits exactly like the real beacons (a month is at
/// most 2,678,400 s < 2^24, so no truncation occurs in practice).
pub fn aggregator_clock(t: SimTime) -> Ipv4Addr {
    let secs = t.secs_into_month() & 0xFF_FFFF;
    Ipv4Addr::new(10, (secs >> 16) as u8, (secs >> 8) as u8, secs as u8)
}

/// Decodes an Aggregator clock IP back to an absolute announcement time,
/// interpreting it relative to the month containing `reference` (the paper
/// notes the ambiguity across months; like the paper we take the best-case,
/// most recent interpretation at or before `reference`).
///
/// Returns `None` if `addr` is not in `10.0.0.0/8`.
pub fn decode_aggregator_clock(addr: Ipv4Addr, reference: SimTime) -> Option<SimTime> {
    let oct = addr.octets();
    if oct[0] != 10 {
        return None;
    }
    let secs = ((oct[1] as u64) << 16) | ((oct[2] as u64) << 8) | oct[3] as u64;
    let this_month = reference.start_of_month() + secs;
    if this_month <= reference {
        return Some(this_month);
    }
    // The encoded instant is later in the month than `reference`: it must
    // come from a previous month. Step back one month.
    let (mut year, mut month, _) = reference.ymd();
    if month == 1 {
        year -= 1;
        month = 12;
    } else {
        month -= 1;
    }
    Some(SimTime::from_ymd_hms(year, month, 1, 0, 0, 0) + secs)
}

/// The two prefix-recycling approaches of the paper's §4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RecycleMode {
    /// First approach: `2a0d:3dc1:(HHMM)::/48`, each prefix reused every
    /// 24 hours. Ran 2024-06-04 11:45 → 2024-06-10 09:30 UTC.
    Daily,
    /// Second approach: `2a0d:3dc1:(HH)(minute+day%15)::/48`, each prefix
    /// reused every 15 days. Ran 2024-06-10 11:30 → 2024-06-22 17:30 UTC.
    /// The decimal concatenation is ambiguous (footnote 3): e.g. on a day
    /// with `day%15 == 0`, 00:30 gives `"0"+"30"` and 03:00 gives
    /// `"3"+"0"`, both parsing to hextet `0x30`.
    FifteenDay,
}

/// The paper's prefix clock under a `/32` covering block.
#[derive(Debug, Clone, Copy)]
pub struct PrefixClock {
    /// Covering block; the clock hextet is the third 16-bit group.
    pub covering: Ipv6Net,
    /// Encoding format.
    pub mode: RecycleMode,
}

impl PrefixClock {
    /// The paper's deployment: `2a0d:3dc1::/32`.
    pub fn paper(mode: RecycleMode) -> PrefixClock {
        PrefixClock {
            covering: Ipv6Net::new("2a0d:3dc1::".parse().unwrap(), 32).expect("static"),
            mode,
        }
    }

    /// Encodes the beacon prefix announced at `t` (which must lie on a
    /// quarter-hour boundary).
    pub fn encode(&self, t: SimTime) -> Prefix {
        let (h, m, s) = t.hms();
        assert_eq!(s, 0, "beacon slots are on whole minutes");
        assert_eq!(m % 15, 0, "beacon slots are on quarter hours");
        let hextet = match self.mode {
            RecycleMode::Daily => {
                // Decimal digits HHMM read as a hexadecimal number.
                let digits = format!("{h:02}{m:02}");
                u16::from_str_radix(&digits, 16).expect("decimal digits are valid hex")
            }
            RecycleMode::FifteenDay => {
                // Unpadded decimal concatenation of HH and minute+day%15 —
                // the faithful reproduction of the buggy format.
                let (_, _, day) = t.ymd();
                let digits = format!("{}{}", h, m + day % 15);
                u16::from_str_radix(&digits, 16).expect("decimal digits are valid hex")
            }
        };
        let mut segs = [0u16; 8];
        let covering_segs = self.covering.addr().segments();
        segs[0] = covering_segs[0];
        segs[1] = covering_segs[1];
        segs[2] = hextet;
        Prefix::V6(Ipv6Net::new(Ipv6Addr::from(segs), 48).expect("len 48 valid"))
    }

    /// Decodes a beacon prefix back to its time-of-day slot(s).
    ///
    /// For [`RecycleMode::Daily`] the result is unambiguous: at most one
    /// `(hour, minute)`. For [`RecycleMode::FifteenDay`] the result is the
    /// set of `(hour, minute+day%15)` readings consistent with the hextet —
    /// more than one when the collision bug strikes.
    pub fn decode_slots(&self, prefix: Prefix) -> Vec<(u64, u64)> {
        let Prefix::V6(net) = prefix else {
            return Vec::new();
        };
        if !self.covering.contains(net) || net.len() != 48 {
            return Vec::new();
        }
        let hextet = net.addr().segments()[2];
        // Exhaustive inverse of the encoder: enumerate every legal slot
        // reading and keep those whose encoding matches the hextet. The
        // domains are tiny (96 and 1 440 combinations), and this is the
        // only decode that survives the hex rendering dropping leading
        // zeros (e.g. "030" and "30" are the same hextet 0x30).
        match self.mode {
            RecycleMode::Daily => {
                let mut slots = Vec::new();
                for h in 0..24u64 {
                    for m in [0u64, 15, 30, 45] {
                        let digits = format!("{h:02}{m:02}");
                        if u16::from_str_radix(&digits, 16).expect("decimal digits") == hextet {
                            slots.push((h, m));
                        }
                    }
                }
                slots
            }
            RecycleMode::FifteenDay => {
                // Readings are (hour, minute + day%15) with minute on a
                // quarter hour and day%15 in 0..15, i.e. rest in 0..60.
                let mut slots = Vec::new();
                for h in 0..24u64 {
                    for rest in 0..60u64 {
                        let digits = format!("{h}{rest}");
                        if digits.len() <= 4
                            && u16::from_str_radix(&digits, 16).expect("decimal digits") == hextet
                        {
                            slots.push((h, rest));
                        }
                    }
                }
                slots
            }
        }
    }
}

/// Convenience: the exact Aggregator-clock example from the paper's §3.1.
///
/// `10.19.29.192` received on 2018-07-19 02:00:02 decodes to 1,252,800
/// seconds after 2018-07-01, i.e. the announcement of 2018-07-15 12:00 UTC.
pub fn paper_aggregator_example() -> (Ipv4Addr, SimTime) {
    (
        Ipv4Addr::new(10, 19, 29, 192),
        SimTime::from_ymd_hms(2018, 7, 15, 12, 0, 0),
    )
}

/// True if `t` is on a beacon quarter-hour boundary.
pub fn is_quarter_hour(t: SimTime) -> bool {
    t.secs().is_multiple_of(15 * time::MINUTE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregator_roundtrip_same_month() {
        let announce = SimTime::from_ymd_hms(2018, 7, 19, 0, 0, 0);
        let clock = aggregator_clock(announce);
        let reference = SimTime::from_ymd_hms(2018, 7, 19, 2, 0, 2);
        assert_eq!(decode_aggregator_clock(clock, reference), Some(announce));
    }

    #[test]
    fn aggregator_paper_example() {
        let (addr, want) = paper_aggregator_example();
        let reference = SimTime::from_ymd_hms(2018, 7, 19, 2, 0, 2);
        assert_eq!(decode_aggregator_clock(addr, reference), Some(want));
        // And the encoder produces the same address.
        assert_eq!(aggregator_clock(want), addr);
    }

    #[test]
    fn aggregator_previous_month_interpretation() {
        // Announced late in June, observed early in July: the in-month
        // reading would be in the future, so decode falls back one month.
        let announce = SimTime::from_ymd_hms(2018, 6, 28, 12, 0, 0);
        let clock = aggregator_clock(announce);
        let reference = SimTime::from_ymd_hms(2018, 7, 2, 0, 0, 0);
        assert_eq!(decode_aggregator_clock(clock, reference), Some(announce));
        // Year boundary: December → January.
        let announce = SimTime::from_ymd_hms(2017, 12, 30, 4, 0, 0);
        let clock = aggregator_clock(announce);
        let reference = SimTime::from_ymd_hms(2018, 1, 1, 8, 0, 0);
        assert_eq!(decode_aggregator_clock(clock, reference), Some(announce));
    }

    #[test]
    fn aggregator_rejects_non_rfc1918_clock() {
        let reference = SimTime::from_ymd_hms(2018, 7, 19, 2, 0, 2);
        assert_eq!(
            decode_aggregator_clock(Ipv4Addr::new(193, 0, 4, 28), reference),
            None
        );
    }

    #[test]
    fn daily_encoding_examples() {
        let clock = PrefixClock::paper(RecycleMode::Daily);
        let t = SimTime::from_ymd_hms(2024, 6, 4, 11, 45, 0);
        assert_eq!(clock.encode(t).to_string(), "2a0d:3dc1:1145::/48");
        let t0 = SimTime::from_ymd_hms(2024, 6, 5, 0, 15, 0);
        assert_eq!(clock.encode(t0).to_string(), "2a0d:3dc1:15::/48");
        let midnight = SimTime::from_ymd_hms(2024, 6, 5, 0, 0, 0);
        assert_eq!(clock.encode(midnight).to_string(), "2a0d:3dc1::/48");
    }

    #[test]
    fn daily_decode_roundtrip_all_slots() {
        let clock = PrefixClock::paper(RecycleMode::Daily);
        for h in 0..24 {
            for m in [0u64, 15, 30, 45] {
                let t = SimTime::from_ymd_hms(2024, 6, 7, h, m, 0);
                let prefix = clock.encode(t);
                assert_eq!(clock.decode_slots(prefix), vec![(h, m)], "{h}:{m}");
            }
        }
    }

    #[test]
    fn daily_prefixes_unique_within_day() {
        let clock = PrefixClock::paper(RecycleMode::Daily);
        let mut seen = std::collections::HashSet::new();
        for h in 0..24 {
            for m in [0u64, 15, 30, 45] {
                let t = SimTime::from_ymd_hms(2024, 6, 7, h, m, 0);
                assert!(seen.insert(clock.encode(t)), "duplicate at {h}:{m}");
            }
        }
        assert_eq!(seen.len(), 96);
    }

    #[test]
    fn fifteen_day_encoding_paper_examples() {
        let clock = PrefixClock::paper(RecycleMode::FifteenDay);
        // Resurrected zombie 2a0d:3dc1:1851::/48: 18:45 on 2024-06-21
        // (21 % 15 = 6; 45 + 6 = 51).
        let t = SimTime::from_ymd_hms(2024, 6, 21, 18, 45, 0);
        assert_eq!(clock.encode(t).to_string(), "2a0d:3dc1:1851::/48");
        // Footnote 3 collision on 2024-06-15 (15 % 15 = 0): 00:30 and
        // 03:00 both give 2a0d:3dc1:30::/48.
        let a = SimTime::from_ymd_hms(2024, 6, 15, 0, 30, 0);
        let b = SimTime::from_ymd_hms(2024, 6, 15, 3, 0, 0);
        assert_eq!(clock.encode(a).to_string(), "2a0d:3dc1:30::/48");
        assert_eq!(clock.encode(a), clock.encode(b));
    }

    #[test]
    fn fifteen_day_decode_reports_ambiguity() {
        let clock = PrefixClock::paper(RecycleMode::FifteenDay);
        let prefix: Prefix = "2a0d:3dc1:30::/48".parse().unwrap();
        let slots = clock.decode_slots(prefix);
        assert!(slots.contains(&(0, 30)));
        assert!(slots.contains(&(3, 0)));
    }

    #[test]
    fn fifteen_day_collision_count_per_day() {
        // Count distinct prefixes among the 96 slots of a day with
        // day%15 == 0: the bug collapses some pairs.
        let clock = PrefixClock::paper(RecycleMode::FifteenDay);
        let mut seen = std::collections::HashSet::new();
        let mut total = 0;
        for h in 0..24 {
            for m in [0u64, 15, 30, 45] {
                let t = SimTime::from_ymd_hms(2024, 6, 15, h, m, 0);
                seen.insert(clock.encode(t));
                total += 1;
            }
        }
        assert_eq!(total, 96);
        assert!(
            seen.len() < total,
            "footnote-3 collisions must exist on 2024-06-15"
        );
    }

    #[test]
    fn decode_rejects_foreign_prefixes() {
        let clock = PrefixClock::paper(RecycleMode::Daily);
        assert!(clock
            .decode_slots("2001:db8:1145::/48".parse().unwrap())
            .is_empty());
        assert!(clock
            .decode_slots("2a0d:3dc1:1145::/56".parse().unwrap())
            .is_empty());
        // Hex digits outside 0-9 are not clock values.
        assert!(clock
            .decode_slots("2a0d:3dc1:1a45::/48".parse().unwrap())
            .is_empty());
        // Valid digits but not a quarter-hour.
        assert!(clock
            .decode_slots("2a0d:3dc1:1146::/48".parse().unwrap())
            .is_empty());
    }

    #[test]
    fn quarter_hour_check() {
        assert!(is_quarter_hour(SimTime::from_ymd_hms(
            2024, 6, 4, 11, 45, 0
        )));
        assert!(!is_quarter_hour(SimTime::from_ymd_hms(
            2024, 6, 4, 11, 46, 0
        )));
    }
}
