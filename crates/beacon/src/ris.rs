//! The RIPE RIS routing-beacon system (replication study, paper §3).
//!
//! Every beacon prefix is announced at 00:00, 04:00, ... 20:00 UTC and
//! withdrawn two hours later. At the time of the Fontugne et al. study the
//! set was 13 IPv4 + 14 IPv6 prefixes (27 in total — which is why the
//! paper's Table 1 reports 7,126 visible prefixes for the 44-day 2018
//! window: 44 × 6 × 27 ≈ 7,128, minus edge effects). Announcements carry
//! the Aggregator BGP clock.

use crate::clock::aggregator_clock;
use crate::schedule::{BeaconEvent, BeaconEventKind, BeaconSchedule};
use bgpz_types::attrs::Aggregator;
use bgpz_types::time::HOUR;
use bgpz_types::{Asn, Prefix, SimTime};

/// One RIS beacon: a prefix and the AS originating it (a RIS collector
/// location).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RisBeacon {
    /// The beacon prefix.
    pub prefix: Prefix,
    /// The origin AS (RIPE NCC's AS12654 in reality; configurable so the
    /// simulation can spread beacons across origins).
    pub origin: Asn,
}

/// Configuration of the RIS beacon system.
#[derive(Debug, Clone)]
pub struct RisBeaconConfig {
    /// The beacons.
    pub beacons: Vec<RisBeacon>,
    /// Seconds between announcements (4 h for RIS).
    pub period: u64,
    /// Seconds from announcement to withdrawal (2 h for RIS).
    pub up_time: u64,
}

impl RisBeaconConfig {
    /// The historical 2017/2018-era beacon set: 13 IPv4 `/24`s under
    /// `84.205.64.0/19`-ish space and 14 IPv6 `/48`s under
    /// `2001:7fb:fe00::/40`, all originated by `origin`.
    pub fn historical(origin: Asn) -> RisBeaconConfig {
        RisBeaconConfig::historical_distributed(&[origin])
    }

    /// The historical beacon set spread over several origin sites,
    /// round-robin: beacon *i* of each family is originated by
    /// `origins[i % origins.len()]`. This mirrors reality — each RIS
    /// collector site announces its own beacon — and is what makes some
    /// zombie outbreaks *single-prefix* (a fault near one site) while
    /// others hit every beacon at once (a fault near a peer), the Fig. 7
    /// bimodality.
    pub fn historical_distributed(origins: &[Asn]) -> RisBeaconConfig {
        assert!(!origins.is_empty(), "at least one origin required");
        let mut beacons = Vec::new();
        for i in 0..13usize {
            beacons.push(RisBeacon {
                prefix: Prefix::v4(84, 205, 64 + i as u8, 0, 24),
                origin: origins[i % origins.len()],
            });
        }
        for i in 0..14usize {
            beacons.push(RisBeacon {
                prefix: Prefix::v6([0x2001, 0x07fb, 0xfe00 + i as u16, 0, 0, 0, 0, 0], 48),
                origin: origins[i % origins.len()],
            });
        }
        RisBeaconConfig {
            beacons,
            period: 4 * HOUR,
            up_time: 2 * HOUR,
        }
    }

    /// Number of beacons.
    pub fn len(&self) -> usize {
        self.beacons.len()
    }

    /// True if no beacons are configured.
    pub fn is_empty(&self) -> bool {
        self.beacons.is_empty()
    }
}

/// Schedule generator for the RIS beacons.
#[derive(Debug, Clone)]
pub struct RisBeacons {
    config: RisBeaconConfig,
}

impl RisBeacons {
    /// Creates the generator.
    pub fn new(config: RisBeaconConfig) -> RisBeacons {
        RisBeacons { config }
    }

    /// The configuration.
    pub fn config(&self) -> &RisBeaconConfig {
        &self.config
    }

    /// Builds the announce/withdraw schedule over `[start, end)`.
    ///
    /// Interval starts are aligned to multiples of the period from
    /// midnight (00:00, 04:00, ...), matching RIS. The Aggregator clock is
    /// stamped with each announcement instant.
    pub fn schedule(&self, start: SimTime, end: SimTime) -> BeaconSchedule {
        let mut schedule = BeaconSchedule::default();
        let mut t = start.align_down(self.config.period);
        if t < start {
            t += self.config.period;
        }
        while t < end {
            for beacon in &self.config.beacons {
                schedule.events.push(BeaconEvent {
                    time: t,
                    prefix: beacon.prefix,
                    origin: beacon.origin,
                    kind: BeaconEventKind::Announce {
                        aggregator: Some(Aggregator {
                            asn: beacon.origin,
                            addr: aggregator_clock(t),
                        }),
                    },
                });
                let down = t + self.config.up_time;
                if down < end {
                    schedule.events.push(BeaconEvent {
                        time: down,
                        prefix: beacon.prefix,
                        origin: beacon.origin,
                        kind: BeaconEventKind::Withdraw,
                    });
                }
            }
            t += self.config.period;
        }
        schedule.normalize();
        schedule
    }

    /// The interval starts (announcement instants) within `[start, end)`.
    pub fn interval_starts(&self, start: SimTime, end: SimTime) -> Vec<SimTime> {
        let mut out = Vec::new();
        let mut t = start.align_down(self.config.period);
        if t < start {
            t += self.config.period;
        }
        while t < end {
            out.push(t);
            t += self.config.period;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ORIGIN: Asn = Asn(12_654);

    #[test]
    fn historical_set_is_27() {
        let config = RisBeaconConfig::historical(ORIGIN);
        assert_eq!(config.len(), 27);
        let v4 = config
            .beacons
            .iter()
            .filter(|b| matches!(b.prefix, Prefix::V4(_)))
            .count();
        assert_eq!(v4, 13);
        assert_eq!(config.len() - v4, 14);
    }

    #[test]
    fn table1_visible_prefix_count_2018() {
        // 2018-07-19 00:00 → 2018-08-31 24:00 with 27 beacons every 4 h:
        // the paper reports 7,126 visible prefixes; exact alignment gives
        // 44 days × 6 × 27 = 7,128.
        let beacons = RisBeacons::new(RisBeaconConfig::historical(ORIGIN));
        let start = SimTime::from_ymd_hms(2018, 7, 19, 0, 0, 0);
        let end = SimTime::from_ymd_hms(2018, 9, 1, 0, 0, 0);
        let schedule = beacons.schedule(start, end);
        assert_eq!(schedule.announcement_count(), 44 * 6 * 27);
    }

    #[test]
    fn four_hour_cadence_and_two_hour_uptime() {
        let beacons = RisBeacons::new(RisBeaconConfig::historical(ORIGIN));
        let start = SimTime::from_ymd_hms(2018, 7, 19, 0, 0, 0);
        let end = SimTime::from_ymd_hms(2018, 7, 20, 0, 0, 0);
        let schedule = beacons.schedule(start, end);
        // 6 intervals × 27 × (announce + withdraw).
        assert_eq!(schedule.events.len(), 6 * 27 * 2);
        let one_prefix: Vec<&BeaconEvent> = schedule
            .events
            .iter()
            .filter(|e| e.prefix == Prefix::v4(84, 205, 64, 0, 24))
            .collect();
        assert_eq!(one_prefix.len(), 12);
        assert_eq!(one_prefix[0].time.hms(), (0, 0, 0));
        assert!(matches!(
            one_prefix[0].kind,
            BeaconEventKind::Announce { .. }
        ));
        assert_eq!(one_prefix[1].time.hms(), (2, 0, 0));
        assert_eq!(one_prefix[1].kind, BeaconEventKind::Withdraw);
        assert_eq!(one_prefix[2].time.hms(), (4, 0, 0));
    }

    #[test]
    fn aggregator_clock_is_stamped() {
        let beacons = RisBeacons::new(RisBeaconConfig::historical(ORIGIN));
        let start = SimTime::from_ymd_hms(2018, 7, 19, 0, 0, 0);
        let end = start + 4 * HOUR;
        let schedule = beacons.schedule(start, end);
        for event in schedule.announcements() {
            let BeaconEventKind::Announce { aggregator } = event.kind else {
                unreachable!()
            };
            let agg = aggregator.expect("RIS beacons always stamp the clock");
            assert_eq!(agg.asn, ORIGIN);
            assert_eq!(
                crate::clock::decode_aggregator_clock(agg.addr, event.time),
                Some(event.time)
            );
        }
    }

    #[test]
    fn unaligned_start_rounds_up() {
        let beacons = RisBeacons::new(RisBeaconConfig::historical(ORIGIN));
        let start = SimTime::from_ymd_hms(2018, 7, 19, 1, 30, 0);
        let starts = beacons.interval_starts(start, start + 8 * HOUR);
        assert_eq!(starts.len(), 2);
        assert_eq!(starts[0].hms(), (4, 0, 0));
        assert_eq!(starts[1].hms(), (8, 0, 0));
    }

    #[test]
    fn withdrawal_not_emitted_past_end() {
        let beacons = RisBeacons::new(RisBeaconConfig::historical(ORIGIN));
        let start = SimTime::from_ymd_hms(2018, 7, 19, 0, 0, 0);
        // End exactly at the withdraw instant: withdraw excluded.
        let end = start + 2 * HOUR;
        let schedule = beacons.schedule(start, end);
        assert_eq!(schedule.announcement_count(), 27);
        assert_eq!(schedule.events.len(), 27);
    }
}
