//! The paper's own beaconing methodology (§4).
//!
//! Every quarter hour (:00, :15, :30, :45) a *different* IPv6 `/48` under
//! `2a0d:3dc1::/32` is announced by AS210312 and withdrawn 15 minutes
//! later. The announcement timestamp is encoded in the prefix bits; a
//! prefix is re-announced only after 24 hours (first approach) or 15 days
//! (second approach). The experiment windows:
//!
//! * Daily recycle:  2024-06-04 11:45 → 2024-06-10 09:30 UTC
//! * 15-day recycle: 2024-06-10 11:30 → 2024-06-22 17:30 UTC
//!
//! The 15-day encoding carries the footnote-3 bug: on some days two of the
//! 96 daily slots map to the same prefix. Like the paper, consumers study
//! only the *latter* announcement of such a colliding pair (the schedule
//! keeps both events — the wire really carried both — and exposes
//! [`PaperBeacons::collisions`] so analyses can drop the earlier one).

use crate::clock::{PrefixClock, RecycleMode};
use crate::schedule::{BeaconEvent, BeaconEventKind, BeaconSchedule};
use bgpz_types::time::MINUTE;
use bgpz_types::{Asn, Prefix, SimTime};
use std::collections::HashMap;

/// Configuration of the paper's beacon deployment.
#[derive(Debug, Clone)]
pub struct PaperBeaconConfig {
    /// Origin AS (AS210312 in the paper).
    pub origin: Asn,
    /// Recycle mode / prefix encoding.
    pub mode: RecycleMode,
    /// First announcement instant (must be on a quarter hour).
    pub start: SimTime,
    /// End of the experiment (exclusive).
    pub end: SimTime,
    /// Seconds a beacon stays announced (15 minutes in the paper).
    pub up_time: u64,
}

impl PaperBeaconConfig {
    /// The paper's first (daily-recycle) run.
    pub fn paper_daily() -> PaperBeaconConfig {
        PaperBeaconConfig {
            origin: Asn::BEACON_ORIGIN,
            mode: RecycleMode::Daily,
            start: SimTime::from_ymd_hms(2024, 6, 4, 11, 45, 0),
            end: SimTime::from_ymd_hms(2024, 6, 10, 9, 30, 0),
            up_time: 15 * MINUTE,
        }
    }

    /// The paper's second (15-day-recycle) run.
    pub fn paper_fifteen_day() -> PaperBeaconConfig {
        PaperBeaconConfig {
            origin: Asn::BEACON_ORIGIN,
            mode: RecycleMode::FifteenDay,
            start: SimTime::from_ymd_hms(2024, 6, 10, 11, 30, 0),
            end: SimTime::from_ymd_hms(2024, 6, 22, 17, 30, 0),
            up_time: 15 * MINUTE,
        }
    }
}

/// Schedule generator for the paper's beacons.
#[derive(Debug, Clone)]
pub struct PaperBeacons {
    config: PaperBeaconConfig,
    clock: PrefixClock,
}

impl PaperBeacons {
    /// Creates the generator.
    pub fn new(config: PaperBeaconConfig) -> PaperBeacons {
        assert_eq!(
            config.start.secs() % (15 * MINUTE),
            0,
            "start must be on a quarter hour"
        );
        let clock = PrefixClock::paper(config.mode);
        PaperBeacons { config, clock }
    }

    /// The configuration.
    pub fn config(&self) -> &PaperBeaconConfig {
        &self.config
    }

    /// The prefix clock in use.
    pub fn clock(&self) -> &PrefixClock {
        &self.clock
    }

    /// Builds the full announce/withdraw schedule.
    pub fn schedule(&self) -> BeaconSchedule {
        let mut schedule = BeaconSchedule::default();
        let mut t = self.config.start;
        while t < self.config.end {
            let prefix = self.clock.encode(t);
            schedule.events.push(BeaconEvent {
                time: t,
                prefix,
                origin: self.config.origin,
                kind: BeaconEventKind::Announce { aggregator: None },
            });
            let down = t + self.config.up_time;
            if down < self.config.end {
                schedule.events.push(BeaconEvent {
                    time: down,
                    prefix,
                    origin: self.config.origin,
                    kind: BeaconEventKind::Withdraw,
                });
            }
            t += 15 * MINUTE;
        }
        schedule.normalize();
        schedule
    }

    /// The footnote-3 collisions: pairs of announcement instants within
    /// one UTC day that map to the same prefix, as `(prefix, earlier,
    /// later)`. Analyses study only the later announcement.
    pub fn collisions(&self) -> Vec<(Prefix, SimTime, SimTime)> {
        let mut by_day_prefix: HashMap<(u64, u64, u64, Prefix), Vec<SimTime>> = HashMap::new();
        let mut t = self.config.start;
        while t < self.config.end {
            let prefix = self.clock.encode(t);
            let (y, m, d) = t.ymd();
            by_day_prefix.entry((y, m, d, prefix)).or_default().push(t);
            t += 15 * MINUTE;
        }
        let mut out = Vec::new();
        for ((_, _, _, prefix), mut times) in by_day_prefix {
            if times.len() > 1 {
                times.sort_unstable();
                for pair in times.windows(2) {
                    out.push((prefix, pair[0], pair[1]));
                }
            }
        }
        out.sort_by_key(|&(p, a, _)| (a, p));
        out
    }

    /// Announcement instants whose observation window is polluted by a
    /// colliding later announcement of the same prefix — these are the
    /// "earlier of the pair" instants the paper drops.
    pub fn polluted_announcements(&self) -> Vec<(Prefix, SimTime)> {
        self.collisions()
            .into_iter()
            .map(|(prefix, earlier, _)| (prefix, earlier))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daily_run_counts() {
        let beacons = PaperBeacons::new(PaperBeaconConfig::paper_daily());
        let schedule = beacons.schedule();
        // 2024-06-04 11:45 → 2024-06-10 09:30 is 5 days 21:45 = 567 slots.
        let expected_slots = (SimTime::from_ymd_hms(2024, 6, 10, 9, 30, 0)
            - SimTime::from_ymd_hms(2024, 6, 4, 11, 45, 0))
            / (15 * MINUTE);
        assert_eq!(schedule.announcement_count() as u64, expected_slots);
        // 96 distinct prefixes per 24 hours.
        assert_eq!(schedule.prefixes().len(), 96);
        // No collisions in the daily format.
        assert!(beacons.collisions().is_empty());
    }

    #[test]
    fn fifteen_day_run_counts_and_collisions() {
        let beacons = PaperBeacons::new(PaperBeaconConfig::paper_fifteen_day());
        let schedule = beacons.schedule();
        assert!(schedule.announcement_count() > 1_000);
        let collisions = beacons.collisions();
        assert!(
            !collisions.is_empty(),
            "footnote-3 collisions must appear in the 15-day window"
        );
        // The canonical example: 2024-06-15, 00:30 vs 03:00 on
        // 2a0d:3dc1:30::/48.
        let prefix: Prefix = "2a0d:3dc1:30::/48".parse().unwrap();
        let a = SimTime::from_ymd_hms(2024, 6, 15, 0, 30, 0);
        let b = SimTime::from_ymd_hms(2024, 6, 15, 3, 0, 0);
        assert!(
            collisions.contains(&(prefix, a, b)),
            "canonical collision missing: {collisions:?}"
        );
        // Polluted = earlier halves.
        assert!(beacons.polluted_announcements().contains(&(prefix, a)));
    }

    #[test]
    fn each_announce_has_matching_withdraw_15_minutes_later() {
        let beacons = PaperBeacons::new(PaperBeaconConfig::paper_daily());
        let schedule = beacons.schedule();
        let mut announces = 0;
        for event in schedule.announcements() {
            announces += 1;
            let down = event.time + 15 * MINUTE;
            if down < beacons.config().end {
                assert!(
                    schedule.events.iter().any(|e| e.time == down
                        && e.prefix == event.prefix
                        && e.kind == BeaconEventKind::Withdraw),
                    "missing withdraw for {} at {}",
                    event.prefix,
                    down
                );
            }
        }
        assert!(announces > 0);
    }

    #[test]
    fn prefixes_are_under_the_covering_block() {
        let beacons = PaperBeacons::new(PaperBeaconConfig::paper_fifteen_day());
        let covering: Prefix = "2a0d:3dc1::/32".parse().unwrap();
        for prefix in beacons.schedule().prefixes() {
            assert!(covering.contains(prefix), "{prefix} outside covering");
            assert_eq!(prefix.len(), 48);
        }
    }

    #[test]
    fn daily_recycle_means_same_slot_same_prefix_next_day() {
        let beacons = PaperBeacons::new(PaperBeaconConfig::paper_daily());
        let clock = beacons.clock();
        let a = clock.encode(SimTime::from_ymd_hms(2024, 6, 5, 8, 15, 0));
        let b = clock.encode(SimTime::from_ymd_hms(2024, 6, 6, 8, 15, 0));
        assert_eq!(a, b);
    }

    #[test]
    fn fifteen_day_recycle_same_slot_differs_across_days() {
        let beacons = PaperBeacons::new(PaperBeaconConfig::paper_fifteen_day());
        let clock = beacons.clock();
        let a = clock.encode(SimTime::from_ymd_hms(2024, 6, 11, 8, 15, 0));
        let b = clock.encode(SimTime::from_ymd_hms(2024, 6, 12, 8, 15, 0));
        assert_ne!(a, b, "day component must differentiate prefixes");
    }

    #[test]
    #[should_panic(expected = "quarter hour")]
    fn start_must_be_quarter_hour() {
        let mut config = PaperBeaconConfig::paper_daily();
        config.start += 60;
        let _ = PaperBeacons::new(config);
    }
}
