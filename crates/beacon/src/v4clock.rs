//! An IPv4 beacon prefix clock (paper §6, designed and built).
//!
//! The paper's own beacons are IPv6-only — "IPv4 prefix offers only a
//! limited number of bits for timestamp encoding ... a compact encoding
//! schema of the announcement time is necessary to maximize space
//! utilization". This module is that schema: beacons are `/24`s under a
//! `/16`, so exactly **one octet** carries the clock.
//!
//! * [`V4RecycleMode::Daily`] — a beacon every 15 minutes, third octet =
//!   the quarter-hour slot of the day (`0..96`). 96 prefixes, recycled
//!   every 24 h — the IPv4 twin of `2a0d:3dc1:(HHMM)::/48`.
//! * [`V4RecycleMode::FifteenDay`] — a beacon every 90 minutes, third
//!   octet = `slot_90min * 15 + day % 15` (`0..240`). 240 prefixes,
//!   recycled every 15 days. The coarser cadence is the price of fitting
//!   the day residue into the remaining bits.
//!
//! Unlike the paper's IPv6 15-day format, the arithmetic encoding is
//! injective within its recycle period **by construction** — the
//! footnote-3 string-concatenation ambiguity cannot happen here (the
//! round-trip property test below proves it).

use bgpz_types::time::MINUTE;
use bgpz_types::{Ipv4Net, Prefix, SimTime};
use std::net::Ipv4Addr;

/// Recycle modes of the IPv4 clock.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum V4RecycleMode {
    /// 96 beacons/day, 15-minute cadence, recycled daily.
    Daily,
    /// 16 beacons/day, 90-minute cadence, recycled every 15 days.
    FifteenDay,
}

impl V4RecycleMode {
    /// Seconds between announcements.
    pub fn cadence(self) -> u64 {
        match self {
            V4RecycleMode::Daily => 15 * MINUTE,
            V4RecycleMode::FifteenDay => 90 * MINUTE,
        }
    }

    /// Number of distinct beacon prefixes.
    pub fn prefix_count(self) -> usize {
        match self {
            V4RecycleMode::Daily => 96,
            V4RecycleMode::FifteenDay => 240,
        }
    }
}

/// The IPv4 prefix clock under a `/16` covering block.
#[derive(Debug, Clone, Copy)]
pub struct V4PrefixClock {
    /// Covering block; the clock octet is the third octet.
    pub covering: Ipv4Net,
    /// Encoding mode.
    pub mode: V4RecycleMode,
}

impl V4PrefixClock {
    /// A clock under the given `/16`.
    pub fn new(covering: Ipv4Net, mode: V4RecycleMode) -> V4PrefixClock {
        assert_eq!(covering.len(), 16, "the covering block must be a /16");
        V4PrefixClock { covering, mode }
    }

    /// The conventional deployment block used in this workspace's
    /// experiments (TEST-NET-ish space).
    pub fn example(mode: V4RecycleMode) -> V4PrefixClock {
        V4PrefixClock::new(
            Ipv4Net::new(Ipv4Addr::new(93, 175, 0, 0), 16).expect("static"),
            mode,
        )
    }

    /// The clock octet for an announcement at `t`.
    fn octet(&self, t: SimTime) -> u8 {
        let (h, m, s) = t.hms();
        assert_eq!(s, 0, "beacon slots are on whole minutes");
        match self.mode {
            V4RecycleMode::Daily => {
                assert_eq!(m % 15, 0, "daily slots are on quarter hours");
                (h * 4 + m / 15) as u8
            }
            V4RecycleMode::FifteenDay => {
                let minute_of_day = h * 60 + m;
                assert_eq!(minute_of_day % 90, 0, "15-day slots are on 90-minute marks");
                let slot = minute_of_day / 90; // 0..16
                let (_, _, day) = t.ymd();
                (slot * 15 + day % 15) as u8
            }
        }
    }

    /// Encodes the beacon prefix announced at `t`.
    pub fn encode(&self, t: SimTime) -> Prefix {
        let base = self.covering.addr().octets();
        Prefix::V4(
            Ipv4Net::new(Ipv4Addr::new(base[0], base[1], self.octet(t), 0), 24)
                .expect("len 24 valid"),
        )
    }

    /// Decodes a beacon prefix to its slot reading.
    ///
    /// * Daily: `Some((hour, minute))`.
    /// * FifteenDay: `Some((slot index 0..16, day % 15))` — combine with a
    ///   calendar to recover the absolute announcement time.
    ///
    /// `None` if the prefix is not a valid clock value for this mode.
    pub fn decode(&self, prefix: Prefix) -> Option<(u64, u64)> {
        let Prefix::V4(net) = prefix else { return None };
        if net.len() != 24 || !self.covering.contains(net) {
            return None;
        }
        let value = net.addr().octets()[2] as u64;
        match self.mode {
            V4RecycleMode::Daily => (value < 96).then_some((value / 4, (value % 4) * 15)),
            V4RecycleMode::FifteenDay => (value < 240).then_some((value / 15, value % 15)),
        }
    }

    /// The announcement instant on a given date consistent with `prefix`
    /// (FifteenDay mode also checks the date's residue).
    pub fn instant_on(&self, prefix: Prefix, year: u64, month: u64, day: u64) -> Option<SimTime> {
        let (a, b) = self.decode(prefix)?;
        match self.mode {
            V4RecycleMode::Daily => Some(SimTime::from_ymd_hms(year, month, day, a, b, 0)),
            V4RecycleMode::FifteenDay => {
                if day % 15 != b {
                    return None;
                }
                let minute_of_day = a * 90;
                Some(SimTime::from_ymd_hms(
                    year,
                    month,
                    day,
                    minute_of_day / 60,
                    minute_of_day % 60,
                    0,
                ))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn daily_roundtrip_all_slots() {
        let clock = V4PrefixClock::example(V4RecycleMode::Daily);
        let mut seen = std::collections::HashSet::new();
        for h in 0..24 {
            for m in [0u64, 15, 30, 45] {
                let t = SimTime::from_ymd_hms(2024, 6, 7, h, m, 0);
                let prefix = clock.encode(t);
                assert!(seen.insert(prefix), "collision at {h}:{m}");
                assert_eq!(clock.decode(prefix), Some((h, m)));
                assert_eq!(
                    clock.instant_on(prefix, 2024, 6, 7),
                    Some(t),
                    "instant mismatch at {h}:{m}"
                );
            }
        }
        assert_eq!(seen.len(), V4RecycleMode::Daily.prefix_count());
    }

    #[test]
    fn fifteen_day_roundtrip_unambiguous() {
        // The IPv6 15-day format collides (footnote 3); the arithmetic
        // IPv4 format must not, across the whole 15-day cycle.
        let clock = V4PrefixClock::example(V4RecycleMode::FifteenDay);
        let mut seen = std::collections::HashSet::new();
        for day in 1..=15u64 {
            for slot in 0..16u64 {
                let minute_of_day = slot * 90;
                let t =
                    SimTime::from_ymd_hms(2024, 6, day, minute_of_day / 60, minute_of_day % 60, 0);
                let prefix = clock.encode(t);
                assert!(
                    seen.insert(prefix),
                    "collision at day {day} slot {slot} — the bug this schema avoids"
                );
                assert_eq!(clock.decode(prefix), Some((slot, day % 15)));
                assert_eq!(clock.instant_on(prefix, 2024, 6, day), Some(t));
            }
        }
        assert_eq!(seen.len(), V4RecycleMode::FifteenDay.prefix_count());
    }

    #[test]
    fn fifteen_day_recycles_after_15_days() {
        let clock = V4PrefixClock::example(V4RecycleMode::FifteenDay);
        let a = clock.encode(SimTime::from_ymd_hms(2024, 6, 1, 3, 0, 0));
        let b = clock.encode(SimTime::from_ymd_hms(2024, 6, 16, 3, 0, 0));
        let c = clock.encode(SimTime::from_ymd_hms(2024, 6, 2, 3, 0, 0));
        assert_eq!(a, b, "same prefix 15 days later");
        assert_ne!(a, c, "different prefix the next day");
    }

    #[test]
    fn decode_rejects_foreign_values() {
        let daily = V4PrefixClock::example(V4RecycleMode::Daily);
        // Octet 96 is outside the daily range.
        let bad = Prefix::v4(93, 175, 96, 0, 24);
        assert_eq!(daily.decode(bad), None);
        // Wrong covering block.
        let foreign = Prefix::v4(198, 51, 10, 0, 24);
        assert_eq!(daily.decode(foreign), None);
        // Wrong length.
        let wide = Prefix::v4(93, 175, 10, 0, 23);
        assert_eq!(daily.decode(wide), None);
        // IPv6 never decodes.
        let v6: Prefix = "2a0d:3dc1:30::/48".parse().unwrap();
        assert_eq!(daily.decode(v6), None);
        // FifteenDay: octet 240+ rejected.
        let fifteen = V4PrefixClock::example(V4RecycleMode::FifteenDay);
        assert_eq!(fifteen.decode(Prefix::v4(93, 175, 240, 0, 24)), None);
    }

    #[test]
    fn instant_on_checks_day_residue() {
        let clock = V4PrefixClock::example(V4RecycleMode::FifteenDay);
        let t = SimTime::from_ymd_hms(2024, 6, 7, 12, 0, 0);
        let prefix = clock.encode(t);
        assert_eq!(clock.instant_on(prefix, 2024, 6, 7), Some(t));
        // Day 8 has residue 8 ≠ 7: inconsistent.
        assert_eq!(clock.instant_on(prefix, 2024, 6, 8), None);
        // Day 22 has residue 7 again: consistent (the recycle).
        assert!(clock.instant_on(prefix, 2024, 6, 22).is_some());
    }

    #[test]
    #[should_panic(expected = "must be a /16")]
    fn covering_must_be_16() {
        let _ = V4PrefixClock::new(
            Ipv4Net::new(Ipv4Addr::new(93, 175, 0, 0), 17).unwrap(),
            V4RecycleMode::Daily,
        );
    }

    #[test]
    #[should_panic(expected = "90-minute marks")]
    fn fifteen_day_rejects_off_cadence() {
        let clock = V4PrefixClock::example(V4RecycleMode::FifteenDay);
        let _ = clock.encode(SimTime::from_ymd_hms(2024, 6, 7, 12, 15, 0));
    }
}
