//! # bgpz-rpki
//!
//! A minimal RPKI origin-validation model (RFC 6811) with a time dimension.
//!
//! The paper registers a ROA for its beacon prefixes, then deletes it on
//! 2024-06-22 19:49 UTC. Because the beacons' covering `/32` keeps its own
//! ROA, the `/48` beacon routes become **RPKI-invalid** (covered by a ROA
//! but exceeding its maxLength) — and the paper observes that some ASes
//! holding zombie routes never evict them, exposing absent or flawed ROV.
//!
//! [`RoaTimeline`] models exactly that: ROAs with validity windows, RFC 6811
//! validation at any instant, and the list of instants at which the outcome
//! can change (used by the simulator to schedule re-validation).

#![forbid(unsafe_code)]

use bgpz_types::{Asn, Prefix, SimTime};

/// A Route Origin Authorization.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Roa {
    /// The authorized prefix.
    pub prefix: Prefix,
    /// Maximum length of announced prefixes this ROA authorizes.
    pub max_len: u8,
    /// The authorized origin AS.
    pub origin: Asn,
}

impl Roa {
    /// A ROA authorizing exactly `prefix` from `origin` (maxLength =
    /// the prefix's own length).
    pub fn exact(prefix: Prefix, origin: Asn) -> Roa {
        Roa {
            prefix,
            max_len: prefix.len(),
            origin,
        }
    }

    /// True if this ROA *covers* the route prefix (same family,
    /// containment) — coverage is what makes a non-matching route Invalid
    /// rather than NotFound.
    pub fn covers(&self, prefix: Prefix) -> bool {
        self.prefix.contains(prefix)
    }

    /// True if this ROA *authorizes* the (prefix, origin) pair.
    pub fn authorizes(&self, prefix: Prefix, origin: Asn) -> bool {
        self.covers(prefix) && prefix.len() <= self.max_len && origin == self.origin
    }
}

/// RFC 6811 validation states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RpkiValidity {
    /// Some ROA authorizes the route.
    Valid,
    /// At least one ROA covers the prefix, but none authorizes the route.
    Invalid,
    /// No ROA covers the prefix.
    NotFound,
}

impl RpkiValidity {
    /// True unless Invalid — the import decision of an ROV router
    /// (NotFound routes are accepted).
    pub fn acceptable(self) -> bool {
        self != RpkiValidity::Invalid
    }
}

/// One ROA with its validity window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct RoaWindow {
    roa: Roa,
    /// Active from this instant (inclusive).
    from: SimTime,
    /// Inactive from this instant (exclusive); `None` = forever.
    until: Option<SimTime>,
}

/// A set of ROAs evolving over time.
#[derive(Debug, Clone, Default)]
pub struct RoaTimeline {
    windows: Vec<RoaWindow>,
}

impl RoaTimeline {
    /// An empty timeline (everything validates NotFound).
    pub fn new() -> RoaTimeline {
        RoaTimeline::default()
    }

    /// Adds a ROA valid on `[from, until)`; `until = None` means forever.
    pub fn add(&mut self, roa: Roa, from: SimTime, until: Option<SimTime>) {
        if let Some(end) = until {
            assert!(end > from, "ROA window must not be empty");
        }
        self.windows.push(RoaWindow { roa, from, until });
    }

    /// Adds a permanent ROA.
    pub fn add_permanent(&mut self, roa: Roa) {
        self.add(roa, SimTime::ZERO, None);
    }

    /// RFC 6811 validation of `(prefix, origin)` at instant `time`.
    pub fn validate(&self, prefix: Prefix, origin: Asn, time: SimTime) -> RpkiValidity {
        let mut covered = false;
        for w in &self.windows {
            let active = time >= w.from && w.until.is_none_or(|end| time < end);
            if !active {
                continue;
            }
            if w.roa.authorizes(prefix, origin) {
                return RpkiValidity::Valid;
            }
            if w.roa.covers(prefix) {
                covered = true;
            }
        }
        if covered {
            RpkiValidity::Invalid
        } else {
            RpkiValidity::NotFound
        }
    }

    /// All instants at which validation outcomes can change (window starts
    /// and ends), sorted and deduplicated. The simulator schedules strict-
    /// ROV re-validation at these instants (plus per-AS propagation delay —
    /// the "RPKI time of flight").
    pub fn change_points(&self) -> Vec<SimTime> {
        let mut points: Vec<SimTime> = self
            .windows
            .iter()
            .flat_map(|w| [Some(w.from), w.until].into_iter().flatten())
            .collect();
        points.sort_unstable();
        points.dedup();
        points
    }

    /// Number of ROA windows registered.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// True if no ROA was ever registered.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }
}

/// Builds the paper's beacon ROA configuration: a permanent ROA for the
/// covering block and a beacon ROA (maxLength 48) that is deleted at
/// `roa_removal` (2024-06-22 19:49 UTC in the paper).
pub fn beacon_roa_timeline(
    covering: Prefix,
    origin: Asn,
    roa_removal: Option<SimTime>,
) -> RoaTimeline {
    let mut timeline = RoaTimeline::new();
    // The /32 covering block always has its own ROA (it is "already
    // advertised" per the paper) with maxLength equal to its own length.
    timeline.add_permanent(Roa::exact(covering, origin));
    // The beacon ROA authorizes the /48 more-specifics.
    let beacon_roa = Roa {
        prefix: covering,
        max_len: 48,
        origin,
    };
    match roa_removal {
        Some(end) => timeline.add(beacon_roa, SimTime::ZERO, Some(end)),
        None => timeline.add_permanent(beacon_roa),
    }
    timeline
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    const ORIGIN: Asn = Asn(210_312);

    #[test]
    fn exact_roa_authorizes_only_exact() {
        let roa = Roa::exact(p("2a0d:3dc1::/32"), ORIGIN);
        assert!(roa.authorizes(p("2a0d:3dc1::/32"), ORIGIN));
        assert!(!roa.authorizes(p("2a0d:3dc1:1851::/48"), ORIGIN));
        assert!(roa.covers(p("2a0d:3dc1:1851::/48")));
        assert!(!roa.covers(p("2a0e::/32")));
    }

    #[test]
    fn validation_tri_state() {
        let mut t = RoaTimeline::new();
        t.add_permanent(Roa {
            prefix: p("2a0d:3dc1::/32"),
            max_len: 48,
            origin: ORIGIN,
        });
        // Valid: authorized.
        assert_eq!(
            t.validate(p("2a0d:3dc1:1851::/48"), ORIGIN, SimTime(0)),
            RpkiValidity::Valid
        );
        // Invalid: wrong origin.
        assert_eq!(
            t.validate(p("2a0d:3dc1:1851::/48"), Asn(666), SimTime(0)),
            RpkiValidity::Invalid
        );
        // Invalid: too specific.
        assert_eq!(
            t.validate(p("2a0d:3dc1:1851::/56"), ORIGIN, SimTime(0)),
            RpkiValidity::Invalid
        );
        // NotFound: uncovered space.
        assert_eq!(
            t.validate(p("2001:db8::/48"), ORIGIN, SimTime(0)),
            RpkiValidity::NotFound
        );
    }

    #[test]
    fn acceptable_states() {
        assert!(RpkiValidity::Valid.acceptable());
        assert!(RpkiValidity::NotFound.acceptable());
        assert!(!RpkiValidity::Invalid.acceptable());
    }

    #[test]
    fn windowed_roa_flips_validity() {
        let removal = SimTime::from_ymd_hms(2024, 6, 22, 19, 49, 0);
        let t = beacon_roa_timeline(p("2a0d:3dc1::/32"), ORIGIN, Some(removal));
        let beacon = p("2a0d:3dc1:1851::/48");
        // Before removal: valid.
        assert_eq!(
            t.validate(beacon, ORIGIN, SimTime::from_ymd_hms(2024, 6, 10, 0, 0, 0)),
            RpkiValidity::Valid
        );
        // At and after removal: the /32 ROA still covers ⇒ invalid.
        assert_eq!(t.validate(beacon, ORIGIN, removal), RpkiValidity::Invalid);
        assert_eq!(
            t.validate(beacon, ORIGIN, SimTime::from_ymd_hms(2025, 1, 1, 0, 0, 0)),
            RpkiValidity::Invalid
        );
        // The covering /32 itself stays valid throughout.
        assert_eq!(
            t.validate(
                p("2a0d:3dc1::/32"),
                ORIGIN,
                SimTime::from_ymd_hms(2025, 1, 1, 0, 0, 0)
            ),
            RpkiValidity::Valid
        );
    }

    #[test]
    fn change_points_sorted_unique() {
        let removal = SimTime::from_ymd_hms(2024, 6, 22, 19, 49, 0);
        let t = beacon_roa_timeline(p("2a0d:3dc1::/32"), ORIGIN, Some(removal));
        let points = t.change_points();
        assert_eq!(points, vec![SimTime::ZERO, removal]);
    }

    #[test]
    #[should_panic(expected = "window must not be empty")]
    fn empty_window_panics() {
        let mut t = RoaTimeline::new();
        t.add(
            Roa::exact(p("2001:db8::/32"), ORIGIN),
            SimTime(10),
            Some(SimTime(10)),
        );
    }

    #[test]
    fn empty_timeline_is_notfound() {
        let t = RoaTimeline::new();
        assert!(t.is_empty());
        assert_eq!(
            t.validate(p("2001:db8::/32"), ORIGIN, SimTime(0)),
            RpkiValidity::NotFound
        );
        assert!(t.change_points().is_empty());
    }
}
