//! Black-box tests of the substrate cache through the `bgpz-experiments`
//! binary: cold, warm, and cache-disabled runs must write byte-identical
//! result artifacts at every `--jobs` count; `metrics.json` must stay
//! deterministic across jobs within each mode and differ across modes
//! only in the cache's own counter section; and a corrupted cache entry
//! must degrade to recomputation (with a warning), never to a failure or
//! a changed artifact.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

/// Experiments covering both substrates: t1 (replication), f3 (beacon,
/// exercises the shared lifespan table).
const IDS: &str = "t1,f3";
/// The artifacts those experiments write (besides metrics/timings).
const ARTIFACTS: &[&str] = &["t1.txt", "t1.json", "f3.txt", "f3.json", "fig3_series.csv"];

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_bgpz-experiments")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bgpz-cache-e2e-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Runs the binary against `out_dir` with a clean observability and cache
/// environment, plus an optional `--cache-dir`.
fn run(out_dir: &Path, jobs: &str, cache_dir: Option<&Path>) -> Output {
    let mut cmd = Command::new(bin());
    cmd.args([
        IDS, "--scale", "bench", "--seed", "7", "--jobs", jobs, "--out",
    ])
    .arg(out_dir)
    .env_remove("BGPZ_LOG")
    .env_remove("BGPZ_LOG_JSON")
    .env_remove("BGPZ_METRICS_WALL")
    .env_remove("BGPZ_CACHE");
    if let Some(dir) = cache_dir {
        cmd.arg("--cache-dir").arg(dir);
    }
    let out = cmd.output().expect("run bgpz-experiments");
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    out
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

/// `metrics.json` with the cache's own sections removed — the only
/// sections that legitimately differ between disabled, cold, and warm
/// runs (the pipeline sections must not). The `core::*` targets sort
/// after both removed targets in every section, so dropping the lines
/// (including the section's close-with-comma) leaves the surrounding
/// commas untouched. Skipping tracks brace depth: span entries nest one
/// object deeper than counters (`"target": {"name": {"count": N}}`).
fn metrics_sans_cache(dir: &Path) -> String {
    let metrics = read(&dir.join("metrics.json"));
    let mut out = String::new();
    let mut depth = 0usize;
    for line in metrics.lines() {
        let trimmed = line.trim();
        if depth > 0 {
            depth += trimmed.matches('{').count();
            depth = depth.saturating_sub(trimmed.matches('}').count());
            continue;
        }
        if trimmed.starts_with("\"cache::store\":")
            || trimmed.starts_with("\"analysis::substrate_cache\":")
        {
            if !trimmed.ends_with("{},") && !trimmed.ends_with("{}") {
                depth = 1;
            }
            continue;
        }
        out.push_str(line);
        out.push('\n');
    }
    out
}

#[test]
fn cold_warm_disabled_artifacts_identical_across_jobs() {
    let cache_j1 = temp_dir("cache-j1");
    let cache_j8 = temp_dir("cache-j8");

    // (tag, jobs, cache): disabled / cold / warm, each at 1 and 8 jobs.
    let runs = [
        ("disabled-j1", "1", None),
        ("disabled-j8", "8", None),
        ("cold-j1", "1", Some(cache_j1.as_path())),
        ("warm-j1", "1", Some(cache_j1.as_path())),
        ("cold-j8", "8", Some(cache_j8.as_path())),
        ("warm-j8", "8", Some(cache_j8.as_path())),
    ];
    let dirs: Vec<(&str, PathBuf)> = runs
        .iter()
        .map(|&(tag, jobs, cache)| {
            let dir = temp_dir(tag);
            run(&dir, jobs, cache);
            (tag, dir)
        })
        .collect();

    // Every result artifact is byte-identical across all six runs.
    let (_, reference_dir) = &dirs[0];
    for name in ARTIFACTS {
        let reference = read(&reference_dir.join(name));
        for (tag, dir) in &dirs[1..] {
            assert_eq!(reference, read(&dir.join(name)), "{name} diverged in {tag}");
        }
    }

    // metrics.json is byte-identical across jobs within each mode…
    for (a, b) in [
        ("disabled-j1", "disabled-j8"),
        ("cold-j1", "cold-j8"),
        ("warm-j1", "warm-j8"),
    ] {
        let find = |tag| &dirs.iter().find(|(t, _)| *t == tag).expect("run dir").1;
        assert_eq!(
            read(&find(a).join("metrics.json")),
            read(&find(b).join("metrics.json")),
            "{a} vs {b}"
        );
    }
    // …and identical across modes once the cache's own section is
    // stripped: caching must not perturb any pipeline counter.
    let reference = metrics_sans_cache(reference_dir);
    for (tag, dir) in &dirs[1..] {
        assert_eq!(reference, metrics_sans_cache(dir), "{tag}");
    }

    // The cache section exists exactly when a cache was configured, and
    // the warm runs actually hit.
    let raw = |tag: &str| {
        let dir = &dirs.iter().find(|(t, _)| *t == tag).expect("run dir").1;
        read(&dir.join("metrics.json"))
    };
    assert!(!raw("disabled-j1").contains("cache::store"));
    assert!(raw("cold-j1").contains("cache::store"));
    let warm = raw("warm-j1");
    assert!(warm.contains("\"hits\""), "{warm}");
    assert!(warm.contains("\"bytes_read\""), "{warm}");

    for (_, dir) in dirs {
        std::fs::remove_dir_all(dir).ok();
    }
    std::fs::remove_dir_all(cache_j1).ok();
    std::fs::remove_dir_all(cache_j8).ok();
}

#[test]
fn corrupted_entry_degrades_to_recompute() {
    let cache = temp_dir("cache-corrupt");
    let clean_dir = temp_dir("corrupt-clean");
    run(&clean_dir, "1", Some(&cache));

    // Flip bytes in the middle of every cached entry.
    let mut corrupted = 0;
    for entry in std::fs::read_dir(&cache).expect("read cache dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().and_then(|e| e.to_str()) != Some("bgpzc") {
            continue;
        }
        let mut bytes = std::fs::read(&path).expect("read entry");
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        bytes[mid + 1] ^= 0xFF;
        std::fs::write(&path, &bytes).expect("rewrite entry");
        corrupted += 1;
    }
    assert!(corrupted > 0, "no cache entries were written");

    // The corrupted run succeeds, warns, recomputes, and reproduces the
    // clean run's artifacts exactly.
    let corrupt_dir = temp_dir("corrupt-rerun");
    let out = run(&corrupt_dir, "1", Some(&cache));
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("corrupt or stale"), "{stderr}");
    for name in ARTIFACTS {
        assert_eq!(
            read(&clean_dir.join(name)),
            read(&corrupt_dir.join(name)),
            "{name} diverged after cache corruption"
        );
    }
    let metrics = read(&corrupt_dir.join("metrics.json"));
    assert!(metrics.contains("corrupt_entries"), "{metrics}");

    // The corrupt entries were overwritten: the next run hits cleanly.
    let healed_dir = temp_dir("corrupt-healed");
    let healed = run(&healed_dir, "1", Some(&cache));
    let healed_stderr = String::from_utf8_lossy(&healed.stderr);
    assert!(
        !healed_stderr.contains("corrupt or stale"),
        "{healed_stderr}"
    );
    assert!(read(&healed_dir.join("metrics.json")).contains("\"hits\""));
    for name in ARTIFACTS {
        assert_eq!(read(&clean_dir.join(name)), read(&healed_dir.join(name)));
    }

    for dir in [cache, clean_dir, corrupt_dir, healed_dir] {
        std::fs::remove_dir_all(dir).ok();
    }
}
