//! Black-box tests of the `bgpz-experiments` binary: exit codes, the
//! `metrics.json` determinism contract, and env-filtered logging.

use std::path::{Path, PathBuf};
use std::process::{Command, Output};

fn bin() -> &'static str {
    env!("CARGO_BIN_EXE_bgpz-experiments")
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bgpz-exp-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Runs the binary with a clean observability environment plus `envs`.
fn run(args: &[&str], envs: &[(&str, &str)]) -> Output {
    let mut cmd = Command::new(bin());
    cmd.args(args)
        .env_remove("BGPZ_LOG")
        .env_remove("BGPZ_LOG_JSON")
        .env_remove("BGPZ_METRICS_WALL")
        .env_remove("BGPZ_CACHE");
    for (key, value) in envs {
        cmd.env(key, value);
    }
    cmd.output().expect("run bgpz-experiments")
}

fn read(path: &Path) -> String {
    std::fs::read_to_string(path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()))
}

#[test]
fn unknown_id_exits_2_and_lists_valid_ids() {
    let out = run(&["no-such-experiment"], &[]);
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("unknown experiment id: no-such-experiment"),
        "{stderr}"
    );
    assert!(stderr.contains("valid ids:"), "{stderr}");
    for id in ["t1", "t5", "f2", "cases", "ablation", "rv"] {
        assert!(stderr.contains(id), "missing {id} in: {stderr}");
    }
}

#[test]
fn help_exits_0_and_bad_flags_exit_64() {
    let help = run(&["--help"], &[]);
    assert_eq!(help.status.code(), Some(0), "{help:?}");
    assert!(String::from_utf8_lossy(&help.stdout).contains("usage:"));

    let bad_flag = run(&["--frobnicate"], &[]);
    assert_eq!(bad_flag.status.code(), Some(64), "{bad_flag:?}");
    let bad_value = run(&["--jobs", "zero"], &[]);
    assert_eq!(bad_value.status.code(), Some(64), "{bad_value:?}");
}

#[test]
fn list_prints_registry() {
    let out = run(&["--list"], &[]);
    assert_eq!(out.status.code(), Some(0), "{out:?}");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("t1"), "{stdout}");
    assert!(stdout.contains("replication"), "{stdout}");
}

/// The tentpole contract: `metrics.json` (and every result artifact) is
/// byte-identical at `--jobs 1`, `--jobs 3`, and the default job count;
/// `BGPZ_LOG=debug` changes the logs but never the artifacts.
#[test]
fn metrics_json_deterministic_across_jobs_and_log_levels() {
    let base = &["t1,f2", "--scale", "bench", "--seed", "7", "--out"];
    let run_to = |tag: &str, extra_args: &[&str], envs: &[(&str, &str)]| -> (PathBuf, Output) {
        let dir = temp_dir(tag);
        let dir_str = dir.to_str().expect("utf-8 temp dir").to_string();
        let mut args: Vec<&str> = base.to_vec();
        args.push(&dir_str);
        args.extend_from_slice(extra_args);
        let out = run(&args, envs);
        assert_eq!(out.status.code(), Some(0), "{tag}: {out:?}");
        (dir, out)
    };

    let (dir_j1, out_j1) = run_to("j1", &["--jobs", "1"], &[]);
    let (dir_j3, _) = run_to("j3", &["--jobs", "3"], &[]);
    let (dir_jd, _) = run_to("jd", &[], &[]);

    let reference = read(&dir_j1.join("metrics.json"));
    assert!(reference.contains("records_ok"), "{reference}");
    assert!(reference.contains("replication_periods"), "{reference}");
    assert!(reference.contains("beacon_intervals"), "{reference}");
    assert!(reference.contains("experiments::run"), "{reference}");
    // Deterministic by default: span wall times live in timings.json only.
    assert!(!reference.contains("total_secs"), "{reference}");
    assert_eq!(reference, read(&dir_j3.join("metrics.json")), "--jobs 3");
    assert_eq!(
        reference,
        read(&dir_jd.join("metrics.json")),
        "default jobs"
    );
    // The result artifacts stay deterministic too.
    let t1 = read(&dir_j1.join("t1.txt"));
    assert_eq!(t1, read(&dir_j3.join("t1.txt")));
    assert_eq!(t1, read(&dir_jd.join("t1.txt")));
    // timings.json carries the wall-clock span view.
    assert!(read(&dir_j1.join("timings.json")).contains("\"spans\""));

    // Debug logging changes stderr, not artifacts.
    let json_log = temp_dir("jlog").join("events.jsonl");
    let (dir_dbg, out_dbg) = run_to(
        "dbg",
        &["--jobs", "1"],
        &[
            ("BGPZ_LOG", "debug"),
            ("BGPZ_LOG_JSON", json_log.to_str().expect("utf-8 path")),
        ],
    );
    assert_eq!(
        reference,
        read(&dir_dbg.join("metrics.json")),
        "BGPZ_LOG=debug"
    );
    assert_eq!(t1, read(&dir_dbg.join("t1.txt")), "BGPZ_LOG=debug");
    let stderr_dbg = String::from_utf8_lossy(&out_dbg.stderr);
    assert!(stderr_dbg.contains("[debug "), "{stderr_dbg}");
    let stderr_default = String::from_utf8_lossy(&out_j1.stderr);
    assert!(!stderr_default.contains("[debug "), "{stderr_default}");
    // Progress lines still reach stdout at the default level.
    let stdout_default = String::from_utf8_lossy(&out_j1.stdout);
    assert!(stdout_default.contains("# finished t1"), "{stdout_default}");

    // The JSON-lines sink captured structured events.
    let events = read(&json_log);
    assert!(!events.is_empty());
    for line in events.lines() {
        assert!(line.starts_with("{\"level\": "), "{line}");
        assert!(line.ends_with('}'), "{line}");
        assert!(line.contains("\"target\": "), "{line}");
    }

    for dir in [dir_j1, dir_j3, dir_jd, dir_dbg] {
        std::fs::remove_dir_all(&dir).ok();
    }
    std::fs::remove_dir_all(json_log.parent().expect("parent")).ok();
}
