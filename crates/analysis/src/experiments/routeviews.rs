//! §6 future work, built: combining RIPE RIS with a RouteViews-like
//! second collection platform. The paper collected only RIS data
//! ("acknowledging the potential omission of zombie routes"); this
//! experiment quantifies that omission by running the beacon study with a
//! second, independently-sampled peer set and comparing what each
//! platform sees alone against the combination.

use super::{pct, BundleBuilder, ExperimentOutput};
use crate::render::TextTable;
use crate::worlds::Scale;
use bgpz_core::{classify, ClassifyOptions};
use serde_json::json;
use std::collections::BTreeSet;
use std::net::IpAddr;

/// Outbreak visibility across the two platforms.
#[derive(Debug, Clone, Default)]
pub struct RouteViews {
    /// Outbreaks visible from RIS peers only.
    pub ris_only: usize,
    /// Outbreaks visible from RouteViews peers only.
    pub rv_only: usize,
    /// Outbreaks visible from both.
    pub both: usize,
    /// Total with the combined peer set.
    pub combined: usize,
    /// Announcements (denominator).
    pub announcements: usize,
}

impl RouteViews {
    /// The paper's "potential omission": the share of combined-visible
    /// outbreaks a RIS-only study misses.
    pub fn omission_fraction(&self) -> f64 {
        if self.combined == 0 {
            0.0
        } else {
            self.rv_only as f64 / self.combined as f64
        }
    }
}

/// Runs the two-platform beacon study and computes the visibility Venn.
pub fn compute(scale: &Scale, seed: u64) -> RouteViews {
    let bundle = BundleBuilder::new(scale, seed).routeviews(true).beacon();
    let run = &bundle.run;
    let result = &bundle.scan;

    // All peer routers seen in the archive, partitioned into RIS vs RV.
    let rv: BTreeSet<IpAddr> = run.routeviews_routers.iter().copied().collect();
    let ris_routers: Vec<IpAddr> = result
        .peers
        .iter()
        .map(|p| p.addr)
        .filter(|addr| !rv.contains(addr))
        .collect();
    let rv_routers: Vec<IpAddr> = rv.iter().copied().collect();

    let outbreaks = |excluded: Vec<IpAddr>| -> BTreeSet<usize> {
        let mut excluded = excluded;
        excluded.extend(run.noisy_routers.iter().copied());
        classify(
            result,
            &ClassifyOptions {
                excluded_peers: excluded,
                ..ClassifyOptions::default()
            },
        )
        .outbreak_keys()
        .into_iter()
        .collect()
    };

    let ris_set = outbreaks(rv_routers.clone());
    let rv_set = outbreaks(ris_routers);
    let combined_set = outbreaks(Vec::new());

    RouteViews {
        ris_only: ris_set.difference(&rv_set).count(),
        rv_only: rv_set.difference(&ris_set).count(),
        both: ris_set.intersection(&rv_set).count(),
        combined: combined_set.len(),
        announcements: result.announcement_count(),
    }
}

/// Runs the experiment and renders it.
pub fn run(scale: &Scale, seed: u64) -> ExperimentOutput {
    let venn = compute(scale, seed);
    let mut table = TextTable::new(["Visibility", "outbreaks", "% of combined"]);
    let denom = venn.combined.max(1) as f64;
    table.row([
        "RIS peers only".to_string(),
        venn.ris_only.to_string(),
        pct(venn.ris_only as f64 / denom),
    ]);
    table.row([
        "RouteViews peers only".to_string(),
        venn.rv_only.to_string(),
        pct(venn.rv_only as f64 / denom),
    ]);
    table.row([
        "both platforms".to_string(),
        venn.both.to_string(),
        pct(venn.both as f64 / denom),
    ]);
    table.row([
        "combined total".to_string(),
        venn.combined.to_string(),
        pct(1.0),
    ]);
    let text = format!(
        "RouteViews combination (§6 future work)\n\n{}\n\
         A RIS-only study (like the paper's own §5) misses {} of the\n\
         outbreaks the combined platforms see — the omission the paper\n\
         acknowledges when it skips RouteViews \"due to limited resources\".\n",
        table.render(),
        pct(venn.omission_fraction()),
    );
    ExperimentOutput {
        id: "rv",
        title: "§6: combining RIS with RouteViews peers".into(),
        text,
        csv: vec![("routeviews.csv".into(), table.to_csv())],
        json: json!({
            "ris_only": venn.ris_only,
            "rv_only": venn.rv_only,
            "both": venn.both,
            "combined": venn.combined,
            "announcements": venn.announcements,
            "omission_fraction": venn.omission_fraction(),
        }),
    }
}

/// Registry handle: `rv`.
pub struct RouteViewsDriver;

impl super::Experiment for RouteViewsDriver {
    fn id(&self) -> &'static str {
        "rv"
    }
    fn title(&self) -> &'static str {
        "§6: combining RIS with RouteViews peers"
    }
    fn substrate(&self) -> super::Substrate {
        super::Substrate::ScaleSeed
    }
    fn run(&self, ctx: &super::Substrates) -> super::ExperimentOutput {
        run(&ctx.scale, ctx.seed)
    }
}
