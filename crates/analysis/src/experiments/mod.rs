//! One driver per paper table/figure. See the crate docs for the index.

pub mod ablation;
pub mod cases;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod routeviews;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;

use crate::worlds::{
    final_withdrawals, replication_periods, run_beacon_study, run_replication, BeaconRun,
    ReplicationRun, Scale,
};
use bgpz_core::{intervals_from_schedule, scan, BeaconInterval, ScanResult};
use bgpz_types::time::HOUR;
use bgpz_types::{Prefix, SimTime};
use serde_json::Value;

/// What every experiment produces.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Short id: `t1` … `t5`, `f2` … `f7`, `cases`.
    pub id: &'static str,
    /// Human title (the paper artifact it regenerates).
    pub title: String,
    /// Human-readable report (tables / ASCII charts / commentary).
    pub text: String,
    /// Machine-readable CSV artifacts as `(file name, contents)`.
    pub csv: Vec<(String, String)>,
    /// Structured results for EXPERIMENTS.md tooling.
    pub json: Value,
}

/// The replication substrate, computed once and shared by T1–T4, F5–F7.
pub struct ReplicationBundle {
    /// One entry per paper period: the run and its scan.
    pub runs: Vec<(ReplicationRun, ScanResult)>,
}

/// Window past each withdrawal that scans collect (covers the paper's
/// 180-minute sweep ceiling).
pub const SCAN_WINDOW: u64 = 4 * HOUR;

/// Runs all three replication periods and scans their archives.
pub fn replication_bundle(scale: &Scale, seed: u64) -> ReplicationBundle {
    let runs = replication_periods(scale)
        .iter()
        .map(|period| {
            let run = run_replication(period, scale, seed);
            let intervals = intervals_from_schedule(&run.schedule);
            let result = scan(run.archive.updates.clone(), &intervals, SCAN_WINDOW);
            (run, result)
        })
        .collect();
    ReplicationBundle { runs }
}

/// The beacon-study substrate, computed once and shared by T5, F2–F4 and
/// the §5.2 case studies.
pub struct BeaconBundle {
    /// The run.
    pub run: BeaconRun,
    /// Scan of the update stream against the (pollution-cleaned)
    /// intervals.
    pub scan: ScanResult,
    /// The intervals after dropping the footnote-3 polluted announcements.
    pub intervals: Vec<BeaconInterval>,
    /// Final withdrawal per prefix (for lifespan tracking).
    pub finals: Vec<(Prefix, SimTime)>,
}

/// Runs the beacon study and scans it.
pub fn beacon_bundle(scale: &Scale, seed: u64) -> BeaconBundle {
    let run = run_beacon_study(scale, seed);
    let mut intervals = intervals_from_schedule(&run.schedule);
    // Footnote 3: drop the earlier announcement of each colliding pair.
    intervals.retain(|iv| {
        !run.polluted
            .iter()
            .any(|&(prefix, start)| iv.prefix == prefix && iv.start == start)
    });
    let scan_result = scan(run.archive.updates.clone(), &intervals, SCAN_WINDOW);
    let finals = final_withdrawals(&run.schedule);
    BeaconBundle {
        scan: scan_result,
        intervals,
        finals,
        run,
    }
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}
