//! One driver per paper table/figure, all registered behind the
//! [`Experiment`] trait. See the crate docs for the index and
//! [`registry`] for the single source of truth the binary, the parallel
//! dispatcher, and the criterion benches iterate.

pub mod ablation;
pub mod cases;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod routeviews;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod table4;
pub mod table5;

use crate::substrate_cache::SubstrateCache;
use crate::worlds::{
    final_withdrawals, replication_periods, run_beacon_study, run_replication, BeaconRun,
    ReplicationRun, Scale,
};
use bgpz_core::{
    intervals_from_schedule, scan_indexed, track_lifespans, BeaconInterval, OutbreakLifespan,
    ScanResult,
};
use bgpz_mrt::FrameIndex;
use bgpz_types::time::HOUR;
use bgpz_types::{Prefix, SimTime};
use serde_json::Value;
use std::net::IpAddr;
use std::panic::resume_unwind;
use std::sync::OnceLock;
use std::time::Instant;

/// What every experiment produces.
#[derive(Debug, Clone)]
pub struct ExperimentOutput {
    /// Short id: `t1` … `t5`, `f2` … `f7`, `cases`.
    pub id: &'static str,
    /// Human title (the paper artifact it regenerates).
    pub title: String,
    /// Human-readable report (tables / ASCII charts / commentary).
    pub text: String,
    /// Machine-readable CSV artifacts as `(file name, contents)`.
    pub csv: Vec<(String, String)>,
    /// Structured results for EXPERIMENTS.md tooling.
    pub json: Value,
}

/// The shared substrate an experiment driver consumes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Substrate {
    /// The three-period 2017/2018 replication bundle (T1–T4, F5–F7,
    /// ablation).
    Replication,
    /// The 2024 beacon-study bundle (T5, F2–F4, cases).
    Beacon,
    /// No shared bundle: the driver builds its own world from
    /// `(scale, seed)` (the RouteViews combination).
    ScaleSeed,
}

impl Substrate {
    /// Short label for `--list` output.
    pub fn label(&self) -> &'static str {
        match self {
            Substrate::Replication => "replication",
            Substrate::Beacon => "beacon",
            Substrate::ScaleSeed => "scale+seed",
        }
    }
}

/// The substrate context handed to every [`Experiment`]: the sizing knobs
/// plus whichever shared bundles the selected experiments require.
pub struct Substrates {
    /// Experiment sizing.
    pub scale: Scale,
    /// RNG seed (both worlds are deterministic in `(scale, seed)`).
    pub seed: u64,
    /// The replication bundle, if any selected experiment needs it.
    pub replication: Option<ReplicationBundle>,
    /// The beacon bundle, if any selected experiment needs it.
    pub beacon: Option<BeaconBundle>,
}

impl Substrates {
    /// An empty context (no bundles built yet).
    pub fn new(scale: Scale, seed: u64) -> Substrates {
        Substrates {
            scale,
            seed,
            replication: None,
            beacon: None,
        }
    }

    /// The replication bundle; panics if it was not built for this run.
    pub fn replication(&self) -> &ReplicationBundle {
        self.replication
            .as_ref()
            .expect("replication bundle not built for this experiment selection")
    }

    /// The beacon bundle; panics if it was not built for this run.
    pub fn beacon(&self) -> &BeaconBundle {
        self.beacon
            .as_ref()
            .expect("beacon bundle not built for this experiment selection")
    }
}

/// Wall-clock seconds spent building each bundle of a [`Substrates`]
/// (`None` = that bundle was not needed).
#[derive(Debug, Clone, Copy, Default)]
pub struct BundleTimings {
    /// Replication-bundle build time.
    pub replication_secs: Option<f64>,
    /// Beacon-bundle build time.
    pub beacon_secs: Option<f64>,
}

/// One experiment driver: a table, figure, case study, or extension.
///
/// Implementations are stateless unit structs; [`registry`] lists them
/// all. The trait is `Sync` so `&'static dyn Experiment` handles can be
/// dispatched across worker threads.
pub trait Experiment: Sync {
    /// Short stable id (`t1`, `f2`, `cases`, …) — also the artifact stem.
    fn id(&self) -> &'static str;
    /// Human title (the paper artifact the driver regenerates).
    fn title(&self) -> &'static str;
    /// Which shared substrate the driver consumes.
    fn substrate(&self) -> Substrate;
    /// Runs the driver against the prepared substrate context.
    fn run(&self, ctx: &Substrates) -> ExperimentOutput;
}

/// Every experiment driver, in the canonical presentation order (tables,
/// figures, case studies, extensions). The single source of truth for
/// experiment ids: the binary's id validation and `--list`, the parallel
/// dispatcher, and the criterion benches all iterate this.
pub fn registry() -> Vec<&'static dyn Experiment> {
    vec![
        &table1::Table1Driver,
        &table2::Table2Driver,
        &table3::Table3Driver,
        &table4::Table4Driver,
        &table5::Table5Driver,
        &fig2::Fig2Driver,
        &fig3::Fig3Driver,
        &fig4::Fig4Driver,
        &fig5::Fig5Driver,
        &fig6::Fig6Driver,
        &fig7::Fig7Driver,
        &cases::CasesDriver,
        &ablation::AblationDriver,
        &routeviews::RouteViewsDriver,
    ]
}

/// Looks an experiment up by id.
pub fn find(id: &str) -> Option<&'static dyn Experiment> {
    registry().into_iter().find(|e| e.id() == id)
}

/// The replication substrate, computed once and shared by T1–T4, F5–F7.
pub struct ReplicationBundle {
    /// One entry per paper period: the run and its scan.
    pub runs: Vec<(ReplicationRun, ScanResult)>,
}

/// Window past each withdrawal that scans collect (covers the paper's
/// 180-minute sweep ceiling).
pub const SCAN_WINDOW: u64 = 4 * HOUR;

/// Options-struct builder for the shared substrates — one API in place
/// of the old `replication_bundle_jobs[_cached]` /
/// `beacon_bundle_jobs[_cached]` function matrix.
///
/// ```ignore
/// let replication = BundleBuilder::new(&scale, seed)
///     .jobs(8)
///     .cache(&cache)
///     .replication();
/// let rv = BundleBuilder::new(&scale, seed).routeviews(true).beacon();
/// ```
///
/// Every option combination is deterministic in `(scale, seed)`: bundles
/// are identical at any `jobs` count and byte-identical warm or cold.
#[derive(Clone, Copy)]
pub struct BundleBuilder<'c> {
    scale: Scale,
    seed: u64,
    jobs: usize,
    cache: Option<&'c SubstrateCache>,
    routeviews: bool,
}

impl<'c> BundleBuilder<'c> {
    /// A serial, uncached, RIS-only builder for `(scale, seed)`.
    pub fn new(scale: &Scale, seed: u64) -> BundleBuilder<'c> {
        BundleBuilder {
            scale: *scale,
            seed,
            jobs: 1,
            cache: None,
            routeviews: false,
        }
    }

    /// Builds on up to `n` worker threads (`0` is clamped to 1). The
    /// replication periods fan out across threads and both scans shard;
    /// the result is identical at every count.
    pub fn jobs(mut self, n: usize) -> Self {
        self.jobs = n.max(1);
        self
    }

    /// Threads a substrate cache through the build: simulated archives
    /// and frame indexes are looked up before the simulator runs, and
    /// interval-scan results are looked up before the archive is
    /// rescanned (keyed on archive bytes × interval set × scan window —
    /// never on the shard count, since scans are byte-identical at every
    /// `jobs`). Either hit is stored back after a miss, so a warm bundle
    /// skips both the simulation and the scan yet stays byte-identical
    /// to a cold one. Accepts `&cache` or an `Option`.
    pub fn cache<C: Into<Option<&'c SubstrateCache>>>(mut self, cache: C) -> Self {
        self.cache = cache.into();
        self
    }

    /// Adds the RouteViews-like second peer set to the beacon world (the
    /// §6 two-platform study; see
    /// [`crate::worlds::run_beacon_study_with_routeviews`]). RouteViews
    /// worlds bypass the substrate cache — the cache key is `(scale,
    /// seed)` and must not collide with the RIS-only world.
    pub fn routeviews(mut self, on: bool) -> Self {
        self.routeviews = on;
        self
    }

    /// Runs all three replication periods and scans their archives
    /// (`routeviews` does not apply — the 2017/2018 periods are RIS-only
    /// by construction).
    pub fn replication(&self) -> ReplicationBundle {
        let _span = bgpz_obs::span("analysis::bundle", "replication");
        let trace0 = bgpz_obs::trace::enabled().then(bgpz_obs::trace::now_us);
        let scale = &self.scale;
        let seed = self.seed;
        let cache = self.cache;
        let periods = replication_periods(scale);
        bgpz_obs::metrics::counter(
            "analysis::bundle",
            "replication_periods",
            periods.len() as u64,
        );
        bgpz_obs::debug!(
            target: "analysis::bundle",
            "building replication bundle: {} periods, {} jobs",
            periods.len(),
            self.jobs
        );
        let build = |period: &crate::worlds::ReplicationPeriod, scan_jobs: usize| {
            let (run, index) = match cache.and_then(|c| c.load_replication(scale, seed, period)) {
                Some(hit) => hit,
                None => {
                    let run = run_replication(period, scale, seed);
                    // One framing pass per period archive; the scan
                    // prefilters on the indexed frames and decodes each
                    // relevant record at most once.
                    let index = FrameIndex::build(run.archive.updates.clone());
                    if let Some(c) = cache {
                        c.store_replication(scale, seed, period, &run, &index);
                    }
                    (run, index)
                }
            };
            let intervals = intervals_from_schedule(&run.schedule);
            let archive = &run.archive.updates;
            let result = match cache.and_then(|c| c.load_scan(archive, &intervals, SCAN_WINDOW)) {
                Some(hit) => hit,
                None => {
                    let result = scan_indexed(&index, &intervals, SCAN_WINDOW, scan_jobs);
                    if let Some(c) = cache {
                        c.store_scan(archive, &intervals, SCAN_WINDOW, &result);
                    }
                    result
                }
            };
            (run, result)
        };
        let bundle = if self.jobs <= 1 {
            ReplicationBundle {
                runs: periods.iter().map(|period| build(period, 1)).collect(),
            }
        } else {
            // Periods run concurrently; each period's scan gets a share
            // of the job budget.
            let scan_jobs = self.jobs.div_ceil(periods.len().max(1));
            let runs = crossbeam::thread::scope(|s| {
                let build = &build;
                let handles: Vec<_> = periods
                    .iter()
                    .map(|period| s.spawn(move |_| build(period, scan_jobs)))
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().unwrap_or_else(|panic| resume_unwind(panic)))
                    .collect()
            })
            .unwrap_or_else(|panic| resume_unwind(panic));
            ReplicationBundle { runs }
        };
        if let Some(t0) = trace0 {
            bgpz_obs::trace::emit(
                "analysis::bundle",
                "replication_build",
                5_000,
                bgpz_obs::trace::TraceCtx::root("bundle", 0, seed),
                t0,
                bgpz_obs::trace::now_us().saturating_sub(t0),
            );
            bgpz_obs::trace::flush_thread();
        }
        bundle
    }

    /// Runs the beacon study and scans it. The simulation itself is one
    /// sequential event loop; the archive scan — the post-simulation hot
    /// path — shards across `jobs`.
    pub fn beacon(&self) -> BeaconBundle {
        let _span = bgpz_obs::span("analysis::bundle", "beacon");
        let trace0 = bgpz_obs::trace::enabled().then(bgpz_obs::trace::now_us);
        let scale = &self.scale;
        let seed = self.seed;
        // The cache is keyed `(scale, seed)`; the RouteViews world is a
        // different archive under the same key, so it builds uncached.
        let cache = if self.routeviews { None } else { self.cache };
        let (run, index) = match cache.and_then(|c| c.load_beacon(scale, seed)) {
            Some(hit) => hit,
            None => {
                let run = if self.routeviews {
                    crate::worlds::run_beacon_study_with_routeviews(scale, seed)
                } else {
                    run_beacon_study(scale, seed)
                };
                let index = FrameIndex::build(run.archive.updates.clone());
                if let Some(c) = cache {
                    c.store_beacon(scale, seed, &run, &index);
                }
                (run, index)
            }
        };
        let mut intervals = intervals_from_schedule(&run.schedule);
        // Footnote 3: drop the earlier announcement of each colliding pair.
        let before = intervals.len();
        intervals.retain(|iv| {
            !run.polluted
                .iter()
                .any(|&(prefix, start)| iv.prefix == prefix && iv.start == start)
        });
        bgpz_obs::metrics::counter(
            "analysis::bundle",
            "beacon_intervals",
            intervals.len() as u64,
        );
        bgpz_obs::metrics::counter(
            "analysis::bundle",
            "polluted_intervals_dropped",
            (before - intervals.len()) as u64,
        );
        bgpz_obs::debug!(
            target: "analysis::bundle",
            "building beacon bundle: {} intervals ({} polluted dropped), {} jobs",
            intervals.len(),
            before - intervals.len(),
            self.jobs
        );
        // The scan cache is keyed on the cleaned interval set, so the
        // footnote-3 retain above is already part of the key.
        let archive = &run.archive.updates;
        let scan_result = match cache.and_then(|c| c.load_scan(archive, &intervals, SCAN_WINDOW)) {
            Some(hit) => hit,
            None => {
                let result = scan_indexed(&index, &intervals, SCAN_WINDOW, self.jobs);
                if let Some(c) = cache {
                    c.store_scan(archive, &intervals, SCAN_WINDOW, &result);
                }
                result
            }
        };
        let finals = final_withdrawals(&run.schedule);
        if let Some(t0) = trace0 {
            bgpz_obs::trace::emit(
                "analysis::bundle",
                "beacon_build",
                5_001,
                bgpz_obs::trace::TraceCtx::root("bundle", 1, seed),
                t0,
                bgpz_obs::trace::now_us().saturating_sub(t0),
            );
            bgpz_obs::trace::flush_thread();
        }
        BeaconBundle {
            scan: scan_result,
            intervals,
            finals,
            run,
            lifespans: OnceLock::new(),
        }
    }
}

/// Runs all three replication periods and scans their archives, serially
/// (shorthand for [`BundleBuilder::replication`] with default options).
pub fn replication_bundle(scale: &Scale, seed: u64) -> ReplicationBundle {
    BundleBuilder::new(scale, seed).replication()
}

/// Thin wrapper kept for one release while callers migrate.
#[deprecated(note = "use BundleBuilder::new(scale, seed).jobs(n).replication()")]
pub fn replication_bundle_jobs(scale: &Scale, seed: u64, jobs: usize) -> ReplicationBundle {
    BundleBuilder::new(scale, seed).jobs(jobs).replication()
}

/// Thin wrapper kept for one release while callers migrate.
#[deprecated(note = "use BundleBuilder::new(scale, seed).jobs(n).cache(cache).replication()")]
pub fn replication_bundle_jobs_cached(
    scale: &Scale,
    seed: u64,
    jobs: usize,
    cache: Option<&SubstrateCache>,
) -> ReplicationBundle {
    BundleBuilder::new(scale, seed)
        .jobs(jobs)
        .cache(cache)
        .replication()
}

/// The beacon-study substrate, computed once and shared by T5, F2–F4 and
/// the §5.2 case studies.
pub struct BeaconBundle {
    /// The run.
    pub run: BeaconRun,
    /// Scan of the update stream against the (pollution-cleaned)
    /// intervals.
    pub scan: ScanResult,
    /// The intervals after dropping the footnote-3 polluted announcements.
    pub intervals: Vec<BeaconInterval>,
    /// Final withdrawal per prefix (for lifespan tracking).
    pub finals: Vec<(Prefix, SimTime)>,
    /// Shared lifespan table: `track_lifespans` over the full finals set,
    /// computed once on first use (see [`BeaconBundle::lifespans`]).
    lifespans: OnceLock<Vec<OutbreakLifespan>>,
}

impl BeaconBundle {
    /// The outbreak lifespan table for every final withdrawal, with no
    /// peer exclusions — the most general tracking pass, computed at most
    /// once per bundle and shared by every driver that needs lifespans
    /// (F3, F4, the §5.2 cases). Per-prefix and per-peer views are carved
    /// out of this table instead of re-tracking the RIB dumps.
    pub fn lifespans(&self) -> &[OutbreakLifespan] {
        self.lifespans
            .get_or_init(|| track_lifespans(&self.run.archive.rib_dumps, &self.finals, &[]))
    }

    /// The lifespan of one outbreak prefix, if it was ever visible.
    pub fn lifespan_of(&self, prefix: Prefix) -> Option<&OutbreakLifespan> {
        self.lifespans().iter().find(|l| l.prefix == prefix)
    }

    /// The lifespan table with the `excluded` peer routers' sightings
    /// removed — equivalent to re-tracking with the exclusion list, but
    /// derived from the shared table (lifespans left empty by the
    /// exclusion are dropped, matching `track_lifespans`).
    pub fn lifespans_excluding(&self, excluded: &[IpAddr]) -> Vec<OutbreakLifespan> {
        self.lifespans()
            .iter()
            .filter_map(|l| l.without_peers(excluded))
            .collect()
    }
}

/// Runs the beacon study and scans it, serially (shorthand for
/// [`BundleBuilder::beacon`] with default options).
pub fn beacon_bundle(scale: &Scale, seed: u64) -> BeaconBundle {
    BundleBuilder::new(scale, seed).beacon()
}

/// Thin wrapper kept for one release while callers migrate.
#[deprecated(note = "use BundleBuilder::new(scale, seed).jobs(n).beacon()")]
pub fn beacon_bundle_jobs(scale: &Scale, seed: u64, jobs: usize) -> BeaconBundle {
    BundleBuilder::new(scale, seed).jobs(jobs).beacon()
}

/// Thin wrapper kept for one release while callers migrate.
#[deprecated(note = "use BundleBuilder::new(scale, seed).jobs(n).cache(cache).beacon()")]
pub fn beacon_bundle_jobs_cached(
    scale: &Scale,
    seed: u64,
    jobs: usize,
    cache: Option<&SubstrateCache>,
) -> BeaconBundle {
    BundleBuilder::new(scale, seed)
        .jobs(jobs)
        .cache(cache)
        .beacon()
}

/// Builds exactly the bundles the selected experiments need.
///
/// With `jobs > 1` the replication and beacon bundles are built on
/// overlapping threads (the replication bundle additionally parallelizes
/// over its three periods, and both scans shard); with `jobs <= 1`
/// everything runs serially on the calling thread. The result is
/// identical either way.
pub fn build_substrates(
    scale: &Scale,
    seed: u64,
    experiments: &[&'static dyn Experiment],
    jobs: usize,
) -> (Substrates, BundleTimings) {
    build_substrates_cached(scale, seed, experiments, jobs, None)
}

/// [`build_substrates`] with an optional substrate cache threaded through
/// to both bundle builders.
pub fn build_substrates_cached(
    scale: &Scale,
    seed: u64,
    experiments: &[&'static dyn Experiment],
    jobs: usize,
    cache: Option<&SubstrateCache>,
) -> (Substrates, BundleTimings) {
    let need_replication = experiments
        .iter()
        .any(|e| e.substrate() == Substrate::Replication);
    let need_beacon = experiments
        .iter()
        .any(|e| e.substrate() == Substrate::Beacon);

    let timed_replication = |jobs: usize| {
        let t0 = Instant::now();
        let bundle = BundleBuilder::new(scale, seed)
            .jobs(jobs)
            .cache(cache)
            .replication();
        (bundle, t0.elapsed().as_secs_f64())
    };
    let timed_beacon = |jobs: usize| {
        let t0 = Instant::now();
        let bundle = BundleBuilder::new(scale, seed)
            .jobs(jobs)
            .cache(cache)
            .beacon();
        (bundle, t0.elapsed().as_secs_f64())
    };

    let (replication, beacon) = if jobs > 1 && need_replication && need_beacon {
        // Overlap the two bundle builds: the beacon world (one long
        // sequential simulation) runs on a worker while the calling
        // thread fans the replication periods out.
        crossbeam::thread::scope(|s| {
            let beacon_handle = s.spawn(|_| timed_beacon(jobs));
            let replication = timed_replication(jobs);
            let beacon = beacon_handle
                .join()
                .unwrap_or_else(|panic| resume_unwind(panic));
            (Some(replication), Some(beacon))
        })
        .unwrap_or_else(|panic| resume_unwind(panic))
    } else {
        (
            need_replication.then(|| timed_replication(jobs.max(1))),
            need_beacon.then(|| timed_beacon(jobs.max(1))),
        )
    };

    let (replication, replication_secs) = match replication {
        Some((bundle, secs)) => (Some(bundle), Some(secs)),
        None => (None, None),
    };
    let (beacon, beacon_secs) = match beacon {
        Some((bundle, secs)) => (Some(bundle), Some(secs)),
        None => (None, None),
    };
    (
        Substrates {
            scale: *scale,
            seed,
            replication,
            beacon,
        },
        BundleTimings {
            replication_secs,
            beacon_secs,
        },
    )
}

/// Formats a fraction as a percentage with one decimal.
pub fn pct(fraction: f64) -> String {
    format!("{:.2}%", fraction * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The documented id set (the ids the binary's help text advertises).
    const DOCUMENTED_IDS: [&str; 14] = [
        "t1", "t2", "t3", "t4", "t5", "f2", "f3", "f4", "f5", "f6", "f7", "cases", "ablation", "rv",
    ];

    #[test]
    fn registry_ids_unique_and_complete() {
        let registry = registry();
        assert_eq!(registry.len(), DOCUMENTED_IDS.len());
        let mut seen = std::collections::HashSet::new();
        for exp in &registry {
            assert!(
                seen.insert(exp.id()),
                "duplicate experiment id {}",
                exp.id()
            );
            assert!(!exp.title().is_empty(), "{} has an empty title", exp.id());
        }
    }

    #[test]
    fn every_documented_id_resolves() {
        for id in DOCUMENTED_IDS {
            let exp = find(id).unwrap_or_else(|| panic!("id {id} not in registry"));
            assert_eq!(exp.id(), id);
        }
        assert!(find("bogus").is_none());
    }

    #[test]
    fn substrate_requirements_match_the_paper_split() {
        for (id, substrate) in [
            ("t1", Substrate::Replication),
            ("t2", Substrate::Replication),
            ("t3", Substrate::Replication),
            ("t4", Substrate::Replication),
            ("t5", Substrate::Beacon),
            ("f2", Substrate::Beacon),
            ("f3", Substrate::Beacon),
            ("f4", Substrate::Beacon),
            ("f5", Substrate::Replication),
            ("f6", Substrate::Replication),
            ("f7", Substrate::Replication),
            ("cases", Substrate::Beacon),
            ("ablation", Substrate::Replication),
            ("rv", Substrate::ScaleSeed),
        ] {
            assert_eq!(find(id).expect("registered").substrate(), substrate, "{id}");
        }
    }

    /// The parallel bundle path must agree with the serial one: same
    /// periods, same interval counts, same peers, same per-interval
    /// observation totals.
    #[test]
    fn parallel_replication_bundle_matches_serial() {
        let scale = Scale::bench();
        let serial = BundleBuilder::new(&scale, 42).replication();
        let parallel = BundleBuilder::new(&scale, 42).jobs(4).replication();
        assert_eq!(serial.runs.len(), parallel.runs.len());
        for ((s_run, s_scan), (p_run, p_scan)) in serial.runs.iter().zip(&parallel.runs) {
            assert_eq!(s_run.period.name, p_run.period.name);
            assert_eq!(s_scan.intervals, p_scan.intervals);
            assert_eq!(s_scan.peers, p_scan.peers);
            let observations = |scan: &ScanResult| -> Vec<usize> {
                scan.histories
                    .iter()
                    .map(|h| h.values().map(|history| history.len()).sum())
                    .collect()
            };
            assert_eq!(observations(s_scan), observations(p_scan));
        }
    }

    /// A warm (cache-hit) bundle must agree with a cold one in every
    /// field the drivers consume, and with an uncached build.
    #[test]
    fn cached_bundles_match_uncached() {
        let dir = std::env::temp_dir().join(format!("bgpz-bundle-cache-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cache = SubstrateCache::new(&dir);
        let scale = Scale::bench();

        let uncached = BundleBuilder::new(&scale, 42).beacon();
        let cold = BundleBuilder::new(&scale, 42).cache(&cache).beacon();
        let warm = BundleBuilder::new(&scale, 42).cache(&cache).beacon();
        for bundle in [&cold, &warm] {
            assert_eq!(bundle.run.archive.updates, uncached.run.archive.updates);
            assert_eq!(bundle.run.schedule.events, uncached.run.schedule.events);
            assert_eq!(bundle.intervals, uncached.intervals);
            assert_eq!(bundle.finals, uncached.finals);
            assert_eq!(bundle.scan.intervals, uncached.scan.intervals);
            assert_eq!(bundle.scan.peers, uncached.scan.peers);
        }

        let uncached_repl = BundleBuilder::new(&scale, 42).replication();
        let cold_repl = BundleBuilder::new(&scale, 42).cache(&cache).replication();
        let warm_repl = BundleBuilder::new(&scale, 42).cache(&cache).replication();
        for bundle in [&cold_repl, &warm_repl] {
            assert_eq!(bundle.runs.len(), uncached_repl.runs.len());
            for ((run, scan), (u_run, u_scan)) in bundle.runs.iter().zip(&uncached_repl.runs) {
                assert_eq!(run.period.name, u_run.period.name);
                assert_eq!(run.archive.updates, u_run.archive.updates);
                assert_eq!(scan.intervals, u_scan.intervals);
                assert_eq!(scan.peers, u_scan.peers);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The bundle scan artifact is byte-identical across every worker
    /// count and cache state: disabled, cold (miss + store), and warm
    /// (hit, scan skipped entirely).
    #[test]
    fn scan_artifact_identical_across_jobs_and_cache_states() {
        use crate::substrate_cache::encode_scan_result;
        let dir = std::env::temp_dir().join(format!("bgpz-scan-states-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let cache = SubstrateCache::new(&dir);
        let scale = Scale::bench();

        let reference = BundleBuilder::new(&scale, 42).beacon();
        let reference_bytes = encode_scan_result(&reference.scan);
        let disabled = BundleBuilder::new(&scale, 42).jobs(2).beacon();
        let cold = BundleBuilder::new(&scale, 42)
            .jobs(2)
            .cache(&cache)
            .beacon();
        let warm = BundleBuilder::new(&scale, 42)
            .jobs(8)
            .cache(&cache)
            .beacon();
        for (label, bundle) in [("disabled", &disabled), ("cold", &cold), ("warm", &warm)] {
            assert_eq!(
                encode_scan_result(&bundle.scan),
                reference_bytes,
                "beacon scan artifact differs ({label})"
            );
            assert_eq!(bundle.intervals, reference.intervals, "{label}");
        }

        let repl_reference = BundleBuilder::new(&scale, 42).replication();
        let repl_cold = BundleBuilder::new(&scale, 42).cache(&cache).replication();
        let repl_warm = BundleBuilder::new(&scale, 42)
            .jobs(2)
            .cache(&cache)
            .replication();
        for (label, bundle) in [("cold", &repl_cold), ("warm", &repl_warm)] {
            assert_eq!(bundle.runs.len(), repl_reference.runs.len());
            for ((_, scan), (_, reference_scan)) in bundle.runs.iter().zip(&repl_reference.runs) {
                assert_eq!(
                    encode_scan_result(scan),
                    encode_scan_result(reference_scan),
                    "replication scan artifact differs ({label})"
                );
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The deprecated wrappers are thin: they must return exactly what
    /// the builder they delegate to returns.
    #[test]
    #[allow(deprecated)]
    fn deprecated_wrappers_match_builder() {
        let scale = Scale::bench();
        let wrapper = replication_bundle_jobs(&scale, 42, 2);
        let builder = BundleBuilder::new(&scale, 42).jobs(2).replication();
        assert_eq!(wrapper.runs.len(), builder.runs.len());
        for ((w_run, w_scan), (b_run, b_scan)) in wrapper.runs.iter().zip(&builder.runs) {
            assert_eq!(w_run.period.name, b_run.period.name);
            assert_eq!(w_scan.intervals, b_scan.intervals);
            assert_eq!(w_scan.peers, b_scan.peers);
        }
        let wrapper = beacon_bundle_jobs(&scale, 42, 2);
        let builder = BundleBuilder::new(&scale, 42).jobs(2).beacon();
        assert_eq!(wrapper.intervals, builder.intervals);
        assert_eq!(wrapper.finals, builder.finals);
        assert_eq!(wrapper.scan.peers, builder.scan.peers);
    }

    /// The memoized lifespan views agree with direct tracking calls.
    #[test]
    fn memoized_lifespans_match_direct_tracking() {
        let scale = Scale::bench();
        let bundle = BundleBuilder::new(&scale, 42).beacon();
        let direct = track_lifespans(&bundle.run.archive.rib_dumps, &bundle.finals, &[]);
        assert_eq!(bundle.lifespans().len(), direct.len());
        for (memo, fresh) in bundle.lifespans().iter().zip(&direct) {
            assert_eq!(memo.prefix, fresh.prefix);
            assert_eq!(memo.spells, fresh.spells);
            assert_eq!(memo.resurrections, fresh.resurrections);
        }
        let excluded_direct = track_lifespans(
            &bundle.run.archive.rib_dumps,
            &bundle.finals,
            &bundle.run.noisy_routers,
        );
        let excluded_memo = bundle.lifespans_excluding(&bundle.run.noisy_routers);
        assert_eq!(excluded_memo.len(), excluded_direct.len());
        for (memo, fresh) in excluded_memo.iter().zip(&excluded_direct) {
            assert_eq!(memo.prefix, fresh.prefix);
            assert_eq!(memo.spells, fresh.spells);
            assert_eq!(memo.first_seen, fresh.first_seen);
            assert_eq!(memo.last_seen, fresh.last_seen);
            assert_eq!(memo.resurrections, fresh.resurrections);
        }
    }
}
