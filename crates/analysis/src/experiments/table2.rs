//! Table 2 — the prior study's methodology (looking-glass baseline)
//! versus the revised raw-data methodology, per period and family.

use super::{pct, ExperimentOutput, ReplicationBundle};
use crate::render::TextTable;
use bgpz_baseline::{classify_baseline, LookingGlassConfig};
use bgpz_core::{classify, ClassifyOptions};
use serde_json::json;

/// One period's comparison row.
#[derive(Debug, Clone)]
pub struct Table2Row {
    /// Paper period label.
    pub period: String,
    /// Baseline ("Study") outbreaks (IPv4, IPv6).
    pub study: (usize, usize),
    /// Revised methodology with double counting (IPv4, IPv6).
    pub with_dc: (usize, usize),
    /// Revised methodology without double counting (IPv4, IPv6).
    pub without_dc: (usize, usize),
    /// Total announcements.
    pub visible: usize,
}

/// The computed table.
#[derive(Debug, Clone)]
pub struct Table2 {
    /// One row per period.
    pub rows: Vec<Table2Row>,
}

impl Table2 {
    /// Relative surplus of the revised-with-DC count over the baseline
    /// (the paper finds +12.51% in total).
    pub fn surplus_over_study(&self) -> f64 {
        let ours: usize = self.rows.iter().map(|r| r.with_dc.0 + r.with_dc.1).sum();
        let study: usize = self.rows.iter().map(|r| r.study.0 + r.study.1).sum();
        if study == 0 {
            0.0
        } else {
            ours as f64 / study as f64 - 1.0
        }
    }

    /// Relative deficit of the filtered count versus the baseline (the
    /// paper's conclusion: 13% fewer after filtering).
    pub fn deficit_after_filter(&self) -> f64 {
        let ours: usize = self
            .rows
            .iter()
            .map(|r| r.without_dc.0 + r.without_dc.1)
            .sum();
        let study: usize = self.rows.iter().map(|r| r.study.0 + r.study.1).sum();
        if study == 0 {
            0.0
        } else {
            1.0 - ours as f64 / study as f64
        }
    }
}

/// Computes Table 2.
pub fn compute(bundle: &ReplicationBundle) -> Table2 {
    let rows = bundle
        .runs
        .iter()
        .map(|(run, scan)| {
            let excluded = vec![run.noisy_peer];
            let study = classify_baseline(
                scan,
                &LookingGlassConfig {
                    excluded_peers: excluded.clone(),
                    ..LookingGlassConfig::default()
                },
            );
            let with = classify(
                scan,
                &ClassifyOptions {
                    aggregator_filter: false,
                    excluded_peers: excluded.clone(),
                    ..ClassifyOptions::default()
                },
            );
            let without = classify(
                scan,
                &ClassifyOptions {
                    excluded_peers: excluded,
                    ..ClassifyOptions::default()
                },
            );
            Table2Row {
                period: run.period.name.to_string(),
                study: study.outbreak_count_by_family(),
                with_dc: with.outbreak_count_by_family(),
                without_dc: without.outbreak_count_by_family(),
                visible: scan.announcement_count(),
            }
        })
        .collect();
    Table2 { rows }
}

/// Runs the experiment and renders it.
pub fn run(bundle: &ReplicationBundle) -> ExperimentOutput {
    let table = compute(bundle);
    let mut text_table = TextTable::new([
        "Period",
        "Study IPv4",
        "Study IPv6",
        "withDC IPv4",
        "withDC IPv6",
        "noDC IPv4",
        "noDC IPv6",
        "#visible",
    ]);
    for row in &table.rows {
        text_table.row([
            row.period.clone(),
            row.study.0.to_string(),
            row.study.1.to_string(),
            row.with_dc.0.to_string(),
            row.with_dc.1.to_string(),
            row.without_dc.0.to_string(),
            row.without_dc.1.to_string(),
            row.visible.to_string(),
        ]);
    }
    let surplus = table.surplus_over_study();
    let deficit = table.deficit_after_filter();
    let text = format!(
        "Table 2 — prior study (looking-glass baseline) vs revised methodology\n\n{}\n\
         Raw-data methodology finds {} MORE outbreaks than the baseline before\n\
         filtering (paper: +12.51%), and {} FEWER after the Aggregator filter\n\
         (paper: ~13% fewer).\n",
        text_table.render(),
        pct(surplus),
        pct(deficit),
    );
    let json = json!({
        "rows": table.rows.iter().map(|r| json!({
            "period": r.period,
            "study": {"v4": r.study.0, "v6": r.study.1},
            "with_dc": {"v4": r.with_dc.0, "v6": r.with_dc.1},
            "without_dc": {"v4": r.without_dc.0, "v6": r.without_dc.1},
            "visible": r.visible,
        })).collect::<Vec<_>>(),
        "surplus_over_study": surplus,
        "deficit_after_filter": deficit,
        "paper": {"surplus_over_study": 0.1251, "deficit_after_filter": 0.13},
    });
    ExperimentOutput {
        id: "t2",
        title: "Table 2: prior study vs revised methodology".into(),
        text,
        csv: vec![("table2.csv".into(), text_table.to_csv())],
        json,
    }
}

/// Registry handle: `t2`.
pub struct Table2Driver;

impl super::Experiment for Table2Driver {
    fn id(&self) -> &'static str {
        "t2"
    }
    fn title(&self) -> &'static str {
        "Table 2: prior study vs revised methodology"
    }
    fn substrate(&self) -> super::Substrate {
        super::Substrate::Replication
    }
    fn run(&self, ctx: &super::Substrates) -> super::ExperimentOutput {
        run(ctx.replication())
    }
}
