//! Table 5 — the beacon study's three noisy peer routers: zombie routes
//! and percentage of announcements affected, at 1.5 h and 3 h.

use super::{pct, BeaconBundle, ExperimentOutput};
use crate::render::TextTable;
use bgpz_core::{classify, ClassifyOptions};
use serde_json::json;
use std::collections::HashMap;
use std::net::IpAddr;

/// One router's row: zombie route counts at the two thresholds.
#[derive(Debug, Clone)]
pub struct Table5Row {
    /// Router address.
    pub addr: IpAddr,
    /// Router's AS number.
    pub asn: u32,
    /// Zombie routes at 1.5 h.
    pub routes_90: usize,
    /// Zombie routes at 3 h.
    pub routes_180: usize,
    /// Announcements total (denominator).
    pub announcements: usize,
}

/// Computes Table 5.
pub fn compute(bundle: &BeaconBundle) -> Vec<Table5Row> {
    let mut counts: HashMap<IpAddr, (usize, usize, u32)> = bundle
        .run
        .noisy_routers
        .iter()
        .map(|&a| (a, (0, 0, 0)))
        .collect();
    for (slot, threshold) in [(0usize, 90 * 60u64), (1, 180 * 60)] {
        let report = classify(
            &bundle.scan,
            &ClassifyOptions {
                threshold,
                ..ClassifyOptions::default()
            },
        );
        for outbreak in &report.outbreaks {
            for route in &outbreak.routes {
                if let Some(entry) = counts.get_mut(&route.peer.addr) {
                    if slot == 0 {
                        entry.0 += 1;
                    } else {
                        entry.1 += 1;
                    }
                    entry.2 = route.peer.asn.0;
                }
            }
        }
    }
    let announcements = bundle.scan.announcement_count();
    let mut rows: Vec<Table5Row> = bundle
        .run
        .noisy_routers
        .iter()
        .map(|&addr| {
            let (routes_90, routes_180, asn) = counts[&addr];
            Table5Row {
                addr,
                asn,
                routes_90,
                routes_180,
                announcements,
            }
        })
        .collect();
    rows.sort_by_key(|row| std::cmp::Reverse(row.routes_90));
    rows
}

/// Runs the experiment and renders it.
pub fn run(bundle: &BeaconBundle) -> ExperimentOutput {
    let rows = compute(bundle);
    let mut text_table = TextTable::new([
        "Peer Address (ASN)",
        "routes @1:30h",
        "perc @1:30h",
        "routes @3h",
        "perc @3h",
    ]);
    for row in &rows {
        let n = row.announcements.max(1) as f64;
        text_table.row([
            format!("{} ({})", row.addr, row.asn),
            row.routes_90.to_string(),
            pct(row.routes_90 as f64 / n),
            row.routes_180.to_string(),
            pct(row.routes_180 as f64 / n),
        ]);
    }
    let text = format!(
        "Table 5 — noisy peer routers of the beacon study (AS211380, AS211509)\n\n{}\n\
         Paper: 163 routes (9.91%) per AS211509 router and 115 (7%) for the\n\
         AS211380 router at 1.5 h; roughly stable at 3 h. Shape to hold: the\n\
         same two ASes dominate at both thresholds, and the two AS211509\n\
         routers show identical-looking counts (same AS-level feed).\n",
        text_table.render(),
    );
    ExperimentOutput {
        id: "t5",
        title: "Table 5: the beacon study's noisy peer routers".into(),
        text,
        csv: vec![("table5.csv".into(), text_table.to_csv())],
        json: json!({
            "announcements": rows.first().map(|r| r.announcements).unwrap_or(0),
            "rows": rows.iter().map(|r| json!({
                "addr": r.addr.to_string(),
                "asn": r.asn,
                "routes_90": r.routes_90,
                "routes_180": r.routes_180,
            })).collect::<Vec<_>>(),
            "paper": {"as211509_routes_90": 163, "as211380_routes_90": 115},
        }),
    }
}

/// Registry handle: `t5`.
pub struct Table5Driver;

impl super::Experiment for Table5Driver {
    fn id(&self) -> &'static str {
        "t5"
    }
    fn title(&self) -> &'static str {
        "Table 5: the beacon study's noisy peer routers"
    }
    fn substrate(&self) -> super::Substrate {
        super::Substrate::Beacon
    }
    fn run(&self, ctx: &super::Substrates) -> super::ExperimentOutput {
        run(ctx.beacon())
    }
}
