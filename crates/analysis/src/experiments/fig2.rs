//! Fig. 2 — outbreak count and percentage of announcements leading to an
//! outbreak versus the detection threshold (90–180 min), with all peers
//! and with the noisy peers excluded. The paper's signature feature: the
//! curve decays and then *rises* after ~160 minutes because resurrected
//! routes (late re-announcements through Telstra) come back into scope.

use super::{pct, BeaconBundle, ExperimentOutput};
use crate::render::{AsciiSeries, TextTable};
use bgpz_core::sweep::{paper_thresholds, threshold_sweep};
use serde_json::json;

/// The two sweep series.
#[derive(Debug, Clone)]
pub struct Fig2 {
    /// (threshold minutes, outbreaks, fraction) with all peers.
    pub all_peers: Vec<(u64, usize, f64)>,
    /// Same with the three noisy routers excluded.
    pub noisy_excluded: Vec<(u64, usize, f64)>,
}

impl Fig2 {
    /// Fraction of 90-minute zombie *routes* still alive at 3 h (the
    /// paper reports 31.4%), noisy peers excluded.
    pub fn survival_to_3h(&self) -> f64 {
        let at = |minutes: u64| {
            self.noisy_excluded
                .iter()
                .find(|&&(m, _, _)| m == minutes)
                .map(|&(_, outbreaks, _)| outbreaks)
                .unwrap_or(0)
        };
        let (o90, o180) = (at(90), at(180));
        if o90 == 0 {
            0.0
        } else {
            o180 as f64 / o90 as f64
        }
    }

    /// True if the series rises late in the sweep — the resurrection
    /// uptick. The late re-announcements land ~170 minutes after the
    /// withdrawal, so they are inside the 180-minute classification but
    /// not the 170-minute one.
    pub fn has_uptick(&self) -> bool {
        let find = |series: &[(u64, usize, f64)], m: u64| {
            series
                .iter()
                .find(|&&(minutes, _, _)| minutes == m)
                .map(|&(_, o, _)| o)
        };
        let rises = |series: &[(u64, usize, f64)]| {
            matches!(
                (find(series, 170), find(series, 180)),
                (Some(at170), Some(at180)) if at180 > at170
            )
        };
        rises(&self.noisy_excluded) || rises(&self.all_peers)
    }
}

/// Computes the sweep.
pub fn compute(bundle: &BeaconBundle) -> Fig2 {
    let thresholds = paper_thresholds();
    let all = threshold_sweep(&bundle.scan, &thresholds, &[], true);
    let excluded = threshold_sweep(&bundle.scan, &thresholds, &bundle.run.noisy_routers, true);
    let pack = |points: &[bgpz_core::SweepPoint]| {
        points
            .iter()
            .map(|p| (p.threshold / 60, p.outbreaks, p.fraction))
            .collect()
    };
    Fig2 {
        all_peers: pack(&all),
        noisy_excluded: pack(&excluded),
    }
}

/// Runs the experiment and renders it.
pub fn run(bundle: &BeaconBundle) -> ExperimentOutput {
    let fig = compute(bundle);
    let mut text_table = TextTable::new([
        "threshold (min)",
        "outbreaks (all)",
        "% (all)",
        "outbreaks (no noisy)",
        "% (no noisy)",
    ]);
    for (i, &(minutes, outbreaks, fraction)) in fig.all_peers.iter().enumerate() {
        let (_, ex_outbreaks, ex_fraction) = fig.noisy_excluded[i];
        text_table.row([
            minutes.to_string(),
            outbreaks.to_string(),
            pct(fraction),
            ex_outbreaks.to_string(),
            pct(ex_fraction),
        ]);
    }
    let all_series = AsciiSeries::new(
        "all peers (%)",
        fig.all_peers
            .iter()
            .map(|&(m, _, f)| (m as f64, f * 100.0))
            .collect(),
    );
    let ex_series = AsciiSeries::new(
        "noisy excluded (%)",
        fig.noisy_excluded
            .iter()
            .map(|&(m, _, f)| (m as f64, f * 100.0))
            .collect(),
    );
    let chart = AsciiSeries::chart(&[all_series.clone(), ex_series.clone()], 60, 14);
    let text = format!(
        "Fig. 2 — zombie outbreaks vs detection threshold\n\n{}\n{}\n\
         31.4%-check: {} of the 90-min outbreaks survive to 3 h (paper: 31.4%).\n\
         Post-160-min resurrection uptick present: {}\n\
         (paper: small rise after 160 min from late Telstra re-announcements)\n",
        text_table.render(),
        chart,
        pct(fig.survival_to_3h()),
        if fig.has_uptick() { "YES" } else { "no" },
    );
    ExperimentOutput {
        id: "f2",
        title: "Fig. 2: outbreaks vs threshold (with resurrection uptick)".into(),
        text,
        csv: vec![
            ("fig2.csv".into(), text_table.to_csv()),
            (
                "fig2_series.csv".into(),
                AsciiSeries::to_csv(&[all_series, ex_series]),
            ),
        ],
        json: json!({
            "all_peers": fig.all_peers.iter().map(|&(m, o, f)| json!({
                "minutes": m, "outbreaks": o, "fraction": f
            })).collect::<Vec<_>>(),
            "noisy_excluded": fig.noisy_excluded.iter().map(|&(m, o, f)| json!({
                "minutes": m, "outbreaks": o, "fraction": f
            })).collect::<Vec<_>>(),
            "survival_to_3h": fig.survival_to_3h(),
            "has_uptick": fig.has_uptick(),
            "paper": {"survival_to_3h": 0.314, "fraction_at_90": 0.066, "fraction_at_180": 0.02},
        }),
    }
}

/// Registry handle: `f2`.
pub struct Fig2Driver;

impl super::Experiment for Fig2Driver {
    fn id(&self) -> &'static str {
        "f2"
    }
    fn title(&self) -> &'static str {
        "Fig. 2: outbreaks vs threshold (with resurrection uptick)"
    }
    fn substrate(&self) -> super::Substrate {
        super::Substrate::Beacon
    }
    fn run(&self, ctx: &super::Substrates) -> super::ExperimentOutput {
        run(ctx.beacon())
    }
}
