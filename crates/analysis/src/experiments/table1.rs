//! Table 1 — zombie outbreak counts with and without double counting,
//! per period and address family, noisy peer excluded.

use super::{pct, ExperimentOutput, ReplicationBundle};
use crate::render::TextTable;
use bgpz_core::{classify, ClassifyOptions};
use serde_json::json;

/// One period's row.
#[derive(Debug, Clone)]
pub struct Table1Row {
    /// Paper period label.
    pub period: String,
    /// Total beacon announcements ("visible prefixes").
    pub visible: usize,
    /// Outbreaks with double counting (IPv4, IPv6).
    pub with_dc: (usize, usize),
    /// Outbreaks without double counting (IPv4, IPv6).
    pub without_dc: (usize, usize),
}

/// The computed table.
#[derive(Debug, Clone)]
pub struct Table1 {
    /// One row per period.
    pub rows: Vec<Table1Row>,
}

impl Table1 {
    /// Overall reduction from the Aggregator filter (the paper reports
    /// 21.36%).
    pub fn overall_reduction(&self) -> f64 {
        let with: usize = self.rows.iter().map(|r| r.with_dc.0 + r.with_dc.1).sum();
        let without: usize = self
            .rows
            .iter()
            .map(|r| r.without_dc.0 + r.without_dc.1)
            .sum();
        if with == 0 {
            0.0
        } else {
            1.0 - without as f64 / with as f64
        }
    }
}

/// Computes Table 1 from a replication bundle.
pub fn compute(bundle: &ReplicationBundle) -> Table1 {
    let rows = bundle
        .runs
        .iter()
        .map(|(run, scan)| {
            let excluded = vec![run.noisy_peer];
            let with = classify(
                scan,
                &ClassifyOptions {
                    aggregator_filter: false,
                    excluded_peers: excluded.clone(),
                    ..ClassifyOptions::default()
                },
            );
            let without = classify(
                scan,
                &ClassifyOptions {
                    aggregator_filter: true,
                    excluded_peers: excluded,
                    ..ClassifyOptions::default()
                },
            );
            Table1Row {
                period: run.period.name.to_string(),
                visible: scan.announcement_count(),
                with_dc: with.outbreak_count_by_family(),
                without_dc: without.outbreak_count_by_family(),
            }
        })
        .collect();
    Table1 { rows }
}

/// Runs the experiment and renders it.
pub fn run(bundle: &ReplicationBundle) -> ExperimentOutput {
    let table = compute(bundle);
    let mut text_table = TextTable::new([
        "Period",
        "#visible",
        "withDC IPv4",
        "withDC IPv6",
        "noDC IPv4",
        "noDC IPv6",
    ]);
    for row in &table.rows {
        text_table.row([
            row.period.clone(),
            row.visible.to_string(),
            row.with_dc.0.to_string(),
            row.with_dc.1.to_string(),
            row.without_dc.0.to_string(),
            row.without_dc.1.to_string(),
        ]);
    }
    let reduction = table.overall_reduction();
    let text = format!(
        "Table 1 — outbreaks with/without double counting (noisy peer excluded)\n\n{}\n\
         Overall reduction from the Aggregator-clock filter: {}\n\
         (paper: 21.36% across the three periods)\n",
        text_table.render(),
        pct(reduction),
    );
    let json = json!({
        "rows": table.rows.iter().map(|r| json!({
            "period": r.period,
            "visible": r.visible,
            "with_dc": {"v4": r.with_dc.0, "v6": r.with_dc.1},
            "without_dc": {"v4": r.without_dc.0, "v6": r.without_dc.1},
        })).collect::<Vec<_>>(),
        "overall_reduction": reduction,
        "paper": {"overall_reduction": 0.2136},
    });
    ExperimentOutput {
        id: "t1",
        title: "Table 1: zombie outbreaks with and without double-counting".into(),
        text,
        csv: vec![("table1.csv".into(), text_table.to_csv())],
        json,
    }
}

/// Registry handle: `t1`.
pub struct Table1Driver;

impl super::Experiment for Table1Driver {
    fn id(&self) -> &'static str {
        "t1"
    }
    fn title(&self) -> &'static str {
        "Table 1: zombie outbreaks with and without double-counting"
    }
    fn substrate(&self) -> super::Substrate {
        super::Substrate::Replication
    }
    fn run(&self, ctx: &super::Substrates) -> super::ExperimentOutput {
        run(ctx.replication())
    }
}
