//! Fig. 6 — CDFs of AS-path length for the three populations (normal path
//! at normal peers, normal path at zombie peers, zombie path), per family
//! and with/without the double-counting filter, plus the changed-path
//! fractions.

use super::{pct, ExperimentOutput, ReplicationBundle};
use crate::render::{AsciiSeries, TextTable};
use crate::stats::Ecdf;
use bgpz_core::{path_length_samples, ClassifyOptions, PathLengthSamples};
use bgpz_types::Afi;
use serde_json::json;

/// Samples per (family, filter) cell.
#[derive(Debug, Clone, Default)]
pub struct Fig6 {
    /// (family label, filtered?, samples).
    pub cells: Vec<(String, bool, PathLengthSamples)>,
}

/// Computes the samples over all periods (noisy peer excluded).
pub fn compute(bundle: &ReplicationBundle) -> Fig6 {
    let mut cells = Vec::new();
    for (family, label) in [(Afi::Ipv4, "IPv4"), (Afi::Ipv6, "IPv6")] {
        for filter in [false, true] {
            let mut merged = PathLengthSamples::default();
            for (run, scan) in &bundle.runs {
                let samples = path_length_samples(
                    scan,
                    &ClassifyOptions {
                        aggregator_filter: filter,
                        excluded_peers: vec![run.noisy_peer],
                        ..ClassifyOptions::default()
                    },
                    Some(family),
                );
                merged
                    .normal_at_normal_peers
                    .extend(samples.normal_at_normal_peers);
                merged
                    .normal_at_zombie_peers
                    .extend(samples.normal_at_zombie_peers);
                merged.zombie_paths.extend(samples.zombie_paths);
                merged.changed += samples.changed;
                merged.comparable += samples.comparable;
            }
            cells.push((label.to_string(), filter, merged));
        }
    }
    Fig6 { cells }
}

/// Runs the experiment and renders it.
pub fn run(bundle: &ReplicationBundle) -> ExperimentOutput {
    let fig = compute(bundle);
    let mut summary = TextTable::new([
        "Cell",
        "normal@normal med",
        "normal@zombie med",
        "zombie med",
        "changed",
    ]);
    let mut series = Vec::new();
    let mut zombie_longer_everywhere = true;
    for (label, filtered, samples) in &fig.cells {
        let name = format!("{label} {}", if *filtered { "noDC" } else { "withDC" });
        let nn = Ecdf::from_counts(samples.normal_at_normal_peers.iter().copied());
        let nz = Ecdf::from_counts(samples.normal_at_zombie_peers.iter().copied());
        let zz = Ecdf::from_counts(samples.zombie_paths.iter().copied());
        if let (Some(n_med), Some(z_med)) = (nn.median(), zz.median()) {
            if z_med < n_med {
                zombie_longer_everywhere = false;
            }
        }
        summary.row([
            name.clone(),
            format!("{:.1}", nn.median().unwrap_or(0.0)),
            format!("{:.1}", nz.median().unwrap_or(0.0)),
            format!("{:.1}", zz.median().unwrap_or(0.0)),
            pct(samples.changed_fraction()),
        ]);
        if *filtered {
            series.push(AsciiSeries::new(format!("{name} zombie"), zz.points()));
            series.push(AsciiSeries::new(format!("{name} normal"), nn.points()));
        }
    }
    let chart = AsciiSeries::chart(&series, 60, 14);
    let text = format!(
        "Fig. 6 — AS-path length CDFs (normal vs zombie paths)\n\n{}\n{}\n\
         Shape to hold (paper): zombie paths are LONGER than normal paths —\n\
         path hunting promotes routes BGP had not selected — and the vast\n\
         majority of zombie paths differ from the pre-withdrawal path\n\
         (paper: 96.1%/90.0% withDC, 95.5%/79.6% noDC for IPv4/IPv6).\n\
         Zombie median >= normal median in every cell: {}\n",
        summary.render(),
        chart,
        if zombie_longer_everywhere {
            "YES"
        } else {
            "no"
        },
    );
    ExperimentOutput {
        id: "f6",
        title: "Fig. 6: AS-path length CDFs".into(),
        text,
        csv: vec![
            ("fig6.csv".into(), summary.to_csv()),
            ("fig6_series.csv".into(), AsciiSeries::to_csv(&series)),
        ],
        json: json!({
            "cells": fig.cells.iter().map(|(label, filtered, s)| json!({
                "family": label,
                "filtered": filtered,
                "normal_at_normal": s.normal_at_normal_peers.len(),
                "normal_at_zombie": s.normal_at_zombie_peers.len(),
                "zombies": s.zombie_paths.len(),
                "changed_fraction": s.changed_fraction(),
            })).collect::<Vec<_>>(),
            "zombie_longer_everywhere": zombie_longer_everywhere,
            "paper": {"changed_v4_with": 0.961, "changed_v6_with": 0.9003,
                       "changed_v4_without": 0.9554, "changed_v6_without": 0.7961},
        }),
    }
}

/// Registry handle: `f6`.
pub struct Fig6Driver;

impl super::Experiment for Fig6Driver {
    fn id(&self) -> &'static str {
        "f6"
    }
    fn title(&self) -> &'static str {
        "Fig. 6: AS-path length CDFs"
    }
    fn substrate(&self) -> super::Substrate {
        super::Substrate::Replication
    }
    fn run(&self, ctx: &super::Substrates) -> super::ExperimentOutput {
        run(ctx.replication())
    }
}
