//! Fig. 3 — CDF of zombie-outbreak duration (outbreaks lasting ≥ 1 day),
//! for all peers and with the noisy routers excluded. The paper's
//! headline: durations reach 8.5 months, and the 35–37-day cluster on the
//! excluded line is a single peer (AS207301) behind the noisy AS211509.

use super::{BeaconBundle, ExperimentOutput};
use crate::render::{AsciiSeries, TextTable};
use crate::stats::Ecdf;
use serde_json::json;

/// The two duration distributions.
#[derive(Debug, Clone)]
pub struct Fig3 {
    /// Durations in days (≥ 1), all peers.
    pub all_peers: Vec<f64>,
    /// Durations in days (≥ 1), noisy routers excluded.
    pub noisy_excluded: Vec<f64>,
    /// Outbreaks in the 35–37-day band on the excluded line.
    pub cluster_35_37: usize,
}

/// Computes the distributions from the RIB dumps.
pub fn compute(bundle: &BeaconBundle) -> Fig3 {
    let all = bundle.lifespans();
    let excluded = bundle.lifespans_excluding(&bundle.run.noisy_routers);
    let days = |lifespans: &[bgpz_core::OutbreakLifespan]| -> Vec<f64> {
        let mut out: Vec<f64> = lifespans
            .iter()
            .map(|l| l.duration_days())
            .filter(|&d| d >= 1.0)
            .collect();
        out.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        out
    };
    let excluded_days = days(&excluded);
    let cluster = excluded_days
        .iter()
        .filter(|&&d| (35.0..=37.5).contains(&d))
        .count();
    Fig3 {
        all_peers: days(all),
        noisy_excluded: excluded_days,
        cluster_35_37: cluster,
    }
}

/// Runs the experiment and renders it.
pub fn run(bundle: &BeaconBundle) -> ExperimentOutput {
    let fig = compute(bundle);
    let all_cdf = Ecdf::new(fig.all_peers.iter().copied());
    let ex_cdf = Ecdf::new(fig.noisy_excluded.iter().copied());

    let mut summary = TextTable::new(["Series", "n (>=1 day)", "median (d)", "max (d)"]);
    summary.row([
        "all peers".to_string(),
        all_cdf.len().to_string(),
        format!("{:.1}", all_cdf.median().unwrap_or(0.0)),
        format!("{:.1}", all_cdf.max().unwrap_or(0.0)),
    ]);
    summary.row([
        "noisy excluded".to_string(),
        ex_cdf.len().to_string(),
        format!("{:.1}", ex_cdf.median().unwrap_or(0.0)),
        format!("{:.1}", ex_cdf.max().unwrap_or(0.0)),
    ]);

    let all_series = AsciiSeries::new("all peers", all_cdf.points());
    let ex_series = AsciiSeries::new("noisy excluded", ex_cdf.points());
    let chart = AsciiSeries::chart(&[all_series.clone(), ex_series.clone()], 60, 14);

    let observed_days = (bundle.run.observed_until.secs() as f64
        - bundle
            .finals
            .iter()
            .map(|&(_, t)| t.secs())
            .min()
            .unwrap_or(0) as f64)
        / 86_400.0;
    let text = format!(
        "Fig. 3 — CDF of zombie outbreak duration (>= 1 day)\n\n{}\n{}\n\
         Max duration observed: {:.1} days within a {:.0}-day observation window\n\
         (the paper reaches ~8.5 months = 262 days within ~340 days).\n\
         35–37-day cluster on the excluded line (AS207301 behind AS211509): {} outbreak(s).\n",
        summary.render(),
        chart,
        ex_cdf
            .max()
            .unwrap_or(0.0)
            .max(all_cdf.max().unwrap_or(0.0)),
        observed_days,
        fig.cluster_35_37,
    );
    ExperimentOutput {
        id: "f3",
        title: "Fig. 3: CDF of outbreak durations (>= 1 day)".into(),
        text,
        csv: vec![(
            "fig3_series.csv".into(),
            AsciiSeries::to_csv(&[all_series, ex_series]),
        )],
        json: json!({
            "all_peers_days": fig.all_peers,
            "noisy_excluded_days": fig.noisy_excluded,
            "cluster_35_37": fig.cluster_35_37,
            "max_days": ex_cdf.max().unwrap_or(0.0).max(all_cdf.max().unwrap_or(0.0)),
            "paper": {"max_days": 262, "cluster_days": [35, 37]},
        }),
    }
}

/// Registry handle: `f3`.
pub struct Fig3Driver;

impl super::Experiment for Fig3Driver {
    fn id(&self) -> &'static str {
        "f3"
    }
    fn title(&self) -> &'static str {
        "Fig. 3: CDF of outbreak durations (>= 1 day)"
    }
    fn substrate(&self) -> super::Substrate {
        super::Substrate::Beacon
    }
    fn run(&self, ctx: &super::Substrates) -> super::ExperimentOutput {
        run(ctx.beacon())
    }
}
