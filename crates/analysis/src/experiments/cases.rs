//! §5.2 case studies: the impactful Core-Backbone outbreak
//! (2a0d:3dc1:2233::/48) and the extremely long-lived HGC outbreak
//! (2a0d:3dc1:163::/48), with palm-tree root-cause inference and customer
//! cones.

use super::{BeaconBundle, ExperimentOutput};
use bgpz_core::{classify, infer_root_cause, ClassifyOptions};
use bgpz_types::{Asn, Prefix};
use serde_json::json;
use std::fmt::Write as _;

/// One analyzed case.
#[derive(Debug, Clone)]
pub struct Case {
    /// The prefix.
    pub prefix: Prefix,
    /// Distinct stuck peer routers at the 3-hour threshold.
    pub peer_routers: usize,
    /// Distinct stuck peer ASes.
    pub peer_ases: usize,
    /// Inferred root-cause AS, if any.
    pub suspect: Option<Asn>,
    /// The shared chain (branch point first, origin last).
    pub chain: Vec<Asn>,
    /// Outbreak duration in days (from the RIB dumps).
    pub duration_days: f64,
}

/// The two §5.2 prefixes plus the §5.1 resurrection prefix.
pub fn case_prefixes() -> Vec<(Prefix, &'static str, Option<Asn>)> {
    vec![
        (
            "2a0d:3dc1:2233::/48".parse().expect("static"),
            "impactful (Core-Backbone)",
            Some(Asn(33_891)),
        ),
        (
            "2a0d:3dc1:163::/48".parse().expect("static"),
            "extremely long-lived (HGC)",
            Some(Asn(9_304)),
        ),
    ]
}

/// Analyzes one prefix.
fn analyze(bundle: &BeaconBundle, prefix: Prefix) -> Option<Case> {
    let report = classify(
        &bundle.scan,
        &ClassifyOptions {
            threshold: 180 * 60,
            ..ClassifyOptions::default()
        },
    );
    let outbreak = report
        .outbreaks
        .iter()
        .filter(|o| o.interval.prefix == prefix)
        .max_by_key(|o| o.routes.len())?;
    let mut ases: Vec<Asn> = outbreak.routes.iter().map(|r| r.peer.asn).collect();
    ases.sort_unstable();
    ases.dedup();
    let cause = infer_root_cause(outbreak);
    let duration_days = bundle
        .lifespan_of(prefix)
        .map(|l| l.duration_days())
        .unwrap_or(0.0);
    Some(Case {
        prefix,
        peer_routers: outbreak.routes.len(),
        peer_ases: ases.len(),
        suspect: cause.as_ref().and_then(|c| c.suspect),
        chain: cause.map(|c| c.chain).unwrap_or_default(),
        duration_days,
    })
}

/// Runs the experiment and renders it.
pub fn run(bundle: &BeaconBundle) -> ExperimentOutput {
    let mut text = String::from("§5.2 case studies — impactful and long-lived outbreaks\n\n");
    let mut cases_json = Vec::new();
    for (prefix, label, expected) in case_prefixes() {
        match analyze(bundle, prefix) {
            Some(case) => {
                let chain = case
                    .chain
                    .iter()
                    .map(|a| a.0.to_string())
                    .collect::<Vec<_>>()
                    .join(" ");
                let cone = bundle
                    .run
                    .customer_cones
                    .iter()
                    .find(|&&(asn, _)| Some(asn) == case.suspect)
                    .map(|&(_, c)| c);
                let _ = writeln!(
                    text,
                    "{prefix} — {label}\n\
                     \x20 stuck peer routers @3h: {} across {} peer ASes\n\
                     \x20 shared chain: {chain}\n\
                     \x20 root-cause suspect: {} (expected {}) — customer cone {}\n\
                     \x20 outbreak duration: {:.1} days\n",
                    case.peer_routers,
                    case.peer_ases,
                    case.suspect.map(|a| a.to_string()).unwrap_or("none".into()),
                    expected.map(|a| a.to_string()).unwrap_or("?".into()),
                    cone.map(|c| c.to_string()).unwrap_or("?".into()),
                    case.duration_days,
                );
                cases_json.push(json!({
                    "prefix": prefix.to_string(),
                    "label": label,
                    "peer_routers": case.peer_routers,
                    "peer_ases": case.peer_ases,
                    "suspect": case.suspect.map(|a| a.0),
                    "expected_suspect": expected.map(|a| a.0),
                    "suspect_matches": case.suspect == expected,
                    "chain": case.chain.iter().map(|a| a.0).collect::<Vec<_>>(),
                    "duration_days": case.duration_days,
                    "customer_cone": cone,
                }));
            }
            None => {
                let _ = writeln!(
                    text,
                    "{prefix} — {label}: no outbreak detected in this run\n"
                );
                cases_json.push(json!({
                    "prefix": prefix.to_string(),
                    "label": label,
                    "detected": false,
                }));
            }
        }
    }
    text.push_str(
        "Paper: 2a0d:3dc1:2233::/48 stuck in 24 peer routers / 21 peer ASes\n\
         behind AS33891 (Core-Backbone, cone ≈ 2100), gone after 4 days;\n\
         2a0d:3dc1:163::/48 stuck ~4.5 months behind AS9304 (HGC, cone ≈ 750).\n",
    );
    ExperimentOutput {
        id: "cases",
        title: "§5.2 cases: impactful and extremely long-lived outbreaks".into(),
        text,
        csv: Vec::new(),
        json: json!({
            "cases": cases_json,
            "customer_cones": bundle.run.customer_cones.iter()
                .map(|&(asn, c)| json!({"asn": asn.0, "cone": c}))
                .collect::<Vec<_>>(),
        }),
    }
}

/// Registry handle: `cases`.
pub struct CasesDriver;

impl super::Experiment for CasesDriver {
    fn id(&self) -> &'static str {
        "cases"
    }
    fn title(&self) -> &'static str {
        "§5.2 cases: impactful and extremely long-lived outbreaks"
    }
    fn substrate(&self) -> super::Substrate {
        super::Substrate::Beacon
    }
    fn run(&self, ctx: &super::Substrates) -> super::ExperimentOutput {
        run(ctx.beacon())
    }
}
