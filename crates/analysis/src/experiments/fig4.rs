//! Fig. 4 — the timeline of 2a0d:3dc1:1851::/48: fully withdrawn, then
//! resurrected twice, visible for a total of ~8.5 months.

use super::{BeaconBundle, ExperimentOutput};
use bgpz_types::{Prefix, SimTime};
use serde_json::json;
use std::fmt::Write as _;

/// The reconstructed timeline.
#[derive(Debug, Clone, Default)]
pub struct Fig4 {
    /// Visibility windows (start, end) across all peers.
    pub visible: Vec<(SimTime, SimTime)>,
    /// Invisibility gaps between sightings.
    pub gaps: Vec<(SimTime, SimTime)>,
    /// Resurrection count (per-peer reappearances).
    pub resurrections: usize,
    /// Total stuck span in days (withdrawal → last sighting).
    pub total_days: f64,
}

/// The §5.1 prefix.
pub fn resurrection_prefix() -> Prefix {
    "2a0d:3dc1:1851::/48".parse().expect("static")
}

/// Computes the timeline.
pub fn compute(bundle: &BeaconBundle) -> Fig4 {
    let prefix = resurrection_prefix();
    // The paper's Fig. 4 tracks the prefix in *one* RIS peer's RIB (it
    // "appeared again in a RIPE RIS peer's RIB") — the peer behind the
    // resurrection chain. Restrict the lifespan to AS61573's router so
    // coincidental background zombies elsewhere don't mask the gaps.
    let Some(mut lifespan) = bundle.lifespan_of(prefix).cloned() else {
        return Fig4::default();
    };
    lifespan
        .spells
        .retain(|s| s.peer.asn == bgpz_types::Asn(61_573));
    lifespan
        .resurrections
        .retain(|r| r.peer.asn == bgpz_types::Asn(61_573));
    if lifespan.spells.is_empty() {
        return Fig4::default();
    }
    lifespan.first_seen = lifespan
        .spells
        .iter()
        .map(|s| s.first)
        .min()
        .expect("spells");
    lifespan.last_seen = lifespan
        .spells
        .iter()
        .map(|s| s.last)
        .max()
        .expect("spells");
    // Merge per-peer spells into global visibility windows.
    let mut gaps = Vec::new();
    // The paper's timeline starts at the withdrawal: if the zombie only
    // became visible later (its first appearance was already a
    // resurrection), that initial dark period is a gap too.
    let mut resurrections = lifespan.resurrections.len();
    if lifespan.first_seen.saturating_since(lifespan.withdrawn_at) > 24 * 3_600 {
        gaps.push((lifespan.withdrawn_at, lifespan.first_seen));
        resurrections += 1;
    }
    gaps.extend(lifespan.global_gaps());
    let mut visible = Vec::new();
    let mut cursor = lifespan.first_seen;
    for &(gap_start, gap_end) in gaps.iter().skip_while(|&&(_, e)| e <= lifespan.first_seen) {
        if gap_start > cursor {
            visible.push((cursor, gap_start));
        }
        cursor = gap_end;
    }
    visible.push((cursor, lifespan.last_seen));
    Fig4 {
        visible,
        gaps,
        resurrections,
        total_days: lifespan.duration_days(),
    }
}

/// Runs the experiment and renders it.
pub fn run(bundle: &BeaconBundle) -> ExperimentOutput {
    let fig = compute(bundle);
    let mut text =
        String::from("Fig. 4 — timeline of the resurrected zombie 2a0d:3dc1:1851::/48\n\n");
    if fig.visible.is_empty() {
        text.push_str("(prefix never stuck in this run — increase scale)\n");
    } else {
        // Merge both window kinds into one chronological timeline.
        let mut timeline: Vec<(SimTime, SimTime, bool)> = fig
            .visible
            .iter()
            .map(|&(a, b)| (a, b, true))
            .chain(fig.gaps.iter().map(|&(a, b)| (a, b, false)))
            .collect();
        timeline.sort_by_key(|&(a, _, _)| a);
        for (from, to, is_visible) in timeline {
            let label = if is_visible { "visible  " } else { "INVISIBLE" };
            let note = if is_visible {
                ""
            } else {
                "  ← withdrawn by all peers"
            };
            let _ = writeln!(
                text,
                "  {label} {} → {}  ({:.1} days){note}",
                from,
                to,
                (to.secs() as f64 - from.secs() as f64) / 86_400.0
            );
        }
        let _ = writeln!(
            text,
            "\nTotal stuck span: {:.1} days; resurrections: {}\n\
             (paper: ~8.5 months total, reappearing 2024-06-29 and 2024-11-29\n\
             with no new beacon announcement)",
            fig.total_days, fig.resurrections
        );
    }
    ExperimentOutput {
        id: "f4",
        title: "Fig. 4: the twice-resurrected zombie timeline".into(),
        text,
        csv: vec![("fig4_timeline.csv".into(), {
            let mut csv = String::from("kind,from,to\n");
            for &(a, b) in &fig.visible {
                let _ = writeln!(csv, "visible,{},{}", a.secs(), b.secs());
            }
            for &(a, b) in &fig.gaps {
                let _ = writeln!(csv, "gap,{},{}", a.secs(), b.secs());
            }
            csv
        })],
        json: json!({
            "visible": fig.visible.iter().map(|&(a, b)| json!([a.secs(), b.secs()])).collect::<Vec<_>>(),
            "gaps": fig.gaps.iter().map(|&(a, b)| json!([a.secs(), b.secs()])).collect::<Vec<_>>(),
            "resurrections": fig.resurrections,
            "total_days": fig.total_days,
            "paper": {"total_days": 259, "gaps": 2},
        }),
    }
}

/// Registry handle: `f4`.
pub struct Fig4Driver;

impl super::Experiment for Fig4Driver {
    fn id(&self) -> &'static str {
        "f4"
    }
    fn title(&self) -> &'static str {
        "Fig. 4: the twice-resurrected zombie timeline"
    }
    fn substrate(&self) -> super::Substrate {
        super::Substrate::Beacon
    }
    fn run(&self, ctx: &super::Substrates) -> super::ExperimentOutput {
        run(ctx.beacon())
    }
}
