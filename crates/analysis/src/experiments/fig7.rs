//! Fig. 7 — CDF of the number of concurrent zombie outbreaks: for every
//! outbreak, how many outbreaks of the same family started in the same
//! beacon round. Frozen transit sessions affect *all* beacons at once, so
//! a sizeable share of outbreaks emerge simultaneously for every prefix.

use super::{pct, ExperimentOutput, ReplicationBundle};
use crate::render::{AsciiSeries, TextTable};
use crate::stats::Ecdf;
use bgpz_core::{classify, ClassifyOptions, ZombieReport};
use bgpz_types::{Afi, SimTime};
use serde_json::json;
use std::collections::HashMap;

/// Concurrency samples per (family, filter).
#[derive(Debug, Clone, Default)]
pub struct Fig7 {
    /// (family, filtered?, concurrency counts per outbreak).
    pub cells: Vec<(String, bool, Vec<usize>)>,
    /// Beacons per family (the concurrency ceiling).
    pub beacons: (usize, usize),
}

/// Concurrency of each outbreak: outbreaks sharing its interval start and
/// family.
fn concurrency(report: &ZombieReport, family: Afi) -> Vec<usize> {
    let mut per_round: HashMap<SimTime, usize> = HashMap::new();
    for outbreak in &report.outbreaks {
        if outbreak.interval.prefix.afi() == family {
            *per_round.entry(outbreak.interval.start).or_insert(0) += 1;
        }
    }
    report
        .outbreaks
        .iter()
        .filter(|o| o.interval.prefix.afi() == family)
        .map(|o| per_round[&o.interval.start])
        .collect()
}

/// Computes the concurrency samples (noisy peer excluded).
pub fn compute(bundle: &ReplicationBundle) -> Fig7 {
    let mut fig = Fig7::default();
    let mut beacons_v4 = std::collections::HashSet::new();
    let mut beacons_v6 = std::collections::HashSet::new();
    for (_, scan) in &bundle.runs {
        for iv in &scan.intervals {
            match iv.prefix.afi() {
                Afi::Ipv4 => beacons_v4.insert(iv.prefix),
                Afi::Ipv6 => beacons_v6.insert(iv.prefix),
            };
        }
    }
    fig.beacons = (beacons_v4.len(), beacons_v6.len());
    for (family, label) in [(Afi::Ipv4, "IPv4"), (Afi::Ipv6, "IPv6")] {
        for filter in [false, true] {
            let mut samples = Vec::new();
            for (run, scan) in &bundle.runs {
                let report = classify(
                    scan,
                    &ClassifyOptions {
                        aggregator_filter: filter,
                        excluded_peers: vec![run.noisy_peer],
                        ..ClassifyOptions::default()
                    },
                );
                samples.extend(concurrency(&report, family));
            }
            fig.cells.push((label.to_string(), filter, samples));
        }
    }
    fig
}

/// Runs the experiment and renders it.
pub fn run(bundle: &ReplicationBundle) -> ExperimentOutput {
    let fig = compute(bundle);
    let mut summary = TextTable::new(["Cell", "outbreaks", "single", "all-at-once"]);
    let mut series = Vec::new();
    for (label, filtered, samples) in &fig.cells {
        let name = format!("{label} {}", if *filtered { "noDC" } else { "withDC" });
        let ceiling = match label.as_str() {
            "IPv4" => fig.beacons.0,
            _ => fig.beacons.1,
        };
        let total = samples.len().max(1);
        let single = samples.iter().filter(|&&c| c == 1).count();
        let all = samples.iter().filter(|&&c| c >= ceiling.max(1)).count();
        summary.row([
            name.clone(),
            samples.len().to_string(),
            pct(single as f64 / total as f64),
            pct(all as f64 / total as f64),
        ]);
        let cdf = Ecdf::from_counts(samples.iter().copied());
        series.push(AsciiSeries::new(name, cdf.points()));
    }
    let chart = AsciiSeries::chart(&series, 60, 12);
    let text = format!(
        "Fig. 7 — CDF of concurrent zombie outbreaks\n\n{}\n{}\n\
         Paper: 22.35% of IPv4 / 34.04% of IPv6 outbreaks occur singly\n\
         (26.38% / 37.97% after filtering); ~27% of IPv4 outbreaks emerge\n\
         simultaneously for ALL beacon prefixes. Shape to hold: a bimodal\n\
         mix of single outbreaks and all-at-once bursts.\n",
        summary.render(),
        chart,
    );
    ExperimentOutput {
        id: "f7",
        title: "Fig. 7: concurrent zombie outbreaks CDF".into(),
        text,
        csv: vec![
            ("fig7.csv".into(), summary.to_csv()),
            ("fig7_series.csv".into(), AsciiSeries::to_csv(&series)),
        ],
        json: json!({
            "cells": fig.cells.iter().map(|(label, filtered, samples)| {
                let total = samples.len().max(1);
                let single = samples.iter().filter(|&&c| c == 1).count();
                json!({
                    "family": label,
                    "filtered": filtered,
                    "outbreaks": samples.len(),
                    "single_fraction": single as f64 / total as f64,
                })
            }).collect::<Vec<_>>(),
            "paper": {"v4_single_with": 0.2235, "v6_single_with": 0.3404,
                       "v4_single_without": 0.2638, "v6_single_without": 0.3797,
                       "v4_all_at_once": 0.2696},
        }),
    }
}

/// Registry handle: `f7`.
pub struct Fig7Driver;

impl super::Experiment for Fig7Driver {
    fn id(&self) -> &'static str {
        "f7"
    }
    fn title(&self) -> &'static str {
        "Fig. 7: concurrent zombie outbreaks CDF"
    }
    fn substrate(&self) -> super::Substrate {
        super::Substrate::Replication
    }
    fn run(&self, ctx: &super::Substrates) -> super::ExperimentOutput {
        run(ctx.replication())
    }
}
