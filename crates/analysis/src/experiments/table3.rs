//! Table 3 — zombie routes/outbreaks each methodology misses, per family.

use super::{ExperimentOutput, ReplicationBundle};
use crate::render::TextTable;
use bgpz_baseline::{classify_baseline, diff_reports, LookingGlassConfig, MethodologyDiff};
use bgpz_core::{classify, ClassifyOptions};
use bgpz_types::Afi;
use serde_json::json;

/// Per-family totals across the three periods.
#[derive(Debug, Clone, Default)]
pub struct Table3 {
    /// IPv4 diff.
    pub v4: MethodologyDiff,
    /// IPv6 diff.
    pub v6: MethodologyDiff,
}

/// Computes Table 3: both methodologies run *without* the Aggregator
/// filter (the paper compares raw detections, noisy peer included on our
/// side — the missing-zombies table in §B.1 counts "including the ones
/// from the noisy peer").
pub fn compute(bundle: &ReplicationBundle) -> Table3 {
    let mut out = Table3::default();
    for (run, scan) in &bundle.runs {
        // Split the scan's intervals by family via per-family reports.
        for (family, slot) in [(Afi::Ipv4, 0), (Afi::Ipv6, 1)] {
            let ours_all = classify(
                scan,
                &ClassifyOptions {
                    aggregator_filter: false,
                    ..ClassifyOptions::default()
                },
            );
            let theirs_all = classify_baseline(
                scan,
                &LookingGlassConfig {
                    excluded_peers: vec![run.noisy_peer],
                    ..LookingGlassConfig::default()
                },
            );
            // Restrict both reports to the family.
            let filter = |report: &bgpz_core::ZombieReport| {
                let mut filtered = report.clone();
                filtered
                    .outbreaks
                    .retain(|o| o.interval.prefix.afi() == family);
                filtered
            };
            let ours = filter(&ours_all);
            let theirs = filter(&theirs_all);
            let diff = diff_reports(&ours, &theirs);
            let target = if slot == 0 { &mut out.v4 } else { &mut out.v6 };
            target.routes_missed_by_baseline += diff.routes_missed_by_baseline;
            target.routes_missed_by_ours += diff.routes_missed_by_ours;
            target.outbreaks_missed_by_baseline += diff.outbreaks_missed_by_baseline;
            target.outbreaks_missed_by_ours += diff.outbreaks_missed_by_ours;
        }
    }
    out
}

/// Runs the experiment and renders it.
pub fn run(bundle: &ReplicationBundle) -> ExperimentOutput {
    let table = compute(bundle);
    let mut text_table = TextTable::new(["Side", "Missing", "IPv4", "IPv6"]);
    text_table.row([
        "Study (baseline)".to_string(),
        "zombie routes".to_string(),
        table.v4.routes_missed_by_baseline.to_string(),
        table.v6.routes_missed_by_baseline.to_string(),
    ]);
    text_table.row([
        "Study (baseline)".to_string(),
        "zombie outbreaks".to_string(),
        table.v4.outbreaks_missed_by_baseline.to_string(),
        table.v6.outbreaks_missed_by_baseline.to_string(),
    ]);
    text_table.row([
        "Our results".to_string(),
        "zombie routes".to_string(),
        table.v4.routes_missed_by_ours.to_string(),
        table.v6.routes_missed_by_ours.to_string(),
    ]);
    text_table.row([
        "Our results".to_string(),
        "zombie outbreaks".to_string(),
        table.v4.outbreaks_missed_by_ours.to_string(),
        table.v6.outbreaks_missed_by_ours.to_string(),
    ]);
    let both_directions = table.v4.routes_missed_by_baseline + table.v6.routes_missed_by_baseline
        > 0
        && table.v4.routes_missed_by_ours + table.v6.routes_missed_by_ours > 0;
    let text = format!(
        "Table 3 — zombies missed by each methodology (both run without the\n\
         Aggregator filter; our side includes the noisy peer, as in §B.1)\n\n{}\n\
         Each side misses zombies the other reports: {}\n\
         (the paper finds the same surprising bidirectionality)\n",
        text_table.render(),
        if both_directions { "YES" } else { "no" },
    );
    let diff_json = |d: &MethodologyDiff| {
        json!({
            "routes_missed_by_baseline": d.routes_missed_by_baseline,
            "routes_missed_by_ours": d.routes_missed_by_ours,
            "outbreaks_missed_by_baseline": d.outbreaks_missed_by_baseline,
            "outbreaks_missed_by_ours": d.outbreaks_missed_by_ours,
        })
    };
    ExperimentOutput {
        id: "t3",
        title: "Table 3: zombies missed by each methodology".into(),
        text,
        csv: vec![("table3.csv".into(), text_table.to_csv())],
        json: json!({
            "v4": diff_json(&table.v4),
            "v6": diff_json(&table.v6),
            "bidirectional": both_directions,
        }),
    }
}

/// Registry handle: `t3`.
pub struct Table3Driver;

impl super::Experiment for Table3Driver {
    fn id(&self) -> &'static str {
        "t3"
    }
    fn title(&self) -> &'static str {
        "Table 3: zombies missed by each methodology"
    }
    fn substrate(&self) -> super::Substrate {
        super::Substrate::Replication
    }
    fn run(&self, ctx: &super::Substrates) -> super::ExperimentOutput {
        run(ctx.replication())
    }
}
