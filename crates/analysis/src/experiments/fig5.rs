//! Fig. 5 — CDF of the zombie emergence rate: the likelihood of each
//! `<beacon, peer AS>` pair to have a zombie route, per family, with and
//! without double counting.

use super::{pct, ExperimentOutput, ReplicationBundle};
use crate::render::{AsciiSeries, TextTable};
use crate::stats::Ecdf;
use bgpz_core::{classify, pair_likelihoods, ClassifyOptions};
use bgpz_types::Afi;
use serde_json::json;

/// The four sample sets (family × filter).
#[derive(Debug, Clone, Default)]
pub struct Fig5 {
    /// IPv4 likelihoods, with double counting.
    pub v4_with: Vec<f64>,
    /// IPv6 likelihoods, with double counting.
    pub v6_with: Vec<f64>,
    /// IPv4 likelihoods, without.
    pub v4_without: Vec<f64>,
    /// IPv6 likelihoods, without.
    pub v6_without: Vec<f64>,
}

/// Computes the emergence-rate samples (noisy peer excluded, as in the
/// paper's post-§3.2 analyses).
pub fn compute(bundle: &ReplicationBundle) -> Fig5 {
    let mut fig = Fig5::default();
    for (run, scan) in &bundle.runs {
        for filter in [false, true] {
            let report = classify(
                scan,
                &ClassifyOptions {
                    aggregator_filter: filter,
                    excluded_peers: vec![run.noisy_peer],
                    ..ClassifyOptions::default()
                },
            );
            for pair in pair_likelihoods(scan, &report) {
                if pair.peer.addr == run.noisy_peer {
                    continue;
                }
                let bucket = match (pair.prefix.afi(), filter) {
                    (Afi::Ipv4, false) => &mut fig.v4_with,
                    (Afi::Ipv6, false) => &mut fig.v6_with,
                    (Afi::Ipv4, true) => &mut fig.v4_without,
                    (Afi::Ipv6, true) => &mut fig.v6_without,
                };
                bucket.push(pair.likelihood);
            }
        }
    }
    fig
}

/// Runs the experiment and renders it.
pub fn run(bundle: &ReplicationBundle) -> ExperimentOutput {
    let fig = compute(bundle);
    let cdfs = [
        ("IPv4 withDC", Ecdf::new(fig.v4_with.iter().copied())),
        ("IPv6 withDC", Ecdf::new(fig.v6_with.iter().copied())),
        ("IPv4 noDC", Ecdf::new(fig.v4_without.iter().copied())),
        ("IPv6 noDC", Ecdf::new(fig.v6_without.iter().copied())),
    ];
    let mut summary = TextTable::new(["Series", "pairs", "zero-rate", "median", "mean"]);
    for (name, cdf) in &cdfs {
        summary.row([
            name.to_string(),
            cdf.len().to_string(),
            pct(cdf.fraction_zero()),
            format!("{:.4}", cdf.median().unwrap_or(0.0)),
            format!("{:.4}", cdf.mean().unwrap_or(0.0)),
        ]);
    }
    let series: Vec<AsciiSeries> = cdfs
        .iter()
        .map(|(name, cdf)| AsciiSeries::new(*name, cdf.points()))
        .collect();
    let chart = AsciiSeries::chart(&series, 60, 14);
    // Combined no-zombie fraction across families, with DC (paper: 18.76%).
    let combined_with = Ecdf::new(fig.v4_with.iter().chain(fig.v6_with.iter()).copied());
    let text = format!(
        "Fig. 5 — CDF of the zombie emergence rate per <beacon, peer AS>\n\n{}\n{}\n\
         Pairs with no zombie at all (withDC, both families): {} (paper: 18.76%).\n\
         Shape to hold: most pairs near zero, IPv6 above IPv4, and the noDC\n\
         curves shifted left of the withDC ones.\n",
        summary.render(),
        chart,
        pct(combined_with.fraction_zero()),
    );
    ExperimentOutput {
        id: "f5",
        title: "Fig. 5: zombie emergence rate CDF".into(),
        text,
        csv: vec![("fig5_series.csv".into(), AsciiSeries::to_csv(&series))],
        json: json!({
            "zero_rate_with_dc": combined_with.fraction_zero(),
            "medians": {
                "v4_with": Ecdf::new(fig.v4_with.iter().copied()).median(),
                "v6_with": Ecdf::new(fig.v6_with.iter().copied()).median(),
                "v4_without": Ecdf::new(fig.v4_without.iter().copied()).median(),
                "v6_without": Ecdf::new(fig.v6_without.iter().copied()).median(),
            },
            "means": {
                "v4_with": Ecdf::new(fig.v4_with.iter().copied()).mean(),
                "v6_with": Ecdf::new(fig.v6_with.iter().copied()).mean(),
                "v4_without": Ecdf::new(fig.v4_without.iter().copied()).mean(),
                "v6_without": Ecdf::new(fig.v6_without.iter().copied()).mean(),
            },
            "paper": {"zero_rate": 0.1876, "v4_mean_with": 0.0088, "v6_mean_with": 0.0182,
                       "v4_mean_without": 0.0054, "v6_mean_without": 0.0158},
        }),
    }
}

/// Registry handle: `f5`.
pub struct Fig5Driver;

impl super::Experiment for Fig5Driver {
    fn id(&self) -> &'static str {
        "f5"
    }
    fn title(&self) -> &'static str {
        "Fig. 5: zombie emergence rate CDF"
    }
    fn substrate(&self) -> super::Substrate {
        super::Substrate::Replication
    }
    fn run(&self, ctx: &super::Substrates) -> super::ExperimentOutput {
        run(ctx.replication())
    }
}
