//! Table 4 — the noisy peer AS16347: mean and median likelihood of a
//! `<beacon, AS16347>` pair having a zombie route, per family, with and
//! without the double-counting filter.

use super::{ExperimentOutput, ReplicationBundle};
use crate::render::TextTable;
use crate::stats;
use bgpz_core::{classify, pair_likelihoods, ClassifyOptions};
use bgpz_types::Afi;
use serde_json::json;

/// The four (family × filter) statistics cells.
#[derive(Debug, Clone, Default)]
pub struct Table4 {
    /// (mean, median) IPv4 with double counting.
    pub v4_with: (f64, f64),
    /// (mean, median) IPv6 with double counting.
    pub v6_with: (f64, f64),
    /// (mean, median) IPv4 without double counting.
    pub v4_without: (f64, f64),
    /// (mean, median) IPv6 without double counting.
    pub v6_without: (f64, f64),
}

/// Computes the likelihood stats of the noisy peer across all periods.
pub fn compute(bundle: &ReplicationBundle) -> Table4 {
    let mut cells = Table4::default();
    for (dc, slots) in [(false, [0, 1]), (true, [2, 3])] {
        let mut v4 = Vec::new();
        let mut v6 = Vec::new();
        for (run, scan) in &bundle.runs {
            let report = classify(
                scan,
                &ClassifyOptions {
                    aggregator_filter: dc,
                    ..ClassifyOptions::default()
                },
            );
            for pair in pair_likelihoods(scan, &report) {
                if pair.peer.addr != run.noisy_peer {
                    continue;
                }
                match pair.prefix.afi() {
                    Afi::Ipv4 => v4.push(pair.likelihood),
                    Afi::Ipv6 => v6.push(pair.likelihood),
                }
            }
        }
        let cell = |vals: &[f64]| {
            (
                stats::mean(vals).unwrap_or(0.0),
                stats::median(vals).unwrap_or(0.0),
            )
        };
        // slots[0] = v4 target, slots[1] = v6 target; dc=false is the
        // "with double counting" column (no filter applied).
        let (v4_cell, v6_cell) = (cell(&v4), cell(&v6));
        if slots[0] == 0 {
            cells.v4_with = v4_cell;
            cells.v6_with = v6_cell;
        } else {
            cells.v4_without = v4_cell;
            cells.v6_without = v6_cell;
        }
    }
    cells
}

/// Runs the experiment and renders it.
pub fn run(bundle: &ReplicationBundle) -> ExperimentOutput {
    let table = compute(bundle);
    let mut text_table = TextTable::new([
        "Stat",
        "withDC IPv4",
        "withDC IPv6",
        "noDC IPv4",
        "noDC IPv6",
    ]);
    text_table.row([
        "mean".to_string(),
        format!("{:.4}", table.v4_with.0),
        format!("{:.4}", table.v6_with.0),
        format!("{:.4}", table.v4_without.0),
        format!("{:.4}", table.v6_without.0),
    ]);
    text_table.row([
        "median".to_string(),
        format!("{:.4}", table.v4_with.1),
        format!("{:.4}", table.v6_with.1),
        format!("{:.4}", table.v4_without.1),
        format!("{:.4}", table.v6_without.1),
    ]);
    let text = format!(
        "Table 4 — <beacon, AS16347> zombie likelihood (noisy peer)\n\n{}\n\
         Paper values: mean 0.044/0.4284 (withDC v4/v6), 0.0018/0.426 (noDC).\n\
         Shape to hold: IPv6 likelihood HIGH and insensitive to the filter\n\
         (fresh stickiness), IPv4 likelihood collapsing once duplicates of a\n\
         single long-stuck route are filtered.\n",
        text_table.render(),
    );
    ExperimentOutput {
        id: "t4",
        title: "Table 4: noisy peer AS16347 zombie likelihood".into(),
        text,
        csv: vec![("table4.csv".into(), text_table.to_csv())],
        json: json!({
            "with_dc":    {"v4": {"mean": table.v4_with.0,    "median": table.v4_with.1},
                           "v6": {"mean": table.v6_with.0,    "median": table.v6_with.1}},
            "without_dc": {"v4": {"mean": table.v4_without.0, "median": table.v4_without.1},
                           "v6": {"mean": table.v6_without.0, "median": table.v6_without.1}},
            "paper": {"with_dc": {"v4_mean": 0.044, "v6_mean": 0.4284},
                      "without_dc": {"v4_mean": 0.0018, "v6_mean": 0.426}},
        }),
    }
}

/// Registry handle: `t4`.
pub struct Table4Driver;

impl super::Experiment for Table4Driver {
    fn id(&self) -> &'static str {
        "t4"
    }
    fn title(&self) -> &'static str {
        "Table 4: noisy peer AS16347 zombie likelihood"
    }
    fn substrate(&self) -> super::Substrate {
        super::Substrate::Replication
    }
    fn run(&self, ctx: &super::Substrates) -> super::ExperimentOutput {
        run(ctx.replication())
    }
}
