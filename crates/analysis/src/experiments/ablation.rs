//! Ablation study: how much each piece of the revised methodology
//! matters. The paper argues for three revisions over the 2019 study —
//! message-granular raw data with STATE handling, the Aggregator
//! double-count filter, and noisy-peer exclusion. This experiment knocks
//! each one out in turn and measures the damage, plus the looking-glass
//! baseline as the "none of the above" endpoint.

use super::{pct, ExperimentOutput, ReplicationBundle};
use crate::render::TextTable;
use bgpz_baseline::{classify_baseline, LookingGlassConfig};
use bgpz_core::{classify, ClassifyOptions};
use serde_json::json;

/// One ablation row.
#[derive(Debug, Clone)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Outbreaks found.
    pub outbreaks: usize,
    /// Zombie routes found.
    pub routes: usize,
    /// Relative to the full methodology (1.0 = identical counts).
    pub outbreak_ratio: f64,
}

/// Computes the ablation table across all periods.
pub fn compute(bundle: &ReplicationBundle) -> Vec<AblationRow> {
    let mut variants: Vec<(String, usize, usize)> = vec![
        ("full methodology".into(), 0, 0),
        ("without Aggregator filter".into(), 0, 0),
        ("without noisy-peer exclusion".into(), 0, 0),
        ("without STATE handling".into(), 0, 0),
        ("2019 looking-glass baseline".into(), 0, 0),
    ];
    for (run, scan) in &bundle.runs {
        let excluded = vec![run.noisy_peer];
        let configs = [
            ClassifyOptions {
                excluded_peers: excluded.clone(),
                ..ClassifyOptions::default()
            },
            ClassifyOptions {
                aggregator_filter: false,
                excluded_peers: excluded.clone(),
                ..ClassifyOptions::default()
            },
            ClassifyOptions::default(),
            ClassifyOptions {
                honor_state_messages: false,
                excluded_peers: excluded.clone(),
                ..ClassifyOptions::default()
            },
        ];
        for (slot, options) in configs.iter().enumerate() {
            let report = classify(scan, options);
            if let Some(v) = variants.get_mut(slot) {
                v.1 += report.outbreak_count();
                v.2 += report.route_count();
            }
        }
        let baseline = classify_baseline(
            scan,
            &LookingGlassConfig {
                excluded_peers: excluded,
                ..LookingGlassConfig::default()
            },
        );
        if let Some(v) = variants.get_mut(4) {
            v.1 += baseline.outbreak_count();
            v.2 += baseline.route_count();
        }
    }
    let reference = variants.first().map_or(1, |v| v.1.max(1)) as f64;
    variants
        .into_iter()
        .map(|(variant, outbreaks, routes)| AblationRow {
            variant,
            outbreaks,
            routes,
            outbreak_ratio: outbreaks as f64 / reference,
        })
        .collect()
}

/// Runs the experiment and renders it.
pub fn run(bundle: &ReplicationBundle) -> ExperimentOutput {
    let rows = compute(bundle);
    let mut table = TextTable::new(["Variant", "outbreaks", "routes", "vs full"]);
    for row in &rows {
        table.row([
            row.variant.clone(),
            row.outbreaks.to_string(),
            row.routes.to_string(),
            format!("{:+}", pct(row.outbreak_ratio - 1.0)),
        ]);
    }
    let text = format!(
        "Ablation — each methodology revision knocked out in turn\n\n{}\n\
         Reading: dropping the Aggregator filter re-introduces the double\n\
         counting (more outbreaks); dropping the noisy-peer exclusion lets\n\
         one broken peer dominate; dropping STATE handling turns every\n\
         route pending at a collector-session drop into a false zombie;\n\
         the looking-glass baseline compounds its own error classes.\n",
        table.render(),
    );
    ExperimentOutput {
        id: "ablation",
        title: "Ablation: the value of each methodology revision".into(),
        text,
        csv: vec![("ablation.csv".into(), table.to_csv())],
        json: json!({
            "rows": rows.iter().map(|r| json!({
                "variant": r.variant,
                "outbreaks": r.outbreaks,
                "routes": r.routes,
                "outbreak_ratio": r.outbreak_ratio,
            })).collect::<Vec<_>>(),
        }),
    }
}

/// Registry handle: `ablation`.
pub struct AblationDriver;

impl super::Experiment for AblationDriver {
    fn id(&self) -> &'static str {
        "ablation"
    }
    fn title(&self) -> &'static str {
        "Ablation: the value of each methodology revision"
    }
    fn substrate(&self) -> super::Substrate {
        super::Substrate::Replication
    }
    fn run(&self, ctx: &super::Substrates) -> super::ExperimentOutput {
        run(ctx.replication())
    }
}
