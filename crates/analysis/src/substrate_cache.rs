//! Content-addressed cache of the simulated substrates.
//!
//! Both worlds are deterministic in `(scale, seed)`, so their outputs —
//! the MRT archive bytes, the beacon schedule, the ground-truth side
//! channels, and the archive's frame index — are pure functions of a
//! handful of parameters. This module gives those functions an on-disk
//! memo: [`SubstrateCache`] keys a [`bgpz_cache::CacheStore`] entry on
//! the full parameter set (plus [`SUBSTRATE_SCHEMA_VERSION`]) and stores
//! the run *as MRT bytes* — the archive's native representation, sliced
//! back out zero-copy on load — alongside the serialized
//! [`FrameIndex`] metadata, so a warm run skips both the simulation and
//! the framing pass.
//!
//! Every failure mode (missing entry, corrupt file, stale schema,
//! undecodable payload) degrades to a miss: the caller recomputes and
//! overwrites. Nothing here can fail a run.

use crate::worlds::{BeaconRun, ReplicationPeriod, ReplicationRun, Scale};
use bgpz_beacon::{BeaconEvent, BeaconEventKind, BeaconSchedule};
use bgpz_cache::{
    fnv1a64, CacheKey, CacheStore, CodecError, CodecResult, KeyBuilder, Reader, Writer,
};
use bgpz_core::scan::Observation;
use bgpz_core::{BeaconInterval, PeerId, ScanResult};
use bgpz_mrt::{FrameIndex, MrtReadStats};
use bgpz_ris::{Collector, FreezeWindow, RisArchive, RisConfig, RisPeerSpec, RisStats};
use bgpz_types::attrs::Aggregator;
use bgpz_types::{Afi, AsPath, Asn, Prefix, SimTime};
use bytes::Bytes;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Version of the substrate payload encoding *and* of the simulated
/// worlds' parameter surface. Bump on any change to the encoders below,
/// to the world builders' outputs, or to the [`Scale`] fields — old
/// entries then simply never match and age out.
pub const SUBSTRATE_SCHEMA_VERSION: u32 = 1;

/// Observability target for substrate-level cache events.
const TARGET: &str = "analysis::substrate_cache";

/// The on-disk substrate memo. Cheap to construct; directories and
/// entries are created lazily on first store.
#[derive(Debug, Clone)]
pub struct SubstrateCache {
    store: CacheStore,
}

impl SubstrateCache {
    /// A cache rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> SubstrateCache {
        SubstrateCache {
            store: CacheStore::new(dir),
        }
    }

    /// Resolves the cache location from an explicit flag value (e.g.
    /// `--cache-dir`) falling back to the `BGPZ_CACHE` environment
    /// variable. `None` (or an empty value) means caching is disabled.
    pub fn resolve(flag: Option<&str>) -> Option<SubstrateCache> {
        let dir = match flag {
            Some(value) => value.to_string(),
            None => std::env::var("BGPZ_CACHE").ok()?,
        };
        if dir.is_empty() {
            return None;
        }
        Some(SubstrateCache::new(dir))
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        self.store.dir()
    }

    /// The content key of one replication period's run.
    fn replication_key(scale: &Scale, seed: u64, period: &ReplicationPeriod) -> CacheKey {
        Self::scale_key(scale, seed)
            .str("kind", "replication")
            .str("period", period.name)
            .u64("period_start", period.start.secs())
            .u64("period_end", period.end.secs())
            .u64("paper_days", period.paper_days)
            .finish()
    }

    /// The content key of the beacon-study run.
    fn beacon_key(scale: &Scale, seed: u64) -> CacheKey {
        Self::scale_key(scale, seed).str("kind", "beacon").finish()
    }

    fn scale_key(scale: &Scale, seed: u64) -> KeyBuilder {
        KeyBuilder::new(SUBSTRATE_SCHEMA_VERSION)
            .str("scale", scale.name)
            .f64("day_fraction", scale.day_fraction)
            .u64("stubs", scale.stubs as u64)
            .u64("tier2", scale.tier2 as u64)
            .u64("ris_peers", scale.ris_peers as u64)
            .u64("seed", seed)
    }

    /// Loads one replication period's run and its archive frame index.
    /// Any failure — absent entry, corruption, undecodable payload — is
    /// `None`: recompute and [`store_replication`](Self::store_replication).
    pub fn load_replication(
        &self,
        scale: &Scale,
        seed: u64,
        period: &ReplicationPeriod,
    ) -> Option<(ReplicationRun, FrameIndex)> {
        let key = Self::replication_key(scale, seed, period);
        let payload = self.store.load(&key)?;
        match decode_replication(payload, period) {
            Ok(hit) => Some(hit),
            Err(why) => {
                decode_failure("replication", period.name, why);
                None
            }
        }
    }

    /// Stores one replication period's run and its archive frame index.
    pub fn store_replication(
        &self,
        scale: &Scale,
        seed: u64,
        period: &ReplicationPeriod,
        run: &ReplicationRun,
        index: &FrameIndex,
    ) -> bool {
        let key = Self::replication_key(scale, seed, period);
        self.store.store(&key, &encode_replication(run, index))
    }

    /// Loads the beacon-study run and its archive frame index.
    pub fn load_beacon(&self, scale: &Scale, seed: u64) -> Option<(BeaconRun, FrameIndex)> {
        let key = Self::beacon_key(scale, seed);
        let payload = self.store.load(&key)?;
        match decode_beacon(payload) {
            Ok(hit) => Some(hit),
            Err(why) => {
                decode_failure("beacon", "study", why);
                None
            }
        }
    }

    /// Stores the beacon-study run and its archive frame index.
    pub fn store_beacon(
        &self,
        scale: &Scale,
        seed: u64,
        run: &BeaconRun,
        index: &FrameIndex,
    ) -> bool {
        let key = Self::beacon_key(scale, seed);
        self.store.store(&key, &encode_beacon(run, index))
    }

    /// The content key of one interval scan over an archive: the archive
    /// *bytes* (digest and length), the interval set, and the scan
    /// window. Deliberately **not** keyed on the worker count —
    /// [`bgpz_core::scan_indexed`] is byte-identical at every `jobs`, so
    /// one entry serves them all.
    fn scan_key(
        archive: &Bytes,
        intervals: &[BeaconInterval],
        window_after_withdraw: u64,
    ) -> CacheKey {
        let mut iw = Writer::new();
        for interval in intervals {
            encode_interval(&mut iw, interval);
        }
        KeyBuilder::new(SUBSTRATE_SCHEMA_VERSION)
            .str("kind", "scan")
            .u64("archive_fnv", fnv1a64(archive))
            .u64("archive_len", archive.len() as u64)
            .u64("intervals_fnv", fnv1a64(iw.as_slice()))
            .u64("intervals", intervals.len() as u64)
            .u64("window", window_after_withdraw)
            .finish()
    }

    /// Loads a cached interval scan of `archive` against `intervals`.
    /// A hit replays the scan's aggregate metrics
    /// ([`bgpz_core::record_scan_metrics`]) so cold and warm runs expose
    /// the same `mrt::read` / `core::scan` series.
    pub fn load_scan(
        &self,
        archive: &Bytes,
        intervals: &[BeaconInterval],
        window_after_withdraw: u64,
    ) -> Option<ScanResult> {
        let _span = bgpz_obs::span(TARGET, "scan_lookup");
        let key = Self::scan_key(archive, intervals, window_after_withdraw);
        let Some(payload) = self.store.load(&key) else {
            bgpz_obs::metrics::counter(TARGET, "scan_misses", 1);
            return None;
        };
        match decode_scan(payload) {
            Ok(result) => {
                bgpz_obs::metrics::counter(TARGET, "scan_hits", 1);
                bgpz_core::record_scan_metrics(&result);
                // Replay the scan's span tally as well: `metrics.json`
                // must be identical modulo the cache's own section
                // whether the scan ran or was served from cache.
                bgpz_obs::metrics::global().record_span("core::scan", "scan_sharded", 0.0);
                Some(result)
            }
            Err(why) => {
                bgpz_obs::metrics::counter(TARGET, "scan_misses", 1);
                decode_failure("scan", "interval-scan", why);
                None
            }
        }
    }

    /// Stores one interval-scan result under the archive/interval/window
    /// key of [`load_scan`](Self::load_scan).
    pub fn store_scan(
        &self,
        archive: &Bytes,
        intervals: &[BeaconInterval],
        window_after_withdraw: u64,
        result: &ScanResult,
    ) -> bool {
        let key = Self::scan_key(archive, intervals, window_after_withdraw);
        self.store.store(&key, &encode_scan_result(result))
    }
}

/// A verified entry whose payload would not decode: possible only under
/// an encoder bug or schema drift without a version bump. Count it,
/// warn, and fall back to recomputation.
fn decode_failure(kind: &str, which: &str, why: DecodeFailure) {
    bgpz_obs::metrics::counter(TARGET, "decode_failures", 1);
    bgpz_obs::warn!(
        target: TARGET,
        "cached {kind} substrate {which:?} failed to decode ({why}); recomputing"
    );
}

/// Why a verified payload was rejected.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DecodeFailure {
    /// The payload codec hit a malformed field.
    Codec(CodecError),
    /// The embedded frame-index metadata disagreed with the archive.
    Index(bgpz_mrt::IndexMetaError),
}

impl std::fmt::Display for DecodeFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeFailure::Codec(e) => write!(f, "payload: {e}"),
            DecodeFailure::Index(e) => write!(f, "frame index: {e}"),
        }
    }
}

impl From<CodecError> for DecodeFailure {
    fn from(e: CodecError) -> DecodeFailure {
        DecodeFailure::Codec(e)
    }
}

impl From<bgpz_mrt::IndexMetaError> for DecodeFailure {
    fn from(e: bgpz_mrt::IndexMetaError) -> DecodeFailure {
        DecodeFailure::Index(e)
    }
}

// ---------------------------------------------------------------------
// Payload encoding
// ---------------------------------------------------------------------

fn encode_replication(run: &ReplicationRun, index: &FrameIndex) -> Vec<u8> {
    let mut w = Writer::new();
    encode_archive(&mut w, &run.archive);
    encode_schedule(&mut w, &run.schedule);
    w.ip(run.noisy_peer);
    w.bytes(&index.serialize_meta());
    w.into_vec()
}

/// Decodes a replication entry. The period is part of the cache key, not
/// the payload (its name is a `&'static str` label), so the caller's
/// period is copied back into the run.
fn decode_replication(
    payload: Bytes,
    period: &ReplicationPeriod,
) -> Result<(ReplicationRun, FrameIndex), DecodeFailure> {
    let mut r = Reader::new(payload);
    let archive = decode_archive(&mut r)?;
    let schedule = decode_schedule(&mut r)?;
    let noisy_peer = r.ip()?;
    let index_meta = r.take_bytes()?;
    r.finish()?;
    let index = FrameIndex::from_serialized_meta(archive.updates.clone(), &index_meta)?;
    Ok((
        ReplicationRun {
            archive,
            schedule,
            period: *period,
            noisy_peer,
        },
        index,
    ))
}

fn encode_beacon(run: &BeaconRun, index: &FrameIndex) -> Vec<u8> {
    let mut w = Writer::new();
    encode_archive(&mut w, &run.archive);
    encode_schedule(&mut w, &run.schedule);
    w.usize(run.noisy_routers.len());
    for &addr in &run.noisy_routers {
        w.ip(addr);
    }
    w.usize(run.routeviews_routers.len());
    for &addr in &run.routeviews_routers {
        w.ip(addr);
    }
    w.u64(run.roa_removal.secs());
    w.u64(run.observed_until.secs());
    w.usize(run.customer_cones.len());
    for &(asn, cone) in &run.customer_cones {
        w.u32(asn.0);
        w.usize(cone);
    }
    w.usize(run.polluted.len());
    for &(prefix, start) in &run.polluted {
        encode_prefix(&mut w, prefix);
        w.u64(start.secs());
    }
    w.bytes(&index.serialize_meta());
    w.into_vec()
}

fn decode_beacon(payload: Bytes) -> Result<(BeaconRun, FrameIndex), DecodeFailure> {
    let mut r = Reader::new(payload);
    let archive = decode_archive(&mut r)?;
    let schedule = decode_schedule(&mut r)?;
    let noisy_routers = decode_vec(&mut r, Reader::ip)?;
    let routeviews_routers = decode_vec(&mut r, Reader::ip)?;
    let roa_removal = SimTime(r.u64()?);
    let observed_until = SimTime(r.u64()?);
    let customer_cones = decode_vec(&mut r, |r| Ok((Asn(r.u32()?), r.usize()?)))?;
    let polluted = decode_vec(&mut r, |r| Ok((decode_prefix(r)?, SimTime(r.u64()?))))?;
    let index_meta = r.take_bytes()?;
    r.finish()?;
    let index = FrameIndex::from_serialized_meta(archive.updates.clone(), &index_meta)?;
    Ok((
        BeaconRun {
            archive,
            schedule,
            noisy_routers,
            routeviews_routers,
            roa_removal,
            observed_until,
            customer_cones,
            polluted,
        },
        index,
    ))
}

fn encode_archive(w: &mut Writer, archive: &RisArchive) {
    w.bytes(&archive.updates);
    w.usize(archive.rib_dumps.len());
    for (time, bytes) in &archive.rib_dumps {
        w.u64(time.secs());
        w.bytes(bytes);
    }
    let s = &archive.stats;
    for v in [
        s.announces_emitted,
        s.withdraws_emitted,
        s.sticky_drops,
        s.flaps,
        s.dumps,
        s.export_frozen_drops,
    ] {
        w.u64(v);
    }
    encode_config(w, &archive.config);
}

/// The archive bytes come back as zero-copy slices of the cache entry:
/// the MRT stream *is* the cache's native value format.
fn decode_archive(r: &mut Reader) -> CodecResult<RisArchive> {
    let updates = r.take_bytes()?;
    let rib_dumps = decode_vec(r, |r| Ok((SimTime(r.u64()?), r.take_bytes()?)))?;
    let stats = RisStats {
        announces_emitted: r.u64()?,
        withdraws_emitted: r.u64()?,
        sticky_drops: r.u64()?,
        flaps: r.u64()?,
        dumps: r.u64()?,
        export_frozen_drops: r.u64()?,
    };
    let config = decode_config(r)?;
    Ok(RisArchive {
        updates,
        rib_dumps,
        stats,
        config,
    })
}

fn encode_config(w: &mut Writer, config: &RisConfig) {
    w.usize(config.collectors.len());
    for c in &config.collectors {
        w.str(&c.name);
        w.u32(c.asn.0);
        w.ip(c.ip);
        w.u32(u32::from(c.bgp_id));
    }
    w.usize(config.peers.len());
    for p in &config.peers {
        w.u32(p.asn.0);
        w.ip(p.addr);
        w.u32(u32::from(p.bgp_id));
        w.usize(p.collector);
        w.f64(p.sticky_v4);
        w.f64(p.sticky_v6);
        w.usize(p.flaps.len());
        for t in &p.flaps {
            w.u64(t.secs());
        }
        w.usize(p.collector_outages.len());
        for (down, up) in &p.collector_outages {
            w.u64(down.secs());
            w.u64(up.secs());
        }
        w.usize(p.freeze_windows.len());
        for fw in &p.freeze_windows {
            w.u64(fw.start.secs());
            w.u64(fw.end.secs());
            encode_afi(w, fw.afi);
        }
    }
    w.u64(config.rib_period);
}

fn decode_config(r: &mut Reader) -> CodecResult<RisConfig> {
    let collectors = decode_vec(r, |r| {
        Ok(Collector {
            name: r.str()?,
            asn: Asn(r.u32()?),
            ip: r.ip()?,
            bgp_id: Ipv4Addr::from(r.u32()?),
        })
    })?;
    let peers = decode_vec(r, |r| {
        Ok(RisPeerSpec {
            asn: Asn(r.u32()?),
            addr: r.ip()?,
            bgp_id: Ipv4Addr::from(r.u32()?),
            collector: r.usize()?,
            sticky_v4: r.f64()?,
            sticky_v6: r.f64()?,
            flaps: decode_vec(r, |r| Ok(SimTime(r.u64()?)))?,
            collector_outages: decode_vec(r, |r| Ok((SimTime(r.u64()?), SimTime(r.u64()?))))?,
            freeze_windows: decode_vec(r, |r| {
                Ok(FreezeWindow {
                    start: SimTime(r.u64()?),
                    end: SimTime(r.u64()?),
                    afi: decode_afi(r)?,
                })
            })?,
        })
    })?;
    let rib_period = r.u64()?;
    Ok(RisConfig {
        collectors,
        peers,
        rib_period,
    })
}

fn encode_schedule(w: &mut Writer, schedule: &BeaconSchedule) {
    w.usize(schedule.events.len());
    for event in &schedule.events {
        w.u64(event.time.secs());
        encode_prefix(w, event.prefix);
        w.u32(event.origin.0);
        match event.kind {
            BeaconEventKind::Withdraw => w.u8(0),
            BeaconEventKind::Announce { aggregator: None } => w.u8(1),
            BeaconEventKind::Announce {
                aggregator: Some(agg),
            } => {
                w.u8(2);
                w.u32(agg.asn.0);
                w.u32(u32::from(agg.addr));
            }
        }
    }
}

fn decode_schedule(r: &mut Reader) -> CodecResult<BeaconSchedule> {
    let events = decode_vec(r, |r| {
        let time = SimTime(r.u64()?);
        let prefix = decode_prefix(r)?;
        let origin = Asn(r.u32()?);
        let kind = match r.u8()? {
            0 => BeaconEventKind::Withdraw,
            1 => BeaconEventKind::Announce { aggregator: None },
            2 => BeaconEventKind::Announce {
                aggregator: Some(Aggregator {
                    asn: Asn(r.u32()?),
                    addr: Ipv4Addr::from(r.u32()?),
                }),
            },
            tag => return Err(CodecError::BadTag(tag)),
        };
        Ok(BeaconEvent {
            time,
            prefix,
            origin,
            kind,
        })
    })?;
    Ok(BeaconSchedule { events })
}

/// Encodes one scan result. Public so byte-identity can be asserted
/// across worker counts and cache states (the bench smoke and the
/// determinism tests diff these bytes directly).
///
/// Observation histories reference AS paths through a unique-path table
/// deduplicated **by value**: `Arc` sharing differs across shard counts
/// (each scan worker interns its own chunk), and pointer-based dedup
/// would leak that into the artifact bytes.
pub fn encode_scan_result(result: &ScanResult) -> Vec<u8> {
    let mut w = Writer::new();
    w.usize(result.intervals.len());
    for interval in &result.intervals {
        encode_interval(&mut w, interval);
    }
    w.usize(result.peers.len());
    for peer in &result.peers {
        encode_peer(&mut w, peer);
    }
    let mut paths: Vec<&AsPath> = Vec::new();
    let mut path_index: HashMap<&AsPath, usize> = HashMap::new();
    let mut body = Writer::new();
    body.usize(result.histories.len());
    // lint: allow(determinism_taint) — `histories` is a Vec, one entry per interval; each inner map goes through `sorted_by_peer`
    for per_interval in &result.histories {
        let entries = sorted_by_peer(per_interval);
        body.usize(entries.len());
        for (peer, history) in entries {
            encode_peer(&mut body, peer);
            body.usize(history.len());
            for (time, obs) in history {
                body.u64(time.secs());
                match obs {
                    Observation::Withdraw => body.u8(0),
                    Observation::Announce { path, aggregator } => {
                        match aggregator {
                            None => body.u8(1),
                            Some(addr) => {
                                body.u8(2);
                                body.u32(u32::from(*addr));
                            }
                        }
                        let idx = *path_index.entry(path.as_ref()).or_insert_with(|| {
                            paths.push(path.as_ref());
                            paths.len() - 1
                        });
                        body.usize(idx);
                    }
                }
            }
        }
    }
    let downs = sorted_by_peer(&result.session_downs);
    body.usize(downs.len());
    for (peer, times) in downs {
        encode_peer(&mut body, peer);
        body.usize(times.len());
        for t in times {
            body.u64(t.secs());
        }
    }
    let s = &result.read_stats;
    for v in [
        s.ok,
        s.skipped,
        s.trailing_bytes,
        s.ok_messages,
        s.ok_state_changes,
        s.ok_rib,
        s.ok_peer_index,
    ] {
        body.usize(v);
    }
    // The table precedes the histories in the stream so decode resolves
    // indices in one pass.
    w.usize(paths.len());
    for path in paths {
        let mut wire = Vec::new();
        path.encode(&mut wire, true);
        w.bytes(&wire);
    }
    w.raw(body.as_slice());
    w.into_vec()
}

fn decode_scan(payload: Bytes) -> Result<ScanResult, DecodeFailure> {
    let mut r = Reader::new(payload);
    let intervals = decode_vec(&mut r, decode_interval)?;
    let peers = decode_vec(&mut r, decode_peer)?;
    let paths = decode_vec(&mut r, |r| {
        let wire = r.take_bytes()?;
        let mut buf = wire.as_ref();
        let path = AsPath::decode(&mut buf, wire.len(), true)
            .map_err(|_| CodecError::BadValue("malformed AS path"))?;
        Ok(Arc::new(path))
    })?;
    let histories = decode_vec(&mut r, |r| {
        let entries = decode_vec(r, |r| {
            let peer = decode_peer(r)?;
            let history = decode_vec(r, |r| {
                let time = SimTime(r.u64()?);
                let obs = match r.u8()? {
                    0 => Observation::Withdraw,
                    tag @ (1 | 2) => {
                        let aggregator = (tag == 2)
                            .then(|| r.u32().map(Ipv4Addr::from))
                            .transpose()?;
                        let idx = r.usize()?;
                        let path = paths
                            .get(idx)
                            .ok_or(CodecError::BadValue("AS-path index out of range"))?;
                        Observation::Announce {
                            path: Arc::clone(path),
                            aggregator,
                        }
                    }
                    tag => return Err(CodecError::BadTag(tag)),
                };
                Ok((time, obs))
            })?;
            Ok((peer, history))
        })?;
        Ok(entries.into_iter().collect::<HashMap<_, _>>())
    })?;
    let session_downs = decode_vec(&mut r, |r| {
        let peer = decode_peer(r)?;
        let times = decode_vec(r, |r| Ok(SimTime(r.u64()?)))?;
        Ok((peer, times))
    })?
    .into_iter()
    .collect();
    let read_stats = MrtReadStats {
        ok: r.usize()?,
        skipped: r.usize()?,
        trailing_bytes: r.usize()?,
        ok_messages: r.usize()?,
        ok_state_changes: r.usize()?,
        ok_rib: r.usize()?,
        ok_peer_index: r.usize()?,
    };
    r.finish()?;
    Ok(ScanResult {
        intervals,
        peers,
        histories,
        session_downs,
        read_stats,
    })
}

/// Sorted view of a peer-keyed map: artifact bytes must not depend on
/// hash order.
fn sorted_by_peer<V>(map: &HashMap<PeerId, V>) -> Vec<(&PeerId, &V)> {
    let mut entries: Vec<_> = map.iter().collect();
    entries.sort_by_key(|&(peer, _)| *peer);
    entries
}

fn encode_interval(w: &mut Writer, interval: &BeaconInterval) {
    encode_prefix(w, interval.prefix);
    w.u64(interval.start.secs());
    w.u64(interval.withdraw_at.secs());
}

fn decode_interval(r: &mut Reader) -> CodecResult<BeaconInterval> {
    Ok(BeaconInterval {
        prefix: decode_prefix(r)?,
        start: SimTime(r.u64()?),
        withdraw_at: SimTime(r.u64()?),
    })
}

fn encode_peer(w: &mut Writer, peer: &PeerId) {
    w.ip(peer.addr);
    w.u32(peer.asn.0);
}

fn decode_peer(r: &mut Reader) -> CodecResult<PeerId> {
    Ok(PeerId {
        addr: r.ip()?,
        asn: Asn(r.u32()?),
    })
}

/// Prefixes go through their canonical text form: the parser enforces the
/// family/length invariants, so a corrupted field is a clean error.
fn encode_prefix(w: &mut Writer, prefix: Prefix) {
    w.str(&prefix.to_string());
}

fn decode_prefix(r: &mut Reader) -> CodecResult<Prefix> {
    r.str()?
        .parse()
        .map_err(|_| CodecError::BadValue("malformed prefix"))
}

fn encode_afi(w: &mut Writer, afi: Option<Afi>) {
    w.u8(match afi {
        None => 0,
        Some(Afi::Ipv4) => 1,
        Some(Afi::Ipv6) => 2,
    });
}

fn decode_afi(r: &mut Reader) -> CodecResult<Option<Afi>> {
    match r.u8()? {
        0 => Ok(None),
        1 => Ok(Some(Afi::Ipv4)),
        2 => Ok(Some(Afi::Ipv6)),
        tag => Err(CodecError::BadTag(tag)),
    }
}

fn decode_vec<T>(
    r: &mut Reader,
    mut item: impl FnMut(&mut Reader) -> CodecResult<T>,
) -> CodecResult<Vec<T>> {
    let n = r.usize()?;
    // Guard the pre-allocation: a corrupted count must not OOM before the
    // per-item reads run out of bytes.
    let mut out = Vec::with_capacity(n.min(r.remaining()));
    for _ in 0..n {
        out.push(item(r)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::worlds::{replication_periods, run_beacon_study, run_replication};

    fn temp_cache(tag: &str) -> SubstrateCache {
        let dir =
            std::env::temp_dir().join(format!("bgpz-substrate-cache-{tag}-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        SubstrateCache::new(dir)
    }

    fn archives_equal(a: &RisArchive, b: &RisArchive) {
        assert_eq!(a.updates, b.updates);
        assert_eq!(a.rib_dumps, b.rib_dumps);
        assert_eq!(a.stats, b.stats);
        assert_eq!(a.config.collectors, b.config.collectors);
        assert_eq!(a.config.peers, b.config.peers);
        assert_eq!(a.config.rib_period, b.config.rib_period);
    }

    #[test]
    fn replication_round_trips_and_misses_on_other_keys() {
        let cache = temp_cache("repl");
        let scale = Scale::bench();
        let periods = replication_periods(&scale);
        let period = periods[0];
        assert!(cache.load_replication(&scale, 42, &period).is_none());

        let run = run_replication(&period, &scale, 42);
        let index = FrameIndex::build(run.archive.updates.clone());
        assert!(cache.store_replication(&scale, 42, &period, &run, &index));

        let (cached, cached_index) = cache
            .load_replication(&scale, 42, &period)
            .expect("stored entry");
        archives_equal(&cached.archive, &run.archive);
        assert_eq!(cached.schedule.events, run.schedule.events);
        assert_eq!(cached.noisy_peer, run.noisy_peer);
        assert_eq!(cached.period.name, period.name);
        assert_eq!(cached_index.serialize_meta(), index.serialize_meta());

        // Other seeds, scales, and periods are distinct keys.
        assert!(cache.load_replication(&scale, 43, &period).is_none());
        assert!(cache
            .load_replication(&Scale::quick(), 42, &period)
            .is_none());
        assert!(cache.load_replication(&scale, 42, &periods[1]).is_none());
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn beacon_round_trips_with_zero_copy_archive() {
        let cache = temp_cache("beacon");
        let scale = Scale::bench();
        let run = run_beacon_study(&scale, 7);
        let index = FrameIndex::build(run.archive.updates.clone());
        assert!(cache.store_beacon(&scale, 7, &run, &index));

        let (cached, cached_index) = cache.load_beacon(&scale, 7).expect("stored entry");
        archives_equal(&cached.archive, &run.archive);
        assert_eq!(cached.schedule.events, run.schedule.events);
        assert_eq!(cached.noisy_routers, run.noisy_routers);
        assert_eq!(cached.routeviews_routers, run.routeviews_routers);
        assert_eq!(cached.roa_removal, run.roa_removal);
        assert_eq!(cached.observed_until, run.observed_until);
        assert_eq!(cached.customer_cones, run.customer_cones);
        assert_eq!(cached.polluted, run.polluted);
        assert_eq!(cached_index.serialize_meta(), index.serialize_meta());
        std::fs::remove_dir_all(cache.dir()).ok();
    }

    #[test]
    fn resolve_prefers_flag_and_rejects_empty() {
        assert!(SubstrateCache::resolve(Some("")).is_none());
        let cache = SubstrateCache::resolve(Some("/tmp/bgpz-resolve-test")).expect("flag");
        assert_eq!(cache.dir(), Path::new("/tmp/bgpz-resolve-test"));
    }

    #[test]
    fn undecodable_payload_is_a_miss() {
        let period = replication_periods(&Scale::bench())[0];
        // A syntactically valid but truncated payload.
        assert!(decode_replication(Bytes::from_static(&[1, 2, 3]), &period).is_err());
        assert!(decode_scan(Bytes::from_static(&[1, 2, 3])).is_err());
    }

    #[test]
    fn scan_cache_round_trips_byte_identically() {
        use bgpz_core::{intervals_from_schedule, scan_indexed};

        let cache = temp_cache("scan");
        let scale = Scale::bench();
        let run = run_beacon_study(&scale, 7);
        let index = FrameIndex::build(run.archive.updates.clone());
        let intervals = intervals_from_schedule(&run.schedule);
        let window = 4 * 3600;

        assert!(cache
            .load_scan(&run.archive.updates, &intervals, window)
            .is_none());

        let cold = scan_indexed(&index, &intervals, window, 1);
        assert!(cache.store_scan(&run.archive.updates, &intervals, window, &cold));
        let warm = cache
            .load_scan(&run.archive.updates, &intervals, window)
            .expect("stored scan");
        assert_eq!(encode_scan_result(&warm), encode_scan_result(&cold));
        assert_eq!(warm.peers, cold.peers);
        assert_eq!(warm.intervals, cold.intervals);

        // The encoded artifact is jobs-invariant even though Arc sharing
        // inside the result differs per shard count.
        for jobs in [2, 8] {
            let sharded = scan_indexed(&index, &intervals, window, jobs);
            assert_eq!(
                encode_scan_result(&sharded),
                encode_scan_result(&cold),
                "scan artifact differs at jobs={jobs}"
            );
        }

        // Window and interval-set changes are distinct keys.
        assert!(cache
            .load_scan(&run.archive.updates, &intervals, window + 1)
            .is_none());
        let fewer = intervals.get(1..).unwrap_or_default();
        assert!(cache
            .load_scan(&run.archive.updates, fewer, window)
            .is_none());
        std::fs::remove_dir_all(cache.dir()).ok();
    }
}
