//! The two simulated worlds feeding every experiment.
//!
//! * [`run_replication`] — the 2017/2018 replication substrate: RIS
//!   beacons from AS12654 over a generated topology, background freeze
//!   faults calibrated so outbreak rates and the double-counting gap have
//!   the paper's shape, plus the chronically noisy peer AS16347 (IPv6
//!   sticky export + a months-long IPv4 export freeze — Table 4's
//!   signature).
//! * [`run_beacon_study`] — the 2024 deployment of the paper's own
//!   beacons from AS210312: the named core of §5 (8298, 25091, 1299,
//!   4637/Telstra, 33891/Core-Backbone, 9304/HGC, 3356 …), the three
//!   noisy peer routers of RRC25, the scripted §5.1/§5.2 outbreaks, the
//!   ROA removal, and a year of 8-hourly RIB dumps.
//!
//! Both are deterministic in `(scale, seed)`.

use bgpz_beacon::{
    apply_schedule, BeaconSchedule, PaperBeaconConfig, PaperBeacons, RisBeaconConfig, RisBeacons,
};
use bgpz_netsim::{EpisodeEnd, FaultPlan, RovPolicy, Simulator, Tier, Topology, TopologyConfig};
use bgpz_ris::{RisArchive, RisConfig, RisNetwork, RisPeerSpec};
use bgpz_rpki::beacon_roa_timeline;
use bgpz_types::time::{DAY, HOUR, MINUTE};
use bgpz_types::{Afi, Asn, Prefix, SimTime};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};
use std::sync::Arc;

/// Default worker count for parallel orchestration: the machine's
/// available parallelism (1 if it cannot be determined). Every bundle
/// build and scan is deterministic in `(scale, seed)` regardless of the
/// worker count, so this is purely a throughput knob.
pub fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Experiment sizing knob.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Scale {
    /// Human-readable name.
    pub name: &'static str,
    /// Fraction of each paper period actually simulated (1.0 = the full
    /// spans; the shape of every result is preserved at smaller
    /// fractions, only the absolute counts shrink).
    pub day_fraction: f64,
    /// Stub ASes in the generated topology.
    pub stubs: usize,
    /// Tier-2 ASes in the generated topology.
    pub tier2: usize,
    /// Healthy RIS peer routers sampled from the topology.
    pub ris_peers: usize,
}

impl Scale {
    /// Minimal world for criterion benches (sub-second bundles).
    pub fn bench() -> Scale {
        Scale {
            name: "bench",
            day_fraction: 0.05,
            stubs: 30,
            tier2: 10,
            ris_peers: 12,
        }
    }

    /// Seconds-scale runs for benches and CI.
    pub fn quick() -> Scale {
        Scale {
            name: "quick",
            day_fraction: 0.12,
            stubs: 60,
            tier2: 16,
            ris_peers: 20,
        }
    }

    /// The default: full shape, reduced span.
    pub fn standard() -> Scale {
        Scale {
            name: "standard",
            day_fraction: 0.35,
            stubs: 150,
            tier2: 30,
            ris_peers: 40,
        }
    }

    /// The paper's full spans. Minutes of CPU.
    pub fn full() -> Scale {
        Scale {
            name: "full",
            day_fraction: 1.0,
            stubs: 250,
            tier2: 40,
            ris_peers: 60,
        }
    }

    /// Parses a scale name.
    pub fn parse(name: &str) -> Option<Scale> {
        match name {
            "bench" => Some(Scale::bench()),
            "quick" => Some(Scale::quick()),
            "standard" => Some(Scale::standard()),
            "full" => Some(Scale::full()),
            _ => None,
        }
    }

    /// Scales a day count.
    fn days(&self, paper_days: u64) -> u64 {
        ((paper_days as f64 * self.day_fraction).round() as u64).max(2)
    }
}

// ---------------------------------------------------------------------
// Replication world (paper §3)
// ---------------------------------------------------------------------

/// The RIS beacon origin in the replication world.
pub const RIS_ORIGIN: Asn = Asn(12_654);

/// The replication world's beacon origin sites: RIS announces each beacon
/// from a different collector location. Site i = `RIS_SITE_BASE + i`.
pub const RIS_SITE_BASE: u32 = 61_000;
/// Number of origin sites (13 v4 + 14 v6 beacons round-robin over these).
pub const RIS_SITE_COUNT: u32 = 14;

/// The origin-site ASNs.
pub fn ris_sites() -> Vec<Asn> {
    (0..RIS_SITE_COUNT)
        .map(|i| Asn(RIS_SITE_BASE + i))
        .collect()
}

/// The IPv6 address group a decimal-formatted index yields when the
/// textual address is parsed: the digits of `k` read back as hex, so
/// 16 becomes 0x16. Keeps the synthetic router addresses byte-identical
/// to the historical string-built ones (valid for `k < 100`).
fn dec_as_hex_group(k: u32) -> u16 {
    ((k / 10) * 0x10 + (k % 10)) as u16
}

/// The replication's noisy peer (Inherent Adista SAS).
pub const NOISY_REPLICATION_PEER: Asn = Asn(16_347);

/// One replication period, named as in the paper.
#[derive(Debug, Clone, Copy)]
pub struct ReplicationPeriod {
    /// Paper label.
    pub name: &'static str,
    /// Start of the simulated window.
    pub start: SimTime,
    /// End of the simulated window (scaled by [`Scale::day_fraction`]).
    pub end: SimTime,
    /// The paper's full length in days (for reference).
    pub paper_days: u64,
}

/// The paper's three replication periods, spans scaled.
pub fn replication_periods(scale: &Scale) -> Vec<ReplicationPeriod> {
    let mk = |name, y, mo, d, paper_days| {
        let start = SimTime::from_ymd_hms(y, mo, d, 0, 0, 0);
        ReplicationPeriod {
            name,
            start,
            end: start + scale.days(paper_days) * DAY,
            paper_days,
        }
    };
    vec![
        mk("2018-07-19 – 2018-08-31", 2018, 7, 19, 44),
        mk("2017-10-01 – 2017-12-28", 2017, 10, 1, 89),
        mk("2017-03-01 – 2017-04-28", 2017, 3, 1, 59),
    ]
}

/// Output of one replication-period run.
pub struct ReplicationRun {
    /// The produced archive (real MRT bytes).
    pub archive: RisArchive,
    /// The beacon schedule driving it.
    pub schedule: BeaconSchedule,
    /// The period.
    pub period: ReplicationPeriod,
    /// Ground truth: the noisy peer's router address.
    pub noisy_peer: IpAddr,
}

/// Builds the replication topology: generated tiers plus the beacon
/// origin (multi-homed) and the noisy peer AS.
fn replication_topology(scale: &Scale, seed: u64) -> Topology {
    let mut topo = Topology::generate(&TopologyConfig {
        seed,
        tier1: 6,
        tier2: scale.tier2,
        stubs: scale.stubs,
        tier2_peering_prob: 0.08,
        rov_fraction: 0.0, // no RPKI story in the 2017/2018 replication
        rov_flawed_fraction: 0.0,
        first_asn: 60_000,
    });
    // Re-build with the named ASes attached: origin multi-homed to three
    // transits, the noisy peer dual-homed.
    let t2_a = Asn(60_006); // first generated tier-2s
    let t2_b = Asn(60_007);
    let t2_c = Asn(60_008);
    let mut builder = Topology::builder();
    for i in 0..topo.len() {
        builder = builder.node(topo.asn(i), topo.tier(i));
    }
    builder = builder
        .node(RIS_ORIGIN, Tier::Stub)
        .node(NOISY_REPLICATION_PEER, Tier::Stub);
    for site in ris_sites() {
        builder = builder.node(site, Tier::Stub);
    }
    for i in 0..topo.len() {
        for &(j, rel) in topo.neighbors(i) {
            if j > i {
                match rel {
                    bgpz_netsim::Relationship::Customer => {
                        builder = builder.provider_customer(topo.asn(i), topo.asn(j));
                    }
                    bgpz_netsim::Relationship::Provider => {
                        builder = builder.provider_customer(topo.asn(j), topo.asn(i));
                    }
                    bgpz_netsim::Relationship::Peer => {
                        builder = builder.peering(topo.asn(i), topo.asn(j));
                    }
                }
            }
        }
    }
    builder = builder
        .provider_customer(t2_a, RIS_ORIGIN)
        .provider_customer(t2_b, RIS_ORIGIN)
        .provider_customer(t2_c, RIS_ORIGIN)
        .provider_customer(t2_a, NOISY_REPLICATION_PEER)
        .provider_customer(t2_b, NOISY_REPLICATION_PEER);
    // Each origin site is dual-homed to a pair of generated Tier-2s.
    for (i, site) in ris_sites().into_iter().enumerate() {
        let t2_count = scale.tier2 as u32;
        let p1 = Asn(60_006 + (i as u32 * 2) % t2_count);
        let p2 = Asn(60_006 + (i as u32 * 2 + 1) % t2_count);
        builder = builder
            .provider_customer(p1, site)
            .provider_customer(p2, site);
    }
    let built = builder.build();
    topo = built;
    topo
}

/// Undirected edge list of a topology, ordered so the first element is
/// the provider (or the lower-indexed peer): random freezes biased
/// "forward" then freeze the provider→customer direction — the common,
/// low-impact zombie (stuck in one customer's cone).
pub fn edge_list(topo: &Topology) -> Vec<(Asn, Asn)> {
    let mut edges = Vec::new();
    for i in 0..topo.len() {
        for &(j, rel) in topo.neighbors(i) {
            if j > i {
                // `rel` is what j is to i.
                match rel {
                    bgpz_netsim::Relationship::Customer => edges.push((topo.asn(i), topo.asn(j))),
                    bgpz_netsim::Relationship::Provider => edges.push((topo.asn(j), topo.asn(i))),
                    bgpz_netsim::Relationship::Peer => edges.push((topo.asn(i), topo.asn(j))),
                }
            }
        }
    }
    edges
}

/// Runs one replication period end to end, producing the MRT archive.
pub fn run_replication(period: &ReplicationPeriod, scale: &Scale, seed: u64) -> ReplicationRun {
    let topo = replication_topology(scale, seed);
    let edges = edge_list(&topo);
    let span = period.end - period.start;

    // Background faults: short freeze episodes (hours) make transient
    // zombies; long ones (days) make the multi-interval zombies whose
    // recounting is the double-counting bug. Rates calibrated so roughly
    // 5–15% of announcements produce an outbreak and the Aggregator
    // filter removes a 2018-like share.
    // Absolute fleet-wide episode rates, spread over the edges: zombie
    // *fractions* then stay comparable across scales. Short episodes
    // produce fresh single-interval zombies; the rarer long ones survive
    // several beacon intervals and are the double-counting source.
    let short_per_day = 3.0;
    let long_per_day = 0.8;
    let plan = FaultPlan::none()
        .with_random_freezes(
            &edges,
            period.start,
            span,
            short_per_day / edges.len() as f64,
            30 * MINUTE,
            4 * HOUR,
            0.55, // resume fraction (rest reset = zombie death)
            0.88, // mostly provider→customer: low-impact zombies
            seed ^ 0xF00D,
        )
        .with_random_freezes(
            &edges,
            period.start,
            span,
            long_per_day / edges.len() as f64,
            4 * HOUR,
            36 * HOUR,
            0.7,
            0.88,
            seed ^ 0xD00D,
        )
        .with_random_resets(&edges, period.start, span, 0.002, seed ^ 0xBEEF);

    // The noisy AS16347's Table 4 signature: a long IPv4-only session
    // freeze from its primary upstream leaves one stale v4 route that it
    // keeps *re-announcing* at every beacon interval with the original
    // Aggregator clock (it is dual-homed, so path hunting falls back to
    // the frozen entry each time) — pure double counting, collapsing to
    // almost nothing once filtered.
    let v4_freeze_start = (period.start + span / 10).align_down(4 * HOUR) + 30 * MINUTE;
    let v4_freeze_len = (span / 20).max(16 * HOUR);
    // Freeze the higher-ASN (less-preferred) upstream so the fresh route
    // wins each announce phase and the fallback re-announces the stale
    // entry — the visible duplicate stream of Table 4.
    let mut plan = plan.freeze_family(
        Asn(60_007),
        NOISY_REPLICATION_PEER,
        v4_freeze_start,
        v4_freeze_start + v4_freeze_len,
        EpisodeEnd::Resume,
        Some(Afi::Ipv4),
    );

    // RIS deployment: sampled healthy peers + the noisy AS16347 router on
    // RRC21 — IPv6 sticky export at the paper's ~43%.
    let mut exclude = vec![RIS_ORIGIN, NOISY_REPLICATION_PEER];
    exclude.extend(ris_sites());
    let mut config =
        RisConfig::sample_from_topology(&topo, 4, scale.ris_peers, &exclude, seed ^ 0xA5A5);
    let noisy_addr = IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0x163, 0x47, 0, 0, 0, 1));
    config = config.with_peer(
        RisPeerSpec::healthy(NOISY_REPLICATION_PEER, noisy_addr, 1).with_sticky_family(0.0, 0.43),
    );

    // Collector-session outages on a few peers: the down/up STATE
    // messages are in the archive, and the §3.1 methodology must honor
    // them — a detector that ignores STATE would count the routes pending
    // at the down edge as zombies (the ablation experiment measures how
    // many).
    let n_outages = (((span / DAY) as f64 * 0.4).ceil() as usize).max(2);
    for k in 0..n_outages {
        let idx = (seed as usize + 11 * k) % config.peers.len();
        if config.peers[idx].asn == NOISY_REPLICATION_PEER {
            continue;
        }
        // Down 30 minutes into an up-phase, back up ~7 hours later (past
        // the next check time).
        let down = (period.start + (2 * k as u64 + 1) * span / (2 * n_outages as u64))
            .align_down(4 * HOUR)
            + 30 * MINUTE;
        let up = down + 7 * HOUR;
        let peer = config.peers[idx].clone().with_outage(down, up);
        config.peers[idx] = peer;
    }

    // Anchor episodes: deterministic freezes on multihomed RIS peers so
    // every scale reproduces the paper's fresh/duplicate mix (the random
    // background adds variance on top). Short anchors create
    // single-interval zombies; long anchors span several intervals and
    // feed the double-counting columns — with the IPv4-only variants
    // giving IPv4 the stronger reduction the paper's Table 1 shows.
    let days = span / DAY;
    // Single-route anchors: one RIS peer's RIB glitches on one prefix for
    // one beacon interval (withdrawal dropped, next announcement
    // refreshes) — the common, low-impact zombie that dominates the
    // paper's Fig. 5 per-pair rates and Fig. 7's single-outbreak mode.
    let beacon_prefixes: Vec<Prefix> = {
        let mut out: Vec<Prefix> = RisBeaconConfig::historical_distributed(&ris_sites())
            .beacons
            .iter()
            .map(|b| b.prefix)
            .collect();
        out.sort_unstable();
        out
    };
    let n_single = ((days as f64 * 5.0).ceil() as usize).max(6);
    let peer_asns = config.peer_asns();
    for k in 0..n_single {
        let peer = peer_asns[(seed as usize + 3 * k) % peer_asns.len()];
        if peer == NOISY_REPLICATION_PEER {
            continue;
        }
        let prefix = beacon_prefixes[(seed as usize + 5 * k) % beacon_prefixes.len()];
        let at =
            (period.start + (k as u64 + 1) * span / (n_single as u64 + 1)).align_down(4 * HOUR);
        plan = plan.sticky_window(peer, prefix, at, at + 4 * HOUR);
    }
    let n_short = ((days as f64 * 0.18).ceil() as usize).max(1);
    let n_long = ((days as f64 * 0.10).ceil() as usize).max(2);
    let multihomed: Vec<(Asn, Asn)> = config
        .peers
        .iter()
        .filter_map(|peer| {
            let node = topo.index_of(peer.asn)?;
            let providers: Vec<Asn> = topo
                .neighbors(node)
                .iter()
                .filter(|&&(_, rel)| rel == bgpz_netsim::Relationship::Provider)
                .map(|&(j, _)| topo.asn(j))
                .collect();
            // Freeze the *least preferred* provider (highest ASN loses
            // the selection tie-break), so each beacon round the fresh
            // route wins and the withdrawal falls back to the frozen
            // stale entry — producing the re-announcements with an old
            // Aggregator clock that the paper's filter catches.
            let frozen_provider = providers.iter().copied().max()?;
            (providers.len() >= 2).then_some((frozen_provider, peer.asn))
        })
        .collect();
    if !multihomed.is_empty() {
        let total = n_short + n_long;
        for k in 0..total {
            let (provider, peer) = multihomed[(seed as usize + k) % multihomed.len()];
            if peer == NOISY_REPLICATION_PEER {
                continue;
            }
            // Start inside an up-phase (announce + 30 min), spread evenly.
            let at = (period.start + (k as u64 + 1) * span / (total as u64 + 1))
                .align_down(4 * HOUR)
                + 30 * MINUTE;
            let (dur, afi) = if k < n_short {
                (2 * HOUR, None)
            } else if k % 2 == 0 {
                (9 * HOUR, None) // spans ~2 intervals → 1 duplicate round
            } else {
                (9 * HOUR, Some(Afi::Ipv4)) // v4-only, ~2 intervals
            };
            plan = plan.freeze_family(provider, peer, at, at + dur, EpisodeEnd::Resume, afi);
        }
    }

    let beacons = RisBeacons::new(RisBeaconConfig::historical_distributed(&ris_sites()));
    let schedule = beacons.schedule(period.start, period.end);

    let mut sim = Simulator::new(topo, &plan, seed);
    let mut ris = RisNetwork::new(config, period.start, seed ^ 0x5151);
    ris.attach(&mut sim);
    apply_schedule(&mut sim, &schedule);
    ris.advance(&mut sim, period.end + 4 * HOUR);

    ReplicationRun {
        archive: ris.finish(),
        schedule,
        period: *period,
        noisy_peer: noisy_addr,
    }
}

// ---------------------------------------------------------------------
// Beacon-study world (paper §4–§5)
// ---------------------------------------------------------------------

/// The paper's beacon origin.
pub const BEACON_ORIGIN: Asn = Asn(210_312);

/// Named ASes of the beacon study (§5 case studies).
pub mod named {
    use bgpz_types::Asn;
    /// Direct upstream of the origin.
    pub const UPSTREAM: Asn = Asn(8_298);
    /// Second-hop transit.
    pub const TRANSIT: Asn = Asn(25_091);
    /// Tier-1 (Twelve99/Arelion).
    pub const T1_1299: Asn = Asn(1_299);
    /// Telstra Global — root cause of the Fig. 2 late resurrections.
    pub const TELSTRA: Asn = Asn(4_637);
    /// Core-Backbone — root cause of the §5.2 impactful outbreak.
    pub const CORE_BACKBONE: Asn = Asn(33_891);
    /// HGC Global Communications — the extremely long-lived outbreak.
    pub const HGC: Asn = Asn(9_304);
    /// Hurricane Electric (transit of the HGC chain).
    pub const HE: Asn = Asn(6_939);
    /// Transit between 25091 and HE in the HGC chain.
    pub const T43100: Asn = Asn(43_100);
    /// Lumen (Tier-1, resurrection chain).
    pub const LUMEN: Asn = Asn(3_356);
    /// The infected AS of the Fig. 4 resurrection chain.
    pub const INFECTED_34549: Asn = Asn(34_549);
    /// Interoute/GTT-ish Tier-1 of the resurrection chain.
    pub const T12956: Asn = Asn(12_956);
    /// Resurrection chain middle ASes.
    pub const T10429: Asn = Asn(10_429);
    /// Resurrection chain middle ASes.
    pub const T28598: Asn = Asn(28_598);
    /// The RIS peer that sees the resurrected route.
    pub const PEER_61573: Asn = Asn(61_573);
    /// RIS peer behind the noisy AS211509 (35–37-day cluster of Fig. 3).
    pub const PEER_207301: Asn = Asn(207_301);
    /// Noisy peer AS (one router).
    pub const NOISY_211380: Asn = Asn(211_380);
    /// Noisy peer AS (two routers).
    pub const NOISY_211509: Asn = Asn(211_509);
    /// HGC-cone RIS peers.
    pub const PEER_17639: Asn = Asn(17_639);
    /// HGC-cone RIS peers.
    pub const PEER_142271: Asn = Asn(142_271);
}

/// Output of the beacon-study run.
pub struct BeaconRun {
    /// The archive: update stream + ~a year of RIB dumps.
    pub archive: RisArchive,
    /// Combined schedule (daily + 15-day approaches).
    pub schedule: BeaconSchedule,
    /// Ground truth: the three noisy peer routers.
    pub noisy_routers: Vec<IpAddr>,
    /// RouteViews peer routers (empty unless the run was built with
    /// [`run_beacon_study_with_routeviews`]): a second, independent
    /// collection platform whose peers see different slices of the
    /// Internet — the paper's §6 "combining RIS and RouteViews" future
    /// work.
    pub routeviews_routers: Vec<IpAddr>,
    /// ROA removal instant (2024-06-22 19:49 UTC).
    pub roa_removal: SimTime,
    /// End of the observation window.
    pub observed_until: SimTime,
    /// Customer cone sizes of the case-study ASes (ground truth for the
    /// §5.2 narrative), as (ASN, cone size).
    pub customer_cones: Vec<(Asn, usize)>,
    /// The footnote-3 polluted announcements (earlier halves of prefix
    /// collisions) to drop from interval analyses.
    pub polluted: Vec<(Prefix, SimTime)>,
}

/// Builds the beacon-study topology: generated tiers plus the named core.
fn beacon_topology(scale: &Scale, seed: u64) -> Topology {
    use named::*;
    let generated = Topology::generate(&TopologyConfig {
        seed,
        tier1: 5,
        tier2: scale.tier2,
        stubs: scale.stubs,
        tier2_peering_prob: 0.08,
        rov_fraction: 0.25,
        rov_flawed_fraction: 0.2,
        first_asn: 60_000,
    });
    let mut builder = Topology::builder();
    for i in 0..generated.len() {
        builder = builder.node(generated.asn(i), generated.tier(i));
    }
    // The named core.
    builder = builder
        .node(BEACON_ORIGIN, Tier::Stub)
        .node(UPSTREAM, Tier::Tier2)
        .node(TRANSIT, Tier::Tier2)
        .node(T1_1299, Tier::Tier1)
        .node(TELSTRA, Tier::Tier2)
        .node(CORE_BACKBONE, Tier::Tier2)
        .node(HGC, Tier::Tier2)
        .node(HE, Tier::Tier1)
        .node(T43100, Tier::Tier2)
        .node(LUMEN, Tier::Tier1)
        .node(INFECTED_34549, Tier::Tier2)
        .node(T12956, Tier::Tier1)
        .node(T10429, Tier::Tier2)
        .node(T28598, Tier::Tier2)
        .node(PEER_61573, Tier::Stub)
        .node(PEER_207301, Tier::Stub)
        .node(NOISY_211380, Tier::Stub)
        .node(NOISY_211509, Tier::Stub)
        .node(PEER_17639, Tier::Stub)
        .node(PEER_142271, Tier::Stub);
    // Copy generated edges.
    for i in 0..generated.len() {
        for &(j, rel) in generated.neighbors(i) {
            if j > i {
                builder = match rel {
                    bgpz_netsim::Relationship::Customer => {
                        builder.provider_customer(generated.asn(i), generated.asn(j))
                    }
                    bgpz_netsim::Relationship::Provider => {
                        builder.provider_customer(generated.asn(j), generated.asn(i))
                    }
                    bgpz_netsim::Relationship::Peer => {
                        builder.peering(generated.asn(i), generated.asn(j))
                    }
                };
            }
        }
    }
    // Wire the named core along the paper's observed paths.
    let g_t1 = Asn(60_000); // a generated tier-1 for interconnection
    let g_t1b = Asn(60_001);
    builder = builder
        // Origin chain: 210312 ← 8298 ← {25091, 34549}.
        .provider_customer(UPSTREAM, BEACON_ORIGIN)
        .provider_customer(TRANSIT, UPSTREAM)
        .provider_customer(INFECTED_34549, UPSTREAM)
        // 25091's providers: 1299, 33891, 43100 and a generated T1.
        .provider_customer(T1_1299, TRANSIT)
        .provider_customer(CORE_BACKBONE, TRANSIT)
        .provider_customer(T43100, TRANSIT)
        .provider_customer(g_t1, TRANSIT)
        // Telstra under 1299.
        .provider_customer(T1_1299, TELSTRA)
        // HGC chain: 43100 ← 6939 (peerings upward) ; 9304 under 6939.
        .peering(HE, T1_1299)
        .provider_customer(HE, T43100)
        .provider_customer(HE, HGC)
        .provider_customer(HGC, PEER_17639)
        .provider_customer(HGC, PEER_142271)
        // Resurrection chain: 34549 ← 3356 ← peering 12956 ← 10429 ← 28598
        // ← 61573.
        .provider_customer(LUMEN, INFECTED_34549)
        .peering(LUMEN, T12956)
        .provider_customer(T12956, T10429)
        .provider_customer(T10429, T28598)
        .provider_customer(T28598, PEER_61573)
        // Noisy peers and 207301 multihomed below generated transit.
        .provider_customer(g_t1, NOISY_211380)
        .provider_customer(g_t1b, NOISY_211509)
        .provider_customer(NOISY_211509, PEER_207301)
        .provider_customer(g_t1, PEER_207301)
        // Tie the named T1s into the generated clique.
        .peering(T1_1299, g_t1)
        .peering(T1_1299, g_t1b)
        .peering(LUMEN, g_t1)
        .peering(LUMEN, g_t1b)
        .peering(T12956, g_t1)
        .peering(HE, g_t1b)
        .peering(LUMEN, T1_1299)
        .peering(T12956, T1_1299)
        .peering(HE, LUMEN)
        .peering(HE, T12956);

    // Telstra's dedicated customers: multihomed (Telstra + a generated
    // Tier-1) so they withdraw cleanly through the healthy provider and
    // re-learn the stale route from Telstra on a late session reset —
    // the Fig. 2 resurrection uptick.
    for k in 0..6u32 {
        let asn = Asn(64_800 + k);
        builder = builder
            .node(asn, Tier::Stub)
            .provider_customer(TELSTRA, asn)
            .provider_customer(g_t1b, asn);
    }
    // Core-Backbone's customer cone: stub customers, most of which peer
    // with RIS (wired in the RIS config).
    for k in 0..21u32 {
        let asn = Asn(65_100 + k);
        builder = builder
            .node(asn, Tier::Stub)
            .provider_customer(CORE_BACKBONE, asn);
    }
    let mut topo = builder.build();
    // ROV pins for the Fig. 3 story: the HGC-cone peers do not validate
    // (they keep RPKI-invalid zombies), one Telstra customer validates
    // strictly.
    topo.set_rov(PEER_17639, RovPolicy::None);
    topo.set_rov(PEER_142271, RovPolicy::ImportOnly);
    topo.set_rov(Asn(64_800), RovPolicy::Strict);
    topo
}

/// Runs the full beacon study (both approaches + the year of dumps).
pub fn run_beacon_study(scale: &Scale, seed: u64) -> BeaconRun {
    run_beacon_study_inner(scale, seed, false)
}

/// Like [`run_beacon_study`] but with a second, RouteViews-like peer set
/// collected alongside the RIS peers (paper §6). The extra routers are
/// listed in [`BeaconRun::routeviews_routers`]; detection over subsets is
/// done with `ClassifyOptions::excluded_peers`.
pub fn run_beacon_study_with_routeviews(scale: &Scale, seed: u64) -> BeaconRun {
    run_beacon_study_inner(scale, seed, true)
}

fn run_beacon_study_inner(scale: &Scale, seed: u64, routeviews: bool) -> BeaconRun {
    use named::*;
    let topo = beacon_topology(scale, seed);
    // Background faults stay off the scripted edges: a random session
    // reset on, say, 34549–3356 would fire the Fig. 4 resurrection early.
    let scripted_edges: Vec<(Asn, Asn)> = vec![
        (UPSTREAM, INFECTED_34549),
        (INFECTED_34549, LUMEN),
        (TRANSIT, CORE_BACKBONE),
        (HE, HGC),
        (HGC, PEER_142271),
        (HGC, PEER_17639),
        (Asn(60_001), NOISY_211509),
        (NOISY_211509, PEER_207301),
        (T1_1299, TELSTRA),
    ];
    let edges: Vec<(Asn, Asn)> = edge_list(&topo)
        .into_iter()
        .filter(|&(a, b)| {
            let telstra_customer = |x: Asn| (64_800..64_806).contains(&x.0);
            let scripted = scripted_edges.contains(&(a, b))
                || scripted_edges.contains(&(b, a))
                || (a == TELSTRA && telstra_customer(b))
                || (b == TELSTRA && telstra_customer(a));
            !scripted
        })
        .collect();

    let daily = PaperBeacons::new(PaperBeaconConfig::paper_daily());
    let fifteen = PaperBeacons::new(PaperBeaconConfig::paper_fifteen_day());
    let mut schedule = daily.schedule();
    schedule
        .events
        .extend(fifteen.schedule().events.iter().copied());
    schedule.normalize();
    let polluted = fifteen.polluted_announcements();

    let start = SimTime::from_ymd_hms(2024, 6, 4, 0, 0, 0);
    let beacons_end = SimTime::from_ymd_hms(2024, 6, 22, 17, 30, 0);
    // Observation tail scaled: full = the paper's 2025-05-09.
    let full_tail_days: u64 = 320;
    let observed_until = beacons_end + scale.days(full_tail_days) * DAY;
    let roa_removal = SimTime::from_ymd_hms(2024, 6, 22, 19, 49, 0);

    // ---- fault plan -------------------------------------------------
    // Background: many short freeze episodes during the beacon window
    // (transient zombies that die between 90 and 180 minutes — the Fig. 2
    // decay), some long ones (Fig. 3 tail), plus background resets over
    // the whole year so long-lived zombies eventually die.
    let beacon_span = beacons_end - start;
    let total_span = observed_until - start;
    // Short episodes: one zombie prefix each (the beacon up at freeze
    // start); Reset-ended ones die within hours — the Fig. 2 decay.
    let short_per_day = 18.0;
    // Long episodes: the Fig. 3 multi-day tail.
    let long_per_day = 0.10;
    let mut plan = FaultPlan::none()
        .with_random_freezes(
            &edges,
            start,
            beacon_span,
            short_per_day / edges.len() as f64,
            100 * MINUTE,
            190 * MINUTE,
            0.12, // almost all short episodes end with a reset = death
            0.9,  // mostly provider→customer
            seed ^ 0x0001,
        )
        .with_random_freezes(
            &edges,
            start,
            beacon_span,
            long_per_day / edges.len() as f64,
            12 * HOUR,
            (total_span / 3).max(DAY),
            0.6,
            0.95,
            seed ^ 0x0002,
        )
        .with_random_resets(&edges, start, total_span, 0.0015, seed ^ 0x0003);

    // ---- scripted cases ---------------------------------------------
    let fifteen_clock = fifteen.clock();

    // §5.2 impactful outbreak: 2a0d:3dc1:2233::/48 announced 2024-06-18
    // 22:30, withdrawn 22:45; freeze 25091→33891 over the withdrawal;
    // the whole Core-Backbone cone keeps it for 4 days, then a session
    // reset clears everything.
    let t_2233 = SimTime::from_ymd_hms(2024, 6, 18, 22, 30, 0);
    debug_assert_eq!(
        fifteen_clock.encode(t_2233).to_string(),
        "2a0d:3dc1:2233::/48"
    );
    plan = plan.freeze(
        TRANSIT,
        CORE_BACKBONE,
        t_2233 + 10 * MINUTE,
        t_2233 + 4 * DAY,
        EpisodeEnd::Reset,
    );

    // §5.2 extremely long-lived: 2a0d:3dc1:163::/48 announced 2024-06-18
    // 16:00; freeze 6939→9304 for ~4.5 months (ends 2024-11-03, reset);
    // AS142271's copy dies earlier (2024-10-25) via a session reset.
    let t_163 = SimTime::from_ymd_hms(2024, 6, 18, 16, 0, 0);
    debug_assert_eq!(
        fifteen_clock.encode(t_163).to_string(),
        "2a0d:3dc1:163::/48"
    );
    plan = plan
        .freeze(
            HE,
            HGC,
            t_163 + 10 * MINUTE,
            SimTime::from_ymd_hms(2024, 11, 3, 12, 0, 0).min(observed_until),
            EpisodeEnd::Reset,
        )
        .reset(
            HGC,
            PEER_142271,
            SimTime::from_ymd_hms(2024, 10, 25, 6, 0, 0).min(observed_until),
        );

    // §5.1 resurrection: 2a0d:3dc1:1851::/48 announced 2024-06-21 18:45.
    // 34549 gets stuck (freeze 8298→34549 over the withdrawal, resumes);
    // its export to 3356 is frozen from *before* the announcement, so the
    // zombie is invisible; the session resets on 2024-06-29 (visible),
    // goes dark on 2024-10-04 (freeze + flush), resets again on
    // 2024-11-29 (visible), and the 8298–34549 session finally resets on
    // 2025-03-11, killing the zombie.
    let t_1851 = SimTime::from_ymd_hms(2024, 6, 21, 18, 45, 0);
    debug_assert_eq!(
        fifteen_clock.encode(t_1851).to_string(),
        "2a0d:3dc1:1851::/48"
    );
    let vis1 = SimTime::from_ymd_hms(2024, 6, 29, 9, 0, 0).min(observed_until);
    let dark = SimTime::from_ymd_hms(2024, 10, 4, 3, 0, 0).min(observed_until + 1);
    let vis2 = SimTime::from_ymd_hms(2024, 11, 29, 15, 0, 0).min(observed_until + 2);
    let death = SimTime::from_ymd_hms(2025, 3, 11, 8, 0, 0).min(observed_until + 3);
    plan = plan
        .freeze(
            UPSTREAM,
            INFECTED_34549,
            t_1851 + 10 * MINUTE,
            death,
            EpisodeEnd::Reset,
        )
        .freeze(
            INFECTED_34549,
            LUMEN,
            SimTime(t_1851.secs() - 5 * MINUTE),
            vis1,
            EpisodeEnd::Reset,
        )
        // The second dark period is a real session outage: routes flush
        // when it opens (2024-10-04) and resurrect at re-establishment
        // (2024-11-29).
        .outage(INFECTED_34549, LUMEN, dark, vis2);

    // Fig. 3's 35–37-day cluster at peer 207301 through noisy AS211509:
    // 211509 (the AS) gets stuck for the tail of the 15-day window; its
    // export to 207301 is dark until ~30 days after the withdrawals, then
    // resyncs; a final reset at ~+37 days kills it.
    let w_cluster = SimTime::from_ymd_hms(2024, 6, 22, 12, 0, 0);
    let cluster_visible = (w_cluster + 30 * DAY).min(observed_until);
    let cluster_death = (w_cluster + 37 * DAY).min(observed_until + 1);
    plan = plan
        // Withdraw-only wedge: every beacon withdrawn in the last hours of
        // the experiment gets stuck at AS211509 (announcements pass).
        .freeze_withdrawals(
            Asn(60_001),
            NOISY_211509,
            w_cluster,
            cluster_death,
            EpisodeEnd::Reset,
        )
        .freeze(
            NOISY_211509,
            PEER_207301,
            SimTime(w_cluster.secs() - HOUR),
            cluster_visible,
            EpisodeEnd::Reset,
        );

    // Fig. 2's post-160-minute uptick: Telstra drops the withdrawal of
    // six specific beacons (announced on 2024-06-21, four hours apart).
    // Every Telstra customer's session is dark across each target's
    // detection window and resets ~170 minutes after the withdrawal: the
    // resync re-announces the stale route, so the prefix *becomes* an
    // outbreak between the 160- and 180-minute thresholds — the paper's
    // "resurrected 20 minutes later" routes, all sharing the subpath
    // 4637 1299 25091 8298 210312.
    let mut telstra_targets: Vec<(Prefix, SimTime)> = Vec::new();
    for k in 0..12u64 {
        let announce = SimTime::from_ymd_hms(2024, 6, 20 + k / 6, 4 * (k % 6), 0, 0);
        let prefix = fifteen_clock.encode(announce);
        let withdrawal = announce + 15 * MINUTE;
        telstra_targets.push((prefix, withdrawal));
        plan = plan.sticky_prefix(TELSTRA, prefix);
        for c in 0..6u32 {
            let customer = Asn(64_800 + c);
            plan = plan.freeze(
                TELSTRA,
                customer,
                SimTime(withdrawal.secs() - 20 * MINUTE),
                withdrawal + 170 * MINUTE + c as u64 * 20,
                EpisodeEnd::Reset,
            );
        }
    }

    // ---- RIS deployment ----------------------------------------------
    let exclude: Vec<Asn> = vec![
        BEACON_ORIGIN,
        UPSTREAM,
        TRANSIT,
        TELSTRA,
        NOISY_211380,
        NOISY_211509,
    ];
    let mut config =
        RisConfig::sample_from_topology(&topo, 6, scale.ris_peers, &exclude, seed ^ 0xA5A5);
    // Named RIS peers.
    let named_peers: Vec<(Asn, Ipv6Addr)> = vec![
        (
            PEER_61573,
            Ipv6Addr::new(0x2001, 0xdb8, 0x6157, 3, 0, 0, 0, 1),
        ),
        (
            PEER_207301,
            Ipv6Addr::new(0x2a0c, 0xb641, 0x780, 7, 0, 0, 0, 0xfeca),
        ),
        (HGC, Ipv6Addr::new(0x2001, 0xdb8, 0x9304, 0, 0, 0, 0, 1)),
        (
            PEER_17639,
            Ipv6Addr::new(0x2001, 0xdb8, 0x1763, 9, 0, 0, 0, 1),
        ),
        (
            PEER_142271,
            Ipv6Addr::new(0x2001, 0xdb8, 0x1422, 0x71, 0, 0, 0, 1),
        ),
    ];
    for (asn, addr) in &named_peers {
        if !config.peers.iter().any(|p| p.asn == *asn) {
            config = config.with_peer(RisPeerSpec::healthy(*asn, IpAddr::V6(*addr), 5));
        }
    }
    // Telstra's multihomed customers peer with RIS — they are the
    // "specific peers" of the Fig. 2 uptick.
    for k in 0..6u32 {
        let asn = Asn(64_800 + k);
        let addr = IpAddr::V6(Ipv6Addr::new(
            0x2001,
            0xdb8,
            0x6480,
            dec_as_hex_group(k),
            0,
            0,
            0,
            1,
        ));
        config = config.with_peer(RisPeerSpec::healthy(asn, addr, k as usize % 6));
    }
    // Core-Backbone cone peers: 21 ASes, 24 routers (3 dual-router).
    for k in 0..21u32 {
        let asn = Asn(65_100 + k);
        let group = dec_as_hex_group(k);
        let addr = IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0x6510, group, 0, 0, 0, 1));
        config = config.with_peer(RisPeerSpec::healthy(asn, addr, k as usize % 6));
        if k < 3 {
            let addr2 = IpAddr::V6(Ipv6Addr::new(0x2001, 0xdb8, 0x6510, group, 0, 0, 0, 2));
            config = config.with_peer(RisPeerSpec::healthy(asn, addr2, k as usize % 6));
        }
    }
    // Optionally, a RouteViews-like platform: additional volunteer peers
    // sampled independently (disjoint from the RIS sample), seeing
    // different slices of the topology.
    let mut routeviews_routers: Vec<IpAddr> = Vec::new();
    if routeviews {
        let mut rv_exclude = exclude.clone();
        rv_exclude.extend(config.peer_asns());
        let rv = RisConfig::sample_from_topology(
            &topo,
            6,
            scale.ris_peers / 2 + 2,
            &rv_exclude,
            seed ^ 0x7272,
        );
        for (i, peer) in rv.peers.iter().enumerate() {
            let addr = IpAddr::V6(Ipv6Addr::new(
                0x2001,
                0xdb8,
                0x7270,
                u16::try_from(i).unwrap_or(u16::MAX),
                0,
                0,
                0,
                1,
            ));
            routeviews_routers.push(addr);
            config = config.with_peer(RisPeerSpec::healthy(peer.asn, addr, i % 6));
        }
    }

    // The three noisy peer routers on RRC25 (collector index 5 here):
    // AS211380's router and AS211509's two routers (one on an IPv4
    // session). Sticky rates from Table 5.
    let noisy_211380 = IpAddr::V6(Ipv6Addr::new(0x2a0c, 0x9a40, 0x1031, 0, 0, 0, 0, 0x504));
    let noisy_211509_v6 = IpAddr::V6(Ipv6Addr::new(0x2001, 0x678, 0x3f4, 5, 0, 0, 0, 1));
    let noisy_211509_v4 = IpAddr::V4(Ipv4Addr::new(176, 119, 234, 201));
    let noisy_routers: Vec<IpAddr> = vec![noisy_211380, noisy_211509_v6, noisy_211509_v4];
    config = config
        .with_peer(
            RisPeerSpec::healthy(NOISY_211380, noisy_211380, 5).with_sticky_family(0.0, 0.075),
        )
        .with_peer(
            RisPeerSpec::healthy(NOISY_211509, noisy_211509_v6, 5).with_sticky_family(0.0, 0.105),
        )
        .with_peer(
            RisPeerSpec::healthy(NOISY_211509, noisy_211509_v4, 5).with_sticky_family(0.0, 0.105),
        );

    // ---- run ----------------------------------------------------------
    let customer_cones = [TELSTRA, CORE_BACKBONE, HGC]
        .iter()
        .filter_map(|&asn| {
            let idx = topo.index_of(asn)?;
            Some((asn, topo.customer_cone(idx)))
        })
        .collect();

    let mut sim = Simulator::new(topo, &plan, seed);
    sim.set_rpki(
        Arc::new(beacon_roa_timeline(
            Prefix::v6([0x2a0d, 0x3dc1, 0, 0, 0, 0, 0, 0], 32),
            BEACON_ORIGIN,
            Some(roa_removal),
        )),
        6 * HOUR,
    );
    let mut ris = RisNetwork::new(config, start, seed ^ 0x5151);
    ris.attach(&mut sim);
    apply_schedule(&mut sim, &schedule);
    ris.advance(&mut sim, observed_until);

    BeaconRun {
        archive: ris.finish(),
        schedule,
        noisy_routers,
        routeviews_routers,
        roa_removal,
        observed_until,
        customer_cones,
        polluted,
    }
}

/// Final withdrawal instant of every prefix in a schedule — the reference
/// point for lifespan tracking.
pub fn final_withdrawals(schedule: &BeaconSchedule) -> Vec<(Prefix, SimTime)> {
    let mut map = std::collections::HashMap::new();
    for event in &schedule.events {
        if matches!(event.kind, bgpz_beacon::BeaconEventKind::Withdraw) {
            let entry = map.entry(event.prefix).or_insert(event.time);
            if event.time > *entry {
                *entry = event.time;
            }
        }
    }
    let mut out: Vec<(Prefix, SimTime)> = map.into_iter().collect();
    out.sort();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scales_parse() {
        assert_eq!(Scale::parse("quick").unwrap().name, "quick");
        assert_eq!(Scale::parse("standard").unwrap().name, "standard");
        assert_eq!(Scale::parse("full").unwrap().name, "full");
        assert!(Scale::parse("bogus").is_none());
        assert_eq!(Scale::full().days(44), 44);
        assert!(Scale::quick().days(44) < 10);
    }

    #[test]
    fn replication_periods_scale() {
        let full = replication_periods(&Scale::full());
        assert_eq!(full.len(), 3);
        assert_eq!((full[0].end - full[0].start) / DAY, 44);
        let quick = replication_periods(&Scale::quick());
        assert!((quick[0].end - quick[0].start) / DAY < 10);
    }

    #[test]
    fn replication_topology_wires_named_ases() {
        let topo = replication_topology(&Scale::quick(), 1);
        let origin = topo.index_of(RIS_ORIGIN).unwrap();
        assert!(topo.neighbors(origin).len() >= 3);
        assert!(topo.index_of(NOISY_REPLICATION_PEER).is_some());
    }

    #[test]
    fn beacon_topology_has_paper_paths() {
        use named::*;
        let topo = beacon_topology(&Scale::quick(), 1);
        for asn in [
            BEACON_ORIGIN,
            UPSTREAM,
            TRANSIT,
            TELSTRA,
            CORE_BACKBONE,
            HGC,
            INFECTED_34549,
            PEER_61573,
        ] {
            assert!(topo.index_of(asn).is_some(), "{asn} missing");
        }
        // Core-Backbone's cone includes its 21 stub customers.
        let cb = topo.index_of(CORE_BACKBONE).unwrap();
        assert!(topo.customer_cone(cb) >= 22);
        // Telstra's cone includes its 6 customers.
        let telstra = topo.index_of(TELSTRA).unwrap();
        assert!(topo.customer_cone(telstra) >= 7);
    }

    #[test]
    fn final_withdrawals_pick_latest() {
        let beacons = RisBeacons::new(RisBeaconConfig::historical(RIS_ORIGIN));
        let start = SimTime::from_ymd_hms(2018, 7, 19, 0, 0, 0);
        let schedule = beacons.schedule(start, start + 2 * DAY);
        let finals = final_withdrawals(&schedule);
        assert_eq!(finals.len(), 27);
        for &(_, t) in &finals {
            assert_eq!(t, start + DAY + 20 * HOUR + 2 * HOUR);
        }
    }
}
