//! # bgpz-analysis
//!
//! Experiment drivers that regenerate every table and figure of the
//! paper's evaluation, on top of the simulated substrate:
//!
//! | ID | Paper artifact | Driver |
//! |----|----------------|--------|
//! | T1 | Table 1 — outbreaks with/without double counting | [`experiments::table1`] |
//! | T2 | Table 2 — prior study vs revised methodology | [`experiments::table2`] |
//! | T3 | Table 3 — zombies each methodology misses | [`experiments::table3`] |
//! | T4 | Table 4 — noisy peer AS16347 likelihoods | [`experiments::table4`] |
//! | T5 | Table 5 — the beacon study's three noisy routers | [`experiments::table5`] |
//! | F2 | Fig. 2 — threshold sweep with resurrection uptick | [`experiments::fig2`] |
//! | F3 | Fig. 3 — outbreak duration CDF (≥ 1 day) | [`experiments::fig3`] |
//! | F4 | Fig. 4 — the twice-resurrected zombie timeline | [`experiments::fig4`] |
//! | F5 | Fig. 5 — zombie emergence rate CDF | [`experiments::fig5`] |
//! | F6 | Fig. 6 — AS-path length CDFs | [`experiments::fig6`] |
//! | F7 | Fig. 7 — concurrent outbreaks CDF | [`experiments::fig7`] |
//! | C  | §5.2 — impactful / extremely long-lived cases | [`experiments::cases`] |
//!
//! Two simulated worlds feed the drivers: [`worlds::replication_world`]
//! (the 2017/2018 RIS-beacon replication) and [`worlds::beacon_world`]
//! (the 2024 deployment of the paper's own beacons). Both are
//! deterministic in their seed and sized by a [`worlds::Scale`] knob so
//! benches run in seconds while `--scale full` reproduces the paper's
//! spans.
//!
//! Every driver is registered behind the [`experiments::Experiment`]
//! trait; [`experiments::registry`] is the single source of truth for
//! experiment ids that the `bgpz-experiments` binary, its parallel
//! dispatcher, and the criterion benches iterate. Orchestration is
//! parallel by default (`--jobs`): replication periods build concurrently,
//! the replication and beacon bundles overlap, archive scans shard by
//! prefix, and independent drivers dispatch from a work queue — all with
//! deterministic merges, so the same `(scale, seed)` produces
//! byte-identical artifacts at any worker count.

#![forbid(unsafe_code)]

pub mod experiments;
pub mod render;
pub mod stats;
pub mod substrate_cache;
pub mod worlds;

pub use experiments::{registry, Experiment, Substrate, Substrates};
pub use render::{AsciiSeries, TextTable};
pub use stats::Ecdf;
pub use substrate_cache::SubstrateCache;
pub use worlds::Scale;
