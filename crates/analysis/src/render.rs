//! Plain-text rendering: aligned tables, ASCII series, CSV.

use std::fmt::Write as _;

/// A simple aligned text table.
#[derive(Debug, Clone, Default)]
pub struct TextTable {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl TextTable {
    /// Creates a table with the given header.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(header: I) -> TextTable {
        TextTable {
            header: header.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (padded/truncated to the header width).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) -> &mut TextTable {
        let mut row: Vec<String> = cells.into_iter().map(Into::into).collect();
        row.resize(self.header.len(), String::new());
        self.rows.push(row);
        self
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True if the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate().take(cols) {
                if let Some(w) = widths.get_mut(i) {
                    *w = (*w).max(cell.chars().count());
                }
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let pad = widths
                    .get(i)
                    .copied()
                    .unwrap_or(0)
                    .saturating_sub(cell.chars().count());
                out.push_str(cell);
                for _ in 0..pad {
                    out.push(' ');
                }
            }
            // Trim trailing spaces.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols.saturating_sub(1));
        for _ in 0..total {
            out.push('-');
        }
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }

    /// Renders as CSV (no quoting — experiment cells never contain commas).
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }
}

/// An (x, y) series rendered as a crude ASCII chart plus CSV — enough to
/// eyeball the shape of every figure without a plotting stack.
#[derive(Debug, Clone)]
pub struct AsciiSeries {
    /// Series name.
    pub name: String,
    /// The points, x ascending.
    pub points: Vec<(f64, f64)>,
}

impl AsciiSeries {
    /// Creates a series.
    pub fn new<S: Into<String>>(name: S, points: Vec<(f64, f64)>) -> AsciiSeries {
        AsciiSeries {
            name: name.into(),
            points,
        }
    }

    /// Renders several series into one chart of `width`×`height` chars.
    pub fn chart(series: &[AsciiSeries], width: usize, height: usize) -> String {
        let all: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.clone()).collect();
        if all.is_empty() {
            return String::from("(no data)\n");
        }
        let (mut x_min, mut x_max) = (f64::INFINITY, f64::NEG_INFINITY);
        let (mut y_min, mut y_max) = (f64::INFINITY, f64::NEG_INFINITY);
        for &(x, y) in &all {
            x_min = x_min.min(x);
            x_max = x_max.max(x);
            y_min = y_min.min(y);
            y_max = y_max.max(y);
        }
        if x_max == x_min {
            x_max = x_min + 1.0;
        }
        if y_max == y_min {
            y_max = y_min + 1.0;
        }
        let mut grid = vec![vec![' '; width]; height];
        let marks = ['*', 'o', '+', 'x', '#', '@'];
        for (si, s) in series.iter().enumerate() {
            let mark = marks.get(si % marks.len()).copied().unwrap_or('*');
            for &(x, y) in &s.points {
                let cx = (((x - x_min) / (x_max - x_min)) * (width - 1) as f64).round() as usize;
                let cy = (((y - y_min) / (y_max - y_min)) * (height - 1) as f64).round() as usize;
                let row = (height - 1).saturating_sub(cy);
                if let Some(cell) = grid.get_mut(row).and_then(|r| r.get_mut(cx.min(width - 1))) {
                    *cell = mark;
                }
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "y: [{y_min:.3} .. {y_max:.3}]");
        for row in grid {
            out.push('|');
            out.extend(row);
            out.push('\n');
        }
        out.push('+');
        for _ in 0..width {
            out.push('-');
        }
        out.push('\n');
        let _ = writeln!(out, " x: [{x_min:.3} .. {x_max:.3}]");
        for (si, s) in series.iter().enumerate() {
            let mark = marks.get(si % marks.len()).copied().unwrap_or('*');
            let _ = writeln!(out, "   {mark} = {}", s.name);
        }
        out
    }

    /// CSV of several series: `x,name1,name2,...` rows on the union grid
    /// (step interpolation, empty where a series has no data yet).
    pub fn to_csv(series: &[AsciiSeries]) -> String {
        let mut xs: Vec<f64> = series
            .iter()
            .flat_map(|s| s.points.iter().map(|&(x, _)| x))
            .collect();
        xs.sort_by(|a, b| a.total_cmp(b));
        xs.dedup();
        let mut out = String::new();
        let names: Vec<&str> = series.iter().map(|s| s.name.as_str()).collect();
        let _ = writeln!(out, "x,{}", names.join(","));
        for &x in &xs {
            let mut row = format!("{x}");
            for s in series {
                // Last point with px <= x (step function).
                let y = s
                    .points
                    .iter()
                    .take_while(|&&(px, _)| px <= x)
                    .last()
                    .map(|&(_, y)| y);
                match y {
                    Some(y) => {
                        let _ = write!(row, ",{y}");
                    }
                    None => row.push(','),
                }
            }
            let _ = writeln!(out, "{row}");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let mut t = TextTable::new(["Period", "IPv4", "IPv6"]);
        t.row(["Jul 19 - Aug 31, 2018", "536", "745"]);
        t.row(["Mar 01 - Apr 28, 2017", "1781", "610"]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("Period"));
        assert!(lines[1].chars().all(|c| c == '-'));
        // Columns align: "536" and "1781" start at the same offset.
        let off1 = lines[2].find("536").unwrap();
        let off2 = lines[3].find("1781").unwrap();
        assert_eq!(off1, off2);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn table_csv() {
        let mut t = TextTable::new(["a", "b"]);
        t.row(["1", "2"]);
        assert_eq!(t.to_csv(), "a,b\n1,2\n");
    }

    #[test]
    fn short_rows_padded() {
        let mut t = TextTable::new(["a", "b", "c"]);
        t.row(["only"]);
        assert_eq!(t.rows[0].len(), 3);
    }

    #[test]
    fn chart_renders_marks() {
        let s = AsciiSeries::new("test", vec![(0.0, 0.0), (1.0, 1.0)]);
        let chart = AsciiSeries::chart(&[s], 20, 5);
        assert!(chart.contains('*'));
        assert!(chart.contains("test"));
    }

    #[test]
    fn chart_handles_empty_and_flat() {
        assert_eq!(AsciiSeries::chart(&[], 10, 3), "(no data)\n");
        let flat = AsciiSeries::new("flat", vec![(1.0, 5.0), (2.0, 5.0)]);
        let chart = AsciiSeries::chart(&[flat], 10, 3);
        assert!(chart.contains('*'));
    }

    #[test]
    fn series_csv_union_grid() {
        let a = AsciiSeries::new("a", vec![(1.0, 10.0), (3.0, 30.0)]);
        let b = AsciiSeries::new("b", vec![(2.0, 20.0)]);
        let csv = AsciiSeries::to_csv(&[a, b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines[1], "1,10,");
        assert_eq!(lines[2], "2,10,20");
        assert_eq!(lines[3], "3,30,20");
    }
}
