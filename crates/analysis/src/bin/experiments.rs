//! `bgpz-experiments` — regenerate the paper's tables and figures.
//!
//! ```text
//! bgpz-experiments [IDS] [--scale quick|standard|full] [--seed N] [--out DIR]
//!
//!   IDS     comma-separated subset of: t1,t2,t3,t4,t5,f2,f3,f4,f5,f6,f7,cases
//!           (default: all)
//!   --scale experiment sizing (default: standard)
//!   --seed  RNG seed (default: 42)
//!   --out   directory for .txt/.csv/.json artifacts (default: results)
//! ```

use bgpz_analysis::experiments::{
    self, beacon_bundle, replication_bundle, BeaconBundle, ExperimentOutput, ReplicationBundle,
};
use bgpz_analysis::Scale;
use std::io::Write as _;
use std::path::PathBuf;
use std::time::Instant;

fn usage() -> ! {
    eprintln!(
        "usage: bgpz-experiments [IDS] [--scale quick|standard|full] [--seed N] [--out DIR]\n\
         IDS: comma-separated subset of t1,t2,t3,t4,t5,f2,f3,f4,f5,f6,f7,cases (default all)"
    );
    std::process::exit(2)
}

fn main() {
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::standard();
    let mut seed: u64 = 42;
    let mut out_dir = PathBuf::from("results");

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args.next().unwrap_or_else(|| usage());
                scale = Scale::parse(&value).unwrap_or_else(|| usage());
            }
            "--seed" => {
                let value = args.next().unwrap_or_else(|| usage());
                seed = value.parse().unwrap_or_else(|_| usage());
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| usage()));
            }
            "--help" | "-h" => usage(),
            other if other.starts_with('-') => usage(),
            other => ids.extend(other.split(',').map(str::to_string)),
        }
    }
    let all = [
        "t1", "t2", "t3", "t4", "t5", "f2", "f3", "f4", "f5", "f6", "f7", "cases", "ablation",
        "rv",
    ];
    if ids.is_empty() {
        ids = all.iter().map(|s| s.to_string()).collect();
    }
    for id in &ids {
        if !all.contains(&id.as_str()) {
            eprintln!("unknown experiment id: {id}");
            usage();
        }
    }

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    println!("# scale={} seed={seed} out={}", scale.name, out_dir.display());

    let needs_replication = ids.iter().any(|id| {
        matches!(
            id.as_str(),
            "t1" | "t2" | "t3" | "t4" | "f5" | "f6" | "f7" | "ablation"
        )
    });
    let needs_beacon = ids.iter().any(|id| matches!(id.as_str(), "t5" | "f2" | "f3" | "f4" | "cases"));

    let replication: Option<ReplicationBundle> = needs_replication.then(|| {
        let t0 = Instant::now();
        let bundle = replication_bundle(&scale, seed);
        println!("# replication bundle built in {:.1}s", t0.elapsed().as_secs_f64());
        bundle
    });
    let beacon: Option<BeaconBundle> = needs_beacon.then(|| {
        let t0 = Instant::now();
        let bundle = beacon_bundle(&scale, seed);
        println!("# beacon bundle built in {:.1}s", t0.elapsed().as_secs_f64());
        bundle
    });

    let mut summary = Vec::new();
    for id in &ids {
        let t0 = Instant::now();
        let output: ExperimentOutput = match id.as_str() {
            "t1" => experiments::table1::run(replication.as_ref().expect("bundle")),
            "t2" => experiments::table2::run(replication.as_ref().expect("bundle")),
            "t3" => experiments::table3::run(replication.as_ref().expect("bundle")),
            "t4" => experiments::table4::run(replication.as_ref().expect("bundle")),
            "t5" => experiments::table5::run(beacon.as_ref().expect("bundle")),
            "f2" => experiments::fig2::run(beacon.as_ref().expect("bundle")),
            "f3" => experiments::fig3::run(beacon.as_ref().expect("bundle")),
            "f4" => experiments::fig4::run(beacon.as_ref().expect("bundle")),
            "f5" => experiments::fig5::run(replication.as_ref().expect("bundle")),
            "f6" => experiments::fig6::run(replication.as_ref().expect("bundle")),
            "f7" => experiments::fig7::run(replication.as_ref().expect("bundle")),
            "cases" => experiments::cases::run(beacon.as_ref().expect("bundle")),
            "ablation" => experiments::ablation::run(replication.as_ref().expect("bundle")),
            "rv" => experiments::routeviews::run(&scale, seed),
            _ => unreachable!("validated above"),
        };
        println!("\n=== {} ({:.1}s) ===\n", output.title, t0.elapsed().as_secs_f64());
        println!("{}", output.text);

        let txt_path = out_dir.join(format!("{id}.txt"));
        std::fs::write(&txt_path, &output.text).expect("write text artifact");
        for (name, contents) in &output.csv {
            std::fs::write(out_dir.join(name), contents).expect("write csv artifact");
        }
        let json_path = out_dir.join(format!("{id}.json"));
        let mut file = std::fs::File::create(&json_path).expect("create json artifact");
        serde_json::to_writer_pretty(&mut file, &output.json).expect("write json artifact");
        let _ = writeln!(file);
        summary.push((id.clone(), output.title));
    }

    println!("\n# artifacts written to {}:", out_dir.display());
    for (id, title) in &summary {
        println!("#   {id}: {title}");
    }
}
