//! `bgpz-experiments` — regenerate the paper's tables and figures.
//!
//! ```text
//! bgpz-experiments [IDS] [--scale quick|standard|full] [--seed N]
//!                  [--out DIR] [--jobs N] [--cache-dir DIR] [--list]
//!
//!   IDS     comma-separated subset of the registry ids (default: all;
//!           see --list)
//!   --scale experiment sizing (default: standard)
//!   --seed  RNG seed (default: 42)
//!   --out   directory for .txt/.csv/.json artifacts (default: results)
//!   --jobs  worker threads for bundle building, archive scanning, and
//!           experiment dispatch (default: available parallelism;
//!           --jobs 1 = fully serial). Artifacts are byte-identical at
//!           every job count — only timings.json varies.
//!   --cache-dir  substrate cache directory: simulated archives and their
//!           frame indexes are reused across runs keyed on (scale, seed),
//!           making warm runs skip the simulation entirely. Falls back to
//!           the BGPZ_CACHE environment variable; empty = disabled.
//!           Artifacts are byte-identical with or without the cache.
//!   --list  print the experiment registry (id, substrate, title) and exit
//! ```
//!
//! Experiment ids, titles, and substrate requirements come from
//! [`bgpz_analysis::experiments::registry`] — the single source of truth
//! shared with the criterion benches.
//!
//! Progress lines are `bgpz-obs` events on the `experiments::run` target:
//! the default `info` level prints them exactly as before, while
//! `BGPZ_LOG=warn` silences them and `BGPZ_LOG=debug` adds per-stage
//! detail. Alongside `timings.json` the run writes `metrics.json` — the
//! deterministic pipeline-counter snapshot.
//!
//! Exit codes: 0 success, 2 unknown experiment id, 64 usage error.

use bgpz_analysis::experiments::{
    build_substrates_cached, find, registry, BundleTimings, Experiment, ExperimentOutput,
    Substrates,
};
use bgpz_analysis::worlds::default_jobs;
use bgpz_analysis::{Scale, SubstrateCache};
use serde_json::json;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Instant;

/// Exit code for malformed invocations (EX_USAGE).
const EXIT_USAGE: i32 = 64;
/// Exit code for a well-formed invocation naming an unknown experiment.
const EXIT_UNKNOWN_ID: i32 = 2;

fn usage_text() -> String {
    let ids: Vec<&str> = registry().iter().map(|e| e.id()).collect();
    format!(
        "usage: bgpz-experiments [IDS] [--scale quick|standard|full] [--seed N] [--out DIR]\n\
         \x20                        [--jobs N] [--cache-dir DIR] [--list]\n\
         IDS: comma-separated subset of {} (default all)\n\
         --cache-dir (or BGPZ_CACHE): reuse simulated substrates across runs",
        ids.join(",")
    )
}

fn usage() -> ! {
    eprintln!("{}", usage_text());
    // Binary entry point; the never-type contract needs a direct exit.
    #[allow(clippy::disallowed_methods)]
    std::process::exit(EXIT_USAGE)
}

fn main() {
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::standard();
    let mut seed: u64 = 42;
    let mut out_dir = PathBuf::from("results");
    let mut jobs: usize = default_jobs();
    let mut cache_dir: Option<String> = None;
    let mut list = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--scale" => {
                let value = args.next().unwrap_or_else(|| usage());
                scale = Scale::parse(&value).unwrap_or_else(|| usage());
            }
            "--seed" => {
                let value = args.next().unwrap_or_else(|| usage());
                seed = value.parse().unwrap_or_else(|_| usage());
            }
            "--out" => {
                out_dir = PathBuf::from(args.next().unwrap_or_else(|| usage()));
            }
            "--jobs" => {
                let value = args.next().unwrap_or_else(|| usage());
                jobs = value.parse().unwrap_or_else(|_| usage());
                if jobs == 0 {
                    usage();
                }
            }
            "--cache-dir" => {
                cache_dir = Some(args.next().unwrap_or_else(|| usage()));
            }
            "--list" => list = true,
            "--help" | "-h" => {
                println!("{}", usage_text());
                return;
            }
            other if other.starts_with('-') => usage(),
            other => ids.extend(other.split(',').map(str::to_string)),
        }
    }

    if list {
        for exp in registry() {
            println!(
                "{:<10} {:<12} {}",
                exp.id(),
                exp.substrate().label(),
                exp.title()
            );
        }
        return;
    }

    if ids.is_empty() {
        ids = registry().iter().map(|e| e.id().to_string()).collect();
    }
    let experiments: Vec<&'static dyn Experiment> = ids
        .iter()
        .map(|id| {
            find(id).unwrap_or_else(|| {
                let valid: Vec<&str> = registry().iter().map(|e| e.id()).collect();
                bgpz_obs::error!(
                    target: "experiments::run",
                    "unknown experiment id: {id}\nvalid ids: {}", valid.join(", ")
                );
                // Binary entry point; exits before any experiment runs.
                #[allow(clippy::disallowed_methods)]
                std::process::exit(EXIT_UNKNOWN_ID);
            })
        })
        .collect();

    std::fs::create_dir_all(&out_dir).expect("create output directory");
    bgpz_obs::info!(
        target: "experiments::run",
        "# scale={} seed={seed} jobs={jobs} out={}",
        scale.name,
        out_dir.display()
    );

    let cache = SubstrateCache::resolve(cache_dir.as_deref());
    if let Some(cache) = &cache {
        bgpz_obs::info!(
            target: "experiments::run",
            "# substrate cache: {}", cache.dir().display()
        );
    }

    let total_start = Instant::now();
    let (ctx, bundle_timings) =
        build_substrates_cached(&scale, seed, &experiments, jobs, cache.as_ref());
    if let Some(secs) = bundle_timings.replication_secs {
        bgpz_obs::info!(target: "experiments::run", "# replication bundle built in {secs:.1}s");
    }
    if let Some(secs) = bundle_timings.beacon_secs {
        bgpz_obs::info!(target: "experiments::run", "# beacon bundle built in {secs:.1}s");
    }

    let results = dispatch(&experiments, &ctx, jobs);

    let mut summary = Vec::new();
    let mut experiment_timings = Vec::new();
    for (exp, (output, secs)) in experiments.iter().zip(&results) {
        println!("\n=== {} ({secs:.1}s) ===\n", output.title);
        println!("{}", output.text);

        let txt_path = out_dir.join(format!("{}.txt", exp.id()));
        std::fs::write(&txt_path, &output.text).expect("write text artifact");
        for (name, contents) in &output.csv {
            std::fs::write(out_dir.join(name), contents).expect("write csv artifact");
        }
        let json_path = out_dir.join(format!("{}.json", exp.id()));
        let mut file = std::fs::File::create(&json_path).expect("create json artifact");
        serde_json::to_writer_pretty(&mut file, &output.json).expect("write json artifact");
        let _ = writeln!(file);
        summary.push((exp.id(), output.title.clone()));
        experiment_timings.push((exp.id(), *secs));
    }

    write_timings(
        &out_dir,
        &scale,
        seed,
        jobs,
        &bundle_timings,
        &experiment_timings,
        total_start.elapsed().as_secs_f64(),
    );
    write_metrics(&out_dir);

    bgpz_obs::info!(
        target: "experiments::run",
        "\n# artifacts written to {}:", out_dir.display()
    );
    for (id, title) in &summary {
        bgpz_obs::info!(target: "experiments::run", "#   {id}: {title}");
    }
}

/// Runs the selected experiments and returns `(output, wall seconds)` in
/// input order. With `jobs > 1` the drivers are pulled from a shared work
/// queue by up to `jobs` crossbeam workers; results land in their input
/// slot, so ordering (and every artifact byte) is independent of which
/// worker finishes first.
fn dispatch(
    experiments: &[&'static dyn Experiment],
    ctx: &Substrates,
    jobs: usize,
) -> Vec<(ExperimentOutput, f64)> {
    let run_one = |exp: &'static dyn Experiment| {
        let span = bgpz_obs::span("experiments::run", exp.id());
        let t0 = Instant::now();
        let output = exp.run(ctx);
        let secs = t0.elapsed().as_secs_f64();
        drop(span);
        bgpz_obs::info!(target: "experiments::run", "# finished {} in {secs:.1}s", exp.id());
        (output, secs)
    };

    let workers = jobs.min(experiments.len());
    if workers <= 1 {
        return experiments.iter().map(|&exp| run_one(exp)).collect();
    }

    // lint: allow(channel_topology) — work queue filled once with `experiments.len()` indices before any worker starts; nothing produces after that
    let (tx, rx) = crossbeam::channel::unbounded::<usize>();
    for i in 0..experiments.len() {
        tx.send(i).expect("queue experiment");
    }
    drop(tx);

    let slots: parking_lot::Mutex<Vec<Option<(ExperimentOutput, f64)>>> =
        parking_lot::Mutex::new((0..experiments.len()).map(|_| None).collect());
    crossbeam::thread::scope(|s| {
        let run_one = &run_one;
        let slots = &slots;
        for _ in 0..workers {
            let rx = rx.clone();
            s.spawn(move |_| {
                while let Ok(i) = rx.recv() {
                    let result = run_one(experiments[i]);
                    slots.lock()[i] = Some(result);
                }
            });
        }
    })
    .expect("experiment dispatch scope panicked");

    slots
        .into_inner()
        .into_iter()
        .map(|slot| slot.expect("every queued experiment produced a result"))
        .collect()
}

/// Emits `timings.json`: per-bundle and per-experiment wall time, so the
/// performance trajectory is trackable across PRs. This is the one
/// artifact that is *not* deterministic in `(scale, seed)` — it records
/// wall time, not results.
fn write_timings(
    out_dir: &Path,
    scale: &Scale,
    seed: u64,
    jobs: usize,
    bundles: &BundleTimings,
    experiments: &[(&'static str, f64)],
    total_secs: f64,
) {
    let timings = json!({
        "scale": scale.name,
        "seed": seed,
        "jobs": jobs,
        "bundles": {
            "replication_secs": bundles.replication_secs,
            "beacon_secs": bundles.beacon_secs,
        },
        "experiments": experiments
            .iter()
            .map(|(id, secs)| json!({"id": id, "secs": secs}))
            .collect::<Vec<_>>(),
        "spans": bgpz_obs::metrics::global()
            .spans_wall()
            .iter()
            .map(|(target, name, count, secs)| {
                json!({"target": target, "name": name, "count": count, "total_secs": secs})
            })
            .collect::<Vec<_>>(),
        "total_secs": total_secs,
    });
    let path = out_dir.join("timings.json");
    let mut file = std::fs::File::create(&path).expect("create timings.json");
    serde_json::to_writer_pretty(&mut file, &timings).expect("write timings.json");
    let _ = writeln!(file);
}

/// Emits `metrics.json`: the deterministic pipeline-counter snapshot.
/// Unlike `timings.json` this is byte-identical at every `--jobs` count
/// (unless `BGPZ_METRICS_WALL=1` opts wall-clock span durations in).
fn write_metrics(out_dir: &Path) {
    let path = out_dir.join("metrics.json");
    std::fs::write(&path, bgpz_obs::metrics::global().to_json_pretty())
        .expect("write metrics.json");
}
