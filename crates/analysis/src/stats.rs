//! Small statistics toolkit: ECDFs, quantiles, summary stats.

/// An empirical cumulative distribution function over f64 samples.
#[derive(Debug, Clone, Default)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds from samples (NaNs are rejected with a panic — experiment
    /// code must never produce them).
    pub fn new<I: IntoIterator<Item = f64>>(samples: I) -> Ecdf {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        assert!(
            sorted.iter().all(|v| !v.is_nan()),
            "NaN sample in ECDF input"
        );
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaNs"));
        Ecdf { sorted }
    }

    /// Builds from integer samples.
    pub fn from_counts<I: IntoIterator<Item = usize>>(samples: I) -> Ecdf {
        Ecdf::new(samples.into_iter().map(|v| v as f64))
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True if there are no samples.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// F(x): fraction of samples ≤ x.
    pub fn fraction_le(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Inverse: the q-quantile (0 ≤ q ≤ 1), by the nearest-rank method.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        assert!((0.0..=1.0).contains(&q), "quantile out of range");
        let rank = ((q * self.sorted.len() as f64).ceil() as usize).clamp(1, self.sorted.len());
        Some(self.sorted[rank - 1])
    }

    /// Median (0.5-quantile).
    pub fn median(&self) -> Option<f64> {
        self.quantile(0.5)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> Option<f64> {
        if self.sorted.is_empty() {
            None
        } else {
            Some(self.sorted.iter().sum::<f64>() / self.sorted.len() as f64)
        }
    }

    /// Smallest sample.
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// The (x, F(x)) step points, deduplicated on x — ready to plot or to
    /// dump as CSV.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (i, &x) in self.sorted.iter().enumerate() {
            let y = (i + 1) as f64 / n;
            match out.last_mut() {
                Some(last) if last.0 == x => last.1 = y,
                _ => out.push((x, y)),
            }
        }
        out
    }

    /// Fraction of samples equal to zero (the paper quotes "18.76% of
    /// pairs show no zombie occurrences at all").
    pub fn fraction_zero(&self) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let zeros = self.sorted.partition_point(|&v| v <= 0.0);
        zeros as f64 / self.sorted.len() as f64
    }
}

/// Mean of a slice (None when empty).
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Median of a slice (None when empty).
pub fn median(values: &[f64]) -> Option<f64> {
    Ecdf::new(values.iter().copied()).median()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_cdf() {
        let e = Ecdf::new([1.0, 2.0, 2.0, 4.0]);
        assert_eq!(e.len(), 4);
        assert_eq!(e.fraction_le(0.5), 0.0);
        assert_eq!(e.fraction_le(1.0), 0.25);
        assert_eq!(e.fraction_le(2.0), 0.75);
        assert_eq!(e.fraction_le(100.0), 1.0);
    }

    #[test]
    fn quantiles() {
        let e = Ecdf::new([10.0, 20.0, 30.0, 40.0, 50.0]);
        assert_eq!(e.quantile(0.0), Some(10.0));
        assert_eq!(e.median(), Some(30.0));
        assert_eq!(e.quantile(1.0), Some(50.0));
        assert_eq!(e.min(), Some(10.0));
        assert_eq!(e.max(), Some(50.0));
        assert_eq!(e.mean(), Some(30.0));
    }

    #[test]
    fn points_deduplicate() {
        let e = Ecdf::new([1.0, 1.0, 2.0]);
        assert_eq!(e.points(), vec![(1.0, 2.0 / 3.0), (2.0, 1.0)]);
    }

    #[test]
    fn zeros_fraction() {
        let e = Ecdf::new([0.0, 0.0, 1.0, 3.0]);
        assert_eq!(e.fraction_zero(), 0.5);
    }

    #[test]
    fn empty_is_safe() {
        let e = Ecdf::default();
        assert!(e.is_empty());
        assert_eq!(e.fraction_le(1.0), 0.0);
        assert_eq!(e.median(), None);
        assert_eq!(e.mean(), None);
        assert!(e.points().is_empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Ecdf::new([f64::NAN]);
    }

    #[test]
    fn from_counts() {
        let e = Ecdf::from_counts([1usize, 2, 3]);
        assert_eq!(e.median(), Some(2.0));
    }

    #[test]
    fn slice_helpers() {
        assert_eq!(mean(&[1.0, 3.0]), Some(2.0));
        assert_eq!(median(&[3.0, 1.0, 2.0]), Some(2.0));
        assert_eq!(mean(&[]), None);
    }
}
