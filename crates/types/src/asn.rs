//! Autonomous System numbers.

use std::fmt;
use std::str::FromStr;

/// A 4-byte Autonomous System number (RFC 6793).
///
/// Two-byte AS numbers are a strict subset; [`Asn::is_16bit`] reports whether
/// a value fits the legacy encoding, which matters when emitting
/// `BGP4MP_MESSAGE` (2-byte peer AS fields) versus `BGP4MP_MESSAGE_AS4`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Asn(pub u32);

impl Asn {
    /// `AS_TRANS` (RFC 6793 §9): substituted for 4-byte AS numbers in 2-byte
    /// fields.
    pub const TRANS: Asn = Asn(23_456);

    /// The paper's beacon origin AS (AS210312, a personal AS).
    pub const BEACON_ORIGIN: Asn = Asn(210_312);

    /// True if the value fits in 16 bits.
    pub fn is_16bit(self) -> bool {
        self.0 <= u16::MAX as u32
    }

    /// The value to place in a 2-byte AS field: the ASN itself if it fits,
    /// otherwise `AS_TRANS`.
    pub fn as_u16_or_trans(self) -> u16 {
        if self.is_16bit() {
            self.0 as u16
        } else {
            Asn::TRANS.0 as u16
        }
    }

    /// True for private-use ASNs (RFC 6996 ranges).
    pub fn is_private(self) -> bool {
        (64_512..=65_534).contains(&self.0) || (4_200_000_000..=4_294_967_294).contains(&self.0)
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Asn {
        Asn(v)
    }
}

impl From<Asn> for u32 {
    fn from(v: Asn) -> u32 {
        v.0
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

/// Error parsing an [`Asn`] from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsnParseError(pub String);

impl fmt::Display for AsnParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ASN: {:?}", self.0)
    }
}

impl std::error::Error for AsnParseError {}

impl FromStr for Asn {
    type Err = AsnParseError;

    /// Accepts `"64512"` and `"AS64512"` (case-insensitive prefix).
    fn from_str(s: &str) -> Result<Asn, AsnParseError> {
        let digits = s
            .strip_prefix("AS")
            .or_else(|| s.strip_prefix("as"))
            .unwrap_or(s);
        digits
            .parse::<u32>()
            .map(Asn)
            .map_err(|_| AsnParseError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_and_parse_roundtrip() {
        let a = Asn(210_312);
        assert_eq!(a.to_string(), "AS210312");
        assert_eq!("AS210312".parse::<Asn>().unwrap(), a);
        assert_eq!("210312".parse::<Asn>().unwrap(), a);
        assert_eq!("as16347".parse::<Asn>().unwrap(), Asn(16_347));
        assert!("ASxyz".parse::<Asn>().is_err());
        assert!("".parse::<Asn>().is_err());
    }

    #[test]
    fn sixteen_bit_detection() {
        assert!(Asn(65_535).is_16bit());
        assert!(!Asn(65_536).is_16bit());
        assert_eq!(Asn(3356).as_u16_or_trans(), 3356);
        assert_eq!(Asn(210_312).as_u16_or_trans(), 23_456);
    }

    #[test]
    fn private_ranges() {
        assert!(Asn(64_512).is_private());
        assert!(Asn(65_534).is_private());
        assert!(!Asn(65_535).is_private());
        assert!(Asn(4_200_000_000).is_private());
        assert!(!Asn(210_312).is_private());
    }
}
