//! AS_PATH representation and codec (RFC 4271 §4.3, RFC 6793 for 4-byte).
//!
//! Paths are stored leftmost-first: index 0 is the most recent (nearest)
//! AS, the last element is the origin AS. This matches the wire order and
//! the "subpath" notation used by the paper (e.g. the zombie subpath
//! `4637 1299 25091 8298 210312` ends at the beacon origin AS210312).

use crate::asn::Asn;
use crate::error::{ensure, CodecError, CodecResult};
use bytes::{Buf, BufMut};
use std::fmt;

/// Segment type discriminants from RFC 4271.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SegmentKind {
    /// Ordered sequence of ASes (type 2).
    Sequence,
    /// Unordered set of ASes, produced by aggregation (type 1).
    Set,
}

impl SegmentKind {
    /// Wire discriminant.
    pub fn code(self) -> u8 {
        match self {
            SegmentKind::Set => 1,
            SegmentKind::Sequence => 2,
        }
    }

    /// Parses a wire discriminant.
    pub fn from_code(code: u8) -> CodecResult<SegmentKind> {
        match code {
            1 => Ok(SegmentKind::Set),
            2 => Ok(SegmentKind::Sequence),
            other => Err(CodecError::BadSegmentType(other)),
        }
    }
}

/// One AS_PATH segment.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct AsPathSegment {
    /// Segment kind.
    pub kind: SegmentKind,
    /// The ASes in the segment (wire order).
    pub asns: Vec<Asn>,
}

/// An AS_PATH attribute value: a list of segments.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Default)]
pub struct AsPath {
    /// Segments in wire order.
    pub segments: Vec<AsPathSegment>,
}

impl AsPath {
    /// An empty path (as originated, before any prepending).
    pub fn empty() -> AsPath {
        AsPath::default()
    }

    /// Builds a path from a single AS_SEQUENCE, leftmost (nearest) first.
    pub fn from_sequence<I: IntoIterator<Item = u32>>(asns: I) -> AsPath {
        AsPath {
            segments: vec![AsPathSegment {
                kind: SegmentKind::Sequence,
                asns: asns.into_iter().map(Asn).collect(),
            }],
        }
    }

    /// All ASes in wire order, flattening sets.
    pub fn asns(&self) -> impl Iterator<Item = Asn> + '_ {
        self.segments.iter().flat_map(|s| s.asns.iter().copied())
    }

    /// The origin AS — the last AS of the last AS_SEQUENCE segment, or
    /// `None` for an empty path or one ending in an AS_SET (aggregated
    /// routes have no single origin).
    pub fn origin(&self) -> Option<Asn> {
        let last = self.segments.last()?;
        match last.kind {
            SegmentKind::Sequence => last.asns.last().copied(),
            SegmentKind::Set => None,
        }
    }

    /// The neighbor AS — the first AS on the path.
    pub fn first(&self) -> Option<Asn> {
        self.segments.first()?.asns.first().copied()
    }

    /// Path length for route selection (RFC 4271 §9.1.2.2): each AS in a
    /// sequence counts 1, each AS_SET counts 1 in total.
    pub fn selection_len(&self) -> usize {
        self.segments
            .iter()
            .map(|s| match s.kind {
                SegmentKind::Sequence => s.asns.len(),
                SegmentKind::Set => 1,
            })
            .sum()
    }

    /// Total number of ASes mentioned (sets flattened). This is what the
    /// paper's Fig. 6 plots as "AS path length".
    pub fn hop_count(&self) -> usize {
        self.segments.iter().map(|s| s.asns.len()).sum()
    }

    /// True if `asn` appears anywhere in the path (loop detection).
    pub fn contains(&self, asn: Asn) -> bool {
        self.asns().any(|a| a == asn)
    }

    /// Returns a new path with `asn` prepended (as done when an AS exports a
    /// route to an eBGP neighbor).
    pub fn prepend(&self, asn: Asn) -> AsPath {
        let mut segments = self.segments.clone();
        match segments.first_mut() {
            Some(seg) if seg.kind == SegmentKind::Sequence => seg.asns.insert(0, asn),
            _ => segments.insert(
                0,
                AsPathSegment {
                    kind: SegmentKind::Sequence,
                    asns: vec![asn],
                },
            ),
        }
        AsPath { segments }
    }

    /// The flattened path as a vector (wire order: nearest AS first).
    pub fn to_vec(&self) -> Vec<Asn> {
        self.asns().collect()
    }

    /// True if the flattened path ends with `suffix` (origin-side subpath).
    ///
    /// The paper identifies outbreak root causes by a shared origin-side
    /// subpath such as `33891 25091 8298 210312`.
    pub fn ends_with(&self, suffix: &[Asn]) -> bool {
        let flat = self.to_vec();
        flat.len() >= suffix.len() && flat[flat.len() - suffix.len()..] == *suffix
    }

    /// Longest common origin-side subpath across `paths` (flattened).
    ///
    /// Returns the shared suffix, origin last. Empty if `paths` is empty or
    /// shares nothing.
    pub fn common_suffix(paths: &[&AsPath]) -> Vec<Asn> {
        let flats: Vec<Vec<Asn>> = paths.iter().map(|p| p.to_vec()).collect();
        let Some(first) = flats.first() else {
            return Vec::new();
        };
        let mut k = first.len();
        for flat in &flats[1..] {
            let mut common = 0;
            for i in 1..=flat.len().min(k) {
                if flat[flat.len() - i] == first[first.len() - i] {
                    common = i;
                } else {
                    break;
                }
            }
            k = common;
            if k == 0 {
                break;
            }
        }
        first[first.len() - k..].to_vec()
    }

    /// Encoded length in bytes with the given AS width.
    pub fn wire_len(&self, four_byte: bool) -> usize {
        let w = if four_byte { 4 } else { 2 };
        self.segments.iter().map(|s| 2 + w * s.asns.len()).sum()
    }

    /// Encodes the path. `four_byte` selects RFC 6793 4-octet AS encoding
    /// (used by BGP4MP_MESSAGE_AS4 peers and modern sessions); the 2-octet
    /// form substitutes `AS_TRANS` for wide ASNs.
    pub fn encode(&self, buf: &mut impl BufMut, four_byte: bool) {
        for seg in &self.segments {
            buf.put_u8(seg.kind.code());
            buf.put_u8(seg.asns.len() as u8);
            for asn in &seg.asns {
                if four_byte {
                    buf.put_u32(asn.0);
                } else {
                    buf.put_u16(asn.as_u16_or_trans());
                }
            }
        }
    }

    /// Decodes a path occupying exactly `total` bytes.
    pub fn decode(buf: &mut impl Buf, total: usize, four_byte: bool) -> CodecResult<AsPath> {
        ensure(buf, total, "AS_PATH")?;
        let mut sub = buf.copy_to_bytes(total);
        let mut segments = Vec::new();
        while sub.has_remaining() {
            ensure(&sub, 2, "AS_PATH segment header")?;
            let kind = SegmentKind::from_code(sub.get_u8())?;
            let count = sub.get_u8() as usize;
            let width = if four_byte { 4 } else { 2 };
            ensure(&sub, count * width, "AS_PATH segment body")?;
            let mut asns = Vec::with_capacity(count);
            for _ in 0..count {
                asns.push(if four_byte {
                    Asn(sub.get_u32())
                } else {
                    Asn(sub.get_u16() as u32)
                });
            }
            segments.push(AsPathSegment { kind, asns });
        }
        Ok(AsPath { segments })
    }
}

impl fmt::Display for AsPath {
    /// Space-separated ASNs; AS_SETs in braces, e.g. `3356 {64512,64513}`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for seg in &self.segments {
            if !first {
                write!(f, " ")?;
            }
            first = false;
            match seg.kind {
                SegmentKind::Sequence => {
                    let mut inner = true;
                    for asn in &seg.asns {
                        if !std::mem::take(&mut inner) {
                            write!(f, " ")?;
                        }
                        write!(f, "{}", asn.0)?;
                    }
                }
                SegmentKind::Set => {
                    write!(f, "{{")?;
                    let mut inner = true;
                    for asn in &seg.asns {
                        if !std::mem::take(&mut inner) {
                            write!(f, ",")?;
                        }
                        write!(f, "{}", asn.0)?;
                    }
                    write!(f, "}}")?;
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    fn paper_path() -> AsPath {
        AsPath::from_sequence([4637, 1299, 25091, 8298, 210_312])
    }

    #[test]
    fn origin_and_first() {
        let p = paper_path();
        assert_eq!(p.origin(), Some(Asn(210_312)));
        assert_eq!(p.first(), Some(Asn(4637)));
        assert_eq!(AsPath::empty().origin(), None);
    }

    #[test]
    fn set_has_no_single_origin() {
        let p = AsPath {
            segments: vec![
                AsPathSegment {
                    kind: SegmentKind::Sequence,
                    asns: vec![Asn(3356)],
                },
                AsPathSegment {
                    kind: SegmentKind::Set,
                    asns: vec![Asn(64_512), Asn(64_513)],
                },
            ],
        };
        assert_eq!(p.origin(), None);
        assert_eq!(p.selection_len(), 2);
        assert_eq!(p.hop_count(), 3);
        assert_eq!(p.to_string(), "3356 {64512,64513}");
    }

    #[test]
    fn prepend_builds_wire_order() {
        let p = AsPath::from_sequence([8298, 210_312]).prepend(Asn(25_091));
        assert_eq!(p.to_vec(), vec![Asn(25_091), Asn(8298), Asn(210_312)]);
        // Prepending onto an empty path creates a sequence segment.
        let q = AsPath::empty().prepend(Asn(1));
        assert_eq!(q.to_vec(), vec![Asn(1)]);
    }

    #[test]
    fn prepend_does_not_mutate_source() {
        let p = paper_path();
        let _ = p.prepend(Asn(1));
        assert_eq!(p.hop_count(), 5);
    }

    #[test]
    fn ends_with_subpath() {
        let p = paper_path();
        let suffix: Vec<Asn> = [25_091, 8298, 210_312].iter().map(|&v| Asn(v)).collect();
        assert!(p.ends_with(&suffix));
        assert!(!p.ends_with(&[Asn(1299), Asn(210_312)]));
        assert!(p.ends_with(&[]));
    }

    #[test]
    fn common_suffix_of_palm_tree_paths() {
        // Three zombie paths sharing the paper's Core-Backbone subpath.
        let a = AsPath::from_sequence([64_500, 33_891, 25_091, 8_298, 210_312]);
        let b = AsPath::from_sequence([64_501, 64_502, 33_891, 25_091, 8_298, 210_312]);
        let c = AsPath::from_sequence([64_503, 33_891, 25_091, 8_298, 210_312]);
        let suffix = AsPath::common_suffix(&[&a, &b, &c]);
        assert_eq!(
            suffix,
            vec![Asn(33_891), Asn(25_091), Asn(8_298), Asn(210_312)]
        );
    }

    #[test]
    fn common_suffix_edge_cases() {
        assert!(AsPath::common_suffix(&[]).is_empty());
        let a = AsPath::from_sequence([1, 2]);
        let b = AsPath::from_sequence([3, 4]);
        assert!(AsPath::common_suffix(&[&a, &b]).is_empty());
        let only = AsPath::common_suffix(&[&a]);
        assert_eq!(only, vec![Asn(1), Asn(2)]);
        // One path is a suffix of the other.
        let long = AsPath::from_sequence([9, 1, 2]);
        assert_eq!(AsPath::common_suffix(&[&a, &long]), vec![Asn(1), Asn(2)]);
    }

    #[test]
    fn encode_decode_roundtrip_4byte() {
        let p = paper_path();
        let mut buf = BytesMut::new();
        p.encode(&mut buf, true);
        assert_eq!(buf.len(), p.wire_len(true));
        let got = AsPath::decode(&mut buf.freeze(), p.wire_len(true), true).unwrap();
        assert_eq!(got, p);
    }

    #[test]
    fn encode_decode_roundtrip_2byte_with_trans() {
        let p = paper_path(); // 210312 does not fit 16 bits
        let mut buf = BytesMut::new();
        p.encode(&mut buf, false);
        let got = AsPath::decode(&mut buf.freeze(), p.wire_len(false), false).unwrap();
        assert_eq!(got.origin(), Some(Asn::TRANS));
        assert_eq!(got.hop_count(), 5);
    }

    #[test]
    fn decode_rejects_truncated_segment() {
        // Declares 3 ASes but provides only 2.
        let bytes: &[u8] = &[2, 3, 0, 0, 0, 1, 0, 0, 0, 2];
        let err = AsPath::decode(&mut &bytes[..], bytes.len(), true).unwrap_err();
        assert!(matches!(err, CodecError::Truncated { .. }));
    }

    #[test]
    fn decode_rejects_bad_segment_type() {
        let bytes: &[u8] = &[9, 1, 0, 0, 0, 1];
        let err = AsPath::decode(&mut &bytes[..], bytes.len(), true).unwrap_err();
        assert_eq!(err, CodecError::BadSegmentType(9));
    }

    #[test]
    fn loop_detection() {
        let p = paper_path();
        assert!(p.contains(Asn(1299)));
        assert!(!p.contains(Asn(7018)));
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(paper_path().to_string(), "4637 1299 25091 8298 210312");
    }
}
