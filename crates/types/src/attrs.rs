//! BGP path attributes (RFC 4271 §4.3, RFC 4760, RFC 6793, RFC 8092).
//!
//! The attribute this whole reproduction hinges on is **AGGREGATOR** (type
//! 7): RIPE RIS beacons encode the announcement time into the Aggregator IP
//! address as `10.x.y.z` where `x.y.z` is the 24-bit count of seconds since
//! midnight UTC on the 1st of the month. The paper uses this as a *BGP
//! clock* to tell whether a stuck route belongs to the current beacon
//! interval or is a leftover from an earlier one (double-counting fix).

use crate::asn::Asn;
use crate::aspath::AsPath;
use crate::community::{Community, LargeCommunity};
use crate::error::{ensure, CodecError, CodecResult};
use crate::prefix::{Afi, Prefix};
use bytes::{Buf, BufMut, BytesMut};
use std::net::{Ipv4Addr, Ipv6Addr};

/// ORIGIN attribute values (type 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Origin {
    /// Learned from an IGP (0).
    #[default]
    Igp,
    /// Learned from EGP (1).
    Egp,
    /// Incomplete (2).
    Incomplete,
}

impl Origin {
    /// Wire value.
    pub fn code(self) -> u8 {
        match self {
            Origin::Igp => 0,
            Origin::Egp => 1,
            Origin::Incomplete => 2,
        }
    }

    /// Parses a wire value.
    pub fn from_code(code: u8) -> CodecResult<Origin> {
        match code {
            0 => Ok(Origin::Igp),
            1 => Ok(Origin::Egp),
            2 => Ok(Origin::Incomplete),
            other => Err(CodecError::UnknownVariant {
                value: other as u32,
                context: "ORIGIN",
            }),
        }
    }
}

/// AGGREGATOR attribute (type 7): the AS and router that formed an
/// aggregate. RIS beacons abuse the IP field as a timestamp (BGP clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Aggregator {
    /// Aggregating AS.
    pub asn: Asn,
    /// Aggregating router id / the RIS beacon BGP-clock IP.
    pub addr: Ipv4Addr,
}

/// The next hop carried in MP_REACH_NLRI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NextHop {
    /// IPv4 next hop (4 bytes).
    V4(Ipv4Addr),
    /// IPv6 next hop: a global address, optionally followed by a link-local
    /// one (16 or 32 bytes on the wire).
    V6 {
        /// Global-scope next hop.
        global: Ipv6Addr,
        /// Optional link-local next hop.
        link_local: Option<Ipv6Addr>,
    },
}

impl NextHop {
    /// Wire length of the next-hop field.
    pub fn wire_len(&self) -> usize {
        match self {
            NextHop::V4(_) => 4,
            NextHop::V6 { link_local, .. } => {
                if link_local.is_some() {
                    32
                } else {
                    16
                }
            }
        }
    }
}

/// MP_REACH_NLRI (type 14): multiprotocol reachable NLRI. This is how IPv6
/// routes — all of the paper's own beacons — travel in BGP UPDATEs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MpReach {
    /// Address family of the NLRI.
    pub afi: Afi,
    /// Subsequent AFI; 1 = unicast (the only SAFI RIS beacons use).
    pub safi: u8,
    /// Next hop.
    pub next_hop: NextHop,
    /// Announced prefixes.
    pub nlri: Vec<Prefix>,
}

/// MP_UNREACH_NLRI (type 15): multiprotocol withdrawn routes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MpUnreach {
    /// Address family of the withdrawn prefixes.
    pub afi: Afi,
    /// Subsequent AFI; 1 = unicast.
    pub safi: u8,
    /// Withdrawn prefixes.
    pub withdrawn: Vec<Prefix>,
}

/// An attribute this library does not interpret, preserved verbatim so that
/// tolerant re-encoding round-trips foreign data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RawAttr {
    /// Raw flag byte.
    pub flags: u8,
    /// Attribute type code.
    pub type_code: u8,
    /// Attribute value bytes.
    pub value: Vec<u8>,
}

/// Attribute flag bits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AttrFlags(pub u8);

impl AttrFlags {
    /// Optional bit.
    pub const OPTIONAL: u8 = 0x80;
    /// Transitive bit.
    pub const TRANSITIVE: u8 = 0x40;
    /// Partial bit.
    pub const PARTIAL: u8 = 0x20;
    /// Extended-length bit (2-byte length field).
    pub const EXTENDED: u8 = 0x10;

    /// True if the optional bit is set.
    pub fn is_optional(self) -> bool {
        self.0 & Self::OPTIONAL != 0
    }

    /// True if the transitive bit is set.
    pub fn is_transitive(self) -> bool {
        self.0 & Self::TRANSITIVE != 0
    }

    /// True if the extended-length bit is set.
    pub fn is_extended(self) -> bool {
        self.0 & Self::EXTENDED != 0
    }
}

/// Attribute type codes used in this workspace.
pub mod type_code {
    /// ORIGIN.
    pub const ORIGIN: u8 = 1;
    /// AS_PATH.
    pub const AS_PATH: u8 = 2;
    /// NEXT_HOP.
    pub const NEXT_HOP: u8 = 3;
    /// MULTI_EXIT_DISC.
    pub const MED: u8 = 4;
    /// LOCAL_PREF.
    pub const LOCAL_PREF: u8 = 5;
    /// ATOMIC_AGGREGATE.
    pub const ATOMIC_AGGREGATE: u8 = 6;
    /// AGGREGATOR.
    pub const AGGREGATOR: u8 = 7;
    /// COMMUNITIES.
    pub const COMMUNITIES: u8 = 8;
    /// MP_REACH_NLRI.
    pub const MP_REACH_NLRI: u8 = 14;
    /// MP_UNREACH_NLRI.
    pub const MP_UNREACH_NLRI: u8 = 15;
    /// AS4_PATH.
    pub const AS4_PATH: u8 = 17;
    /// AS4_AGGREGATOR.
    pub const AS4_AGGREGATOR: u8 = 18;
    /// LARGE_COMMUNITIES.
    pub const LARGE_COMMUNITIES: u8 = 32;
}

/// A decoded attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Attr {
    /// ORIGIN.
    Origin(Origin),
    /// AS_PATH.
    AsPath(AsPath),
    /// NEXT_HOP (IPv4).
    NextHop(Ipv4Addr),
    /// MULTI_EXIT_DISC.
    Med(u32),
    /// LOCAL_PREF.
    LocalPref(u32),
    /// ATOMIC_AGGREGATE.
    AtomicAggregate,
    /// AGGREGATOR.
    Aggregator(Aggregator),
    /// COMMUNITIES.
    Communities(Vec<Community>),
    /// MP_REACH_NLRI.
    MpReach(MpReach),
    /// MP_UNREACH_NLRI.
    MpUnreach(MpUnreach),
    /// AS4_PATH (RFC 6793).
    As4Path(AsPath),
    /// AS4_AGGREGATOR (RFC 6793).
    As4Aggregator(Aggregator),
    /// LARGE_COMMUNITIES (RFC 8092).
    LargeCommunities(Vec<LargeCommunity>),
    /// Anything else, preserved raw.
    Unknown(RawAttr),
}

/// The full attribute set of one UPDATE, in convenient typed form.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PathAttributes {
    /// ORIGIN.
    pub origin: Option<Origin>,
    /// AS_PATH.
    pub as_path: Option<AsPath>,
    /// NEXT_HOP.
    pub next_hop: Option<Ipv4Addr>,
    /// MULTI_EXIT_DISC.
    pub med: Option<u32>,
    /// LOCAL_PREF.
    pub local_pref: Option<u32>,
    /// ATOMIC_AGGREGATE present.
    pub atomic_aggregate: bool,
    /// AGGREGATOR — carries the RIS beacon BGP clock.
    pub aggregator: Option<Aggregator>,
    /// COMMUNITIES.
    pub communities: Vec<Community>,
    /// LARGE_COMMUNITIES.
    pub large_communities: Vec<LargeCommunity>,
    /// MP_REACH_NLRI.
    pub mp_reach: Option<MpReach>,
    /// MP_UNREACH_NLRI.
    pub mp_unreach: Option<MpUnreach>,
    /// Unrecognised attributes, preserved verbatim.
    pub unknown: Vec<RawAttr>,
}

impl PathAttributes {
    /// Convenience constructor for an announcement with the basics set.
    pub fn announcement(as_path: AsPath) -> PathAttributes {
        PathAttributes {
            origin: Some(Origin::Igp),
            as_path: Some(as_path),
            ..PathAttributes::default()
        }
    }

    /// Inserts one decoded attribute into the typed set.
    fn insert(&mut self, attr: Attr) {
        match attr {
            Attr::Origin(v) => self.origin = Some(v),
            Attr::AsPath(v) => self.as_path = Some(v),
            Attr::NextHop(v) => self.next_hop = Some(v),
            Attr::Med(v) => self.med = Some(v),
            Attr::LocalPref(v) => self.local_pref = Some(v),
            Attr::AtomicAggregate => self.atomic_aggregate = true,
            Attr::Aggregator(v) => self.aggregator = Some(v),
            Attr::Communities(v) => self.communities = v,
            Attr::MpReach(v) => self.mp_reach = Some(v),
            Attr::MpUnreach(v) => self.mp_unreach = Some(v),
            // RFC 6793 §4.2.3: when speaking to a 4-octet-capable peer the
            // AS4_* attributes must not be sent, but old routers in the path
            // may still attach them; reconcile by preferring the AS4 data.
            Attr::As4Path(v) => self.as_path = Some(v),
            Attr::As4Aggregator(v) => self.aggregator = Some(v),
            Attr::LargeCommunities(v) => self.large_communities = v,
            Attr::Unknown(v) => self.unknown.push(v),
        }
    }

    /// Encodes the attribute set in ascending type-code order.
    ///
    /// `four_byte` selects 4-octet AS encoding for AS_PATH / AGGREGATOR
    /// (the RIS collectors all negotiate the 4-octet capability).
    pub fn encode(&self, buf: &mut impl BufMut, four_byte: bool) {
        if let Some(origin) = self.origin {
            put_attr(buf, 0x40, type_code::ORIGIN, &[origin.code()]);
        }
        if let Some(path) = &self.as_path {
            let mut body = BytesMut::with_capacity(path.wire_len(four_byte));
            path.encode(&mut body, four_byte);
            put_attr(buf, 0x40, type_code::AS_PATH, &body);
        }
        if let Some(nh) = self.next_hop {
            put_attr(buf, 0x40, type_code::NEXT_HOP, &nh.octets());
        }
        if let Some(med) = self.med {
            put_attr(buf, 0x80, type_code::MED, &med.to_be_bytes());
        }
        if let Some(lp) = self.local_pref {
            put_attr(buf, 0x40, type_code::LOCAL_PREF, &lp.to_be_bytes());
        }
        if self.atomic_aggregate {
            put_attr(buf, 0x40, type_code::ATOMIC_AGGREGATE, &[]);
        }
        if let Some(agg) = self.aggregator {
            let mut body = BytesMut::with_capacity(8);
            if four_byte {
                body.put_u32(agg.asn.0);
            } else {
                body.put_u16(agg.asn.as_u16_or_trans());
            }
            body.put_slice(&agg.addr.octets());
            put_attr(buf, 0xC0, type_code::AGGREGATOR, &body);
        }
        if !self.communities.is_empty() {
            let mut body = BytesMut::with_capacity(4 * self.communities.len());
            for c in &self.communities {
                body.put_u32(c.0);
            }
            put_attr(buf, 0xC0, type_code::COMMUNITIES, &body);
        }
        if let Some(mp) = &self.mp_reach {
            let mut body = BytesMut::new();
            body.put_u16(mp.afi.code());
            body.put_u8(mp.safi);
            body.put_u8(mp.next_hop.wire_len() as u8);
            match mp.next_hop {
                NextHop::V4(a) => body.put_slice(&a.octets()),
                NextHop::V6 { global, link_local } => {
                    body.put_slice(&global.octets());
                    if let Some(ll) = link_local {
                        body.put_slice(&ll.octets());
                    }
                }
            }
            body.put_u8(0); // reserved SNPA count
            for p in &mp.nlri {
                p.encode_nlri(&mut body);
            }
            put_attr(buf, 0x80, type_code::MP_REACH_NLRI, &body);
        }
        if let Some(mp) = &self.mp_unreach {
            let mut body = BytesMut::new();
            body.put_u16(mp.afi.code());
            body.put_u8(mp.safi);
            for p in &mp.withdrawn {
                p.encode_nlri(&mut body);
            }
            put_attr(buf, 0x80, type_code::MP_UNREACH_NLRI, &body);
        }
        if !self.large_communities.is_empty() {
            let mut body = BytesMut::with_capacity(12 * self.large_communities.len());
            for lc in &self.large_communities {
                body.put_u32(lc.global);
                body.put_u32(lc.local1);
                body.put_u32(lc.local2);
            }
            put_attr(buf, 0xC0, type_code::LARGE_COMMUNITIES, &body);
        }
        for raw in &self.unknown {
            put_attr(buf, raw.flags, raw.type_code, &raw.value);
        }
    }

    /// Total encoded length in bytes.
    pub fn wire_len(&self, four_byte: bool) -> usize {
        let mut buf = BytesMut::new();
        self.encode(&mut buf, four_byte);
        buf.len()
    }

    /// Decodes an attribute block occupying exactly `total` bytes.
    pub fn decode(
        buf: &mut impl Buf,
        total: usize,
        four_byte: bool,
    ) -> CodecResult<PathAttributes> {
        ensure(buf, total, "path attributes")?;
        let mut sub = buf.copy_to_bytes(total);
        let mut attrs = PathAttributes::default();
        while sub.has_remaining() {
            let attr = decode_one(&mut sub, four_byte)?;
            attrs.insert(attr);
        }
        Ok(attrs)
    }
}

/// Writes one attribute TLV, choosing extended length when needed.
fn put_attr(buf: &mut impl BufMut, flags: u8, type_code: u8, value: &[u8]) {
    if value.len() > 255 {
        buf.put_u8(flags | AttrFlags::EXTENDED);
        buf.put_u8(type_code);
        buf.put_u16(value.len() as u16);
    } else {
        buf.put_u8(flags & !AttrFlags::EXTENDED);
        buf.put_u8(type_code);
        buf.put_u8(value.len() as u8);
    }
    buf.put_slice(value);
}

/// Decodes a single attribute TLV.
fn decode_one(buf: &mut impl Buf, four_byte: bool) -> CodecResult<Attr> {
    ensure(buf, 2, "attribute header")?;
    let flags = AttrFlags(buf.get_u8());
    let type_code = buf.get_u8();
    let len = if flags.is_extended() {
        ensure(buf, 2, "attribute extended length")?;
        buf.get_u16() as usize
    } else {
        ensure(buf, 1, "attribute length")?;
        buf.get_u8() as usize
    };
    ensure(buf, len, "attribute value")?;
    let mut val = buf.copy_to_bytes(len);

    let attr = match type_code {
        type_code::ORIGIN => {
            expect_len(len, 1, "ORIGIN")?;
            Attr::Origin(Origin::from_code(val.get_u8())?)
        }
        type_code::AS_PATH => Attr::AsPath(AsPath::decode(&mut val, len, four_byte)?),
        type_code::NEXT_HOP => {
            expect_len(len, 4, "NEXT_HOP")?;
            Attr::NextHop(get_v4(&mut val))
        }
        type_code::MED => {
            expect_len(len, 4, "MED")?;
            Attr::Med(val.get_u32())
        }
        type_code::LOCAL_PREF => {
            expect_len(len, 4, "LOCAL_PREF")?;
            Attr::LocalPref(val.get_u32())
        }
        type_code::ATOMIC_AGGREGATE => {
            expect_len(len, 0, "ATOMIC_AGGREGATE")?;
            Attr::AtomicAggregate
        }
        type_code::AGGREGATOR => {
            let expected = if four_byte { 8 } else { 6 };
            expect_len(len, expected, "AGGREGATOR")?;
            let asn = if four_byte {
                Asn(val.get_u32())
            } else {
                Asn(val.get_u16() as u32)
            };
            Attr::Aggregator(Aggregator {
                asn,
                addr: get_v4(&mut val),
            })
        }
        type_code::COMMUNITIES => {
            if len % 4 != 0 {
                return Err(CodecError::Invalid {
                    context: "COMMUNITIES length not a multiple of 4",
                });
            }
            let mut out = Vec::with_capacity(len / 4);
            while val.has_remaining() {
                out.push(Community(val.get_u32()));
            }
            Attr::Communities(out)
        }
        type_code::MP_REACH_NLRI => Attr::MpReach(decode_mp_reach(&mut val, len)?),
        type_code::MP_UNREACH_NLRI => Attr::MpUnreach(decode_mp_unreach(&mut val, len)?),
        type_code::AS4_PATH => Attr::As4Path(AsPath::decode(&mut val, len, true)?),
        type_code::AS4_AGGREGATOR => {
            expect_len(len, 8, "AS4_AGGREGATOR")?;
            Attr::As4Aggregator(Aggregator {
                asn: Asn(val.get_u32()),
                addr: get_v4(&mut val),
            })
        }
        type_code::LARGE_COMMUNITIES => {
            if len % 12 != 0 {
                return Err(CodecError::Invalid {
                    context: "LARGE_COMMUNITIES length not a multiple of 12",
                });
            }
            let mut out = Vec::with_capacity(len / 12);
            while val.has_remaining() {
                out.push(LargeCommunity {
                    global: val.get_u32(),
                    local1: val.get_u32(),
                    local2: val.get_u32(),
                });
            }
            Attr::LargeCommunities(out)
        }
        _ => Attr::Unknown(RawAttr {
            flags: flags.0,
            type_code,
            value: val.to_vec(),
        }),
    };
    Ok(attr)
}

/// Checks an exact attribute length.
fn expect_len(got: usize, want: usize, context: &'static str) -> CodecResult<()> {
    if got != want {
        Err(CodecError::BadLength {
            declared: got,
            available: want,
            context,
        })
    } else {
        Ok(())
    }
}

/// Reads 4 bytes as an IPv4 address (caller has validated length).
fn get_v4(buf: &mut impl Buf) -> Ipv4Addr {
    let mut oct = [0u8; 4];
    buf.copy_to_slice(&mut oct);
    Ipv4Addr::from(oct)
}

/// Reads 16 bytes as an IPv6 address.
fn get_v6(buf: &mut impl Buf) -> Ipv6Addr {
    let mut oct = [0u8; 16];
    buf.copy_to_slice(&mut oct);
    Ipv6Addr::from(oct)
}

/// Decodes an MP_REACH_NLRI attribute body.
fn decode_mp_reach(val: &mut bytes::Bytes, len: usize) -> CodecResult<MpReach> {
    if len < 5 {
        return Err(CodecError::Truncated {
            needed: 5 - len,
            context: "MP_REACH_NLRI header",
        });
    }
    let afi = Afi::from_code(val.get_u16())?;
    let safi = val.get_u8();
    let nh_len = val.get_u8() as usize;
    ensure(val, nh_len, "MP_REACH next hop")?;
    let next_hop = match (afi, nh_len) {
        (Afi::Ipv4, 4) => NextHop::V4(get_v4(val)),
        (Afi::Ipv6, 16) => NextHop::V6 {
            global: get_v6(val),
            link_local: None,
        },
        (Afi::Ipv6, 32) => NextHop::V6 {
            global: get_v6(val),
            link_local: Some(get_v6(val)),
        },
        _ => {
            return Err(CodecError::Invalid {
                context: "MP_REACH next-hop length inconsistent with AFI",
            })
        }
    };
    ensure(val, 1, "MP_REACH reserved byte")?;
    let _reserved = val.get_u8();
    let mut nlri = Vec::new();
    while val.has_remaining() {
        nlri.push(Prefix::decode_nlri(afi, val)?);
    }
    Ok(MpReach {
        afi,
        safi,
        next_hop,
        nlri,
    })
}

/// Decodes an MP_UNREACH_NLRI attribute body.
fn decode_mp_unreach(val: &mut bytes::Bytes, len: usize) -> CodecResult<MpUnreach> {
    if len < 3 {
        return Err(CodecError::Truncated {
            needed: 3 - len,
            context: "MP_UNREACH_NLRI header",
        });
    }
    let afi = Afi::from_code(val.get_u16())?;
    let safi = val.get_u8();
    let mut withdrawn = Vec::new();
    while val.has_remaining() {
        withdrawn.push(Prefix::decode_nlri(afi, val)?);
    }
    Ok(MpUnreach {
        afi,
        safi,
        withdrawn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_attrs() -> PathAttributes {
        PathAttributes {
            origin: Some(Origin::Igp),
            as_path: Some(AsPath::from_sequence([25_091, 8298, 210_312])),
            next_hop: Some(Ipv4Addr::new(198, 51, 100, 1)),
            med: Some(50),
            local_pref: Some(100),
            atomic_aggregate: true,
            aggregator: Some(Aggregator {
                asn: Asn(12_654),
                addr: Ipv4Addr::new(10, 19, 29, 192),
            }),
            communities: vec![Community::new(25_091, 100), Community::NO_EXPORT],
            large_communities: vec![LargeCommunity {
                global: 210_312,
                local1: 1,
                local2: 2,
            }],
            mp_reach: Some(MpReach {
                afi: Afi::Ipv6,
                safi: 1,
                next_hop: NextHop::V6 {
                    global: "2001:db8::1".parse().unwrap(),
                    link_local: Some("fe80::1".parse().unwrap()),
                },
                nlri: vec!["2a0d:3dc1:1851::/48".parse().unwrap()],
            }),
            mp_unreach: None,
            unknown: Vec::new(),
        }
    }

    #[test]
    fn roundtrip_full_set_4byte() {
        let attrs = full_attrs();
        let mut buf = BytesMut::new();
        attrs.encode(&mut buf, true);
        let len = buf.len();
        assert_eq!(len, attrs.wire_len(true));
        let got = PathAttributes::decode(&mut buf.freeze(), len, true).unwrap();
        assert_eq!(got, attrs);
    }

    #[test]
    fn roundtrip_mp_unreach() {
        let attrs = PathAttributes {
            mp_unreach: Some(MpUnreach {
                afi: Afi::Ipv6,
                safi: 1,
                withdrawn: vec![
                    "2a0d:3dc1:1851::/48".parse().unwrap(),
                    "2a0d:3dc1:30::/48".parse().unwrap(),
                ],
            }),
            ..PathAttributes::default()
        };
        let mut buf = BytesMut::new();
        attrs.encode(&mut buf, true);
        let len = buf.len();
        let got = PathAttributes::decode(&mut buf.freeze(), len, true).unwrap();
        assert_eq!(got, attrs);
    }

    #[test]
    fn two_byte_aggregator_roundtrip() {
        let attrs = PathAttributes {
            aggregator: Some(Aggregator {
                asn: Asn(12_654),
                addr: Ipv4Addr::new(10, 0, 1, 2),
            }),
            ..PathAttributes::default()
        };
        let mut buf = BytesMut::new();
        attrs.encode(&mut buf, false);
        let len = buf.len();
        let got = PathAttributes::decode(&mut buf.freeze(), len, false).unwrap();
        assert_eq!(got.aggregator, attrs.aggregator);
    }

    #[test]
    fn as4_attributes_override_legacy() {
        // Encode a 2-byte AS_PATH with AS_TRANS plus an AS4_PATH carrying the
        // real path, then check the decoder prefers the AS4 data.
        let real = AsPath::from_sequence([3356, 210_312]);
        let mut buf = BytesMut::new();
        let legacy = AsPath::from_sequence([3356, Asn::TRANS.0]);
        let mut body = BytesMut::new();
        legacy.encode(&mut body, false);
        put_attr(&mut buf, 0x40, type_code::AS_PATH, &body);
        let mut body4 = BytesMut::new();
        real.encode(&mut body4, true);
        put_attr(&mut buf, 0xC0, type_code::AS4_PATH, &body4);
        let len = buf.len();
        let got = PathAttributes::decode(&mut buf.freeze(), len, false).unwrap();
        assert_eq!(got.as_path, Some(real));
    }

    #[test]
    fn unknown_attribute_preserved() {
        let mut buf = BytesMut::new();
        put_attr(&mut buf, 0xC0, 99, &[1, 2, 3]);
        let len = buf.len();
        let got = PathAttributes::decode(&mut buf.freeze(), len, true).unwrap();
        assert_eq!(got.unknown.len(), 1);
        assert_eq!(got.unknown[0].type_code, 99);
        assert_eq!(got.unknown[0].value, vec![1, 2, 3]);
        // And it re-encodes verbatim.
        let mut again = BytesMut::new();
        got.encode(&mut again, true);
        let len2 = again.len();
        let got2 = PathAttributes::decode(&mut again.freeze(), len2, true).unwrap();
        assert_eq!(got2.unknown, got.unknown);
    }

    #[test]
    fn extended_length_used_for_long_values() {
        // 80 communities = 320 bytes > 255 ⇒ extended length.
        let attrs = PathAttributes {
            communities: (0..80).map(|i| Community::new(65_000, i)).collect(),
            ..PathAttributes::default()
        };
        let mut buf = BytesMut::new();
        attrs.encode(&mut buf, true);
        assert!(AttrFlags(buf[0]).is_extended());
        let len = buf.len();
        let got = PathAttributes::decode(&mut buf.freeze(), len, true).unwrap();
        assert_eq!(got.communities.len(), 80);
    }

    #[test]
    fn rejects_bad_origin_and_lengths() {
        // ORIGIN with value 9.
        let mut buf = BytesMut::new();
        put_attr(&mut buf, 0x40, type_code::ORIGIN, &[9]);
        let len = buf.len();
        assert!(PathAttributes::decode(&mut buf.freeze(), len, true).is_err());

        // MED with 3 bytes.
        let mut buf = BytesMut::new();
        put_attr(&mut buf, 0x80, type_code::MED, &[0, 0, 1]);
        let len = buf.len();
        assert!(PathAttributes::decode(&mut buf.freeze(), len, true).is_err());

        // COMMUNITIES not a multiple of 4.
        let mut buf = BytesMut::new();
        put_attr(&mut buf, 0xC0, type_code::COMMUNITIES, &[0, 0, 1]);
        let len = buf.len();
        assert!(PathAttributes::decode(&mut buf.freeze(), len, true).is_err());
    }

    #[test]
    fn rejects_truncated_attribute_value() {
        let mut raw = BytesMut::new();
        raw.put_u8(0x40);
        raw.put_u8(type_code::ORIGIN);
        raw.put_u8(5); // claims 5 bytes, provides 1
        raw.put_u8(0);
        let len = raw.len();
        let err = PathAttributes::decode(&mut raw.freeze(), len, true).unwrap_err();
        assert!(matches!(err, CodecError::Truncated { .. }));
    }

    #[test]
    fn mp_reach_nexthop_afi_mismatch_rejected() {
        let mut body = BytesMut::new();
        body.put_u16(2); // IPv6
        body.put_u8(1);
        body.put_u8(4); // 4-byte next hop is invalid for IPv6
        body.put_slice(&[1, 2, 3, 4]);
        body.put_u8(0);
        let mut buf = BytesMut::new();
        put_attr(&mut buf, 0x80, type_code::MP_REACH_NLRI, &body);
        let len = buf.len();
        assert!(PathAttributes::decode(&mut buf.freeze(), len, true).is_err());
    }

    #[test]
    fn empty_attribute_set_roundtrips() {
        let attrs = PathAttributes::default();
        let mut buf = BytesMut::new();
        attrs.encode(&mut buf, true);
        assert!(buf.is_empty());
        let got = PathAttributes::decode(&mut buf.freeze(), 0, true).unwrap();
        assert_eq!(got, attrs);
    }
}
