//! Typed codec errors.
//!
//! Decoders never panic on malformed input; they return a [`CodecError`]
//! describing what went wrong and where. Real-world MRT archives contain
//! truncated and corrupted records (the paper cites FRR emitting ADD-PATH
//! encodings that RIS collectors could not represent), so every length field
//! is validated before it is trusted.

use std::fmt;

/// Errors produced while encoding or decoding BGP/MRT wire formats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before a complete value could be read.
    ///
    /// `needed` is the number of additional bytes that were required,
    /// `context` names the structure being decoded.
    Truncated {
        /// Bytes still required.
        needed: usize,
        /// Human-readable name of the structure being decoded.
        context: &'static str,
    },
    /// A length field describes more bytes than the enclosing structure has.
    BadLength {
        /// The offending declared length.
        declared: usize,
        /// The number of bytes actually available.
        available: usize,
        /// Structure being decoded.
        context: &'static str,
    },
    /// A prefix length exceeded the maximum for its address family
    /// (32 for IPv4, 128 for IPv6).
    BadPrefixLength {
        /// Declared prefix length in bits.
        bits: u8,
        /// Maximum permitted for the family.
        max: u8,
    },
    /// An enumerated field carried an unknown discriminant.
    UnknownVariant {
        /// The unknown raw value.
        value: u32,
        /// Field name.
        context: &'static str,
    },
    /// A BGP message header carried an invalid marker (must be all-ones).
    BadMarker,
    /// A BGP message declared a length outside [19, 4096].
    BadMessageLength(u16),
    /// The attribute flags are inconsistent with the attribute type code
    /// (e.g. a well-known attribute flagged optional).
    BadAttributeFlags {
        /// Attribute type code.
        type_code: u8,
        /// Raw flag byte.
        flags: u8,
    },
    /// An AS_PATH segment had an unknown segment type.
    BadSegmentType(u8),
    /// A value was semantically invalid for its field.
    Invalid {
        /// Explanation of the violation.
        context: &'static str,
    },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated { needed, context } => {
                write!(f, "truncated {context}: {needed} more byte(s) required")
            }
            CodecError::BadLength {
                declared,
                available,
                context,
            } => write!(
                f,
                "bad length in {context}: declared {declared} but only {available} available"
            ),
            CodecError::BadPrefixLength { bits, max } => {
                write!(f, "prefix length {bits} exceeds maximum {max}")
            }
            CodecError::UnknownVariant { value, context } => {
                write!(f, "unknown {context} value {value}")
            }
            CodecError::BadMarker => write!(f, "BGP header marker is not all-ones"),
            CodecError::BadMessageLength(len) => {
                write!(f, "BGP message length {len} outside [19, 4096]")
            }
            CodecError::BadAttributeFlags { type_code, flags } => {
                write!(
                    f,
                    "attribute type {type_code} has inconsistent flags {flags:#010b}"
                )
            }
            CodecError::BadSegmentType(t) => write!(f, "unknown AS_PATH segment type {t}"),
            CodecError::Invalid { context } => write!(f, "invalid value: {context}"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Convenience alias used throughout the codecs.
pub type CodecResult<T> = Result<T, CodecError>;

/// Checks that `buf` has at least `needed` readable bytes.
///
/// Returns [`CodecError::Truncated`] naming `context` otherwise. This is the
/// single bounds-check primitive every decoder goes through, which keeps the
/// "validate before trust" rule easy to audit.
pub fn ensure(buf: &impl bytes::Buf, needed: usize, context: &'static str) -> CodecResult<()> {
    if buf.remaining() < needed {
        Err(CodecError::Truncated {
            needed: needed - buf.remaining(),
            context,
        })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let cases: Vec<(CodecError, &str)> = vec![
            (
                CodecError::Truncated {
                    needed: 3,
                    context: "nlri",
                },
                "truncated nlri: 3 more byte(s) required",
            ),
            (
                CodecError::BadPrefixLength { bits: 33, max: 32 },
                "prefix length 33 exceeds maximum 32",
            ),
            (CodecError::BadMarker, "BGP header marker is not all-ones"),
            (
                CodecError::BadMessageLength(4097),
                "BGP message length 4097 outside [19, 4096]",
            ),
        ];
        for (err, expect) in cases {
            assert_eq!(err.to_string(), expect);
        }
    }

    #[test]
    fn ensure_passes_and_fails() {
        let buf = &b"abc"[..];
        assert!(ensure(&buf, 3, "x").is_ok());
        let err = ensure(&buf, 5, "x").unwrap_err();
        assert_eq!(
            err,
            CodecError::Truncated {
                needed: 2,
                context: "x"
            }
        );
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err(_e: &dyn std::error::Error) {}
        takes_err(&CodecError::BadMarker);
    }
}
