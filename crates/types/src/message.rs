//! BGP-4 messages (RFC 4271 §4).
//!
//! MRT `BGP4MP_MESSAGE` records embed a complete BGP message — 16-byte
//! all-ones marker, length, type, body — so this codec is required to read
//! RIS raw data. Only UPDATE gets a full typed model; OPEN / KEEPALIVE /
//! NOTIFICATION are modelled minimally (RIS archives contain them around
//! session resets, and a tolerant pipeline must at least frame and skip
//! them).

use crate::asn::Asn;
use crate::attrs::PathAttributes;
use crate::error::{ensure, CodecError, CodecResult};
use crate::prefix::{Afi, Prefix};
use bytes::{Buf, BufMut, BytesMut};
use std::net::Ipv4Addr;

/// BGP message type codes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageKind {
    /// OPEN (1).
    Open,
    /// UPDATE (2).
    Update,
    /// NOTIFICATION (3).
    Notification,
    /// KEEPALIVE (4).
    Keepalive,
}

impl MessageKind {
    /// Wire value.
    pub fn code(self) -> u8 {
        match self {
            MessageKind::Open => 1,
            MessageKind::Update => 2,
            MessageKind::Notification => 3,
            MessageKind::Keepalive => 4,
        }
    }

    /// Parses a wire value.
    pub fn from_code(code: u8) -> CodecResult<MessageKind> {
        match code {
            1 => Ok(MessageKind::Open),
            2 => Ok(MessageKind::Update),
            3 => Ok(MessageKind::Notification),
            4 => Ok(MessageKind::Keepalive),
            other => Err(CodecError::UnknownVariant {
                value: other as u32,
                context: "BGP message type",
            }),
        }
    }
}

/// A BGP UPDATE message.
///
/// IPv4 reachability uses the legacy body fields; IPv6 (every beacon in the
/// paper's own experiment) travels in `attrs.mp_reach` / `attrs.mp_unreach`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct BgpUpdate {
    /// Withdrawn IPv4 routes (legacy field).
    pub withdrawn: Vec<Prefix>,
    /// Path attributes.
    pub attrs: PathAttributes,
    /// Announced IPv4 routes (legacy field).
    pub nlri: Vec<Prefix>,
}

impl BgpUpdate {
    /// All prefixes announced by this update, across both families.
    pub fn announced(&self) -> Vec<Prefix> {
        self.announced_iter().collect()
    }

    /// All prefixes withdrawn by this update, across both families.
    pub fn withdrawn_all(&self) -> Vec<Prefix> {
        self.withdrawn_iter().collect()
    }

    /// Iterates every announced prefix (legacy NLRI then MP_REACH, the
    /// [`BgpUpdate::announced`] order) without allocating.
    pub fn announced_iter(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.nlri.iter().copied().chain(
            self.attrs
                .mp_reach
                .iter()
                .flat_map(|mp| mp.nlri.iter().copied()),
        )
    }

    /// Iterates every withdrawn prefix (legacy field then MP_UNREACH, the
    /// [`BgpUpdate::withdrawn_all`] order) without allocating.
    pub fn withdrawn_iter(&self) -> impl Iterator<Item = Prefix> + '_ {
        self.withdrawn.iter().copied().chain(
            self.attrs
                .mp_unreach
                .iter()
                .flat_map(|mp| mp.withdrawn.iter().copied()),
        )
    }

    /// True if the update neither announces nor withdraws anything
    /// (an End-of-RIB marker, RFC 4724).
    pub fn is_end_of_rib(&self) -> bool {
        self.announced_iter().next().is_none() && self.withdrawn_iter().next().is_none()
    }

    /// Encodes the UPDATE body (no message header).
    pub fn encode_body(&self, buf: &mut impl BufMut, four_byte: bool) {
        let mut wd = BytesMut::new();
        for p in &self.withdrawn {
            debug_assert_eq!(p.afi(), Afi::Ipv4, "legacy withdrawn field is IPv4-only");
            p.encode_nlri(&mut wd);
        }
        buf.put_u16(wd.len() as u16);
        buf.put_slice(&wd);

        let mut attrs = BytesMut::new();
        self.attrs.encode(&mut attrs, four_byte);
        buf.put_u16(attrs.len() as u16);
        buf.put_slice(&attrs);

        for p in &self.nlri {
            debug_assert_eq!(p.afi(), Afi::Ipv4, "legacy NLRI field is IPv4-only");
            p.encode_nlri(buf);
        }
    }

    /// Decodes an UPDATE body occupying exactly `total` bytes.
    pub fn decode_body(
        buf: &mut impl Buf,
        total: usize,
        four_byte: bool,
    ) -> CodecResult<BgpUpdate> {
        ensure(buf, total, "UPDATE body")?;
        let mut sub = buf.copy_to_bytes(total);

        ensure(&sub, 2, "withdrawn routes length")?;
        let wd_len = sub.get_u16() as usize;
        if wd_len > sub.remaining() {
            return Err(CodecError::BadLength {
                declared: wd_len,
                available: sub.remaining(),
                context: "withdrawn routes",
            });
        }
        let withdrawn = Prefix::decode_nlri_run(Afi::Ipv4, &mut sub, wd_len)?;

        ensure(&sub, 2, "path attributes length")?;
        let at_len = sub.get_u16() as usize;
        if at_len > sub.remaining() {
            return Err(CodecError::BadLength {
                declared: at_len,
                available: sub.remaining(),
                context: "path attributes",
            });
        }
        let attrs = PathAttributes::decode(&mut sub, at_len, four_byte)?;

        let nlri_len = sub.remaining();
        let nlri = Prefix::decode_nlri_run(Afi::Ipv4, &mut sub, nlri_len)?;

        Ok(BgpUpdate {
            withdrawn,
            attrs,
            nlri,
        })
    }
}

/// A minimal BGP OPEN message (enough to frame and to carry the peer AS).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BgpOpen {
    /// BGP version, always 4.
    pub version: u8,
    /// 2-byte My Autonomous System field (AS_TRANS for wide ASNs).
    pub my_as: u16,
    /// Hold time in seconds.
    pub hold_time: u16,
    /// BGP identifier (router id).
    pub bgp_id: Ipv4Addr,
    /// Raw optional parameters (capabilities), not interpreted.
    pub opt_params: Vec<u8>,
}

impl BgpOpen {
    /// A conventional OPEN for an AS with 180 s hold time.
    pub fn new(asn: Asn, bgp_id: Ipv4Addr) -> BgpOpen {
        BgpOpen {
            version: 4,
            my_as: asn.as_u16_or_trans(),
            hold_time: 180,
            bgp_id,
            opt_params: Vec::new(),
        }
    }
}

/// A complete BGP message.
// UPDATE dominates both the archives and this enum's size; boxing it would
// complicate every construction site for no measured benefit.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BgpMessage {
    /// OPEN.
    Open(BgpOpen),
    /// UPDATE.
    Update(BgpUpdate),
    /// NOTIFICATION: (error code, subcode, data).
    Notification(u8, u8, Vec<u8>),
    /// KEEPALIVE.
    Keepalive,
}

/// Minimum legal BGP message length (bare header).
pub const MIN_MESSAGE_LEN: u16 = 19;
/// Maximum legal BGP message length.
pub const MAX_MESSAGE_LEN: u16 = 4096;

impl BgpMessage {
    /// The message kind.
    pub fn kind(&self) -> MessageKind {
        match self {
            BgpMessage::Open(_) => MessageKind::Open,
            BgpMessage::Update(_) => MessageKind::Update,
            BgpMessage::Notification(..) => MessageKind::Notification,
            BgpMessage::Keepalive => MessageKind::Keepalive,
        }
    }

    /// Encodes the message with header (marker, length, type).
    pub fn encode(&self, buf: &mut impl BufMut, four_byte: bool) {
        let mut body = BytesMut::new();
        match self {
            BgpMessage::Open(open) => {
                body.put_u8(open.version);
                body.put_u16(open.my_as);
                body.put_u16(open.hold_time);
                body.put_slice(&open.bgp_id.octets());
                body.put_u8(open.opt_params.len() as u8);
                body.put_slice(&open.opt_params);
            }
            BgpMessage::Update(update) => update.encode_body(&mut body, four_byte),
            BgpMessage::Notification(code, sub, data) => {
                body.put_u8(*code);
                body.put_u8(*sub);
                body.put_slice(data);
            }
            BgpMessage::Keepalive => {}
        }
        buf.put_slice(&[0xFF; 16]);
        buf.put_u16(MIN_MESSAGE_LEN + body.len() as u16);
        buf.put_u8(self.kind().code());
        buf.put_slice(&body);
    }

    /// Encoded length in bytes, header included.
    pub fn wire_len(&self, four_byte: bool) -> usize {
        let mut buf = BytesMut::new();
        self.encode(&mut buf, four_byte);
        buf.len()
    }

    /// Decodes one complete message from `buf`.
    pub fn decode(buf: &mut impl Buf, four_byte: bool) -> CodecResult<BgpMessage> {
        ensure(buf, MIN_MESSAGE_LEN as usize, "BGP message header")?;
        let mut marker = [0u8; 16];
        buf.copy_to_slice(&mut marker);
        if marker != [0xFF; 16] {
            return Err(CodecError::BadMarker);
        }
        let len = buf.get_u16();
        if !(MIN_MESSAGE_LEN..=MAX_MESSAGE_LEN).contains(&len) {
            return Err(CodecError::BadMessageLength(len));
        }
        let kind = MessageKind::from_code(buf.get_u8())?;
        let body_len = (len - MIN_MESSAGE_LEN) as usize;
        ensure(buf, body_len, "BGP message body")?;
        match kind {
            MessageKind::Open => {
                let mut body = buf.copy_to_bytes(body_len);
                ensure(&body, 10, "OPEN body")?;
                let version = body.get_u8();
                let my_as = body.get_u16();
                let hold_time = body.get_u16();
                let mut id = [0u8; 4];
                body.copy_to_slice(&mut id);
                let opt_len = body.get_u8() as usize;
                ensure(&body, opt_len, "OPEN optional parameters")?;
                let opt_params = body.copy_to_bytes(opt_len).to_vec();
                Ok(BgpMessage::Open(BgpOpen {
                    version,
                    my_as,
                    hold_time,
                    bgp_id: Ipv4Addr::from(id),
                    opt_params,
                }))
            }
            MessageKind::Update => Ok(BgpMessage::Update(BgpUpdate::decode_body(
                buf, body_len, four_byte,
            )?)),
            MessageKind::Notification => {
                let mut body = buf.copy_to_bytes(body_len);
                ensure(&body, 2, "NOTIFICATION body")?;
                let code = body.get_u8();
                let sub = body.get_u8();
                Ok(BgpMessage::Notification(code, sub, body.to_vec()))
            }
            MessageKind::Keepalive => {
                if body_len != 0 {
                    return Err(CodecError::BadLength {
                        declared: body_len,
                        available: 0,
                        context: "KEEPALIVE body",
                    });
                }
                Ok(BgpMessage::Keepalive)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::aspath::AsPath;
    use crate::attrs::{MpReach, MpUnreach, NextHop, Origin};

    fn v6_announce() -> BgpUpdate {
        BgpUpdate {
            withdrawn: vec![],
            attrs: PathAttributes {
                origin: Some(Origin::Igp),
                as_path: Some(AsPath::from_sequence([25_091, 8298, 210_312])),
                mp_reach: Some(MpReach {
                    afi: Afi::Ipv6,
                    safi: 1,
                    next_hop: NextHop::V6 {
                        global: "2001:db8::1".parse().unwrap(),
                        link_local: None,
                    },
                    nlri: vec!["2a0d:3dc1:1145::/48".parse().unwrap()],
                }),
                ..PathAttributes::default()
            },
            nlri: vec![],
        }
    }

    #[test]
    fn update_roundtrip_v4() {
        let update = BgpUpdate {
            withdrawn: vec![Prefix::v4(84, 205, 64, 0, 24)],
            attrs: PathAttributes::announcement(AsPath::from_sequence([12_654])),
            nlri: vec![Prefix::v4(84, 205, 65, 0, 24)],
        };
        let msg = BgpMessage::Update(update.clone());
        let mut buf = BytesMut::new();
        msg.encode(&mut buf, true);
        let got = BgpMessage::decode(&mut buf.freeze(), true).unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn update_roundtrip_v6_mp() {
        let msg = BgpMessage::Update(v6_announce());
        let mut buf = BytesMut::new();
        msg.encode(&mut buf, true);
        assert_eq!(buf.len(), msg.wire_len(true));
        let got = BgpMessage::decode(&mut buf.freeze(), true).unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn announced_and_withdrawn_union_families() {
        let mut update = v6_announce();
        update.nlri = vec![Prefix::v4(84, 205, 64, 0, 24)];
        update.attrs.mp_unreach = Some(MpUnreach {
            afi: Afi::Ipv6,
            safi: 1,
            withdrawn: vec!["2a0d:3dc1:30::/48".parse().unwrap()],
        });
        update.withdrawn = vec![Prefix::v4(84, 205, 66, 0, 24)];
        assert_eq!(update.announced().len(), 2);
        assert_eq!(update.withdrawn_all().len(), 2);
        assert!(!update.is_end_of_rib());
    }

    #[test]
    fn end_of_rib() {
        assert!(BgpUpdate::default().is_end_of_rib());
    }

    #[test]
    fn keepalive_roundtrip_and_framing() {
        let mut buf = BytesMut::new();
        BgpMessage::Keepalive.encode(&mut buf, true);
        assert_eq!(buf.len(), 19);
        let got = BgpMessage::decode(&mut buf.freeze(), true).unwrap();
        assert_eq!(got, BgpMessage::Keepalive);
    }

    #[test]
    fn open_roundtrip() {
        let open = BgpMessage::Open(BgpOpen::new(Asn(210_312), Ipv4Addr::new(192, 0, 2, 1)));
        let mut buf = BytesMut::new();
        open.encode(&mut buf, true);
        let got = BgpMessage::decode(&mut buf.freeze(), true).unwrap();
        assert_eq!(got, open);
        if let BgpMessage::Open(o) = got {
            assert_eq!(o.my_as, Asn::TRANS.0 as u16);
        }
    }

    #[test]
    fn notification_roundtrip() {
        let msg = BgpMessage::Notification(6, 2, vec![9]);
        let mut buf = BytesMut::new();
        msg.encode(&mut buf, true);
        let got = BgpMessage::decode(&mut buf.freeze(), true).unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn rejects_bad_marker() {
        let msg = BgpMessage::Keepalive;
        let mut buf = BytesMut::new();
        msg.encode(&mut buf, true);
        buf[0] = 0;
        let err = BgpMessage::decode(&mut buf.freeze(), true).unwrap_err();
        assert_eq!(err, CodecError::BadMarker);
    }

    #[test]
    fn rejects_bad_length_field() {
        let mut buf = BytesMut::new();
        BgpMessage::Keepalive.encode(&mut buf, true);
        buf[16] = 0xFF;
        buf[17] = 0xFF; // 65535
        let err = BgpMessage::decode(&mut buf.freeze(), true).unwrap_err();
        assert_eq!(err, CodecError::BadMessageLength(65_535));
    }

    #[test]
    fn rejects_update_with_lying_withdrawn_length() {
        let update = BgpUpdate::default();
        let msg = BgpMessage::Update(update);
        let mut buf = BytesMut::new();
        msg.encode(&mut buf, true);
        // Body starts at offset 19: withdrawn-len u16. Claim 100 bytes.
        buf[19] = 0;
        buf[20] = 100;
        let err = BgpMessage::decode(&mut buf.freeze(), true).unwrap_err();
        assert!(matches!(err, CodecError::BadLength { .. }));
    }

    #[test]
    fn decode_consumes_exactly_one_message() {
        let mut buf = BytesMut::new();
        BgpMessage::Keepalive.encode(&mut buf, true);
        BgpMessage::Update(v6_announce()).encode(&mut buf, true);
        let mut bytes = buf.freeze();
        let first = BgpMessage::decode(&mut bytes, true).unwrap();
        assert_eq!(first, BgpMessage::Keepalive);
        let second = BgpMessage::decode(&mut bytes, true).unwrap();
        assert!(matches!(second, BgpMessage::Update(_)));
        assert!(!bytes.has_remaining());
    }
}
