//! BGP communities (RFC 1997) and Large Communities (RFC 8092).
//!
//! RIS beacons carry informational communities, and the related-work section
//! of the paper cites the NLNOG RING Large BGP Communities beacon, so both
//! forms are modelled and carried through the codecs.

use std::fmt;
use std::str::FromStr;

/// A classic 32-bit community, conventionally `ASN:value`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Community(pub u32);

impl Community {
    /// `NO_EXPORT` well-known community.
    pub const NO_EXPORT: Community = Community(0xFFFF_FF01);
    /// `NO_ADVERTISE` well-known community.
    pub const NO_ADVERTISE: Community = Community(0xFFFF_FF02);

    /// Builds from the conventional `asn:value` halves.
    pub fn new(asn: u16, value: u16) -> Community {
        Community(((asn as u32) << 16) | value as u32)
    }

    /// The high 16 bits (conventionally an ASN).
    pub fn asn_part(self) -> u16 {
        (self.0 >> 16) as u16
    }

    /// The low 16 bits.
    pub fn value_part(self) -> u16 {
        self.0 as u16
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.asn_part(), self.value_part())
    }
}

/// Error parsing a community from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommunityParseError(pub String);

impl fmt::Display for CommunityParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid community: {:?}", self.0)
    }
}

impl std::error::Error for CommunityParseError {}

impl FromStr for Community {
    type Err = CommunityParseError;

    fn from_str(s: &str) -> Result<Community, CommunityParseError> {
        let (a, v) = s
            .split_once(':')
            .ok_or_else(|| CommunityParseError(s.into()))?;
        let a: u16 = a.parse().map_err(|_| CommunityParseError(s.into()))?;
        let v: u16 = v.parse().map_err(|_| CommunityParseError(s.into()))?;
        Ok(Community::new(a, v))
    }
}

/// A Large Community (RFC 8092): `global:local1:local2`, 12 bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LargeCommunity {
    /// Global administrator (an ASN).
    pub global: u32,
    /// First local data part.
    pub local1: u32,
    /// Second local data part.
    pub local2: u32,
}

impl fmt::Display for LargeCommunity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}:{}", self.global, self.local1, self.local2)
    }
}

impl FromStr for LargeCommunity {
    type Err = CommunityParseError;

    fn from_str(s: &str) -> Result<LargeCommunity, CommunityParseError> {
        let parts: Vec<&str> = s.split(':').collect();
        if parts.len() != 3 {
            return Err(CommunityParseError(s.into()));
        }
        let mut nums = [0u32; 3];
        for (slot, part) in nums.iter_mut().zip(&parts) {
            *slot = part.parse().map_err(|_| CommunityParseError(s.into()))?;
        }
        Ok(LargeCommunity {
            global: nums[0],
            local1: nums[1],
            local2: nums[2],
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn halves_roundtrip() {
        let c = Community::new(2914, 420);
        assert_eq!(c.asn_part(), 2914);
        assert_eq!(c.value_part(), 420);
        assert_eq!(c.to_string(), "2914:420");
        assert_eq!("2914:420".parse::<Community>().unwrap(), c);
    }

    #[test]
    fn well_known_values() {
        assert_eq!(Community::NO_EXPORT.0, 0xFFFF_FF01);
        assert_eq!(Community::NO_EXPORT.to_string(), "65535:65281");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("2914".parse::<Community>().is_err());
        assert!("2914:99999".parse::<Community>().is_err());
        assert!("x:1".parse::<Community>().is_err());
    }

    #[test]
    fn large_community_roundtrip() {
        let lc: LargeCommunity = "210312:1:15169".parse().unwrap();
        assert_eq!(
            lc,
            LargeCommunity {
                global: 210_312,
                local1: 1,
                local2: 15_169
            }
        );
        assert_eq!(lc.to_string(), "210312:1:15169");
        assert!("1:2".parse::<LargeCommunity>().is_err());
        assert!("1:2:3:4".parse::<LargeCommunity>().is_err());
    }
}
