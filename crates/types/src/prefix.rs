//! IP prefixes and their NLRI wire encoding.
//!
//! The NLRI encoding (RFC 4271 §4.3) is a length octet (in bits) followed by
//! the minimum number of octets holding the prefix. It is shared by the
//! UPDATE body (IPv4), MP_REACH_NLRI / MP_UNREACH_NLRI (IPv6, RFC 4760) and
//! the TABLE_DUMP_V2 RIB entry headers (RFC 6396), so it lives here once.

use crate::error::{ensure, CodecError, CodecResult};
use bytes::{Buf, BufMut};
use std::cmp::Ordering;
use std::fmt;
use std::net::{Ipv4Addr, Ipv6Addr};
use std::str::FromStr;

/// Address Family Identifier (RFC 4760 / IANA).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Afi {
    /// IPv4 (AFI 1).
    Ipv4,
    /// IPv6 (AFI 2).
    Ipv6,
}

impl Afi {
    /// The IANA AFI code.
    pub fn code(self) -> u16 {
        match self {
            Afi::Ipv4 => 1,
            Afi::Ipv6 => 2,
        }
    }

    /// Parses an IANA AFI code.
    pub fn from_code(code: u16) -> CodecResult<Afi> {
        match code {
            1 => Ok(Afi::Ipv4),
            2 => Ok(Afi::Ipv6),
            other => Err(CodecError::UnknownVariant {
                value: other as u32,
                context: "AFI",
            }),
        }
    }

    /// Maximum prefix length for this family.
    pub fn max_bits(self) -> u8 {
        match self {
            Afi::Ipv4 => 32,
            Afi::Ipv6 => 128,
        }
    }
}

impl fmt::Display for Afi {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Afi::Ipv4 => write!(f, "IPv4"),
            Afi::Ipv6 => write!(f, "IPv6"),
        }
    }
}

/// An IPv4 network prefix. The address is always stored masked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv4Net {
    addr: Ipv4Addr,
    len: u8,
}

/// An IPv6 network prefix. The address is always stored masked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Ipv6Net {
    addr: Ipv6Addr,
    len: u8,
}

impl Ipv4Net {
    /// Builds a prefix, masking `addr` to `len` bits.
    ///
    /// Returns an error if `len > 32`.
    pub fn new(addr: Ipv4Addr, len: u8) -> CodecResult<Ipv4Net> {
        if len > 32 {
            return Err(CodecError::BadPrefixLength { bits: len, max: 32 });
        }
        let raw = u32::from(addr);
        let masked = if len == 0 {
            0
        } else {
            raw & (u32::MAX << (32 - len))
        };
        Ok(Ipv4Net {
            addr: Ipv4Addr::from(masked),
            len,
        })
    }

    /// The (masked) network address.
    pub fn addr(self) -> Ipv4Addr {
        self.addr
    }

    /// Prefix length in bits.
    #[allow(clippy::len_without_is_empty)] // a bit-length, not a container
    pub fn len(self) -> u8 {
        self.len
    }

    /// True if this prefix contains `other` (i.e. `other` is equal or more
    /// specific).
    pub fn contains(self, other: Ipv4Net) -> bool {
        if other.len < self.len {
            return false;
        }
        let mask = if self.len == 0 {
            0
        } else {
            u32::MAX << (32 - self.len)
        };
        (u32::from(other.addr) & mask) == u32::from(self.addr)
    }

    /// True if this prefix covers the host address `ip`.
    pub fn contains_addr(self, ip: Ipv4Addr) -> bool {
        let mask = if self.len == 0 {
            0
        } else {
            u32::MAX << (32 - self.len)
        };
        (u32::from(ip) & mask) == u32::from(self.addr)
    }
}

impl Ipv6Net {
    /// Builds a prefix, masking `addr` to `len` bits.
    ///
    /// Returns an error if `len > 128`.
    pub fn new(addr: Ipv6Addr, len: u8) -> CodecResult<Ipv6Net> {
        if len > 128 {
            return Err(CodecError::BadPrefixLength {
                bits: len,
                max: 128,
            });
        }
        let raw = u128::from(addr);
        let masked = if len == 0 {
            0
        } else {
            raw & (u128::MAX << (128 - len))
        };
        Ok(Ipv6Net {
            addr: Ipv6Addr::from(masked),
            len,
        })
    }

    /// The (masked) network address.
    pub fn addr(self) -> Ipv6Addr {
        self.addr
    }

    /// Prefix length in bits.
    #[allow(clippy::len_without_is_empty)] // a bit-length, not a container
    pub fn len(self) -> u8 {
        self.len
    }

    /// True if this prefix contains `other`.
    pub fn contains(self, other: Ipv6Net) -> bool {
        if other.len < self.len {
            return false;
        }
        let mask = if self.len == 0 {
            0
        } else {
            u128::MAX << (128 - self.len)
        };
        (u128::from(other.addr) & mask) == u128::from(self.addr)
    }

    /// True if this prefix covers the host address `ip`.
    pub fn contains_addr(self, ip: Ipv6Addr) -> bool {
        let mask = if self.len == 0 {
            0
        } else {
            u128::MAX << (128 - self.len)
        };
        (u128::from(ip) & mask) == u128::from(self.addr)
    }
}

/// An IP prefix of either family.
///
/// Ordering sorts IPv4 before IPv6, then by address, then by length —
/// a stable total order used for deterministic iteration in the simulators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Prefix {
    /// An IPv4 prefix.
    V4(Ipv4Net),
    /// An IPv6 prefix.
    V6(Ipv6Net),
}

impl Prefix {
    /// Builds an IPv4 prefix.
    pub fn v4(a: u8, b: u8, c: u8, d: u8, len: u8) -> Prefix {
        Prefix::V4(Ipv4Net::new(Ipv4Addr::new(a, b, c, d), len).expect("static prefix"))
    }

    /// Builds an IPv6 prefix from segments.
    pub fn v6(segs: [u16; 8], len: u8) -> Prefix {
        Prefix::V6(Ipv6Net::new(Ipv6Addr::from(segs), len).expect("static prefix"))
    }

    /// The address family of this prefix.
    pub fn afi(self) -> Afi {
        match self {
            Prefix::V4(_) => Afi::Ipv4,
            Prefix::V6(_) => Afi::Ipv6,
        }
    }

    /// Prefix length in bits.
    #[allow(clippy::len_without_is_empty)] // a bit-length, not a container
    pub fn len(self) -> u8 {
        match self {
            Prefix::V4(p) => p.len(),
            Prefix::V6(p) => p.len(),
        }
    }

    /// True for the 0-length default route.
    pub fn is_default(self) -> bool {
        self.len() == 0
    }

    /// True if this prefix contains `other` (same family, equal or more
    /// specific).
    pub fn contains(self, other: Prefix) -> bool {
        match (self, other) {
            (Prefix::V4(a), Prefix::V4(b)) => a.contains(b),
            (Prefix::V6(a), Prefix::V6(b)) => a.contains(b),
            _ => false,
        }
    }

    /// The raw network bits as a u128 (IPv4 mapped into the low 32 bits).
    fn bits(self) -> u128 {
        match self {
            Prefix::V4(p) => u32::from(p.addr()) as u128,
            Prefix::V6(p) => u128::from(p.addr()),
        }
    }

    /// Number of octets the NLRI encoding of this prefix occupies, including
    /// the length octet.
    pub fn nlri_wire_len(self) -> usize {
        1 + (self.len() as usize).div_ceil(8)
    }

    /// Encodes as NLRI: one length octet (bits) + ceil(len/8) address octets.
    pub fn encode_nlri(self, buf: &mut impl BufMut) {
        let len = self.len();
        buf.put_u8(len);
        let n = (len as usize).div_ceil(8);
        match self {
            Prefix::V4(p) => buf.put_slice(&p.addr().octets()[..n]),
            Prefix::V6(p) => buf.put_slice(&p.addr().octets()[..n]),
        }
    }

    /// Decodes one NLRI prefix of family `afi` from `buf`.
    pub fn decode_nlri(afi: Afi, buf: &mut impl Buf) -> CodecResult<Prefix> {
        ensure(buf, 1, "NLRI length octet")?;
        let len = buf.get_u8();
        if len > afi.max_bits() {
            return Err(CodecError::BadPrefixLength {
                bits: len,
                max: afi.max_bits(),
            });
        }
        let n = (len as usize).div_ceil(8);
        ensure(buf, n, "NLRI prefix octets")?;
        match afi {
            Afi::Ipv4 => {
                let mut oct = [0u8; 4];
                buf.copy_to_slice(&mut oct[..n]);
                Ok(Prefix::V4(Ipv4Net::new(Ipv4Addr::from(oct), len)?))
            }
            Afi::Ipv6 => {
                let mut oct = [0u8; 16];
                buf.copy_to_slice(&mut oct[..n]);
                Ok(Prefix::V6(Ipv6Net::new(Ipv6Addr::from(oct), len)?))
            }
        }
    }

    /// Decodes a run of NLRI prefixes filling exactly `total` bytes.
    pub fn decode_nlri_run(afi: Afi, buf: &mut impl Buf, total: usize) -> CodecResult<Vec<Prefix>> {
        ensure(buf, total, "NLRI run")?;
        let mut sub = buf.copy_to_bytes(total);
        let mut out = Vec::new();
        while sub.has_remaining() {
            out.push(Prefix::decode_nlri(afi, &mut sub)?);
        }
        Ok(out)
    }
}

impl PartialOrd for Prefix {
    fn partial_cmp(&self, other: &Prefix) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Prefix {
    fn cmp(&self, other: &Prefix) -> Ordering {
        self.afi()
            .cmp(&other.afi())
            .then(self.bits().cmp(&other.bits()))
            .then(self.len().cmp(&other.len()))
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Prefix::V4(p) => write!(f, "{}/{}", p.addr(), p.len()),
            Prefix::V6(p) => write!(f, "{}/{}", p.addr(), p.len()),
        }
    }
}

/// Error parsing a [`Prefix`] from `addr/len` text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixParseError(pub String);

impl fmt::Display for PrefixParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid prefix: {:?}", self.0)
    }
}

impl std::error::Error for PrefixParseError {}

impl FromStr for Prefix {
    type Err = PrefixParseError;

    fn from_str(s: &str) -> Result<Prefix, PrefixParseError> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| PrefixParseError(s.into()))?;
        let len: u8 = len.parse().map_err(|_| PrefixParseError(s.into()))?;
        if let Ok(v4) = addr.parse::<Ipv4Addr>() {
            return Ipv4Net::new(v4, len)
                .map(Prefix::V4)
                .map_err(|_| PrefixParseError(s.into()));
        }
        if let Ok(v6) = addr.parse::<Ipv6Addr>() {
            return Ipv6Net::new(v6, len)
                .map(Prefix::V6)
                .map_err(|_| PrefixParseError(s.into()));
        }
        Err(PrefixParseError(s.into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::BytesMut;

    #[test]
    fn masks_host_bits() {
        let p = Ipv4Net::new(Ipv4Addr::new(10, 1, 2, 3), 16).unwrap();
        assert_eq!(p.addr(), Ipv4Addr::new(10, 1, 0, 0));
        let p6 = Ipv6Net::new("2a0d:3dc1:1851::1".parse().unwrap(), 48).unwrap();
        assert_eq!(p6.addr(), "2a0d:3dc1:1851::".parse::<Ipv6Addr>().unwrap());
    }

    #[test]
    fn rejects_oversized_length() {
        assert!(Ipv4Net::new(Ipv4Addr::UNSPECIFIED, 33).is_err());
        assert!(Ipv6Net::new(Ipv6Addr::UNSPECIFIED, 129).is_err());
    }

    #[test]
    fn containment() {
        let covering: Prefix = "2001:db8::/32".parse().unwrap();
        let specific: Prefix = "2001:db8::/48".parse().unwrap();
        let other: Prefix = "2001:db9::/48".parse().unwrap();
        assert!(covering.contains(specific));
        assert!(!specific.contains(covering));
        assert!(!covering.contains(other));
        assert!(covering.contains(covering));
        // Cross-family never contains.
        let v4: Prefix = "10.0.0.0/8".parse().unwrap();
        assert!(!covering.contains(v4));
        assert!(!v4.contains(covering));
    }

    #[test]
    fn contains_addr() {
        let p = Ipv6Net::new("2001:db8::".parse().unwrap(), 48).unwrap();
        assert!(p.contains_addr("2001:db8::1".parse().unwrap()));
        assert!(!p.contains_addr("2001:db8:1::1".parse().unwrap()));
        let v4 = Ipv4Net::new(Ipv4Addr::new(192, 0, 2, 0), 24).unwrap();
        assert!(v4.contains_addr(Ipv4Addr::new(192, 0, 2, 200)));
        assert!(!v4.contains_addr(Ipv4Addr::new(192, 0, 3, 1)));
    }

    #[test]
    fn default_route() {
        let d4 = Ipv4Net::new(Ipv4Addr::new(1, 2, 3, 4), 0).unwrap();
        assert_eq!(d4.addr(), Ipv4Addr::UNSPECIFIED);
        assert!(d4.contains_addr(Ipv4Addr::new(8, 8, 8, 8)));
        assert!(Prefix::V4(d4).is_default());
    }

    #[test]
    fn nlri_roundtrip_v4() {
        let p = Prefix::v4(93, 175, 146, 0, 24);
        let mut buf = BytesMut::new();
        p.encode_nlri(&mut buf);
        assert_eq!(&buf[..], &[24, 93, 175, 146]);
        assert_eq!(p.nlri_wire_len(), 4);
        let got = Prefix::decode_nlri(Afi::Ipv4, &mut buf.freeze()).unwrap();
        assert_eq!(got, p);
    }

    #[test]
    fn nlri_roundtrip_v6() {
        let p: Prefix = "2a0d:3dc1:1851::/48".parse().unwrap();
        let mut buf = BytesMut::new();
        p.encode_nlri(&mut buf);
        assert_eq!(&buf[..], &[48, 0x2a, 0x0d, 0x3d, 0xc1, 0x18, 0x51]);
        let got = Prefix::decode_nlri(Afi::Ipv6, &mut buf.freeze()).unwrap();
        assert_eq!(got, p);
    }

    #[test]
    fn nlri_run_decodes_multiple_and_rejects_trailing_garbage() {
        let a = Prefix::v4(10, 0, 0, 0, 8);
        let b = Prefix::v4(192, 0, 2, 0, 24);
        let mut buf = BytesMut::new();
        a.encode_nlri(&mut buf);
        b.encode_nlri(&mut buf);
        let total = buf.len();
        let got = Prefix::decode_nlri_run(Afi::Ipv4, &mut buf.freeze(), total).unwrap();
        assert_eq!(got, vec![a, b]);

        // A run whose declared size splits a prefix is an error.
        let mut buf = BytesMut::new();
        b.encode_nlri(&mut buf);
        let err = Prefix::decode_nlri_run(Afi::Ipv4, &mut buf.freeze(), 2).unwrap_err();
        assert!(matches!(err, CodecError::Truncated { .. }));
    }

    #[test]
    fn nlri_rejects_bad_bits() {
        let bytes: &[u8] = &[33, 1, 2, 3, 4, 5];
        let err = Prefix::decode_nlri(Afi::Ipv4, &mut &bytes[..]).unwrap_err();
        assert_eq!(err, CodecError::BadPrefixLength { bits: 33, max: 32 });
    }

    #[test]
    fn ordering_is_total_and_stable() {
        let mut v: Vec<Prefix> = vec![
            "2a0d:3dc1:1::/48".parse().unwrap(),
            "10.0.0.0/8".parse().unwrap(),
            "10.0.0.0/16".parse().unwrap(),
            "2a0d:3dc1::/32".parse().unwrap(),
        ];
        v.sort();
        assert_eq!(
            v.iter().map(|p| p.to_string()).collect::<Vec<_>>(),
            vec![
                "10.0.0.0/8",
                "10.0.0.0/16",
                "2a0d:3dc1::/32",
                "2a0d:3dc1:1::/48"
            ]
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("10.0.0.0".parse::<Prefix>().is_err());
        assert!("10.0.0.0/33".parse::<Prefix>().is_err());
        assert!("zz::/12".parse::<Prefix>().is_err());
        assert!("2001:db8::/129".parse::<Prefix>().is_err());
    }

    #[test]
    fn display() {
        assert_eq!(
            "2a0d:3dc1:1851::/48".parse::<Prefix>().unwrap().to_string(),
            "2a0d:3dc1:1851::/48"
        );
        assert_eq!(
            Prefix::v4(93, 175, 146, 0, 24).to_string(),
            "93.175.146.0/24"
        );
    }
}
