//! # bgpz-types
//!
//! Core BGP data model and wire codecs for the BGP-zombies reproduction.
//!
//! This crate implements, from scratch, the subset of BGP-4 (RFC 4271) and
//! Multiprotocol BGP (RFC 4760) needed to model RIPE RIS data at message
//! granularity:
//!
//! * [`Asn`] — 4-byte AS numbers (RFC 6793), including `AS_TRANS`.
//! * [`Prefix`], [`Ipv4Net`], [`Ipv6Net`] — address prefixes with the NLRI
//!   wire encoding used both in UPDATE bodies and in MP_(UN)REACH_NLRI.
//! * [`AsPath`] — AS_PATH with AS_SEQUENCE / AS_SET segments.
//! * [`PathAttributes`] / [`Attr`] — the path-attribute set that RIPE RIS
//!   beacons actually carry, most importantly the **Aggregator IP address**
//!   attribute that the paper uses as a BGP clock to kill double counting.
//! * [`BgpUpdate`] / [`BgpMessage`] — full UPDATE message encode/decode,
//!   with IPv6 reachability carried in MP_REACH_NLRI / MP_UNREACH_NLRI.
//!
//! All codecs are sans-IO: they operate on [`bytes::Buf`] / [`bytes::BufMut`]
//! and return typed errors instead of panicking on malformed input, because
//! real MRT archives contain corrupted records (e.g. the FRR ADD-PATH
//! incident cited by the paper).

#![forbid(unsafe_code)]

pub mod asn;
pub mod aspath;
pub mod attrs;
pub mod community;
pub mod error;
pub mod message;
pub mod prefix;
pub mod time;

pub use asn::Asn;
pub use aspath::{AsPath, AsPathSegment, SegmentKind};
pub use attrs::{Aggregator, Attr, AttrFlags, Origin, PathAttributes};
pub use community::{Community, LargeCommunity};
pub use error::{CodecError, CodecResult};
pub use message::{BgpMessage, BgpOpen, BgpUpdate, MessageKind};
pub use prefix::{Afi, Ipv4Net, Ipv6Net, Prefix, PrefixParseError};
pub use time::SimTime;
