//! Simulated time.
//!
//! Every component in this workspace runs on simulated time so that entire
//! multi-month measurement campaigns (the paper's lifespan study spans
//! roughly a year of 8-hourly RIB dumps) replay deterministically in
//! milliseconds. [`SimTime`] is a thin wrapper over seconds since the Unix
//! epoch; it deliberately has second granularity because that is the
//! granularity of MRT record timestamps (the microsecond MRT extension is
//! handled separately by the MRT layer).

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// Seconds since the Unix epoch, in simulated time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// Seconds per minute.
pub const MINUTE: u64 = 60;
/// Seconds per hour.
pub const HOUR: u64 = 3_600;
/// Seconds per day.
pub const DAY: u64 = 86_400;

/// Days in each month of a non-leap year.
const DAYS_IN_MONTH: [u64; 12] = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31];

impl SimTime {
    /// The epoch itself.
    pub const ZERO: SimTime = SimTime(0);

    /// Builds a time from a calendar date and time-of-day (UTC, proleptic
    /// Gregorian). Months and days are 1-based. Panics on out-of-range
    /// components because experiment definitions are compile-time constants.
    pub fn from_ymd_hms(year: u64, month: u64, day: u64, h: u64, m: u64, s: u64) -> SimTime {
        assert!((1970..=2200).contains(&year), "year out of range");
        assert!((1..=12).contains(&month), "month out of range");
        let mut days: u64 = 0;
        for y in 1970..year {
            days += if is_leap(y) { 366 } else { 365 };
        }
        for mo in 1..month {
            days += DAYS_IN_MONTH[(mo - 1) as usize];
            if mo == 2 && is_leap(year) {
                days += 1;
            }
        }
        let dim = days_in_month(year, month);
        assert!((1..=dim).contains(&day), "day out of range");
        days += day - 1;
        assert!(h < 24 && m < 60 && s < 60, "time of day out of range");
        SimTime(days * DAY + h * HOUR + m * MINUTE + s)
    }

    /// Seconds since epoch.
    pub fn secs(self) -> u64 {
        self.0
    }

    /// The calendar (year, month, day) of this instant.
    pub fn ymd(self) -> (u64, u64, u64) {
        let mut days = self.0 / DAY;
        let mut year = 1970;
        loop {
            let ylen = if is_leap(year) { 366 } else { 365 };
            if days < ylen {
                break;
            }
            days -= ylen;
            year += 1;
        }
        let mut month = 1;
        loop {
            let mlen = days_in_month(year, month);
            if days < mlen {
                break;
            }
            days -= mlen;
            month += 1;
        }
        (year, month, days + 1)
    }

    /// The (hour, minute, second) of day of this instant.
    pub fn hms(self) -> (u64, u64, u64) {
        let s = self.0 % DAY;
        (s / HOUR, (s % HOUR) / MINUTE, s % MINUTE)
    }

    /// Midnight UTC on the first day of this instant's month.
    ///
    /// This is the reference point of the RIPE RIS beacon Aggregator clock:
    /// the Aggregator IP `10.x.y.z` encodes the 24-bit count of seconds
    /// between this instant and the announcement time.
    pub fn start_of_month(self) -> SimTime {
        let (y, m, _) = self.ymd();
        SimTime::from_ymd_hms(y, m, 1, 0, 0, 0)
    }

    /// Seconds elapsed since midnight UTC on the 1st of this month.
    pub fn secs_into_month(self) -> u64 {
        self.0 - self.start_of_month().0
    }

    /// Saturating subtraction, in seconds.
    pub fn saturating_since(self, earlier: SimTime) -> u64 {
        self.0.saturating_sub(earlier.0)
    }

    /// Truncates to a multiple of `step` seconds (aligned to the epoch).
    pub fn align_down(self, step: u64) -> SimTime {
        SimTime(self.0 - self.0 % step)
    }
}

/// True if `year` is a Gregorian leap year.
pub fn is_leap(year: u64) -> bool {
    (year.is_multiple_of(4) && !year.is_multiple_of(100)) || year.is_multiple_of(400)
}

/// Number of days in `month` of `year` (1-based month).
pub fn days_in_month(year: u64, month: u64) -> u64 {
    if month == 2 && is_leap(year) {
        29
    } else {
        DAYS_IN_MONTH[(month - 1) as usize]
    }
}

impl Add<u64> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: u64) -> SimTime {
        SimTime(self.0 + rhs)
    }
}

impl AddAssign<u64> for SimTime {
    fn add_assign(&mut self, rhs: u64) {
        self.0 += rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = u64;
    fn sub(self, rhs: SimTime) -> u64 {
        self.0
            .checked_sub(rhs.0)
            .expect("SimTime subtraction underflow")
    }
}

impl fmt::Display for SimTime {
    /// Formats as `YYYY-MM-DD HH:MM:SS` (UTC).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let (y, mo, d) = self.ymd();
        let (h, mi, s) = self.hms();
        write!(f, "{y:04}-{mo:02}-{d:02} {h:02}:{mi:02}:{s:02}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_1970() {
        assert_eq!(SimTime::ZERO.ymd(), (1970, 1, 1));
        assert_eq!(SimTime::ZERO.hms(), (0, 0, 0));
    }

    #[test]
    fn roundtrip_known_dates() {
        // Known instants checked against `date -u -d @...`.
        let cases = [
            ((2018, 7, 19, 2, 0, 2), 1_531_965_602),
            ((2017, 10, 1, 0, 0, 0), 1_506_816_000),
            ((2024, 6, 4, 11, 45, 0), 1_717_501_500),
            ((2025, 5, 9, 0, 0, 0), 1_746_748_800),
            ((2000, 2, 29, 23, 59, 59), 951_868_799),
        ];
        for ((y, mo, d, h, mi, s), secs) in cases {
            let t = SimTime::from_ymd_hms(y, mo, d, h, mi, s);
            assert_eq!(t.secs(), secs, "{y}-{mo}-{d}");
            assert_eq!(t.ymd(), (y, mo, d));
            assert_eq!(t.hms(), (h, mi, s));
        }
    }

    #[test]
    fn aggregator_clock_example_from_paper() {
        // The paper's example: Aggregator 10.19.29.192 ==
        // 1,252,800 seconds after 2018-07-01 == 2018-07-15 12:00 UTC.
        let secs = (19u64 << 16) | (29 << 8) | 192;
        assert_eq!(secs, 1_252_800);
        let t = SimTime::from_ymd_hms(2018, 7, 1, 0, 0, 0) + secs;
        assert_eq!(t.ymd(), (2018, 7, 15));
        assert_eq!(t.hms(), (12, 0, 0));
    }

    #[test]
    fn start_of_month_and_secs_into_month() {
        let t = SimTime::from_ymd_hms(2018, 7, 19, 2, 0, 2);
        assert_eq!(
            t.start_of_month(),
            SimTime::from_ymd_hms(2018, 7, 1, 0, 0, 0)
        );
        assert_eq!(t.secs_into_month(), 18 * DAY + 2 * HOUR + 2);
    }

    #[test]
    fn leap_year_rules() {
        assert!(is_leap(2000));
        assert!(!is_leap(1900));
        assert!(is_leap(2024));
        assert!(!is_leap(2025));
        assert_eq!(days_in_month(2024, 2), 29);
        assert_eq!(days_in_month(2025, 2), 28);
    }

    #[test]
    fn display_format() {
        let t = SimTime::from_ymd_hms(2024, 6, 22, 17, 30, 0);
        assert_eq!(t.to_string(), "2024-06-22 17:30:00");
    }

    #[test]
    fn align_down_truncates() {
        let t = SimTime::from_ymd_hms(2024, 6, 4, 11, 45, 7);
        let aligned = t.align_down(900);
        assert_eq!(aligned.hms(), (11, 45, 0));
    }

    #[test]
    fn arithmetic() {
        let t = SimTime(100);
        assert_eq!((t + 50).secs(), 150);
        assert_eq!((t + 50) - t, 50);
        assert_eq!(t.saturating_since(SimTime(500)), 0);
        let mut u = t;
        u += 10;
        assert_eq!(u.secs(), 110);
    }

    #[test]
    #[should_panic(expected = "day out of range")]
    fn rejects_feb_30() {
        SimTime::from_ymd_hms(2024, 2, 30, 0, 0, 0);
    }
}
