//! Property-based tests for the BGP wire codecs.
//!
//! Two invariant families:
//! 1. encode → decode is the identity for arbitrary well-formed values;
//! 2. decoding arbitrary bytes never panics (it may error).

use bgpz_types::attrs::{Aggregator, MpReach, MpUnreach, NextHop, Origin};
use bgpz_types::{
    Afi, AsPath, Asn, BgpMessage, BgpUpdate, Community, Ipv4Net, Ipv6Net, LargeCommunity,
    PathAttributes, Prefix,
};
use bytes::{Buf, BytesMut};
use proptest::prelude::*;
use std::net::{Ipv4Addr, Ipv6Addr};

fn arb_prefix_v4() -> impl Strategy<Value = Prefix> {
    (any::<u32>(), 0u8..=32)
        .prop_map(|(addr, len)| Prefix::V4(Ipv4Net::new(Ipv4Addr::from(addr), len).unwrap()))
}

fn arb_prefix_v6() -> impl Strategy<Value = Prefix> {
    (any::<u128>(), 0u8..=128)
        .prop_map(|(addr, len)| Prefix::V6(Ipv6Net::new(Ipv6Addr::from(addr), len).unwrap()))
}

fn arb_as_path() -> impl Strategy<Value = AsPath> {
    proptest::collection::vec(1u32..1_000_000, 1..12).prop_map(AsPath::from_sequence)
}

fn arb_attrs() -> impl Strategy<Value = PathAttributes> {
    (
        proptest::option::of(arb_as_path()),
        proptest::option::of(any::<u32>()),
        proptest::option::of(any::<u32>()),
        any::<bool>(),
        proptest::option::of((1u32..1_000_000, any::<u32>())),
        proptest::collection::vec(any::<u32>(), 0..6),
        proptest::collection::vec((any::<u32>(), any::<u32>(), any::<u32>()), 0..4),
        proptest::option::of((
            any::<u128>(),
            proptest::collection::vec(arb_prefix_v6(), 0..5),
        )),
        proptest::option::of(proptest::collection::vec(arb_prefix_v6(), 0..5)),
    )
        .prop_map(
            |(as_path, med, local_pref, atomic, agg, comm, large, mp_reach, mp_unreach)| {
                PathAttributes {
                    origin: Some(Origin::Igp),
                    as_path,
                    next_hop: None,
                    med,
                    local_pref,
                    atomic_aggregate: atomic,
                    aggregator: agg.map(|(asn, ip)| Aggregator {
                        asn: Asn(asn),
                        addr: Ipv4Addr::from(ip),
                    }),
                    communities: comm.into_iter().map(Community).collect(),
                    large_communities: large
                        .into_iter()
                        .map(|(global, local1, local2)| LargeCommunity {
                            global,
                            local1,
                            local2,
                        })
                        .collect(),
                    mp_reach: mp_reach.map(|(nh, nlri)| MpReach {
                        afi: Afi::Ipv6,
                        safi: 1,
                        next_hop: NextHop::V6 {
                            global: Ipv6Addr::from(nh),
                            link_local: None,
                        },
                        nlri,
                    }),
                    mp_unreach: mp_unreach.map(|withdrawn| MpUnreach {
                        afi: Afi::Ipv6,
                        safi: 1,
                        withdrawn,
                    }),
                    unknown: Vec::new(),
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn prefix_v4_nlri_roundtrip(p in arb_prefix_v4()) {
        let mut buf = BytesMut::new();
        p.encode_nlri(&mut buf);
        prop_assert_eq!(buf.len(), p.nlri_wire_len());
        let got = Prefix::decode_nlri(Afi::Ipv4, &mut buf.freeze()).unwrap();
        prop_assert_eq!(got, p);
    }

    #[test]
    fn prefix_v6_nlri_roundtrip(p in arb_prefix_v6()) {
        let mut buf = BytesMut::new();
        p.encode_nlri(&mut buf);
        let got = Prefix::decode_nlri(Afi::Ipv6, &mut buf.freeze()).unwrap();
        prop_assert_eq!(got, p);
    }

    #[test]
    fn prefix_contains_is_reflexive_and_antisymmetric_on_len(
        a in arb_prefix_v6(), b in arb_prefix_v6()
    ) {
        prop_assert!(a.contains(a));
        if a.contains(b) && b.contains(a) {
            prop_assert_eq!(a, b);
        }
        if a.contains(b) {
            prop_assert!(a.len() <= b.len());
        }
    }

    #[test]
    fn as_path_roundtrip_4byte(path in arb_as_path()) {
        let mut buf = BytesMut::new();
        path.encode(&mut buf, true);
        let wire = path.wire_len(true);
        prop_assert_eq!(buf.len(), wire);
        let got = AsPath::decode(&mut buf.freeze(), wire, true).unwrap();
        prop_assert_eq!(got, path);
    }

    #[test]
    fn as_path_prepend_preserves_suffix(path in arb_as_path(), head in 1u32..1_000_000) {
        let longer = path.prepend(Asn(head));
        prop_assert_eq!(longer.hop_count(), path.hop_count() + 1);
        prop_assert!(longer.ends_with(&path.to_vec()));
        prop_assert_eq!(longer.first(), Some(Asn(head)));
    }

    #[test]
    fn common_suffix_is_a_suffix_of_all(paths in proptest::collection::vec(arb_as_path(), 1..6)) {
        let refs: Vec<&AsPath> = paths.iter().collect();
        let suffix = AsPath::common_suffix(&refs);
        for p in &paths {
            prop_assert!(p.ends_with(&suffix));
        }
    }

    #[test]
    fn attrs_roundtrip(attrs in arb_attrs()) {
        let mut buf = BytesMut::new();
        attrs.encode(&mut buf, true);
        let len = buf.len();
        let got = PathAttributes::decode(&mut buf.freeze(), len, true).unwrap();
        prop_assert_eq!(got, attrs);
    }

    #[test]
    fn update_message_roundtrip(
        attrs in arb_attrs(),
        withdrawn in proptest::collection::vec(arb_prefix_v4(), 0..5),
        nlri in proptest::collection::vec(arb_prefix_v4(), 0..5),
    ) {
        let msg = BgpMessage::Update(BgpUpdate { withdrawn, attrs, nlri });
        let mut buf = BytesMut::new();
        msg.encode(&mut buf, true);
        let got = BgpMessage::decode(&mut buf.freeze(), true).unwrap();
        prop_assert_eq!(got, msg);
    }

    #[test]
    fn decode_arbitrary_bytes_never_panics(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        // Whatever happens, it must not panic and must not consume past the
        // message it framed.
        let mut buf = &data[..];
        let _ = BgpMessage::decode(&mut buf, true);
        let mut buf = &data[..];
        let _ = PathAttributes::decode(&mut buf, data.len(), true);
        let mut buf = &data[..];
        let _ = Prefix::decode_nlri(Afi::Ipv6, &mut buf);
    }

    #[test]
    fn decode_with_marker_never_panics(tail in proptest::collection::vec(any::<u8>(), 0..128)) {
        // Force a valid marker so decoding reaches the deeper layers.
        let mut data = vec![0xFFu8; 16];
        data.extend_from_slice(&tail);
        let mut buf = &data[..];
        let _ = BgpMessage::decode(&mut buf, true);
    }

    #[test]
    fn multiple_messages_frame_exactly(
        a in arb_attrs(), b in arb_attrs()
    ) {
        let m1 = BgpMessage::Update(BgpUpdate { attrs: a, ..BgpUpdate::default() });
        let m2 = BgpMessage::Update(BgpUpdate { attrs: b, ..BgpUpdate::default() });
        let mut buf = BytesMut::new();
        m1.encode(&mut buf, true);
        m2.encode(&mut buf, true);
        let mut bytes = buf.freeze();
        let d1 = BgpMessage::decode(&mut bytes, true).unwrap();
        let d2 = BgpMessage::decode(&mut bytes, true).unwrap();
        prop_assert_eq!(d1, m1);
        prop_assert_eq!(d2, m2);
        prop_assert!(!bytes.has_remaining());
    }
}
