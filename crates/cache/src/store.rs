//! The on-disk entry store: one file per key under one directory.
//!
//! Entry layout (all little-endian, written with [`crate::codec`]):
//!
//! ```text
//! magic            8 raw bytes  "BGPZCACH"
//! format version   u16          ENTRY_FORMAT_VERSION
//! key material     len-prefixed bytes (the CacheKey material)
//! payload          len-prefixed bytes
//! checksum         u64          FNV-1a of every preceding byte
//! ```
//!
//! Loads verify all four layers in order; any mismatch is counted,
//! reported as a `warn` obs event, and surfaced as a miss so the caller
//! recomputes (and overwrites the bad entry). Writes go to a unique
//! temp file in the same directory and are published with an atomic
//! rename, so concurrent writers and readers of the same key can never
//! observe a torn entry — the worst case is a duplicated compute.

use crate::codec::{Reader, Writer};
use crate::key::{fnv1a64, CacheKey};
use bytes::Bytes;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Entry file magic.
const MAGIC: &[u8; 8] = b"BGPZCACH";

/// Bump when the entry framing above changes shape. (Payload encodings
/// are versioned by the *key* — see [`crate::key::KeyBuilder::new`] —
/// so this only covers the envelope.)
pub const ENTRY_FORMAT_VERSION: u16 = 1;

/// Metrics/event target for everything the store reports.
const TARGET: &str = "cache::store";

/// Distinguishes concurrent temp files within one process.
static TEMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A content-addressed entry store rooted at one directory.
///
/// All failure modes — missing directory, unreadable file, corrupt or
/// foreign entry, failed write — degrade to "not cached" and are
/// reported through `bgpz-obs`; no method returns an error or panics.
#[derive(Debug, Clone)]
pub struct CacheStore {
    dir: PathBuf,
}

impl CacheStore {
    /// A store rooted at `dir`. The directory is created lazily on the
    /// first write, so constructing a store never touches the disk.
    pub fn new(dir: impl Into<PathBuf>) -> CacheStore {
        CacheStore { dir: dir.into() }
    }

    /// The store's root directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The entry path for a key.
    pub fn entry_path(&self, key: &CacheKey) -> PathBuf {
        self.dir.join(key.file_name())
    }

    /// Loads and verifies the payload stored under `key`, or `None` on
    /// any miss: absent file, torn/corrupt entry, stale envelope
    /// version, or a 64-bit collision with a different key.
    pub fn load(&self, key: &CacheKey) -> Option<Bytes> {
        let path = self.entry_path(key);
        let raw = match std::fs::read(&path) {
            Ok(raw) => Bytes::from(raw),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
                bgpz_obs::metrics::counter(TARGET, "misses", 1);
                return None;
            }
            Err(e) => {
                bgpz_obs::metrics::counter(TARGET, "misses", 1);
                bgpz_obs::warn!(
                    target: TARGET,
                    "cache entry {} unreadable ({e}); recomputing",
                    path.display()
                );
                return None;
            }
        };
        match verify_entry(&raw, key) {
            Ok(payload) => {
                bgpz_obs::metrics::counter(TARGET, "hits", 1);
                bgpz_obs::metrics::counter(TARGET, "bytes_read", payload.len() as u64);
                bgpz_obs::debug!(
                    target: TARGET,
                    "cache hit {} ({} payload bytes)",
                    path.display(),
                    payload.len()
                );
                Some(payload)
            }
            Err(EntryRejected::WrongKey) => {
                // A 64-bit collision (or a file someone renamed): the
                // entry is intact but belongs to a different key.
                bgpz_obs::metrics::counter(TARGET, "misses", 1);
                bgpz_obs::metrics::counter(TARGET, "verify_failures", 1);
                bgpz_obs::warn!(
                    target: TARGET,
                    "cache entry {} belongs to a different key; recomputing",
                    path.display()
                );
                None
            }
            Err(EntryRejected::Corrupt(why)) => {
                bgpz_obs::metrics::counter(TARGET, "misses", 1);
                bgpz_obs::metrics::counter(TARGET, "corrupt_entries", 1);
                bgpz_obs::warn!(
                    target: TARGET,
                    "cache entry {} is corrupt or stale ({why}); recomputing",
                    path.display()
                );
                None
            }
        }
    }

    /// Atomically stores `payload` under `key`, overwriting any existing
    /// entry. Returns whether the entry was published; failures are
    /// reported as `warn` events and otherwise ignored (the cache is an
    /// accelerator, not a dependency).
    pub fn store(&self, key: &CacheKey, payload: &[u8]) -> bool {
        if let Err(e) = std::fs::create_dir_all(&self.dir) {
            bgpz_obs::warn!(
                target: TARGET,
                "cannot create cache dir {} ({e}); not caching",
                self.dir.display()
            );
            return false;
        }
        let mut w = Writer::new();
        w.raw(MAGIC);
        w.u16(ENTRY_FORMAT_VERSION);
        w.bytes(key.material());
        w.bytes(payload);
        let checksum = fnv1a64(w.as_slice());
        w.u64(checksum);
        let entry = w.into_vec();

        // Unique temp name: same directory (rename must not cross a
        // filesystem), distinguished by pid + an in-process sequence.
        let temp = self.dir.join(format!(
            ".{:016x}.{}.{}.tmp",
            key.hash(),
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let path = self.entry_path(key);
        if let Err(e) = std::fs::write(&temp, &entry) {
            bgpz_obs::warn!(
                target: TARGET,
                "cannot write cache temp {} ({e}); not caching",
                temp.display()
            );
            return false;
        }
        if let Err(e) = std::fs::rename(&temp, &path) {
            bgpz_obs::warn!(
                target: TARGET,
                "cannot publish cache entry {} ({e}); not caching",
                path.display()
            );
            let _ = std::fs::remove_file(&temp);
            return false;
        }
        bgpz_obs::metrics::counter(TARGET, "bytes_written", entry.len() as u64);
        bgpz_obs::debug!(
            target: TARGET,
            "cache store {} ({} payload bytes)",
            path.display(),
            payload.len()
        );
        true
    }
}

/// Why a present entry was rejected.
enum EntryRejected {
    /// Structurally intact but addressed by different key material.
    WrongKey,
    /// Torn, truncated, bit-flipped, or from a different envelope
    /// version.
    Corrupt(&'static str),
}

/// Verifies magic, envelope version, checksum, and key material; returns
/// the payload as a zero-copy slice of the entry buffer.
fn verify_entry(raw: &Bytes, key: &CacheKey) -> Result<Bytes, EntryRejected> {
    use EntryRejected::Corrupt;
    // Checksum first: it covers everything, so random corruption is
    // reported as corruption even when it lands in the key material.
    let body_len = raw
        .len()
        .checked_sub(8)
        .ok_or(Corrupt("shorter than a checksum"))?;
    let stored = raw.get(body_len..).ok_or(Corrupt("missing checksum"))?;
    let stored = <[u8; 8]>::try_from(stored).map_err(|_| Corrupt("missing checksum"))?;
    let body = raw.get(..body_len).ok_or(Corrupt("missing body"))?;
    if fnv1a64(body) != u64::from_le_bytes(stored) {
        return Err(Corrupt("checksum mismatch"));
    }
    let mut r = Reader::new(raw.slice(..body_len));
    let magic = r.raw(MAGIC.len()).map_err(|_| Corrupt("truncated magic"))?;
    if magic.as_ref() != MAGIC {
        return Err(Corrupt("bad magic"));
    }
    let version = r.u16().map_err(|_| Corrupt("truncated version"))?;
    if version != ENTRY_FORMAT_VERSION {
        return Err(Corrupt("envelope version mismatch"));
    }
    let material = r
        .take_bytes()
        .map_err(|_| Corrupt("truncated key material"))?;
    let payload = r.take_bytes().map_err(|_| Corrupt("truncated payload"))?;
    r.finish().map_err(|_| Corrupt("trailing bytes"))?;
    if material.as_ref() != key.material() {
        return Err(EntryRejected::WrongKey);
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::key::KeyBuilder;

    fn temp_store(tag: &str) -> CacheStore {
        let dir = std::env::temp_dir().join(format!(
            "bgpz-cache-test-{tag}-{}-{}",
            std::process::id(),
            TEMP_SEQ.fetch_add(1, Ordering::Relaxed)
        ));
        let _ = std::fs::remove_dir_all(&dir);
        CacheStore::new(dir)
    }

    fn key(seed: u64) -> CacheKey {
        KeyBuilder::new(1).u64("seed", seed).finish()
    }

    #[test]
    fn store_then_load_round_trips() {
        let store = temp_store("roundtrip");
        let k = key(42);
        assert!(store.load(&k).is_none());
        assert!(store.store(&k, b"payload bytes"));
        assert_eq!(store.load(&k).as_deref(), Some(&b"payload bytes"[..]));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn overwrite_replaces_the_payload() {
        let store = temp_store("overwrite");
        let k = key(7);
        assert!(store.store(&k, b"old"));
        assert!(store.store(&k, b"new"));
        assert_eq!(store.load(&k).as_deref(), Some(&b"new"[..]));
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn any_single_byte_flip_is_rejected() {
        let store = temp_store("bitflip");
        let k = key(9);
        assert!(store.store(&k, b"precious payload"));
        let path = store.entry_path(&k);
        let good = std::fs::read(&path).unwrap();
        for i in 0..good.len() {
            let mut bad = good.clone();
            bad[i] ^= 0x40;
            std::fs::write(&path, &bad).unwrap();
            assert!(store.load(&k).is_none(), "flip at byte {i} accepted");
        }
        // The pristine entry still loads.
        std::fs::write(&path, &good).unwrap();
        assert!(store.load(&k).is_some());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn truncation_is_rejected() {
        let store = temp_store("truncate");
        let k = key(11);
        assert!(store.store(&k, b"a longer payload, truncated below"));
        let path = store.entry_path(&k);
        let good = std::fs::read(&path).unwrap();
        for cut in [0, 1, 7, 8, good.len() / 2, good.len() - 1] {
            std::fs::write(&path, &good[..cut]).unwrap();
            assert!(store.load(&k).is_none(), "truncation to {cut} accepted");
        }
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn colliding_key_material_is_a_verified_miss() {
        let store = temp_store("collide");
        let a = key(1);
        let b = key(2);
        assert!(store.store(&a, b"payload of a"));
        // Simulate a 64-bit collision: b's lookup lands on a's file.
        std::fs::rename(store.entry_path(&a), store.entry_path(&b)).unwrap();
        assert!(store.load(&b).is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn stale_envelope_version_is_rejected() {
        let store = temp_store("version");
        let k = key(3);
        assert!(store.store(&k, b"payload"));
        let path = store.entry_path(&k);
        let mut raw = std::fs::read(&path).unwrap();
        // Bump the version field and re-checksum so only the version
        // check can reject it.
        raw[8] = raw[8].wrapping_add(1);
        let body_len = raw.len() - 8;
        let sum = fnv1a64(&raw[..body_len]).to_le_bytes();
        raw[body_len..].copy_from_slice(&sum);
        std::fs::write(&path, &raw).unwrap();
        assert!(store.load(&k).is_none());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn counters_flow_through_obs() {
        let store = temp_store("counters");
        let k = key(5);
        let metrics = bgpz_obs::metrics::global();
        let hits0 = metrics.counter_value(TARGET, "hits");
        let misses0 = metrics.counter_value(TARGET, "misses");
        let written0 = metrics.counter_value(TARGET, "bytes_written");
        assert!(store.load(&k).is_none());
        assert!(store.store(&k, b"x"));
        assert!(store.load(&k).is_some());
        assert_eq!(metrics.counter_value(TARGET, "hits"), hits0 + 1);
        assert_eq!(metrics.counter_value(TARGET, "misses"), misses0 + 1);
        assert!(metrics.counter_value(TARGET, "bytes_written") > written0);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn no_temp_files_left_behind() {
        let store = temp_store("tempfiles");
        for seed in 0..8 {
            assert!(store.store(&key(seed), &[0xCD; 256]));
        }
        let leftovers: Vec<_> = std::fs::read_dir(store.dir())
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|name| name.ends_with(".tmp"))
            .collect();
        assert!(leftovers.is_empty(), "temp files left: {leftovers:?}");
        let _ = std::fs::remove_dir_all(store.dir());
    }
}
