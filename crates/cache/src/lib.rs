//! # bgpz-cache
//!
//! A content-addressed on-disk artifact cache for deterministic,
//! expensive-to-recompute values. Both simulated worlds are pure
//! functions of `(scale, seed)`, so their substrates — MRT archive
//! bytes, schedules, frame indexes — can be computed exactly once, ever,
//! and replayed from disk on every later run.
//!
//! The crate is std-only by design (the authoring environment has no
//! route to crates.io) and deliberately small:
//!
//! * [`codec`] — a versioned, length-prefixed binary writer/reader pair.
//!   No wall-clock timestamps, no platform-dependent layout: encoding
//!   the same value always produces the same bytes, which is what makes
//!   entries content-addressed rather than merely keyed.
//! * [`key`] — [`KeyBuilder`](key::KeyBuilder) hashes tagged key fields
//!   into a 64-bit FNV-1a address and keeps the exact material so a
//!   loaded entry can be verified against the key that addressed it
//!   (a hash collision degrades to a recompute, never to wrong data).
//! * [`store`] — [`CacheStore`](store::CacheStore) maps keys to files
//!   under one directory. Writes are atomic (temp file + rename), loads
//!   verify magic, format version, key material, and a whole-entry
//!   checksum. Every failure path is a cache *miss*: corrupt, stale, or
//!   foreign entries are reported through `bgpz-obs` counters and
//!   recomputed, never propagated as errors.
//!
//! Cache observability flows through the `cache::store` metrics target:
//! `hits`, `misses`, `bytes_read`, `bytes_written`, `verify_failures`,
//! and `corrupt_entries` — all order-independent aggregates, so
//! `metrics.json` stays byte-identical at every `--jobs` count.

#![forbid(unsafe_code)]

pub mod codec;
pub mod key;
pub mod store;

pub use codec::{CodecError, CodecResult, Reader, Writer};
pub use key::{fnv1a64, CacheKey, KeyBuilder};
pub use store::CacheStore;
