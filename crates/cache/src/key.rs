//! Content addressing: stable 64-bit FNV-1a keys over tagged fields.
//!
//! A [`CacheKey`] is built from an ordered sequence of `(tag, value)`
//! fields — schema version first, then whatever parameters the cached
//! computation is deterministic in. Fields are serialized with the
//! [`codec`](crate::codec) length-prefix scheme before hashing, so
//! `("ab", "c")` and `("a", "bc")` hash differently and the byte stream
//! is identical on every platform.
//!
//! The builder keeps the exact serialized *material* alongside the hash.
//! The store embeds it in every entry and compares it on load: two keys
//! that collide in 64 bits address the same file, but only the matching
//! material is ever returned — the other key sees a verified miss.

use crate::codec::Writer;

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// 64-bit FNV-1a over a byte slice. Stable across platforms and
/// releases; also used as the whole-entry checksum by the store.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = FNV_OFFSET;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// A finished cache key: the 64-bit address plus the exact field
/// material it was hashed from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CacheKey {
    hash: u64,
    material: Vec<u8>,
}

impl CacheKey {
    /// The 64-bit content address.
    pub fn hash(&self) -> u64 {
        self.hash
    }

    /// The serialized field material (embedded in entries for collision
    /// verification).
    pub fn material(&self) -> &[u8] {
        &self.material
    }

    /// The entry file name for this key: 16 lowercase hex digits plus
    /// the `.bgpzc` suffix.
    pub fn file_name(&self) -> String {
        format!("{:016x}.bgpzc", self.hash)
    }
}

/// Accumulates tagged fields into a [`CacheKey`].
///
/// ```
/// use bgpz_cache::KeyBuilder;
/// let a = KeyBuilder::new(1)
///     .str("scale", "bench")
///     .u64("seed", 42)
///     .finish();
/// let b = KeyBuilder::new(1)
///     .str("scale", "bench")
///     .u64("seed", 43)
///     .finish();
/// assert_ne!(a.hash(), b.hash());
/// assert_eq!(a.file_name().len(), "0123456789abcdef.bgpzc".len());
/// ```
#[derive(Debug, Clone)]
pub struct KeyBuilder {
    w: Writer,
}

impl KeyBuilder {
    /// Starts a key with the caller's schema version as field zero: any
    /// format or semantics bump re-addresses every entry, so stale files
    /// are simply never loaded again.
    pub fn new(schema_version: u32) -> KeyBuilder {
        let mut w = Writer::new();
        w.str("schema");
        w.u32(schema_version);
        KeyBuilder { w }
    }

    /// A string field.
    pub fn str(mut self, tag: &str, value: &str) -> KeyBuilder {
        self.w.str(tag);
        self.w.str(value);
        self
    }

    /// A `u64` field.
    pub fn u64(mut self, tag: &str, value: u64) -> KeyBuilder {
        self.w.str(tag);
        self.w.u64(value);
        self
    }

    /// An `f64` field, hashed by bit pattern.
    pub fn f64(mut self, tag: &str, value: f64) -> KeyBuilder {
        self.w.str(tag);
        self.w.f64(value);
        self
    }

    /// Hashes the accumulated material.
    pub fn finish(self) -> CacheKey {
        let material = self.w.into_vec();
        CacheKey {
            hash: fnv1a64(&material),
            material,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x8594_4171_f739_67e8);
    }

    #[test]
    fn every_field_matters() {
        let base = || {
            KeyBuilder::new(3)
                .str("kind", "replication/0")
                .str("scale", "bench")
                .f64("day_fraction", 0.05)
                .u64("seed", 42)
        };
        let key = base().finish();
        assert_eq!(key, base().finish());
        for other in [
            KeyBuilder::new(4)
                .str("kind", "replication/0")
                .str("scale", "bench")
                .f64("day_fraction", 0.05)
                .u64("seed", 42)
                .finish(),
            base().u64("extra", 0).finish(),
            KeyBuilder::new(3)
                .str("kind", "replication/1")
                .str("scale", "bench")
                .f64("day_fraction", 0.05)
                .u64("seed", 42)
                .finish(),
        ] {
            assert_ne!(key.hash(), other.hash());
            assert_ne!(key.material(), other.material());
        }
    }

    #[test]
    fn boundary_shifts_change_the_key() {
        let a = KeyBuilder::new(1).str("ab", "c").finish();
        let b = KeyBuilder::new(1).str("a", "bc").finish();
        assert_ne!(a.hash(), b.hash());
    }

    #[test]
    fn file_name_is_fixed_width_hex() {
        let key = KeyBuilder::new(1).u64("seed", 7).finish();
        let name = key.file_name();
        assert!(name.ends_with(".bgpzc"));
        assert_eq!(name.len(), 22);
        assert_eq!(name, name.to_lowercase());
    }
}
