//! Versioned, length-prefixed binary codec for cache payloads.
//!
//! The format is deliberately dumb: little-endian fixed-width integers,
//! `f64` as IEEE-754 bit patterns, and byte strings behind `u64` length
//! prefixes. There is no schema negotiation — compatibility is handled
//! one level up by versioning the cache *key*, so a [`Reader`] only ever
//! sees bytes produced by the exact same encoder revision. Anything else
//! (truncation, bit flips, foreign files) must surface as a clean
//! [`CodecError`], never a panic: every decode failure downgrades to a
//! cache miss.
//!
//! [`Reader`] wraps [`Bytes`], so [`Reader::take_bytes`] hands back
//! zero-copy slices of the underlying buffer — decoded MRT archives
//! share the storage of the entry they were read from.

use bytes::Bytes;
use std::fmt;
use std::net::IpAddr;

/// A decode failure. Always a recoverable "this entry is unusable"
/// signal, never a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The input ended before a fixed-width or length-prefixed field.
    UnexpectedEof {
        /// Bytes the field needed.
        needed: usize,
        /// Bytes that were left.
        remaining: usize,
    },
    /// An enum tag byte had no defined meaning.
    BadTag(u8),
    /// A string field held invalid UTF-8.
    BadUtf8,
    /// A decoded value violated a domain invariant (e.g. a prefix length
    /// over the family maximum).
    BadValue(&'static str),
    /// Bytes remained after the value was fully decoded.
    TrailingBytes(usize),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::UnexpectedEof { needed, remaining } => {
                write!(
                    f,
                    "unexpected EOF: needed {needed} bytes, {remaining} remaining"
                )
            }
            CodecError::BadTag(tag) => write!(f, "unknown tag byte {tag:#04x}"),
            CodecError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            CodecError::BadValue(what) => write!(f, "invalid value: {what}"),
            CodecError::TrailingBytes(n) => write!(f, "{n} trailing bytes after value"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Decode result.
pub type CodecResult<T> = Result<T, CodecError>;

/// Appends primitive values to a growable buffer.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// An empty writer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing was written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The encoded bytes so far.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Consumes the writer, returning the encoded bytes.
    pub fn into_vec(self) -> Vec<u8> {
        self.buf
    }

    /// Raw bytes, no length prefix (fixed-width fields like magic).
    pub fn raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// One byte.
    pub fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian `u16`.
    pub fn u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// A `usize` stored as `u64` (cache entries are 64-bit sized even on
    /// 32-bit hosts).
    pub fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }

    /// `f64` as its IEEE-754 bit pattern — bit-exact round trips, no
    /// formatting ambiguity.
    pub fn f64(&mut self, v: f64) {
        self.u64(v.to_bits());
    }

    /// A bool as one byte.
    pub fn bool(&mut self, v: bool) {
        self.u8(u8::from(v));
    }

    /// Length-prefixed byte string.
    pub fn bytes(&mut self, bytes: &[u8]) {
        self.usize(bytes.len());
        self.buf.extend_from_slice(bytes);
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self, s: &str) {
        self.bytes(s.as_bytes());
    }

    /// An IP address: family tag byte (4 or 6) + network-order octets.
    pub fn ip(&mut self, addr: IpAddr) {
        match addr {
            IpAddr::V4(a) => {
                self.u8(4);
                self.raw(&a.octets());
            }
            IpAddr::V6(a) => {
                self.u8(6);
                self.raw(&a.octets());
            }
        }
    }
}

/// Decodes values from a shared byte buffer.
///
/// All reads are bounds-checked; running off the end is a
/// [`CodecError::UnexpectedEof`], not a panic.
#[derive(Debug, Clone)]
pub struct Reader {
    data: Bytes,
    pos: usize,
}

impl Reader {
    /// A reader over `data`, positioned at the start.
    pub fn new(data: Bytes) -> Reader {
        Reader { data, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    /// Fails unless every byte was consumed.
    pub fn finish(self) -> CodecResult<()> {
        match self.remaining() {
            0 => Ok(()),
            n => Err(CodecError::TrailingBytes(n)),
        }
    }

    fn take(&mut self, n: usize) -> CodecResult<&[u8]> {
        let slice = self
            .data
            .get(
                self.pos..self.pos.checked_add(n).ok_or(CodecError::UnexpectedEof {
                    needed: n,
                    remaining: self.remaining(),
                })?,
            )
            .ok_or(CodecError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            })?;
        self.pos += n;
        Ok(slice)
    }

    fn array<const N: usize>(&mut self) -> CodecResult<[u8; N]> {
        let b = self.take(N)?;
        <[u8; N]>::try_from(b).map_err(|_| CodecError::UnexpectedEof {
            needed: N,
            remaining: 0,
        })
    }

    /// One byte.
    pub fn u8(&mut self) -> CodecResult<u8> {
        Ok(u8::from_le_bytes(self.array::<1>()?))
    }

    /// Little-endian `u16`.
    pub fn u16(&mut self) -> CodecResult<u16> {
        Ok(u16::from_le_bytes(self.array::<2>()?))
    }

    /// Little-endian `u32`.
    pub fn u32(&mut self) -> CodecResult<u32> {
        Ok(u32::from_le_bytes(self.array::<4>()?))
    }

    /// Little-endian `u64`.
    pub fn u64(&mut self) -> CodecResult<u64> {
        Ok(u64::from_le_bytes(self.array::<8>()?))
    }

    /// A `u64` that must fit the host `usize` (lengths, counts).
    pub fn usize(&mut self) -> CodecResult<usize> {
        usize::try_from(self.u64()?).map_err(|_| CodecError::BadValue("u64 exceeds usize"))
    }

    /// `f64` from its bit pattern.
    pub fn f64(&mut self) -> CodecResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// A bool byte (strictly 0 or 1).
    pub fn bool(&mut self) -> CodecResult<bool> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            tag => Err(CodecError::BadTag(tag)),
        }
    }

    /// `n` raw bytes (no length prefix) as a zero-copy slice of the
    /// underlying buffer.
    pub fn raw(&mut self, n: usize) -> CodecResult<Bytes> {
        if n > self.remaining() {
            return Err(CodecError::UnexpectedEof {
                needed: n,
                remaining: self.remaining(),
            });
        }
        let out = self.data.slice(self.pos..self.pos + n);
        self.pos += n;
        Ok(out)
    }

    /// Length-prefixed byte string as a zero-copy slice of the
    /// underlying buffer.
    pub fn take_bytes(&mut self) -> CodecResult<Bytes> {
        let len = self.usize()?;
        if len > self.remaining() {
            return Err(CodecError::UnexpectedEof {
                needed: len,
                remaining: self.remaining(),
            });
        }
        let out = self.data.slice(self.pos..self.pos + len);
        self.pos += len;
        Ok(out)
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> CodecResult<String> {
        let bytes = self.take_bytes()?;
        String::from_utf8(bytes.to_vec()).map_err(|_| CodecError::BadUtf8)
    }

    /// An IP address (family tag byte + octets).
    pub fn ip(&mut self) -> CodecResult<IpAddr> {
        match self.u8()? {
            4 => Ok(IpAddr::from(self.array::<4>()?)),
            6 => Ok(IpAddr::from(self.array::<16>()?)),
            tag => Err(CodecError::BadTag(tag)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        let mut w = Writer::new();
        w.u8(7);
        w.u16(0xBEEF);
        w.u32(0xDEAD_BEEF);
        w.u64(u64::MAX - 1);
        w.f64(0.35);
        w.bool(true);
        w.bool(false);
        w.bytes(b"archive");
        w.str("rrc25");
        w.ip("176.119.234.201".parse().unwrap());
        w.ip("2a0c:9a40:1031::504".parse().unwrap());
        let mut r = Reader::new(Bytes::from(w.into_vec()));
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0xBEEF);
        assert_eq!(r.u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.f64().unwrap(), 0.35);
        assert!(r.bool().unwrap());
        assert!(!r.bool().unwrap());
        assert_eq!(&r.take_bytes().unwrap()[..], b"archive");
        assert_eq!(r.str().unwrap(), "rrc25");
        assert_eq!(
            r.ip().unwrap(),
            "176.119.234.201".parse::<IpAddr>().unwrap()
        );
        assert_eq!(
            r.ip().unwrap(),
            "2a0c:9a40:1031::504".parse::<IpAddr>().unwrap()
        );
        r.finish().unwrap();
    }

    #[test]
    fn f64_bit_exact() {
        for v in [0.0, -0.0, 0.05, f64::MIN_POSITIVE, f64::INFINITY] {
            let mut w = Writer::new();
            w.f64(v);
            let mut r = Reader::new(Bytes::from(w.into_vec()));
            assert_eq!(r.f64().unwrap().to_bits(), v.to_bits());
        }
    }

    #[test]
    fn eof_is_an_error_not_a_panic() {
        let mut r = Reader::new(Bytes::from_static(&[1, 2]));
        assert!(matches!(
            r.u64(),
            Err(CodecError::UnexpectedEof {
                needed: 8,
                remaining: 2
            })
        ));
    }

    #[test]
    fn oversized_length_prefix_is_an_error() {
        let mut w = Writer::new();
        w.u64(u64::MAX); // absurd length prefix
        let mut r = Reader::new(Bytes::from(w.into_vec()));
        assert!(r.take_bytes().is_err());
    }

    #[test]
    fn bad_tags_are_errors() {
        let mut r = Reader::new(Bytes::from_static(&[9]));
        assert_eq!(r.ip(), Err(CodecError::BadTag(9)));
        let mut r = Reader::new(Bytes::from_static(&[2]));
        assert_eq!(r.bool(), Err(CodecError::BadTag(2)));
    }

    #[test]
    fn trailing_bytes_detected() {
        let r = Reader::new(Bytes::from_static(&[0, 0, 0]));
        assert_eq!(r.finish(), Err(CodecError::TrailingBytes(3)));
    }

    #[test]
    fn take_bytes_is_zero_copy() {
        let mut w = Writer::new();
        w.bytes(&[0xAB; 64]);
        let buf = Bytes::from(w.into_vec());
        let mut r = Reader::new(buf.clone());
        let slice = r.take_bytes().unwrap();
        // Same backing storage: the slice starts 8 bytes (length prefix)
        // into the original allocation.
        assert_eq!(slice.as_ptr(), buf[8..].as_ptr());
    }

    #[test]
    fn invalid_utf8_is_an_error() {
        let mut w = Writer::new();
        w.bytes(&[0xFF, 0xFE]);
        let mut r = Reader::new(Bytes::from(w.into_vec()));
        assert_eq!(r.str(), Err(CodecError::BadUtf8));
    }
}
