//! serve ↔ batch parity: the daemon's zombie set must be byte-for-byte
//! the batch pipeline's, at any ingest worker count, and the ingest path
//! must tolerate the imperfections of real collector feeds (duplicate
//! and cross-peer out-of-order records).

use bgpz_beacon::{apply_schedule, RisBeaconConfig, RisBeacons};
use bgpz_core::{classify, intervals_from_schedule, scan, ClassifyOptions};
use bgpz_mrt::{MrtReader, MrtWriter};
use bgpz_netsim::{EpisodeEnd, FaultPlan, Simulator, Tier, Topology};
use bgpz_ris::{Collector, RisConfig, RisNetwork, RisPeerSpec};
use bgpz_serve::{split_streams, OverloadPolicy, ServeConfig, Server};
use bgpz_types::time::HOUR;
use bgpz_types::{Asn, Prefix, SimTime};
use std::collections::BTreeSet;
use std::io::{Read, Write};
use std::net::TcpStream;

const ORIGIN: Asn = Asn(12_654);

fn run_world(plan: FaultPlan) -> (bgpz_ris::RisArchive, bgpz_beacon::BeaconSchedule) {
    let topo = Topology::builder()
        .node(Asn(100), Tier::Tier1)
        .node(Asn(101), Tier::Tier1)
        .node(Asn(200), Tier::Tier2)
        .node(Asn(201), Tier::Tier2)
        .node(ORIGIN, Tier::Stub)
        .peering(Asn(100), Asn(101))
        .provider_customer(Asn(100), Asn(200))
        .provider_customer(Asn(101), Asn(201))
        .provider_customer(Asn(200), ORIGIN)
        .provider_customer(Asn(201), ORIGIN)
        .build();
    let config = RisConfig {
        collectors: vec![Collector::numbered(0)],
        peers: vec![
            RisPeerSpec::healthy(Asn(100), "2001:db8:90::100".parse().unwrap(), 0),
            RisPeerSpec::healthy(Asn(101), "2001:db8:90::101".parse().unwrap(), 0),
        ],
        rib_period: 8 * HOUR,
    };
    let beacons = RisBeacons::new(RisBeaconConfig::historical(ORIGIN));
    let start = SimTime::from_ymd_hms(2018, 7, 19, 0, 0, 0);
    let end = SimTime::from_ymd_hms(2018, 7, 21, 0, 0, 0);
    let schedule = beacons.schedule(start, end);
    let mut sim = Simulator::new(topo, &plan, 1);
    let mut ris = RisNetwork::new(config, start, 2);
    ris.attach(&mut sim);
    apply_schedule(&mut sim, &schedule);
    ris.advance(&mut sim, end + 4 * HOUR);
    (ris.finish(), schedule)
}

fn zombie_world() -> (bgpz_ris::RisArchive, bgpz_beacon::BeaconSchedule) {
    let plan = FaultPlan::none().freeze(
        Asn(200),
        Asn(100),
        SimTime::from_ymd_hms(2018, 7, 19, 0, 30, 0),
        SimTime::from_ymd_hms(2018, 7, 22, 0, 0, 0),
        EpisodeEnd::Resume,
    );
    run_world(plan)
}

/// (prefix, interval start, peer address) triples.
type Keys = BTreeSet<(Prefix, SimTime, String)>;

fn batch_keys(archive: &bgpz_ris::RisArchive, schedule: &bgpz_beacon::BeaconSchedule) -> Keys {
    batch_keys_from(archive.updates.clone(), schedule)
}

fn batch_keys_from(updates: bytes::Bytes, schedule: &bgpz_beacon::BeaconSchedule) -> Keys {
    let intervals = intervals_from_schedule(schedule);
    let result = scan(updates, &intervals, 4 * HOUR);
    let report = classify(&result, &ClassifyOptions::default());
    report
        .outbreaks
        .iter()
        .flat_map(|o| {
            o.routes
                .iter()
                .map(move |r| (o.interval.prefix, o.interval.start, r.peer.addr.to_string()))
        })
        .collect()
}

/// One blocking HTTP request against the daemon (Connection: close).
fn http_get(addr: std::net::SocketAddr, method: &str, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).unwrap();
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nHost: bgpz\r\nConnection: close\r\n\r\n"
    )
    .unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (head, body) = response.split_once("\r\n\r\n").expect("header terminator");
    assert!(head.starts_with("HTTP/1.1 200"), "bad status: {head}");
    body.to_string()
}

fn serve_keys(body: &str) -> Keys {
    let parsed: serde_json::Value = serde_json::from_str(body).unwrap();
    parsed["zombies"]
        .as_array()
        .unwrap()
        .iter()
        .map(|z| {
            (
                z["prefix"].as_str().unwrap().parse().unwrap(),
                SimTime(z["interval_start"].as_u64().unwrap()),
                z["peer"].as_str().unwrap().to_string(),
            )
        })
        .collect()
}

/// Runs the full serve lifecycle over the given streams and returns the
/// final `/zombies` body.
fn serve_zombies_body(
    workers: usize,
    streams: Vec<bytes::Bytes>,
    schedule: &bgpz_beacon::BeaconSchedule,
) -> String {
    let config = ServeConfig {
        workers,
        shards: 3,
        queue_capacity: 64,
        ..ServeConfig::default()
    };
    let mut server = Server::start(&config, intervals_from_schedule(schedule), streams).unwrap();
    server.drain();
    let body = http_get(server.addr(), "GET", "/zombies");
    let summary = server.shutdown();
    assert!(summary.records > 0, "streams must not be empty");
    assert_eq!(summary.shed, 0, "Block policy never sheds");
    body
}

#[test]
fn serve_matches_batch_at_one_and_eight_workers() {
    let (archive, schedule) = zombie_world();
    let batch = batch_keys(&archive, &schedule);
    assert!(!batch.is_empty(), "the freeze must produce zombies");

    let streams = split_streams(archive.updates.clone(), 8);
    assert_eq!(streams.len(), 8);
    let one = serve_zombies_body(1, streams.clone(), &schedule);
    let eight = serve_zombies_body(8, streams, &schedule);

    assert_eq!(serve_keys(&one), batch, "1-worker serve must match batch");
    assert_eq!(
        one, eight,
        "responses must be byte-identical at any worker count"
    );
}

#[test]
fn duplicate_records_are_tolerated() {
    let (archive, schedule) = zombie_world();
    let batch = batch_keys(&archive, &schedule);
    let mut streams = split_streams(archive.updates.clone(), 4);

    // A sloppy collector that emits every record twice.
    let doubled = {
        let mut writer = MrtWriter::new();
        let mut reader = MrtReader::new(streams[0].clone());
        while let Some(record) = reader.next_record() {
            writer.push(&record);
            writer.push(&record);
        }
        writer.finish()
    };
    streams[0] = doubled;

    let body = serve_zombies_body(4, streams, &schedule);
    assert_eq!(serve_keys(&body), batch, "duplicates must be idempotent");
}

#[test]
fn cross_peer_reordering_is_tolerated() {
    let (archive, schedule) = zombie_world();

    let mut records = Vec::new();
    let mut reader = MrtReader::new(archive.updates.clone());
    while let Some(record) = reader.next_record() {
        records.push(record);
    }
    let peer = |r: &bgpz_mrt::MrtRecord| match &r.body {
        bgpz_mrt::MrtBody::Message(m) => Some(m.session.peer_ip),
        bgpz_mrt::MrtBody::StateChange(c) => Some(c.session.peer_ip),
        _ => None,
    };

    // Real collectors batch their writes, so records of different peers
    // routinely land on one timestamp. The simulator does not guarantee
    // such bursts, so manufacture them: pull near-simultaneous adjacent
    // records of *different* peers onto a shared instant, and rebuild
    // the batch reference from the coalesced feed.
    let mut bursts = 0;
    let mut i = 0;
    while i + 1 < records.len() {
        let gap = records[i + 1]
            .timestamp
            .0
            .saturating_sub(records[i].timestamp.0);
        let cross = peer(&records[i])
            .zip(peer(&records[i + 1]))
            .is_some_and(|(pa, pb)| pa != pb);
        if cross && gap <= 2 {
            records[i + 1].timestamp = records[i].timestamp;
            bursts += 1;
            i += 2;
            continue;
        }
        i += 1;
    }
    assert!(
        bursts > 0,
        "the world must offer near-simultaneous cross-peer records"
    );
    let mut writer = MrtWriter::new();
    for record in &records {
        writer.push(record);
    }
    let batch = batch_keys_from(writer.finish(), &schedule);

    // Now swap every same-instant cross-peer pair — exactly the
    // interleaving nondeterminism the daemon's ingest sees when
    // concurrent workers race. Per-peer order survives (the collector
    // invariant).
    let mut swaps = 0;
    let mut i = 0;
    while i + 1 < records.len() {
        let (a, b) = (&records[i], &records[i + 1]);
        if a.timestamp == b.timestamp && peer(a).zip(peer(b)).is_some_and(|(pa, pb)| pa != pb) {
            records.swap(i, i + 1);
            swaps += 1;
            i += 2;
            continue;
        }
        i += 1;
    }
    assert!(
        swaps >= bursts,
        "every manufactured burst must be swappable"
    );
    let mut writer = MrtWriter::new();
    for record in &records {
        writer.push(record);
    }

    let body = serve_zombies_body(2, vec![writer.finish()], &schedule);
    assert_eq!(
        serve_keys(&body),
        batch,
        "cross-peer reordering must not change the zombie set"
    );
}

#[test]
fn endpoints_and_shutdown_round_trip() {
    let (archive, schedule) = zombie_world();
    let config = ServeConfig {
        workers: 2,
        shards: 2,
        queue_capacity: 16,
        staleness_window: Some(HOUR),
        ..ServeConfig::default()
    };
    let streams = split_streams(archive.updates.clone(), 4);
    let mut server = Server::start(&config, intervals_from_schedule(&schedule), streams).unwrap();
    server.drain();
    let addr = server.addr();

    let health: serde_json::Value =
        serde_json::from_str(&http_get(addr, "GET", "/healthz")).unwrap();
    assert_eq!(health["status"], "ok");
    assert!(health["records"].as_u64().unwrap() > 0);

    let lifespans: serde_json::Value =
        serde_json::from_str(&http_get(addr, "GET", "/lifespans")).unwrap();
    assert!(lifespans["count"].as_u64().unwrap() > 0);
    assert!(lifespans["p99"].as_u64().unwrap() >= lifespans["p50"].as_u64().unwrap());

    let peers: serde_json::Value = serde_json::from_str(&http_get(addr, "GET", "/peers")).unwrap();
    assert_eq!(peers["count"].as_u64().unwrap(), 2);

    let metrics = http_get(addr, "GET", "/metrics");
    assert!(
        metrics.contains("serve::http"),
        "query metrics must register"
    );
    assert!(
        metrics.contains("# TYPE"),
        "/metrics speaks Prometheus text exposition"
    );
    let metrics_json = http_get(addr, "GET", "/metrics.json");
    let parsed: Result<serde_json::Value, _> = serde_json::from_str(&metrics_json);
    assert!(parsed.is_ok(), "/metrics.json keeps the JSON registry");

    // The cache serves the second identical query from the same body.
    let first = http_get(addr, "GET", "/zombies");
    let second = http_get(addr, "GET", "/zombies");
    assert_eq!(first, second);

    assert!(!server.shutdown_requested());
    let bye = http_get(addr, "POST", "/shutdown");
    assert!(bye.contains("draining"));
    assert!(server.shutdown_requested());
    server.shutdown();
}

#[test]
fn shed_policy_completes_under_tiny_queues() {
    let (archive, schedule) = zombie_world();
    let config = ServeConfig {
        workers: 4,
        shards: 2,
        queue_capacity: 2,
        overload: OverloadPolicy::Shed,
        ..ServeConfig::default()
    };
    let streams = split_streams(archive.updates.clone(), 8);
    let total: usize = {
        let mut n = 0;
        for s in &streams {
            let mut reader = MrtReader::new(s.clone());
            while reader.next_record().is_some() {
                n += 1;
            }
        }
        n
    };
    let mut server = Server::start(&config, intervals_from_schedule(&schedule), streams).unwrap();
    server.drain();
    let summary = server.shutdown();
    assert_eq!(summary.records, total as u64, "every record is counted");
    // Shedding is timing-dependent; the contract is completion plus an
    // honest count, not a specific drop rate.
    assert!(summary.shed <= summary.records);
}

#[test]
fn shed_policy_preserves_the_zombie_set() {
    let (archive, schedule) = zombie_world();
    let batch = batch_keys(&archive, &schedule);
    assert!(!batch.is_empty(), "the freeze must produce zombies");
    let config = ServeConfig {
        workers: 4,
        shards: 2,
        queue_capacity: 2,
        overload: OverloadPolicy::Shed,
        ..ServeConfig::default()
    };
    let streams = split_streams(archive.updates.clone(), 8);
    let mut server = Server::start(&config, intervals_from_schedule(&schedule), streams).unwrap();
    server.drain();
    let body = http_get(server.addr(), "GET", "/zombies");
    let health: serde_json::Value =
        serde_json::from_str(&http_get(server.addr(), "GET", "/healthz")).unwrap();
    let summary = server.shutdown();
    // Armed-prefix payloads and session state changes are shed-protected,
    // so however many records overload drops, the detected set is the
    // batch pipeline's.
    assert_eq!(
        serve_keys(&body),
        batch,
        "shedding must never change the zombie set"
    );
    // The health surface reconciles: per-shard sheds sum to the total.
    let per_shard: u64 = health["shed_per_shard"]
        .as_array()
        .unwrap()
        .iter()
        .map(|v| v.as_u64().unwrap())
        .sum();
    assert_eq!(per_shard, summary.shed);
    assert_eq!(health["shed"].as_u64().unwrap(), summary.shed);
    assert!(health["shed_rate"].as_f64().unwrap() >= 0.0);
}
