//! # bgpz-serve
//!
//! `bgpz serve`: the paper's §6 "future work" — continuous zombie
//! monitoring — run as a long-lived service instead of a batch job.
//!
//! Many simulated collector streams are ingested concurrently on a
//! bounded mpsc event loop: one ingest worker per group of streams, one
//! shard task per slice of the armed beacon intervals, each shard owning
//! a [`bgpz_core::RealtimeDetector`] and a reorder buffer that replays
//! records in global time order (see [`ingest`] for the parity
//! argument). Every [`bgpz_core::RealtimeEvent`] — zombie, resurrection,
//! stale peer — folds into one canonical [`ServeState`], queried over a
//! minimal std-only HTTP/JSON API ([`http`]) whose hot-path responses
//! are cached and invalidated by state version.
//!
//! Backpressure is explicit (bounded queues; [`OverloadPolicy::Shed`]
//! drops-and-counts under overload), shutdown drains gracefully, and the
//! whole pipeline is instrumented through `bgpz-obs`: ingest and query
//! latency histograms, queue-depth gauges, cache hit counters.
//!
//! Fed the same records, the daemon's zombie set is byte-for-byte the
//! batch pipeline's — at any worker or shard count. The serve smoke in
//! `scripts/ci.sh` and the `tests/parity.rs` suite hold it to that.

#![forbid(unsafe_code)]

pub mod http;
pub mod ingest;
pub mod server;
pub mod state;

pub use ingest::OverloadPolicy;
pub use server::{split_streams, ServeConfig, ServeSummary, Server};
pub use state::{PeerHealth, ResurrectionEntry, ServeState, ZombieEntry};
