//! The query surface: a deliberately minimal HTTP/1.1 server on
//! `std::net` alone — the workspace's no-new-dependencies rule is a
//! feature here, and the API is five fixed JSON routes, not a framework
//! problem.
//!
//! Routes:
//!
//! | route                | body                                            |
//! |----------------------|-------------------------------------------------|
//! | `GET /healthz`       | status, version, record/shed/zombie counters    |
//! | `GET /zombies`       | the canonical zombie + resurrection sets        |
//! | `GET /lifespans`     | nearest-rank lifespan percentiles               |
//! | `GET /peers`         | per-peer feed health                            |
//! | `GET /metrics`       | the registry in Prometheus text exposition      |
//! | `GET /metrics.json`  | the registry as the `metrics.json` artifact     |
//! | `POST /shutdown`     | acknowledges, then stops the accept loop        |
//!
//! When tracing is on, each request is one span (`serve::http` /
//! `<route>`) emitted and flushed *before* the response bytes go out, so
//! a client that drains the trace after its last response always sees
//! its own requests.
//!
//! Hot-path responses (`/zombies`, `/lifespans`, `/peers`) go through a
//! cache keyed by the state's mutation version: while ingest is quiet,
//! repeated queries serve one rendered body without re-walking state —
//! the cache invalidates itself the instant a shard folds in an event.

use crate::state::ServeState;
use bgpz_obs::trace::{self, TraceCtx};
use parking_lot::Mutex;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Global request sequence — the `b` coordinate of each request's trace
/// root, so sequential clients (the smoke, the profiler) get
/// run-invariant span identities.
static REQUEST_SEQ: AtomicU64 = AtomicU64::new(0);

/// Shared handles the connection threads need.
struct Router {
    state: Arc<Mutex<ServeState>>,
    cache: Mutex<HashMap<&'static str, (u64, Arc<String>)>>,
    shutdown: Arc<AtomicBool>,
}

/// The running HTTP front end.
pub(crate) struct HttpServer {
    addr: SocketAddr,
    accept: Option<JoinHandle<()>>,
    shutdown: Arc<AtomicBool>,
}

impl HttpServer {
    /// Binds `listener`'s accept loop to a background thread.
    pub fn start(
        listener: TcpListener,
        state: Arc<Mutex<ServeState>>,
        shutdown: Arc<AtomicBool>,
    ) -> std::io::Result<HttpServer> {
        let addr = listener.local_addr()?;
        let router = Arc::new(Router {
            state,
            cache: Mutex::new(HashMap::new()),
            shutdown: Arc::clone(&shutdown),
        });
        let flag = Arc::clone(&shutdown);
        let accept = std::thread::spawn(move || {
            for conn in listener.incoming() {
                if flag.load(Ordering::SeqCst) {
                    break;
                }
                let Ok(stream) = conn else { continue };
                let router = Arc::clone(&router);
                std::thread::spawn(move || serve_connection(stream, &router));
            }
        });
        Ok(HttpServer {
            addr,
            accept: Some(accept),
            shutdown,
        })
    }

    /// The bound address (port 0 resolves here).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// True once `POST /shutdown` has been acknowledged.
    pub fn shutdown_requested(&self) -> bool {
        self.shutdown.load(Ordering::SeqCst)
    }

    /// Stops accepting and joins the accept thread.
    pub fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        // Wake the blocking accept with a throwaway connection.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.accept.take() {
            if handle.join().is_err() {
                bgpz_obs::error!(target: "serve::http", "accept loop panicked");
            }
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Handles one keep-alive connection until the client closes or asks to.
fn serve_connection(stream: TcpStream, router: &Router) {
    let Ok(peer) = stream.try_clone() else { return };
    let mut reader = BufReader::new(peer);
    let mut writer = stream;
    loop {
        let Some(request) = read_request(&mut reader) else {
            return;
        };
        let _t = bgpz_obs::metrics::latency_timer("serve::http", "query_us");
        bgpz_obs::metrics::counter("serve::http", "requests", 1);
        let tracing = trace::enabled();
        let t0 = if tracing { trace::now_us() } else { 0 };
        let (status, body, content_type, route_name) = router.route(&request.method, &request.path);
        if tracing {
            // Emit and flush before the response: once the client has
            // the bytes, the span is already in the global store.
            let seq = REQUEST_SEQ.fetch_add(1, Ordering::Relaxed);
            let ctx = TraceCtx::root("http", 0, seq);
            trace::emit(
                "serve::http",
                route_name,
                4_000,
                ctx,
                t0,
                trace::now_us().saturating_sub(t0),
            );
            trace::flush_thread();
        }
        let keep_alive = request.keep_alive && !router.shutdown.load(Ordering::SeqCst);
        let connection = if keep_alive { "keep-alive" } else { "close" };
        let head = format!(
            "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n\r\n",
            body.len()
        );
        if writer.write_all(head.as_bytes()).is_err() || writer.write_all(body.as_bytes()).is_err()
        {
            return;
        }
        if !keep_alive {
            return;
        }
    }
}

struct Request {
    method: String,
    path: String,
    keep_alive: bool,
}

/// Parses one request head, discarding any body. `None` ends the
/// connection (EOF or malformed input — this server answers queries, it
/// does not negotiate).
fn read_request(reader: &mut BufReader<TcpStream>) -> Option<Request> {
    let mut line = String::new();
    if reader.read_line(&mut line).ok()? == 0 {
        return None;
    }
    let mut parts = line.split_whitespace();
    let method = parts.next()?.to_string();
    let path = parts.next()?.to_string();
    let mut keep_alive = true;
    let mut content_length = 0usize;
    loop {
        let mut header = String::new();
        if reader.read_line(&mut header).ok()? == 0 {
            return None;
        }
        let header = header.trim();
        if header.is_empty() {
            break;
        }
        let Some((name, value)) = header.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("connection") {
            keep_alive = !value.eq_ignore_ascii_case("close");
        } else if name.eq_ignore_ascii_case("content-length") {
            content_length = value.parse().unwrap_or(0);
        }
    }
    if content_length > 0 {
        let mut body = vec![0u8; content_length.min(64 * 1024)];
        reader.read_exact(&mut body).ok()?;
    }
    Some(Request {
        method,
        path,
        keep_alive,
    })
}

const JSON: &str = "application/json";
/// The Prometheus text exposition format version `/metrics` speaks.
const PROM: &str = "text/plain; version=0.0.4";

impl Router {
    /// Resolves one request to `(status, body, content type, route name)`
    /// — the route name doubles as the request's trace-span name.
    fn route(
        &self,
        method: &str,
        path: &str,
    ) -> (&'static str, Arc<String>, &'static str, &'static str) {
        match (method, path) {
            ("GET", "/healthz") => (
                "200 OK",
                Arc::new(self.state.lock().render_health()),
                JSON,
                "/healthz",
            ),
            ("GET", "/zombies") => ("200 OK", self.cached(path), JSON, "/zombies"),
            ("GET", "/lifespans") => ("200 OK", self.cached(path), JSON, "/lifespans"),
            ("GET", "/peers") => ("200 OK", self.cached(path), JSON, "/peers"),
            ("GET", "/metrics") => (
                "200 OK",
                Arc::new(bgpz_obs::expo::to_prometheus(bgpz_obs::metrics::global())),
                PROM,
                "/metrics",
            ),
            ("GET", "/metrics.json") => (
                "200 OK",
                Arc::new(bgpz_obs::metrics::global().to_json_pretty()),
                JSON,
                "/metrics.json",
            ),
            ("POST", "/shutdown") => {
                self.shutdown.store(true, Ordering::SeqCst);
                bgpz_obs::debug!(target: "serve::http", "shutdown requested over HTTP");
                (
                    "200 OK",
                    Arc::new(String::from("{\"status\":\"draining\"}")),
                    JSON,
                    "/shutdown",
                )
            }
            _ => (
                "404 Not Found",
                Arc::new(String::from("{\"error\":\"no such route\"}")),
                JSON,
                "other",
            ),
        }
    }

    /// Version-checked response cache: a hit costs one state-version
    /// read; any state mutation bumps the version and implicitly evicts.
    fn cached(&self, path: &str) -> Arc<String> {
        let state = self.state.lock();
        let version = state.version();
        let key: &'static str = match path {
            "/zombies" => "/zombies",
            "/lifespans" => "/lifespans",
            _ => "/peers",
        };
        if let Some((cached_version, body)) = self.cache.lock().get(key) {
            if *cached_version == version {
                bgpz_obs::metrics::counter("serve::http", "cache_hits", 1);
                return Arc::clone(body);
            }
        }
        bgpz_obs::metrics::counter("serve::http", "cache_misses", 1);
        let body = Arc::new(match key {
            "/zombies" => state.render_zombies(),
            "/lifespans" => state.render_lifespans(),
            _ => state.render_peers(),
        });
        drop(state);
        self.cache.lock().insert(key, (version, Arc::clone(&body)));
        body
    }
}
