//! The bounded ingest event loop: one worker per group of collector
//! streams, one shard task per slice of the armed beacon intervals.
//!
//! Parity with the batch pipeline at any worker count rests on three
//! invariants:
//!
//! 1. **Streams are per-peer.** [`crate::split_streams`] routes every
//!    record of one peer router to one stream, so each stream preserves
//!    the archive's per-peer record order.
//! 2. **Shards reorder before detecting.** A shard buffers incoming
//!    records in a min-heap keyed `(timestamp, stream, seq)` and only
//!    releases a record to its [`RealtimeDetector`] once every live
//!    stream's watermark has passed the record's timestamp — the
//!    detector therefore replays a valid global time order no matter how
//!    ingest workers interleave.
//! 3. **Every record advances every shard's watermarks.** A record is
//!    routed as a payload to the shards owning its prefixes (session
//!    state changes go everywhere) and as a bare watermark to the rest,
//!    so no shard ever stalls waiting for a quiet stream.
//!
//! Backpressure is explicit: shard queues are bounded
//! [`std::sync::mpsc::sync_channel`]s. Under [`OverloadPolicy::Block`]
//! (the default) a full queue blocks the ingest worker; under
//! [`OverloadPolicy::Shed`] *detector-irrelevant* payloads are dropped,
//! counted, and replaced by their watermark so the pipeline keeps
//! draining. A payload is protected from shedding when its shard's
//! detector actually needs it — session state changes, and updates
//! mentioning an armed beacon prefix owned by that shard — so shedding
//! never changes the final zombie set, only the load (the parity test
//! pins this).
//!
//! ## Tracing
//!
//! When `bgpz_obs::trace` is enabled, every per-stream batch of
//! [`TRACE_BATCH`] records mints a [`TraceCtx`] root; each record
//! carries a child context across the queue hop, and shards emit
//! `queue_wait` / `reorder` / `detect` stage spans per
//! [`TRACE_CHUNK`]-message chunk plus a `detect_events` span (parented
//! on the releasing record's context) whenever the detector fires.
//! Every span identity derives from worker-count-invariant coordinates
//! (stream id, batch index, shard id, chunk index), so two runs differ
//! only in `ts`/`dur`/`tid`.

use crate::state::ServeState;
use bgpz_core::realtime::{RealtimeDetector, RealtimeEvent};
use bgpz_core::scan::PeerId;
use bgpz_core::{BeaconInterval, ClassifyOptions};
use bgpz_mrt::{MrtBody, MrtReader, MrtRecord};
use bgpz_obs::trace::{self, TraceCtx};
use bgpz_types::{Prefix, SimTime};
use bytes::Bytes;
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;

/// What a full shard queue does to an incoming payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Block the ingest worker until the shard catches up (lossless).
    Block,
    /// Drop detector-irrelevant payloads, count them, and forward only
    /// their watermarks. Payloads the shard's detector needs still block.
    Shed,
}

/// One message on a shard queue. The record rides in a `Box` so the
/// watermark-only variants stay pointer-sized on the queue.
pub(crate) enum ShardMsg {
    /// A record the shard's detector must see.
    Record {
        stream: usize,
        seq: u64,
        record: Box<MrtRecord>,
        /// Causal context minted by the ingest worker (zero when tracing
        /// is off) — crosses the queue with the record.
        ctx: TraceCtx,
    },
    /// A stream's clock advanced past `ts` with nothing for this shard.
    Watermark { stream: usize, ts: SimTime },
    /// The stream ended; its watermark is now infinite.
    Flush { stream: usize },
}

/// A shard queue endpoint plus its depth gauge.
#[derive(Clone)]
pub(crate) struct ShardSender {
    pub tx: SyncSender<ShardMsg>,
    pub depth: Arc<AtomicU64>,
}

/// Deterministic FNV-1a over a prefix's canonical text — stable across
/// processes (unlike `std` hashing), so interval arming and record
/// routing always agree.
pub(crate) fn shard_of(prefix: &Prefix, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in prefix.to_string().as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    (h % shards.max(1) as u64) as usize
}

/// Sends one message, honoring the overload policy. `protected` marks a
/// payload the receiving shard's detector needs — it is never shed, only
/// blocked on. Returns `false` when the shard is gone (shutdown race)
/// and the worker should stop.
fn send(
    sender: &ShardSender,
    msg: ShardMsg,
    policy: OverloadPolicy,
    protected: bool,
    shed: &mut u64,
) -> bool {
    let msg = match policy {
        OverloadPolicy::Block => msg,
        OverloadPolicy::Shed => match sender.tx.try_send(msg) {
            Ok(()) => {
                sender.depth.fetch_add(1, Ordering::Relaxed);
                return true;
            }
            Err(TrySendError::Disconnected(_)) => return false,
            Err(TrySendError::Full(ShardMsg::Record { stream, record, .. })) if !protected => {
                // Shed the payload but never the clock: the watermark
                // still advances so the shard keeps releasing. Only
                // detector-irrelevant payloads reach this arm, so the
                // zombie set is untouched by construction.
                *shed += 1;
                bgpz_obs::metrics::counter("serve::ingest", "shed_records", 1);
                ShardMsg::Watermark {
                    stream,
                    ts: record.timestamp,
                }
            }
            Err(TrySendError::Full(other)) => other,
        },
    };
    if sender.tx.send(msg).is_err() {
        return false;
    }
    sender.depth.fetch_add(1, Ordering::Relaxed);
    true
}

/// How many records an ingest worker batches before flushing activity
/// notes and counters into the shared state.
const ACTIVITY_FLUSH: u64 = 512;

/// Records per stream per trace batch. A fixed **per-stream** size (not
/// the cross-stream [`ACTIVITY_FLUSH`]): each stream has exactly one
/// owning worker at any worker count, so the batch set — and therefore
/// the trace span identities — is worker-count-invariant.
const TRACE_BATCH: u64 = 256;

/// One ingest worker: drains its streams in round order, routing each
/// record to shard queues.
pub(crate) struct IngestWorker {
    /// `(stream id, MRT bytes)` pairs owned by this worker.
    pub streams: Vec<(usize, Bytes)>,
    pub senders: Vec<ShardSender>,
    pub policy: OverloadPolicy,
    pub shards: usize,
    pub state: Arc<Mutex<ServeState>>,
    /// Stable worker index — the trace `tid` lane.
    pub worker_id: usize,
    /// The armed beacon prefixes: updates touching one are
    /// shed-protected for the shard that owns it.
    pub armed: Arc<BTreeSet<Prefix>>,
}

impl IngestWorker {
    pub fn run(self) {
        let _span = bgpz_obs::span("serve::ingest", "worker");
        let tracing = trace::enabled();
        let tid = 1_000 + self.worker_id as u64;
        let mut activity: HashMap<PeerId, SimTime> = HashMap::new();
        let mut pending_records = 0u64;
        // Shed counts per shard, flushed into state with the activity.
        let mut pending_shed = vec![0u64; self.shards];
        let mut targets = vec![false; self.shards];
        let mut protected = vec![false; self.shards];
        for (stream, data) in &self.streams {
            let mut reader = MrtReader::new(data.clone());
            let mut seq = 0u64;
            let mut batch_idx = 0u64;
            let mut batch_ctx = TraceCtx::NONE;
            let mut batch_start = 0u64;
            let mut in_batch = 0u64;
            if tracing {
                batch_ctx = TraceCtx::root("ingest", *stream as u64, 0);
                batch_start = trace::now_us();
            }
            while let Some(record) = reader.next_record() {
                let _t = bgpz_obs::metrics::latency_timer("serve::ingest", "record_us");
                for t in targets.iter_mut() {
                    *t = false;
                }
                for p in protected.iter_mut() {
                    *p = false;
                }
                match &record.body {
                    MrtBody::Message(msg) => {
                        let peer = PeerId {
                            addr: msg.session.peer_ip,
                            asn: msg.session.peer_as,
                        };
                        note(&mut activity, peer, record.timestamp);
                        if let bgpz_types::BgpMessage::Update(update) = &msg.message {
                            for prefix in
                                update.announced().into_iter().chain(update.withdrawn_all())
                            {
                                let shard = shard_of(&prefix, self.shards);
                                if let Some(t) = targets.get_mut(shard) {
                                    *t = true;
                                }
                                // Only updates the shard's detector will
                                // actually consume are shed-protected.
                                if self.armed.contains(&prefix) {
                                    if let Some(p) = protected.get_mut(shard) {
                                        *p = true;
                                    }
                                }
                            }
                        }
                    }
                    MrtBody::StateChange(change) => {
                        let peer = PeerId {
                            addr: change.session.peer_ip,
                            asn: change.session.peer_as,
                        };
                        note(&mut activity, peer, record.timestamp);
                        // A session drop affects every interval's state.
                        for t in targets.iter_mut() {
                            *t = true;
                        }
                        for p in protected.iter_mut() {
                            *p = true;
                        }
                    }
                    _ => {}
                }
                let ts = record.timestamp;
                let ctx = if tracing {
                    batch_ctx.child("rec", seq)
                } else {
                    TraceCtx::NONE
                };
                let mut ok = true;
                for (((sender, hit), guard), shed) in self
                    .senders
                    .iter()
                    .zip(&targets)
                    .zip(&protected)
                    .zip(pending_shed.iter_mut())
                {
                    let msg = if *hit {
                        ShardMsg::Record {
                            stream: *stream,
                            seq,
                            record: Box::new(record.clone()),
                            ctx,
                        }
                    } else {
                        ShardMsg::Watermark {
                            stream: *stream,
                            ts,
                        }
                    };
                    if !send(sender, msg, self.policy, *guard, shed) {
                        ok = false;
                        break;
                    }
                }
                if !ok {
                    return;
                }
                seq += 1;
                pending_records += 1;
                if tracing {
                    in_batch += 1;
                    if in_batch == TRACE_BATCH {
                        let end = trace::now_us();
                        trace::emit(
                            "serve::ingest",
                            "ingest_batch",
                            tid,
                            batch_ctx,
                            batch_start,
                            end.saturating_sub(batch_start),
                        );
                        batch_idx += 1;
                        batch_ctx = TraceCtx::root("ingest", *stream as u64, batch_idx);
                        batch_start = end;
                        in_batch = 0;
                    }
                }
                if pending_records >= ACTIVITY_FLUSH {
                    self.flush(&mut activity, &mut pending_records, &mut pending_shed);
                }
            }
            if tracing && in_batch > 0 {
                let end = trace::now_us();
                trace::emit(
                    "serve::ingest",
                    "ingest_batch",
                    tid,
                    batch_ctx,
                    batch_start,
                    end.saturating_sub(batch_start),
                );
            }
            for (sender, shed) in self.senders.iter().zip(pending_shed.iter_mut()) {
                if !send(
                    sender,
                    ShardMsg::Flush { stream: *stream },
                    self.policy,
                    true,
                    shed,
                ) {
                    return;
                }
            }
            bgpz_obs::metrics::counter("serve::ingest", "streams_drained", 1);
        }
        self.flush(&mut activity, &mut pending_records, &mut pending_shed);
        if tracing {
            trace::flush_thread();
        }
    }

    fn flush(
        &self,
        activity: &mut HashMap<PeerId, SimTime>,
        pending_records: &mut u64,
        pending_shed: &mut [u64],
    ) {
        let shed_total: u64 = pending_shed.iter().sum();
        if activity.is_empty() && *pending_records == 0 && shed_total == 0 {
            return;
        }
        bgpz_obs::metrics::counter("serve::ingest", "records", *pending_records);
        let mut notes: Vec<(PeerId, SimTime)> = activity.drain().collect();
        notes.sort();
        let mut state = self.state.lock();
        for (peer, seen) in notes {
            state.note_activity(peer, seen);
        }
        state.note_records(*pending_records);
        for (shard, shed) in pending_shed.iter_mut().enumerate() {
            if *shed > 0 {
                state.note_shed_shard(shard, *shed);
                *shed = 0;
            }
        }
        *pending_records = 0;
    }
}

fn note(activity: &mut HashMap<PeerId, SimTime>, peer: PeerId, ts: SimTime) {
    let entry = activity.entry(peer).or_insert(ts);
    if ts > *entry {
        *entry = ts;
    }
}

/// A buffered record awaiting release, ordered by
/// `(timestamp, stream, seq)` — a deterministic global order consistent
/// with every stream's own order.
struct Pending {
    key: (SimTime, usize, u64),
    record: Box<MrtRecord>,
    ctx: TraceCtx,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Pending) -> bool {
        self.key == other.key
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Pending) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Pending) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// How many queue messages a shard handles between depth-gauge updates.
const GAUGE_EVERY: u64 = 256;

/// Queue messages per shard trace chunk. Every record reaches every
/// shard as exactly one message (payload or watermark), so per-shard
/// message counts — and therefore chunk span identities — are invariant
/// under the worker count.
const TRACE_CHUNK: u64 = 1_024;

/// Accumulated stage time within the current trace chunk. The three
/// stage spans are emitted back-to-back from the chunk's start so they
/// tile the chunk wall time without overlapping.
#[derive(Default)]
struct ChunkTimes {
    idx: u64,
    t0: u64,
    wait: u64,
    reorder: u64,
    detect: u64,
}

impl ChunkTimes {
    fn emit(&mut self, tid: u64, shard: u64) {
        let base = self.t0;
        trace::emit(
            "serve::shard",
            "queue_wait",
            tid,
            TraceCtx::root("shard-wait", shard, self.idx),
            base,
            self.wait,
        );
        trace::emit(
            "serve::shard",
            "reorder",
            tid,
            TraceCtx::root("shard-reorder", shard, self.idx),
            base.saturating_add(self.wait),
            self.reorder,
        );
        trace::emit(
            "serve::shard",
            "detect",
            tid,
            TraceCtx::root("shard-detect", shard, self.idx),
            base.saturating_add(self.wait).saturating_add(self.reorder),
            self.detect,
        );
        self.idx += 1;
        self.t0 = trace::now_us();
        self.wait = 0;
        self.reorder = 0;
        self.detect = 0;
    }
}

/// One shard task: owns the detector for its slice of the armed
/// intervals and replays released records in global time order.
pub(crate) struct Shard {
    pub id: usize,
    pub rx: Receiver<ShardMsg>,
    pub depth: Arc<AtomicU64>,
    pub detector: RealtimeDetector,
    pub streams: usize,
    pub state: Arc<Mutex<ServeState>>,
    /// Seconds past the last observed timestamp the drain advances the
    /// detector clock, firing every remaining deadline.
    pub drain_grace: u64,
}

impl Shard {
    /// Builds a detector armed with the interval subset hashed to `id`.
    pub fn detector_for(
        id: usize,
        shards: usize,
        intervals: &[BeaconInterval],
        options: ClassifyOptions,
        resurrection_window: Option<u64>,
    ) -> RealtimeDetector {
        let mut detector = RealtimeDetector::new(options);
        if let Some(secs) = resurrection_window {
            detector = detector.with_resurrection_window(secs);
        }
        detector.arm_intervals(
            intervals
                .iter()
                .filter(|iv| shard_of(&iv.prefix, shards) == id)
                .copied(),
        );
        detector
    }

    pub fn run(mut self) {
        let _span = bgpz_obs::span("serve::shard", "run");
        let tracing = trace::enabled();
        let tid = 2_000 + self.id as u64;
        let shard64 = self.id as u64;
        let mut watermarks: Vec<SimTime> = vec![SimTime::ZERO; self.streams];
        let mut flushed: Vec<bool> = vec![false; self.streams];
        let mut heap: BinaryHeap<Reverse<Pending>> = BinaryHeap::new();
        let mut max_ts = SimTime::ZERO;
        let mut handled = 0u64;
        let mut event_seq = 0u64;
        let mut chunk = ChunkTimes::default();
        if tracing {
            chunk.t0 = trace::now_us();
        }
        let gauge_name = format!("shard{}_depth", self.id);
        loop {
            let wait0 = if tracing { trace::now_us() } else { 0 };
            let Ok(msg) = self.rx.recv() else { break };
            let handle0 = if tracing {
                let t = trace::now_us();
                chunk.wait += t.saturating_sub(wait0);
                t
            } else {
                0
            };
            self.depth.fetch_sub(1, Ordering::Relaxed);
            match msg {
                ShardMsg::Record {
                    stream,
                    seq,
                    record,
                    ctx,
                } => {
                    let ts = record.timestamp;
                    advance_mark(&mut watermarks, stream, ts);
                    max_ts = max_ts.max(ts);
                    heap.push(Reverse(Pending {
                        key: (ts, stream, seq),
                        record,
                        ctx,
                    }));
                }
                ShardMsg::Watermark { stream, ts } => {
                    advance_mark(&mut watermarks, stream, ts);
                    max_ts = max_ts.max(ts);
                }
                ShardMsg::Flush { stream } => {
                    if let Some(f) = flushed.get_mut(stream) {
                        *f = true;
                    }
                }
            }
            let release0 = if tracing {
                let t = trace::now_us();
                chunk.reorder += t.saturating_sub(handle0);
                t
            } else {
                0
            };
            self.release(
                &mut heap,
                min_watermark(&watermarks, &flushed),
                &mut event_seq,
                tracing,
                tid,
            );
            if tracing {
                chunk.detect += trace::now_us().saturating_sub(release0);
            }
            handled += 1;
            if handled.is_multiple_of(GAUGE_EVERY) {
                bgpz_obs::metrics::gauge(
                    "serve::queue",
                    &gauge_name,
                    self.depth.load(Ordering::Relaxed),
                );
            }
            if tracing && handled.is_multiple_of(TRACE_CHUNK) {
                chunk.emit(tid, shard64);
            }
        }
        // Every sender hung up: drain whatever is buffered, then fire the
        // remaining deadlines well past the last observed instant.
        let drain0 = if tracing { trace::now_us() } else { 0 };
        self.release(&mut heap, SimTime(u64::MAX), &mut event_seq, tracing, tid);
        let horizon = SimTime(max_ts.secs().saturating_add(self.drain_grace));
        let events = self.detector.advance(horizon);
        self.apply(
            events,
            TraceCtx::root("shard-drain", shard64, 0),
            &mut event_seq,
            tracing,
            tid,
        );
        if tracing {
            chunk.detect += trace::now_us().saturating_sub(drain0);
            chunk.emit(tid, shard64);
            trace::flush_thread();
        }
        bgpz_obs::metrics::gauge("serve::queue", &gauge_name, 0);
        bgpz_obs::debug!(
            target: "serve::shard",
            "shard {} drained ({} deadlines pending)",
            self.id,
            self.detector.pending()
        );
    }

    /// Releases buffered records whose timestamp every live stream has
    /// passed, in `(ts, stream, seq)` order.
    fn release(
        &mut self,
        heap: &mut BinaryHeap<Reverse<Pending>>,
        min: SimTime,
        event_seq: &mut u64,
        tracing: bool,
        tid: u64,
    ) {
        while heap.peek().is_some_and(|Reverse(p)| p.key.0 <= min) {
            let Some(Reverse(pending)) = heap.pop() else {
                break;
            };
            let events = self.detector.push(&pending.record);
            self.apply(events, pending.ctx, event_seq, tracing, tid);
        }
    }

    /// Folds detector events into the shared state; when tracing, the
    /// fold is recorded as a `detect_events` span parented on the
    /// releasing record's context, so the trace links an emitted zombie
    /// event back to the exact ingest batch that caused it.
    fn apply(
        &self,
        events: Vec<RealtimeEvent>,
        ctx: TraceCtx,
        event_seq: &mut u64,
        tracing: bool,
        tid: u64,
    ) {
        if events.is_empty() {
            return;
        }
        bgpz_obs::metrics::counter("serve::shard", "events", events.len() as u64);
        let t0 = if tracing { trace::now_us() } else { 0 };
        {
            let mut state = self.state.lock();
            for event in &events {
                state.apply(event);
            }
        }
        if tracing {
            let end = trace::now_us();
            let ectx = ctx.child("evt", *event_seq);
            *event_seq += 1;
            trace::emit(
                "serve::shard",
                "detect_events",
                tid,
                ectx,
                t0,
                end.saturating_sub(t0),
            );
        }
    }
}

fn advance_mark(watermarks: &mut [SimTime], stream: usize, ts: SimTime) {
    if let Some(mark) = watermarks.get_mut(stream) {
        *mark = (*mark).max(ts);
    }
}

/// The earliest timestamp any live stream could still deliver; `MAX`
/// once every stream has flushed.
fn min_watermark(watermarks: &[SimTime], flushed: &[bool]) -> SimTime {
    watermarks
        .iter()
        .zip(flushed)
        .filter(|(_, f)| !**f)
        .map(|(w, _)| *w)
        .min()
        .unwrap_or(SimTime(u64::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_routing_is_deterministic_and_total() {
        let prefixes = ["2001:7fb:fe00::/48", "2001:7fb:fe01::/48", "84.205.64.0/24"];
        for shards in [1usize, 2, 7] {
            for p in prefixes {
                let prefix: Prefix = p.parse().unwrap();
                let a = shard_of(&prefix, shards);
                assert_eq!(a, shard_of(&prefix, shards));
                assert!(a < shards);
            }
        }
    }

    #[test]
    fn min_watermark_ignores_flushed_streams() {
        let marks = vec![SimTime(10), SimTime(5), SimTime(99)];
        assert_eq!(min_watermark(&marks, &[false, false, false]), SimTime(5));
        assert_eq!(min_watermark(&marks, &[false, true, false]), SimTime(10));
        assert_eq!(
            min_watermark(&marks, &[true, true, true]),
            SimTime(u64::MAX)
        );
    }

    fn probe_record(seq: u64) -> ShardMsg {
        ShardMsg::Record {
            stream: 0,
            seq,
            record: Box::new(MrtRecord::new(
                SimTime(42),
                MrtBody::PeerIndex(bgpz_mrt::PeerIndexTable {
                    collector_id: std::net::Ipv4Addr::LOCALHOST,
                    view_name: String::new(),
                    peers: Vec::new(),
                }),
            )),
            ctx: TraceCtx::NONE,
        }
    }

    /// Drains a queue into a `Vec` after an initial delay, so the
    /// producer hits the queue-full case before anything is consumed.
    fn delayed_drain(rx: Receiver<ShardMsg>) -> std::thread::JoinHandle<Vec<ShardMsg>> {
        std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(300));
            let mut got = Vec::new();
            while let Ok(msg) = rx.recv() {
                got.push(msg);
            }
            got
        })
    }

    #[test]
    fn shed_converts_unprotected_payload_to_watermark() {
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        let sender = ShardSender {
            tx,
            depth: Arc::new(AtomicU64::new(0)),
        };
        let consumer = delayed_drain(rx);
        let mut shed = 0u64;
        // First send fills the capacity-1 queue; the second finds it
        // full and, being unprotected, sheds to a watermark.
        assert!(send(
            &sender,
            probe_record(0),
            OverloadPolicy::Shed,
            false,
            &mut shed
        ));
        assert!(send(
            &sender,
            probe_record(1),
            OverloadPolicy::Shed,
            false,
            &mut shed
        ));
        drop(sender);
        let got = consumer.join().expect("consumer thread");
        assert_eq!(shed, 1, "the overflow payload was shed");
        assert_eq!(got.len(), 2);
        assert!(matches!(got[0], ShardMsg::Record { seq: 0, .. }));
        assert!(
            matches!(
                got[1],
                ShardMsg::Watermark {
                    ts: SimTime(42),
                    ..
                }
            ),
            "the shed payload still advances the stream clock"
        );
    }

    #[test]
    fn protected_payloads_block_instead_of_shedding() {
        let (tx, rx) = std::sync::mpsc::sync_channel(1);
        let sender = ShardSender {
            tx,
            depth: Arc::new(AtomicU64::new(0)),
        };
        let consumer = delayed_drain(rx);
        let mut shed = 0u64;
        assert!(send(
            &sender,
            probe_record(0),
            OverloadPolicy::Shed,
            true,
            &mut shed
        ));
        assert!(send(
            &sender,
            probe_record(1),
            OverloadPolicy::Shed,
            true,
            &mut shed
        ));
        drop(sender);
        let got = consumer.join().expect("consumer thread");
        assert_eq!(shed, 0, "protected payloads never shed");
        assert!(matches!(got[0], ShardMsg::Record { seq: 0, .. }));
        assert!(matches!(got[1], ShardMsg::Record { seq: 1, .. }));
    }
}
