//! The bounded ingest event loop: one worker per group of collector
//! streams, one shard task per slice of the armed beacon intervals.
//!
//! Parity with the batch pipeline at any worker count rests on three
//! invariants:
//!
//! 1. **Streams are per-peer.** [`crate::split_streams`] routes every
//!    record of one peer router to one stream, so each stream preserves
//!    the archive's per-peer record order.
//! 2. **Shards reorder before detecting.** A shard buffers incoming
//!    records in a min-heap keyed `(timestamp, stream, seq)` and only
//!    releases a record to its [`RealtimeDetector`] once every live
//!    stream's watermark has passed the record's timestamp — the
//!    detector therefore replays a valid global time order no matter how
//!    ingest workers interleave.
//! 3. **Every record advances every shard's watermarks.** A record is
//!    routed as a payload to the shards owning its prefixes (session
//!    state changes go everywhere) and as a bare watermark to the rest,
//!    so no shard ever stalls waiting for a quiet stream.
//!
//! Backpressure is explicit: shard queues are bounded
//! [`std::sync::mpsc::sync_channel`]s. Under [`OverloadPolicy::Block`]
//! (the default) a full queue blocks the ingest worker; under
//! [`OverloadPolicy::Shed`] the payload is dropped, counted, and
//! replaced by its watermark so the pipeline keeps draining.

use crate::state::ServeState;
use bgpz_core::realtime::{RealtimeDetector, RealtimeEvent};
use bgpz_core::scan::PeerId;
use bgpz_core::{BeaconInterval, ClassifyOptions};
use bgpz_mrt::{MrtBody, MrtReader, MrtRecord};
use bgpz_types::{Prefix, SimTime};
use bytes::Bytes;
use parking_lot::Mutex;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::Arc;

/// What a full shard queue does to an incoming payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OverloadPolicy {
    /// Block the ingest worker until the shard catches up (lossless).
    Block,
    /// Drop the payload, count it, and forward only its watermark.
    Shed,
}

/// One message on a shard queue. The record rides in a `Box` so the
/// watermark-only variants stay pointer-sized on the queue.
pub(crate) enum ShardMsg {
    /// A record the shard's detector must see.
    Record {
        stream: usize,
        seq: u64,
        record: Box<MrtRecord>,
    },
    /// A stream's clock advanced past `ts` with nothing for this shard.
    Watermark { stream: usize, ts: SimTime },
    /// The stream ended; its watermark is now infinite.
    Flush { stream: usize },
}

/// A shard queue endpoint plus its depth gauge.
#[derive(Clone)]
pub(crate) struct ShardSender {
    pub tx: SyncSender<ShardMsg>,
    pub depth: Arc<AtomicU64>,
}

/// Deterministic FNV-1a over a prefix's canonical text — stable across
/// processes (unlike `std` hashing), so interval arming and record
/// routing always agree.
pub(crate) fn shard_of(prefix: &Prefix, shards: usize) -> usize {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in prefix.to_string().as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    (h % shards.max(1) as u64) as usize
}

/// Sends one message, honoring the overload policy. Returns `false` when
/// the shard is gone (shutdown race) and the worker should stop.
fn send(sender: &ShardSender, msg: ShardMsg, policy: OverloadPolicy, shed: &mut u64) -> bool {
    let msg = match policy {
        OverloadPolicy::Block => msg,
        OverloadPolicy::Shed => match sender.tx.try_send(msg) {
            Ok(()) => {
                sender.depth.fetch_add(1, Ordering::Relaxed);
                return true;
            }
            Err(TrySendError::Disconnected(_)) => return false,
            Err(TrySendError::Full(ShardMsg::Record { stream, record, .. })) => {
                // Shed the payload but never the clock: the watermark
                // still advances so the shard keeps releasing.
                *shed += 1;
                bgpz_obs::metrics::counter("serve::ingest", "shed_records", 1);
                ShardMsg::Watermark {
                    stream,
                    ts: record.timestamp,
                }
            }
            Err(TrySendError::Full(other)) => other,
        },
    };
    if sender.tx.send(msg).is_err() {
        return false;
    }
    sender.depth.fetch_add(1, Ordering::Relaxed);
    true
}

/// How many records an ingest worker batches before flushing activity
/// notes and counters into the shared state.
const ACTIVITY_FLUSH: u64 = 512;

/// One ingest worker: drains its streams in round order, routing each
/// record to shard queues.
pub(crate) struct IngestWorker {
    /// `(stream id, MRT bytes)` pairs owned by this worker.
    pub streams: Vec<(usize, Bytes)>,
    pub senders: Vec<ShardSender>,
    pub policy: OverloadPolicy,
    pub shards: usize,
    pub state: Arc<Mutex<ServeState>>,
}

impl IngestWorker {
    pub fn run(self) {
        let _span = bgpz_obs::span("serve::ingest", "worker");
        let mut activity: HashMap<PeerId, SimTime> = HashMap::new();
        let mut pending_records = 0u64;
        let mut pending_shed = 0u64;
        let mut targets = vec![false; self.shards];
        for (stream, data) in &self.streams {
            let mut reader = MrtReader::new(data.clone());
            let mut seq = 0u64;
            while let Some(record) = reader.next_record() {
                let _t = bgpz_obs::metrics::latency_timer("serve::ingest", "record_us");
                for t in targets.iter_mut() {
                    *t = false;
                }
                match &record.body {
                    MrtBody::Message(msg) => {
                        let peer = PeerId {
                            addr: msg.session.peer_ip,
                            asn: msg.session.peer_as,
                        };
                        note(&mut activity, peer, record.timestamp);
                        if let bgpz_types::BgpMessage::Update(update) = &msg.message {
                            for prefix in update.announced() {
                                if let Some(t) = targets.get_mut(shard_of(&prefix, self.shards)) {
                                    *t = true;
                                }
                            }
                            for prefix in update.withdrawn_all() {
                                if let Some(t) = targets.get_mut(shard_of(&prefix, self.shards)) {
                                    *t = true;
                                }
                            }
                        }
                    }
                    MrtBody::StateChange(change) => {
                        let peer = PeerId {
                            addr: change.session.peer_ip,
                            asn: change.session.peer_as,
                        };
                        note(&mut activity, peer, record.timestamp);
                        // A session drop affects every interval's state.
                        for t in targets.iter_mut() {
                            *t = true;
                        }
                    }
                    _ => {}
                }
                let ts = record.timestamp;
                for (sender, hit) in self.senders.iter().zip(&targets) {
                    let msg = if *hit {
                        ShardMsg::Record {
                            stream: *stream,
                            seq,
                            record: Box::new(record.clone()),
                        }
                    } else {
                        ShardMsg::Watermark {
                            stream: *stream,
                            ts,
                        }
                    };
                    if !send(sender, msg, self.policy, &mut pending_shed) {
                        return;
                    }
                }
                seq += 1;
                pending_records += 1;
                if pending_records >= ACTIVITY_FLUSH {
                    self.flush(&mut activity, &mut pending_records, &mut pending_shed);
                }
            }
            for sender in &self.senders {
                if !send(
                    sender,
                    ShardMsg::Flush { stream: *stream },
                    self.policy,
                    &mut pending_shed,
                ) {
                    return;
                }
            }
            bgpz_obs::metrics::counter("serve::ingest", "streams_drained", 1);
        }
        self.flush(&mut activity, &mut pending_records, &mut pending_shed);
    }

    fn flush(
        &self,
        activity: &mut HashMap<PeerId, SimTime>,
        pending_records: &mut u64,
        pending_shed: &mut u64,
    ) {
        if activity.is_empty() && *pending_records == 0 && *pending_shed == 0 {
            return;
        }
        bgpz_obs::metrics::counter("serve::ingest", "records", *pending_records);
        let mut notes: Vec<(PeerId, SimTime)> = activity.drain().collect();
        notes.sort();
        let mut state = self.state.lock();
        for (peer, seen) in notes {
            state.note_activity(peer, seen);
        }
        state.note_records(*pending_records);
        if *pending_shed > 0 {
            state.note_shed(*pending_shed);
        }
        *pending_records = 0;
        *pending_shed = 0;
    }
}

fn note(activity: &mut HashMap<PeerId, SimTime>, peer: PeerId, ts: SimTime) {
    let entry = activity.entry(peer).or_insert(ts);
    if ts > *entry {
        *entry = ts;
    }
}

/// A buffered record awaiting release, ordered by
/// `(timestamp, stream, seq)` — a deterministic global order consistent
/// with every stream's own order.
struct Pending {
    key: (SimTime, usize, u64),
    record: Box<MrtRecord>,
}

impl PartialEq for Pending {
    fn eq(&self, other: &Pending) -> bool {
        self.key == other.key
    }
}
impl Eq for Pending {}
impl PartialOrd for Pending {
    fn partial_cmp(&self, other: &Pending) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Pending {
    fn cmp(&self, other: &Pending) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

/// How many queue messages a shard handles between depth-gauge updates.
const GAUGE_EVERY: u64 = 256;

/// One shard task: owns the detector for its slice of the armed
/// intervals and replays released records in global time order.
pub(crate) struct Shard {
    pub id: usize,
    pub rx: Receiver<ShardMsg>,
    pub depth: Arc<AtomicU64>,
    pub detector: RealtimeDetector,
    pub streams: usize,
    pub state: Arc<Mutex<ServeState>>,
    /// Seconds past the last observed timestamp the drain advances the
    /// detector clock, firing every remaining deadline.
    pub drain_grace: u64,
}

impl Shard {
    /// Builds a detector armed with the interval subset hashed to `id`.
    pub fn detector_for(
        id: usize,
        shards: usize,
        intervals: &[BeaconInterval],
        options: ClassifyOptions,
        resurrection_window: Option<u64>,
    ) -> RealtimeDetector {
        let mut detector = RealtimeDetector::new(options);
        if let Some(secs) = resurrection_window {
            detector = detector.with_resurrection_window(secs);
        }
        detector.arm_intervals(
            intervals
                .iter()
                .filter(|iv| shard_of(&iv.prefix, shards) == id)
                .copied(),
        );
        detector
    }

    pub fn run(mut self) {
        let _span = bgpz_obs::span("serve::shard", "run");
        let mut watermarks: Vec<SimTime> = vec![SimTime::ZERO; self.streams];
        let mut flushed: Vec<bool> = vec![false; self.streams];
        let mut heap: BinaryHeap<Reverse<Pending>> = BinaryHeap::new();
        let mut max_ts = SimTime::ZERO;
        let mut handled = 0u64;
        let gauge_name = format!("shard{}_depth", self.id);
        while let Ok(msg) = self.rx.recv() {
            self.depth.fetch_sub(1, Ordering::Relaxed);
            match msg {
                ShardMsg::Record {
                    stream,
                    seq,
                    record,
                } => {
                    let ts = record.timestamp;
                    advance_mark(&mut watermarks, stream, ts);
                    max_ts = max_ts.max(ts);
                    heap.push(Reverse(Pending {
                        key: (ts, stream, seq),
                        record,
                    }));
                }
                ShardMsg::Watermark { stream, ts } => {
                    advance_mark(&mut watermarks, stream, ts);
                    max_ts = max_ts.max(ts);
                }
                ShardMsg::Flush { stream } => {
                    if let Some(f) = flushed.get_mut(stream) {
                        *f = true;
                    }
                }
            }
            self.release(&mut heap, min_watermark(&watermarks, &flushed));
            handled += 1;
            if handled.is_multiple_of(GAUGE_EVERY) {
                bgpz_obs::metrics::gauge(
                    "serve::queue",
                    &gauge_name,
                    self.depth.load(Ordering::Relaxed),
                );
            }
        }
        // Every sender hung up: drain whatever is buffered, then fire the
        // remaining deadlines well past the last observed instant.
        self.release(&mut heap, SimTime(u64::MAX));
        let horizon = SimTime(max_ts.secs().saturating_add(self.drain_grace));
        let events = self.detector.advance(horizon);
        self.apply(events);
        bgpz_obs::metrics::gauge("serve::queue", &gauge_name, 0);
        bgpz_obs::debug!(
            target: "serve::shard",
            "shard {} drained ({} deadlines pending)",
            self.id,
            self.detector.pending()
        );
    }

    /// Releases buffered records whose timestamp every live stream has
    /// passed, in `(ts, stream, seq)` order.
    fn release(&mut self, heap: &mut BinaryHeap<Reverse<Pending>>, min: SimTime) {
        while heap.peek().is_some_and(|Reverse(p)| p.key.0 <= min) {
            let Some(Reverse(pending)) = heap.pop() else {
                break;
            };
            let events = self.detector.push(&pending.record);
            self.apply(events);
        }
    }

    fn apply(&self, events: Vec<RealtimeEvent>) {
        if events.is_empty() {
            return;
        }
        bgpz_obs::metrics::counter("serve::shard", "events", events.len() as u64);
        let mut state = self.state.lock();
        for event in &events {
            state.apply(event);
        }
    }
}

fn advance_mark(watermarks: &mut [SimTime], stream: usize, ts: SimTime) {
    if let Some(mark) = watermarks.get_mut(stream) {
        *mark = (*mark).max(ts);
    }
}

/// The earliest timestamp any live stream could still deliver; `MAX`
/// once every stream has flushed.
fn min_watermark(watermarks: &[SimTime], flushed: &[bool]) -> SimTime {
    watermarks
        .iter()
        .zip(flushed)
        .filter(|(_, f)| !**f)
        .map(|(w, _)| *w)
        .min()
        .unwrap_or(SimTime(u64::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shard_routing_is_deterministic_and_total() {
        let prefixes = ["2001:7fb:fe00::/48", "2001:7fb:fe01::/48", "84.205.64.0/24"];
        for shards in [1usize, 2, 7] {
            for p in prefixes {
                let prefix: Prefix = p.parse().unwrap();
                let a = shard_of(&prefix, shards);
                assert_eq!(a, shard_of(&prefix, shards));
                assert!(a < shards);
            }
        }
    }

    #[test]
    fn min_watermark_ignores_flushed_streams() {
        let marks = vec![SimTime(10), SimTime(5), SimTime(99)];
        assert_eq!(min_watermark(&marks, &[false, false, false]), SimTime(5));
        assert_eq!(min_watermark(&marks, &[false, true, false]), SimTime(10));
        assert_eq!(
            min_watermark(&marks, &[true, true, true]),
            SimTime(u64::MAX)
        );
    }
}
