//! Wiring: streams → ingest workers → shard queues → shared state →
//! HTTP, plus the graceful drain that proves parity with the batch
//! pipeline.

use crate::http::HttpServer;
use crate::ingest::{IngestWorker, OverloadPolicy, Shard, ShardSender};
use crate::state::ServeState;
use bgpz_core::scan::PeerId;
use bgpz_core::{BeaconInterval, ClassifyOptions};
use bgpz_mrt::{MrtBody, MrtReader, MrtRecord, MrtWriter};
use bgpz_types::{Prefix, SimTime};
use bytes::Bytes;
use parking_lot::Mutex;
use std::collections::BTreeSet;
use std::net::{SocketAddr, TcpListener};
use std::sync::atomic::{AtomicBool, AtomicU64};
use std::sync::{mpsc, Arc};
use std::thread::JoinHandle;

/// Daemon tuning knobs. `Default` is a small single-worker deployment;
/// raise `workers`/`shards` to scale ingest.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Concurrent ingest workers (streams are split between them).
    pub workers: usize,
    /// Detector shards (armed intervals are hashed across them).
    pub shards: usize,
    /// Bound of each shard queue — the explicit backpressure budget.
    pub queue_capacity: usize,
    /// What a full shard queue does (block by default; shed-and-count
    /// for overload experiments).
    pub overload: OverloadPolicy,
    /// Detection options, shared with the batch pipeline.
    pub options: ClassifyOptions,
    /// Override of the detector's post-deadline resurrection window.
    pub resurrection_window: Option<u64>,
    /// Idle seconds before the drain sweep flags a peer stale.
    pub staleness_window: Option<u64>,
    /// Seconds past the last observed timestamp the drain advances the
    /// detector clocks (fires every remaining deadline).
    pub drain_grace: u64,
    /// Bind address for the HTTP API (port 0 picks a free port).
    pub bind: SocketAddr,
}

impl Default for ServeConfig {
    fn default() -> ServeConfig {
        ServeConfig {
            workers: 1,
            shards: 2,
            queue_capacity: 1_024,
            overload: OverloadPolicy::Block,
            options: ClassifyOptions::default(),
            resurrection_window: None,
            staleness_window: None,
            drain_grace: 24 * 3_600,
            bind: SocketAddr::from(([127, 0, 0, 1], 0)),
        }
    }
}

/// What a completed run looked like (returned by [`Server::shutdown`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeSummary {
    /// Zombie routes detected.
    pub zombies: usize,
    /// Live resurrections detected.
    pub resurrections: usize,
    /// Peers observed.
    pub peers: usize,
    /// Records ingested.
    pub records: u64,
    /// Records shed under overload.
    pub shed: u64,
}

/// The running daemon.
pub struct Server {
    state: Arc<Mutex<ServeState>>,
    http: HttpServer,
    ingest: Vec<JoinHandle<()>>,
    shards: Vec<JoinHandle<()>>,
    staleness_window: Option<u64>,
    drained: bool,
}

impl Server {
    /// Boots the full pipeline: shard tasks, ingest workers over
    /// `streams`, and the HTTP front end on `config.bind`.
    pub fn start(
        config: &ServeConfig,
        intervals: Vec<BeaconInterval>,
        streams: Vec<Bytes>,
    ) -> std::io::Result<Server> {
        let _span = bgpz_obs::span("serve", "start");
        let shard_count = config.shards.max(1);
        let worker_count = config.workers.max(1);
        let state = Arc::new(Mutex::new(ServeState::default()));
        state.lock().init_shards(shard_count);
        // The armed beacon prefixes: the shed policy may never drop an
        // update touching one of these for the shard that owns it.
        let armed: Arc<BTreeSet<Prefix>> = Arc::new(intervals.iter().map(|iv| iv.prefix).collect());
        // Debug, not info: operational logs stay on stderr so the
        // daemon's stdout remains canonical artifact output.
        bgpz_obs::debug!(
            target: "serve",
            "starting: {} streams, {} workers, {} shards, queue bound {}",
            streams.len(),
            worker_count,
            shard_count,
            config.queue_capacity
        );

        let mut senders = Vec::with_capacity(shard_count);
        let mut shard_handles = Vec::with_capacity(shard_count);
        for id in 0..shard_count {
            let (tx, rx) = mpsc::sync_channel(config.queue_capacity.max(1));
            let depth = Arc::new(AtomicU64::new(0));
            senders.push(ShardSender {
                tx,
                depth: Arc::clone(&depth),
            });
            let shard = Shard {
                id,
                rx,
                depth,
                detector: Shard::detector_for(
                    id,
                    shard_count,
                    &intervals,
                    config.options.clone(),
                    config.resurrection_window,
                ),
                streams: streams.len(),
                state: Arc::clone(&state),
                drain_grace: config.drain_grace,
            };
            shard_handles.push(std::thread::spawn(move || shard.run()));
        }

        // Streams round-robin across workers; each stream has exactly one
        // owner, so per-stream order survives.
        let mut per_worker: Vec<Vec<(usize, Bytes)>> =
            (0..worker_count).map(|_| Vec::new()).collect();
        for (stream_id, data) in streams.into_iter().enumerate() {
            if let Some(bucket) = per_worker.get_mut(stream_id % worker_count) {
                bucket.push((stream_id, data));
            }
        }
        let mut ingest = Vec::with_capacity(worker_count);
        for (worker_id, bucket) in per_worker.into_iter().enumerate() {
            let worker = IngestWorker {
                streams: bucket,
                senders: senders.clone(),
                policy: config.overload,
                shards: shard_count,
                state: Arc::clone(&state),
                worker_id,
                armed: Arc::clone(&armed),
            };
            ingest.push(std::thread::spawn(move || worker.run()));
        }
        drop(senders);

        let listener = TcpListener::bind(config.bind)?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let http = HttpServer::start(listener, Arc::clone(&state), shutdown)?;
        Ok(Server {
            state,
            http,
            ingest,
            shards: shard_handles,
            staleness_window: config.staleness_window,
            drained: false,
        })
    }

    /// The HTTP API's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.http.addr()
    }

    /// A handle on the shared state (tests and in-process queries).
    pub fn state(&self) -> Arc<Mutex<ServeState>> {
        Arc::clone(&self.state)
    }

    /// True once a client has POSTed `/shutdown`.
    pub fn shutdown_requested(&self) -> bool {
        self.http.shutdown_requested()
    }

    /// Blocks until every stream is ingested and every shard has fired
    /// its remaining deadlines — after this, query responses are final.
    pub fn drain(&mut self) {
        if self.drained {
            return;
        }
        let _span = bgpz_obs::span("serve", "drain");
        for handle in self.ingest.drain(..) {
            if handle.join().is_err() {
                bgpz_obs::error!(target: "serve", "ingest worker panicked");
            }
        }
        for handle in self.shards.drain(..) {
            if handle.join().is_err() {
                bgpz_obs::error!(target: "serve", "shard task panicked");
            }
        }
        if let Some(window) = self.staleness_window {
            // The sweep instant is the feed's own end of time — the
            // latest activity any peer showed — so a peer is stale when
            // it went quiet more than `window` seconds before the feed
            // ended. Simulated time, never the wall clock.
            let mut state = self.state.lock();
            let now = SimTime(state.latest_activity().secs().saturating_add(1));
            state.sweep_stale(now, window);
        }
        self.drained = true;
        bgpz_obs::debug!(target: "serve", "drain complete");
    }

    /// Drains, stops the HTTP front end, and reports the run.
    pub fn shutdown(mut self) -> ServeSummary {
        self.drain();
        self.http.stop();
        let state = self.state.lock();
        ServeSummary {
            zombies: state.zombie_count(),
            resurrections: state.resurrection_count(),
            peers: state.peer_count(),
            records: state.records(),
            shed: state.shed(),
        }
    }
}

/// Splits one merged collector archive into `n` per-peer streams: every
/// record of one peer router lands in one stream, in archive order —
/// the ingest invariant the shard reorder buffer builds on. Records
/// without a session header follow stream 0.
pub fn split_streams(updates: Bytes, n: usize) -> Vec<Bytes> {
    let n = n.max(1);
    let mut writers: Vec<MrtWriter> = (0..n).map(|_| MrtWriter::new()).collect();
    let mut reader = MrtReader::new(updates);
    while let Some(record) = reader.next_record() {
        let slot = stream_of(&record, n);
        if let Some(writer) = writers.get_mut(slot) {
            writer.push(&record);
        }
    }
    writers.into_iter().map(MrtWriter::finish).collect()
}

/// Deterministic peer→stream routing (FNV-1a over the peer address).
fn stream_of(record: &MrtRecord, n: usize) -> usize {
    let peer = match &record.body {
        MrtBody::Message(msg) => Some(PeerId {
            addr: msg.session.peer_ip,
            asn: msg.session.peer_as,
        }),
        MrtBody::StateChange(change) => Some(PeerId {
            addr: change.session.peer_ip,
            asn: change.session.peer_as,
        }),
        _ => None,
    };
    let Some(peer) = peer else { return 0 };
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in peer.addr.to_string().as_bytes() {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0100_0000_01b3);
    }
    (h % n as u64) as usize
}
