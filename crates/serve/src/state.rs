//! The daemon's shared monitoring state: every shard's
//! [`RealtimeEvent`]s fold into one canonical view, queried by the HTTP
//! layer.
//!
//! All collections are B-tree keyed, so every rendered response body is
//! byte-identical regardless of how many ingest workers or shards
//! produced the events — the serve-side face of the workspace's
//! determinism contract. A monotonically increasing `version` stamps
//! each mutation; the HTTP response cache compares versions instead of
//! re-rendering on every query.

use bgpz_core::realtime::RealtimeEvent;
use bgpz_core::scan::PeerId;
use bgpz_types::{Prefix, SimTime};
use serde_json::json;
use std::collections::BTreeMap;

/// Canonical key of a route-level event: `(prefix, interval start, peer)`.
pub type RouteKey = (Prefix, SimTime, PeerId);

/// One detected zombie route, as surfaced by `GET /zombies`.
#[derive(Debug, Clone)]
pub struct ZombieEntry {
    /// The withdrawal the route failed to honor.
    pub withdrawn_at: SimTime,
    /// The stuck AS path, rendered.
    pub path: String,
    /// Decoded Aggregator clock, if the route carried one.
    pub aggregator_time: Option<SimTime>,
    /// True if the clock shows the route predates the interval.
    pub is_duplicate: bool,
    /// Seconds stuck at detection time.
    pub lifespan_so_far: u64,
    /// When the detection fired.
    pub detected_at: SimTime,
}

/// One live resurrection, as surfaced by `GET /zombies` (`resurrections`).
#[derive(Debug, Clone)]
pub struct ResurrectionEntry {
    /// The withdrawal the resurrected route ignores.
    pub withdrawn_at: SimTime,
    /// The resurrected AS path, rendered.
    pub path: String,
    /// Seconds after the withdrawal the route came back.
    pub lifespan_so_far: u64,
    /// When the late announcement arrived.
    pub detected_at: SimTime,
}

/// Per-peer feed health, as surfaced by `GET /peers`.
#[derive(Debug, Clone, Default)]
pub struct PeerHealth {
    /// Latest observed activity of any kind.
    pub last_seen: SimTime,
    /// Zombie routes detected at this peer.
    pub zombies: u64,
    /// Live resurrections at this peer.
    pub resurrections: u64,
    /// True while the peer is past the armed staleness window.
    pub stale: bool,
}

/// The daemon's aggregate view. One instance, shared behind a lock;
/// shards batch their events in, queries render out.
#[derive(Debug, Default)]
pub struct ServeState {
    zombies: BTreeMap<RouteKey, ZombieEntry>,
    resurrections: BTreeMap<RouteKey, ResurrectionEntry>,
    /// Lifespan-so-far samples from every route-level event, unsorted.
    lifespans: Vec<u64>,
    peers: BTreeMap<PeerId, PeerHealth>,
    records: u64,
    shed: u64,
    /// Shed counts broken out by the shard whose queue was full; sized
    /// by [`ServeState::init_shards`] at boot.
    shed_per_shard: Vec<u64>,
    version: u64,
}

/// The `q`-th percentile (0.0..=1.0) of a sorted sample set, by the
/// nearest-rank method (matches `bgpz_obs::metrics::Histogram::quantile`).
fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted.get(rank - 1).copied().unwrap_or_default()
}

impl ServeState {
    /// Folds one detector event in. This is the single write path — the
    /// daemon, the drain sweep, and the tests all speak [`RealtimeEvent`].
    pub fn apply(&mut self, event: &RealtimeEvent) {
        match event {
            RealtimeEvent::ZombieDetected {
                prefix,
                interval_start,
                withdrawn_at,
                peer,
                path,
                aggregator_time,
                is_duplicate,
                lifespan_so_far,
                detected_at,
            } => {
                self.zombies.insert(
                    (*prefix, *interval_start, *peer),
                    ZombieEntry {
                        withdrawn_at: *withdrawn_at,
                        path: path.to_string(),
                        aggregator_time: *aggregator_time,
                        is_duplicate: *is_duplicate,
                        lifespan_so_far: *lifespan_so_far,
                        detected_at: *detected_at,
                    },
                );
                self.lifespans.push(*lifespan_so_far);
                let health = self.peers.entry(*peer).or_default();
                health.zombies += 1;
                self.touch(*peer, *detected_at);
            }
            RealtimeEvent::Resurrected {
                prefix,
                interval_start,
                withdrawn_at,
                peer,
                path,
                lifespan_so_far,
                detected_at,
            } => {
                self.resurrections.insert(
                    (*prefix, *interval_start, *peer),
                    ResurrectionEntry {
                        withdrawn_at: *withdrawn_at,
                        path: path.to_string(),
                        lifespan_so_far: *lifespan_so_far,
                        detected_at: *detected_at,
                    },
                );
                self.lifespans.push(*lifespan_so_far);
                let health = self.peers.entry(*peer).or_default();
                health.resurrections += 1;
                self.touch(*peer, *detected_at);
            }
            RealtimeEvent::PeerStale {
                peer, last_seen, ..
            } => {
                let health = self.peers.entry(*peer).or_default();
                health.last_seen = health.last_seen.max(*last_seen);
                health.stale = true;
                self.version += 1;
            }
        }
    }

    /// Notes feed activity (ingest workers report in batches). Fresh
    /// activity clears a standing stale flag.
    pub fn note_activity(&mut self, peer: PeerId, seen: SimTime) {
        let health = self.peers.entry(peer).or_default();
        if seen > health.last_seen {
            health.last_seen = seen;
            health.stale = false;
        }
        self.version += 1;
    }

    /// Counts ingested records (ingest workers report in batches).
    pub fn note_records(&mut self, n: u64) {
        self.records += n;
    }

    /// Sizes the per-shard shed breakdown. Called once at boot; shed
    /// notes for shards beyond the sized range still count in the total.
    pub fn init_shards(&mut self, shards: usize) {
        self.shed_per_shard = vec![0; shards];
    }

    /// Counts records shed because `shard`'s queue was full (overload
    /// policy `Shed` replaced them with their watermark).
    pub fn note_shed_shard(&mut self, shard: usize, n: u64) {
        self.shed += n;
        if let Some(slot) = self.shed_per_shard.get_mut(shard) {
            *slot += n;
        }
        self.version += 1;
    }

    /// Flags peers silent for more than `window` seconds at `now`,
    /// routing each through the uniform [`RealtimeEvent::PeerStale`]
    /// path. Returns how many were flagged.
    pub fn sweep_stale(&mut self, now: SimTime, window: u64) -> usize {
        let idle: Vec<(PeerId, SimTime)> = self
            .peers
            .iter()
            .filter(|(_, h)| !h.stale && now.secs().saturating_sub(h.last_seen.secs()) > window)
            .map(|(&peer, h)| (peer, h.last_seen))
            .collect();
        for &(peer, last_seen) in &idle {
            self.apply(&RealtimeEvent::PeerStale {
                peer,
                last_seen,
                detected_at: now,
            });
        }
        idle.len()
    }

    fn touch(&mut self, peer: PeerId, seen: SimTime) {
        let health = self.peers.entry(peer).or_default();
        health.last_seen = health.last_seen.max(seen);
        self.version += 1;
    }

    /// The latest activity instant any peer has shown — the feed's own
    /// end of time, used as the drain staleness sweep's `now`.
    pub fn latest_activity(&self) -> SimTime {
        self.peers
            .values()
            .map(|h| h.last_seen)
            .max()
            .unwrap_or(SimTime::ZERO)
    }

    /// The mutation stamp the response cache compares against.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Total records ingested.
    pub fn records(&self) -> u64 {
        self.records
    }

    /// Total records shed under overload.
    pub fn shed(&self) -> u64 {
        self.shed
    }

    /// Current zombie-route count.
    pub fn zombie_count(&self) -> usize {
        self.zombies.len()
    }

    /// Current resurrection count.
    pub fn resurrection_count(&self) -> usize {
        self.resurrections.len()
    }

    /// Known peer count.
    pub fn peer_count(&self) -> usize {
        self.peers.len()
    }

    /// Canonical `(prefix, interval start, peer address)` keys of the
    /// zombie set — the byte-comparable parity handle the smoke checks
    /// diff against the batch pipeline.
    pub fn zombie_keys(&self) -> Vec<(Prefix, SimTime, String)> {
        self.zombies
            .keys()
            .map(|&(prefix, start, peer)| (prefix, start, peer.addr.to_string()))
            .collect()
    }

    /// Renders `GET /zombies`.
    pub fn render_zombies(&self) -> String {
        let zombies: Vec<_> = self
            .zombies
            .iter()
            .map(|(&(prefix, start, peer), z)| {
                json!({
                    "prefix": prefix.to_string(),
                    "interval_start": start.secs(),
                    "withdrawn_at": z.withdrawn_at.secs(),
                    "peer": peer.addr.to_string(),
                    "peer_asn": peer.asn.0,
                    "path": z.path,
                    "aggregator_time": z.aggregator_time.map(SimTime::secs),
                    "is_duplicate": z.is_duplicate,
                    "lifespan_so_far": z.lifespan_so_far,
                    "detected_at": z.detected_at.secs(),
                })
            })
            .collect();
        let resurrections: Vec<_> = self
            .resurrections
            .iter()
            .map(|(&(prefix, start, peer), r)| {
                json!({
                    "prefix": prefix.to_string(),
                    "interval_start": start.secs(),
                    "withdrawn_at": r.withdrawn_at.secs(),
                    "peer": peer.addr.to_string(),
                    "peer_asn": peer.asn.0,
                    "path": r.path,
                    "lifespan_so_far": r.lifespan_so_far,
                    "detected_at": r.detected_at.secs(),
                })
            })
            .collect();
        json!({
            "count": zombies.len(),
            "zombies": zombies,
            "resurrection_count": resurrections.len(),
            "resurrections": resurrections,
        })
        .to_string()
    }

    /// Renders `GET /lifespans`: nearest-rank percentiles over every
    /// route-level event's lifespan-so-far.
    pub fn render_lifespans(&self) -> String {
        let mut sorted = self.lifespans.clone();
        sorted.sort_unstable();
        json!({
            "count": sorted.len(),
            "p50": percentile(&sorted, 0.50),
            "p90": percentile(&sorted, 0.90),
            "p99": percentile(&sorted, 0.99),
            "max": sorted.last().copied().unwrap_or_default(),
        })
        .to_string()
    }

    /// Renders `GET /peers`.
    pub fn render_peers(&self) -> String {
        let peers: Vec<_> = self
            .peers
            .iter()
            .map(|(peer, h)| {
                json!({
                    "addr": peer.addr.to_string(),
                    "asn": peer.asn.0,
                    "last_seen": h.last_seen.secs(),
                    "zombies": h.zombies,
                    "resurrections": h.resurrections,
                    "stale": h.stale,
                })
            })
            .collect();
        json!({ "count": peers.len(), "peers": peers }).to_string()
    }

    /// Renders `GET /healthz`. `shed_rate` is shed payloads per ingested
    /// record since start (one record fans out to up to `shards` queue
    /// payloads, so a saturated deployment can exceed 1.0); it reads 0.0
    /// under the default lossless `Block` policy.
    pub fn render_health(&self) -> String {
        let shed_rate = if self.records == 0 {
            0.0
        } else {
            self.shed as f64 / self.records as f64
        };
        json!({
            "status": "ok",
            "version": self.version,
            "records": self.records,
            "shed": self.shed,
            "shed_per_shard": self.shed_per_shard,
            "shed_rate": shed_rate,
            "zombies": self.zombies.len(),
            "resurrections": self.resurrections.len(),
            "peers": self.peers.len(),
        })
        .to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpz_types::{AsPath, Asn};
    use std::sync::Arc;

    fn peer(n: u32) -> PeerId {
        PeerId {
            addr: format!("2001:db8:90::{n}").parse().unwrap(),
            asn: Asn(64_000 + n),
        }
    }

    fn zombie(n: u32, at: u64) -> RealtimeEvent {
        RealtimeEvent::ZombieDetected {
            prefix: "2001:7fb:fe00::/48".parse().unwrap(),
            interval_start: SimTime(at),
            withdrawn_at: SimTime(at + 600),
            peer: peer(n),
            path: Arc::new(AsPath::from_sequence([64_000 + n, 12_654])),
            aggregator_time: None,
            is_duplicate: false,
            lifespan_so_far: 5_400,
            detected_at: SimTime(at + 6_000),
        }
    }

    #[test]
    fn apply_bumps_version_and_folds_counters() {
        let mut state = ServeState::default();
        let v0 = state.version();
        state.apply(&zombie(1, 0));
        state.apply(&zombie(2, 0));
        assert!(state.version() > v0);
        assert_eq!(state.zombie_count(), 2);
        assert_eq!(state.peer_count(), 2);
        assert_eq!(state.zombie_keys().len(), 2);
        // Re-detecting the same key is idempotent on the set.
        state.apply(&zombie(1, 0));
        assert_eq!(state.zombie_count(), 2);
    }

    #[test]
    fn stale_sweep_flags_once_and_activity_rearms() {
        let mut state = ServeState::default();
        state.note_activity(peer(1), SimTime(100));
        assert_eq!(state.sweep_stale(SimTime(10_000), 3_600), 1);
        assert_eq!(state.sweep_stale(SimTime(10_000), 3_600), 0);
        state.note_activity(peer(1), SimTime(10_050));
        assert_eq!(state.sweep_stale(SimTime(10_100), 3_600), 0);
        assert_eq!(state.sweep_stale(SimTime(20_000), 3_600), 1);
    }

    #[test]
    fn shed_notes_fold_per_shard_and_into_health() {
        let mut state = ServeState::default();
        state.init_shards(2);
        state.note_records(100);
        state.note_shed_shard(1, 7);
        state.note_shed_shard(0, 3);
        // Beyond the sized range: total still counts.
        state.note_shed_shard(9, 2);
        assert_eq!(state.shed(), 12);
        let health: serde_json::Value = serde_json::from_str(&state.render_health()).unwrap();
        assert_eq!(health["shed_per_shard"], serde_json::json!([3, 7]));
        assert_eq!(health["shed"], 12);
        assert!((health["shed_rate"].as_f64().unwrap() - 0.12).abs() < 1e-9);
    }

    #[test]
    fn renders_are_canonical_json() {
        let mut state = ServeState::default();
        state.apply(&zombie(2, 0));
        state.apply(&zombie(1, 0));
        let body = state.render_zombies();
        // BTreeMap keying: peer 1 renders before peer 2 regardless of
        // apply order.
        let one = body.find("64001").unwrap();
        let two = body.find("64002").unwrap();
        assert!(one < two);
        let lifespans: serde_json::Value = serde_json::from_str(&state.render_lifespans()).unwrap();
        assert_eq!(lifespans["count"], 2);
        assert_eq!(lifespans["p50"], 5_400);
        assert_eq!(lifespans["p99"], 5_400);
    }
}
