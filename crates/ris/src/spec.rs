//! Static description of a RIS deployment: collectors and peer routers.

use bgpz_netsim::{Tier, Topology};
use bgpz_types::{Asn, SimTime};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{RngExt, SeedableRng};
use std::net::{IpAddr, Ipv4Addr, Ipv6Addr};

/// A route collector (rrc00, rrc21, rrc25, ...).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Collector {
    /// Collector name, e.g. `"rrc25"`.
    pub name: String,
    /// The collector's AS (RIPE NCC RIS is AS12654).
    pub asn: Asn,
    /// Collector-side session address.
    pub ip: IpAddr,
    /// Collector BGP identifier (used in PEER_INDEX_TABLE).
    pub bgp_id: Ipv4Addr,
}

impl Collector {
    /// A conventional RIS collector numbered `n`.
    pub fn numbered(n: u8) -> Collector {
        Collector {
            name: format!("rrc{n:02}"),
            asn: Asn(12_654),
            ip: IpAddr::V6(Ipv6Addr::from([
                0x2001, 0x07f8, 0x0024, n as u16, 0, 0, 0, 0x82,
            ])),
            bgp_id: Ipv4Addr::new(193, 0, 4, n),
        }
    }
}

/// One peer router: a volunteer AS's BGP session into a collector.
#[derive(Debug, Clone, PartialEq)]
pub struct RisPeerSpec {
    /// The peer AS.
    pub asn: Asn,
    /// The router's session address — this is how the paper names peers
    /// (e.g. `2a0c:9a40:1031::504`, `176.119.234.201`).
    pub addr: IpAddr,
    /// Router BGP identifier.
    pub bgp_id: Ipv4Addr,
    /// Index into [`RisConfig::collectors`].
    pub collector: usize,
    /// Probability that this router fails to process one IPv4 withdrawal
    /// (sticky-export noisy peer; 0.0 for healthy routers).
    pub sticky_v4: f64,
    /// Same, for IPv6 withdrawals. The replication's noisy peer AS16347
    /// was noisy almost exclusively on IPv6, hence the split.
    pub sticky_v6: f64,
    /// Scheduled collector-session flaps (down instants); the session
    /// re-establishes ~a minute later and the router re-announces its
    /// table.
    pub flaps: Vec<SimTime>,
    /// Longer collector-session outages `(down, up)`: STATE messages are
    /// emitted at both edges, nothing is exported in between, and the
    /// router re-announces its table at re-establishment. A detector that
    /// ignores STATE messages will count routes pending at the down edge
    /// as zombies — the ablation of the paper's §3.1 step 1.
    pub collector_outages: Vec<(SimTime, SimTime)>,
    /// Export-freeze windows: while `start <= t < end`, the router's
    /// export pipeline ignores every event for the given family (None =
    /// both), so its mirror — and therefore its RIB-dump entries and its
    /// update feed — stay frozen at the pre-window state. This reproduces
    /// peers whose stale routes survive *many* beacon intervals with their
    /// original Aggregator clock (the double-counting source at AS16347).
    pub freeze_windows: Vec<FreezeWindow>,
}

/// One export-freeze window of a peer router.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FreezeWindow {
    /// Window start (inclusive).
    pub start: SimTime,
    /// Window end (exclusive).
    pub end: SimTime,
    /// Restrict to one address family (`None` = both).
    pub afi: Option<bgpz_types::Afi>,
}

impl RisPeerSpec {
    /// A healthy peer router.
    pub fn healthy(asn: Asn, addr: IpAddr, collector: usize) -> RisPeerSpec {
        let bgp_id = derive_bgp_id(asn, addr);
        RisPeerSpec {
            asn,
            addr,
            bgp_id,
            collector,
            sticky_v4: 0.0,
            sticky_v6: 0.0,
            flaps: Vec::new(),
            collector_outages: Vec::new(),
            freeze_windows: Vec::new(),
        }
    }

    /// Marks the router sticky with probability `p` for both families.
    pub fn with_sticky(mut self, p: f64) -> RisPeerSpec {
        assert!((0.0..=1.0).contains(&p));
        self.sticky_v4 = p;
        self.sticky_v6 = p;
        self
    }

    /// Marks the router sticky with separate per-family probabilities.
    pub fn with_sticky_family(mut self, v4: f64, v6: f64) -> RisPeerSpec {
        assert!((0.0..=1.0).contains(&v4) && (0.0..=1.0).contains(&v6));
        self.sticky_v4 = v4;
        self.sticky_v6 = v6;
        self
    }

    /// Adds scheduled session flaps.
    pub fn with_flaps(mut self, flaps: Vec<SimTime>) -> RisPeerSpec {
        self.flaps = flaps;
        self
    }

    /// Adds a collector-session outage.
    pub fn with_outage(mut self, down: SimTime, up: SimTime) -> RisPeerSpec {
        assert!(up > down, "outage must not be empty");
        self.collector_outages.push((down, up));
        self
    }

    /// Adds an export-freeze window.
    pub fn with_freeze(
        mut self,
        start: SimTime,
        end: SimTime,
        afi: Option<bgpz_types::Afi>,
    ) -> RisPeerSpec {
        assert!(end > start, "freeze window must not be empty");
        self.freeze_windows.push(FreezeWindow { start, end, afi });
        self
    }
}

/// Deterministic router id from the peer identity.
fn derive_bgp_id(asn: Asn, addr: IpAddr) -> Ipv4Addr {
    let h = match addr {
        IpAddr::V4(a) => u32::from(a),
        IpAddr::V6(a) => (u128::from(a) >> 96) as u32 ^ u128::from(a) as u32,
    };
    Ipv4Addr::from(h.wrapping_mul(2_654_435_761).wrapping_add(asn.0))
}

/// A complete RIS deployment.
#[derive(Debug, Clone, Default)]
pub struct RisConfig {
    /// The collectors.
    pub collectors: Vec<Collector>,
    /// The peer routers.
    pub peers: Vec<RisPeerSpec>,
    /// Seconds between RIB dumps (8 h for RIS).
    pub rib_period: u64,
}

impl RisConfig {
    /// Builds a deployment with `n_collectors` collectors and one healthy
    /// peer router for each AS in `peer_asns`, assigned round-robin.
    pub fn with_peers(n_collectors: usize, peer_asns: &[Asn]) -> RisConfig {
        let collectors: Vec<Collector> = (0..n_collectors as u8).map(Collector::numbered).collect();
        let peers = peer_asns
            .iter()
            .enumerate()
            .map(|(i, &asn)| {
                let addr = IpAddr::V6(Ipv6Addr::from([
                    0x2001,
                    0x0db8,
                    0x9000 + (i / 0x1_0000) as u16,
                    (i % 0x1_0000) as u16,
                    0,
                    0,
                    0,
                    1,
                ]));
                RisPeerSpec::healthy(asn, addr, i % n_collectors)
            })
            .collect();
        RisConfig {
            collectors,
            peers,
            rib_period: 8 * 3_600,
        }
    }

    /// Samples `n_peers` peer ASes from a topology (transit ASes are more
    /// likely volunteers, as in reality), excluding `exclude` (e.g. the
    /// beacon origin). Deterministic in `seed`.
    pub fn sample_from_topology(
        topo: &Topology,
        n_collectors: usize,
        n_peers: usize,
        exclude: &[Asn],
        seed: u64,
    ) -> RisConfig {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut candidates: Vec<Asn> = (0..topo.len())
            .filter(|&i| !exclude.contains(&topo.asn(i)))
            .filter(|&i| {
                // Weight by tier: all transits, 40% of stubs.
                match topo.tier(i) {
                    Tier::Tier1 | Tier::Tier2 => true,
                    Tier::Stub => rng.random_bool(0.4),
                }
            })
            .map(|i| topo.asn(i))
            .collect();
        candidates.shuffle(&mut rng);
        candidates.truncate(n_peers);
        candidates.sort_unstable();
        RisConfig::with_peers(n_collectors, &candidates)
    }

    /// Adds a peer router (builder style).
    pub fn with_peer(mut self, peer: RisPeerSpec) -> RisConfig {
        assert!(peer.collector < self.collectors.len(), "collector index");
        self.peers.push(peer);
        self
    }

    /// All distinct peer ASes.
    pub fn peer_asns(&self) -> Vec<Asn> {
        let mut out: Vec<Asn> = self.peers.iter().map(|p| p.asn).collect();
        out.sort_unstable();
        out.dedup();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bgpz_netsim::TopologyConfig;

    #[test]
    fn numbered_collector() {
        let c = Collector::numbered(25);
        assert_eq!(c.name, "rrc25");
        assert_eq!(c.asn, Asn(12_654));
    }

    #[test]
    fn with_peers_round_robin() {
        let asns: Vec<Asn> = (1..=10).map(Asn).collect();
        let config = RisConfig::with_peers(3, &asns);
        assert_eq!(config.collectors.len(), 3);
        assert_eq!(config.peers.len(), 10);
        assert_eq!(config.peers[0].collector, 0);
        assert_eq!(config.peers[1].collector, 1);
        assert_eq!(config.peers[3].collector, 0);
        assert_eq!(config.rib_period, 8 * 3_600);
        // Unique addresses.
        let mut addrs: Vec<IpAddr> = config.peers.iter().map(|p| p.addr).collect();
        addrs.sort();
        addrs.dedup();
        assert_eq!(addrs.len(), 10);
    }

    #[test]
    fn sample_excludes_and_is_deterministic() {
        let topo = bgpz_netsim::Topology::generate(&TopologyConfig::default());
        let exclude = vec![topo.asn(0)];
        let a = RisConfig::sample_from_topology(&topo, 4, 30, &exclude, 9);
        let b = RisConfig::sample_from_topology(&topo, 4, 30, &exclude, 9);
        assert_eq!(a.peers, b.peers);
        assert_eq!(a.peers.len(), 30);
        assert!(!a.peer_asns().contains(&exclude[0]));
    }

    #[test]
    fn builder_peer_roundtrip() {
        let config = RisConfig::with_peers(2, &[Asn(1)]).with_peer(
            RisPeerSpec::healthy(Asn(211_509), "176.119.234.201".parse().unwrap(), 1)
                .with_sticky(0.6)
                .with_flaps(vec![SimTime(100)]),
        );
        let noisy = config.peers.last().unwrap();
        assert_eq!(noisy.sticky_v4, 0.6);
        assert_eq!(noisy.sticky_v6, 0.6);
        assert_eq!(noisy.flaps, vec![SimTime(100)]);
        assert_eq!(config.peer_asns(), vec![Asn(1), Asn(211_509)]);
    }

    #[test]
    #[should_panic(expected = "collector index")]
    fn bad_collector_index_panics() {
        let _ = RisConfig::with_peers(1, &[Asn(1)]).with_peer(RisPeerSpec::healthy(
            Asn(2),
            "10.0.0.1".parse().unwrap(),
            5,
        ));
    }
}
