//! # bgpz-ris
//!
//! The RIPE RIS collection platform, modelled end to end: route collectors
//! with volunteer **peer routers**, an **update archive** in genuine MRT
//! wire format (BGP4MP_MESSAGE_AS4 + STATE_CHANGE records), and **RIB
//! dumps** of every peer every 8 hours (TABLE_DUMP_V2) — the two data
//! sources of the paper's methodology (§3.1 and §5).
//!
//! Each peer router keeps its own RIB mirror, because the paper's noisy
//! peers are broken *at the router/export level*: AS211509 peers with RRC25
//! through two routers (one of them exchanging IPv6 routes over an IPv4
//! session) and both show the same stuck routes, while the rest of the
//! world is clean. [`RisPeerSpec::sticky`] reproduces exactly that: the
//! router fails to process a withdrawal with some probability and stays
//! deaf for that prefix until the next announcement.

#![forbid(unsafe_code)]

pub mod network;
pub mod spec;

pub use network::{RisArchive, RisNetwork, RisStats};
pub use spec::{Collector, FreezeWindow, RisConfig, RisPeerSpec};
