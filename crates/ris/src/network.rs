//! The live collection machinery: event intake, MRT emission, RIB dumps.

use crate::spec::{RisConfig, RisPeerSpec};
use bgpz_mrt::bgp4mp::SessionHeader;
use bgpz_mrt::table_dump::{PeerEntry, PeerIndexTable, RibEntry, RibSnapshot};
use bgpz_mrt::{Bgp4mpMessage, Bgp4mpStateChange, BgpState, MrtBody, MrtRecord, MrtWriter};
use bgpz_netsim::{RouteEvent, RouteEventKind, RouteMeta, Simulator};
use bgpz_types::attrs::{MpReach, MpUnreach, NextHop, Origin};
use bgpz_types::{Afi, AsPath, BgpMessage, BgpUpdate, PathAttributes, Prefix, SimTime};
use bytes::Bytes;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::net::{IpAddr, Ipv6Addr};
use std::sync::Arc;

/// Counters for an archive-production run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RisStats {
    /// Announce records written.
    pub announces_emitted: u64,
    /// Withdraw records written.
    pub withdraws_emitted: u64,
    /// Withdrawals swallowed by sticky routers.
    pub sticky_drops: u64,
    /// STATE_CHANGE record pairs written (down + up).
    pub flaps: u64,
    /// RIB dumps taken.
    pub dumps: u64,
    /// Events swallowed by export-freeze windows.
    pub export_frozen_drops: u64,
}

/// The finished archive: everything the detection pipeline consumes.
#[derive(Debug, Clone)]
pub struct RisArchive {
    /// Time-ordered BGP4MP update/state stream (all collectors merged).
    pub updates: Bytes,
    /// RIB dumps: `(dump time, TABLE_DUMP_V2 bytes)`.
    pub rib_dumps: Vec<(SimTime, Bytes)>,
    /// Production counters.
    pub stats: RisStats,
    /// The deployment that produced the archive.
    pub config: RisConfig,
}

/// One peer router's mirror of its own exported state.
#[derive(Debug, Default)]
struct RouterState {
    /// prefix → (exported path, metadata, when installed).
    rib: BTreeMap<Prefix, (Arc<AsPath>, RouteMeta, SimTime)>,
    /// Prefixes whose withdrawals this router currently fails to process.
    deaf: HashSet<Prefix>,
    /// Collector session state.
    session_up: bool,
}

/// A pending flap phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum FlapPhase {
    Down,
    Up,
}

/// The collection platform while it runs.
pub struct RisNetwork {
    config: RisConfig,
    routers: Vec<RouterState>,
    by_asn: HashMap<bgpz_types::Asn, Vec<usize>>,
    writer: MrtWriter,
    rib_dumps: Vec<(SimTime, Bytes)>,
    next_dump: SimTime,
    /// Pending flap phases, sorted descending so `pop()` yields the next.
    flap_queue: Vec<(SimTime, usize, FlapPhase)>,
    /// Seed for the deterministic sticky decisions.
    seed: u64,
    #[allow(dead_code)]
    rng: StdRng,
    stats: RisStats,
}

/// SplitMix64 for hash-based decisions.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Stable 64-bit digest of a prefix.
fn prefix_hash(prefix: Prefix) -> u64 {
    match prefix {
        Prefix::V4(p) => u32::from(p.addr()) as u64 ^ ((p.len() as u64) << 33),
        Prefix::V6(p) => {
            let v = u128::from(p.addr());
            (v >> 64) as u64 ^ v as u64 ^ ((p.len() as u64) << 57)
        }
    }
}

/// Seconds a flapped session stays down before re-establishing.
const FLAP_DOWN_SECS: u64 = 60;

impl RisNetwork {
    /// Creates the platform; dumps start at the first multiple of the RIB
    /// period at or after `start`.
    pub fn new(config: RisConfig, start: SimTime, seed: u64) -> RisNetwork {
        assert!(config.rib_period > 0, "rib_period must be positive");
        let mut flap_queue: Vec<(SimTime, usize, FlapPhase)> = Vec::new();
        for (i, peer) in config.peers.iter().enumerate() {
            for &t in &peer.flaps {
                flap_queue.push((t, i, FlapPhase::Down));
                flap_queue.push((t + FLAP_DOWN_SECS, i, FlapPhase::Up));
            }
            for &(down, up) in &peer.collector_outages {
                assert!(up > down, "outage must not be empty");
                flap_queue.push((down, i, FlapPhase::Down));
                flap_queue.push((up, i, FlapPhase::Up));
            }
        }
        flap_queue.sort_by(|a, b| b.cmp(a));
        let mut by_asn: HashMap<bgpz_types::Asn, Vec<usize>> = HashMap::new();
        for (i, peer) in config.peers.iter().enumerate() {
            by_asn.entry(peer.asn).or_default().push(i);
        }
        let next_dump = {
            let aligned = start.align_down(config.rib_period);
            if aligned < start {
                aligned + config.rib_period
            } else {
                aligned
            }
        };
        RisNetwork {
            routers: config
                .peers
                .iter()
                .map(|_| RouterState {
                    session_up: true,
                    ..RouterState::default()
                })
                .collect(),
            by_asn,
            writer: MrtWriter::new(),
            rib_dumps: Vec::new(),
            next_dump,
            flap_queue,
            seed,
            rng: StdRng::seed_from_u64(seed),
            stats: RisStats::default(),
            config,
        }
    }

    /// Registers every peer AS as watched in the simulator. Call before
    /// running any beacon traffic.
    pub fn attach(&self, sim: &mut Simulator) {
        for asn in self.config.peer_asns() {
            sim.watch(asn);
        }
    }

    /// Advances the simulator to `to`, interleaving event intake with RIB
    /// dumps and scheduled session flaps in chronological order.
    pub fn advance(&mut self, sim: &mut Simulator, to: SimTime) {
        loop {
            let next_flap = self.flap_queue.last().map(|&(t, _, _)| t);
            let mut checkpoint = to;
            if self.next_dump <= checkpoint {
                checkpoint = self.next_dump;
            }
            if let Some(t) = next_flap {
                if t <= checkpoint {
                    checkpoint = t;
                }
            }
            sim.run_until(checkpoint);
            for event in sim.drain_events() {
                self.apply_event(&event);
            }
            // Handle every checkpoint action due exactly now.
            while let Some(&(t, router, phase)) = self.flap_queue.last() {
                if t > checkpoint {
                    break;
                }
                self.flap_queue.pop();
                self.apply_flap(t, router, phase);
            }
            if self.next_dump <= checkpoint {
                self.take_dump(self.next_dump);
                self.next_dump += self.config.rib_period;
            }
            if checkpoint >= to {
                break;
            }
        }
    }

    /// Finalizes the archive.
    pub fn finish(self) -> RisArchive {
        RisArchive {
            updates: self.writer.finish(),
            rib_dumps: self.rib_dumps,
            stats: self.stats,
            config: self.config,
        }
    }

    /// Counters so far.
    pub fn stats(&self) -> RisStats {
        self.stats
    }

    // ------------------------------------------------------------------

    /// True if `router`'s export pipeline is frozen for this event.
    fn export_frozen(&self, router: usize, event: &RouteEvent) -> bool {
        self.config.peers[router].freeze_windows.iter().any(|w| {
            event.time >= w.start
                && event.time < w.end
                && w.afi.is_none_or(|afi| afi == event.prefix.afi())
        })
    }

    fn apply_event(&mut self, event: &RouteEvent) {
        let Some(router_ids) = self.by_asn.get(&event.peer) else {
            return;
        };
        for &router in router_ids.clone().iter() {
            if self.export_frozen(router, event) {
                self.stats.export_frozen_drops += 1;
                continue;
            }
            match &event.kind {
                RouteEventKind::Announce { path, meta } => {
                    let state = &mut self.routers[router];
                    state.deaf.remove(&event.prefix);
                    state
                        .rib
                        .insert(event.prefix, (Arc::clone(path), *meta, event.time));
                    if state.session_up {
                        let record =
                            self.announce_record(router, event.time, event.prefix, path, meta);
                        self.writer.push(&record);
                        self.stats.announces_emitted += 1;
                    }
                }
                RouteEventKind::Withdraw => {
                    let peer_spec = &self.config.peers[router];
                    let sticky = match event.prefix.afi() {
                        Afi::Ipv4 => peer_spec.sticky_v4,
                        Afi::Ipv6 => peer_spec.sticky_v6,
                    };
                    let state = &mut self.routers[router];
                    if state.deaf.contains(&event.prefix) {
                        self.stats.sticky_drops += 1;
                        continue;
                    }
                    // The decision is a hash of (seed, peer AS, prefix,
                    // time), NOT per-router randomness: a noisy AS's
                    // brokenness is in its one BGP feed, so all its
                    // routers show the *same* stuck routes — exactly the
                    // identical per-router counts of the paper's Table 5.
                    let draw = splitmix64(
                        self.seed
                            ^ (event.peer.0 as u64) << 32
                            ^ prefix_hash(event.prefix)
                            ^ event.time.secs(),
                    );
                    if sticky > 0.0 && ((draw % 100_000) as f64) < sticky * 100_000.0 {
                        state.deaf.insert(event.prefix);
                        self.stats.sticky_drops += 1;
                        continue;
                    }
                    let had = state.rib.remove(&event.prefix).is_some();
                    if had && state.session_up {
                        let record = self.withdraw_record(router, event.time, event.prefix);
                        self.writer.push(&record);
                        self.stats.withdraws_emitted += 1;
                    }
                }
            }
        }
    }

    fn apply_flap(&mut self, time: SimTime, router: usize, phase: FlapPhase) {
        match phase {
            FlapPhase::Down => {
                self.routers[router].session_up = false;
                let record = self.state_record(router, time, BgpState::Established, BgpState::Idle);
                self.writer.push(&record);
            }
            FlapPhase::Up => {
                self.routers[router].session_up = true;
                self.stats.flaps += 1;
                let record = self.state_record(router, time, BgpState::Idle, BgpState::Established);
                self.writer.push(&record);
                // Full table re-announcement from the router's mirror.
                let table: Vec<(Prefix, Arc<AsPath>, RouteMeta)> = self.routers[router]
                    .rib
                    .iter()
                    .map(|(&p, (path, meta, _))| (p, Arc::clone(path), *meta))
                    .collect();
                for (prefix, path, meta) in table {
                    let record = self.announce_record(router, time, prefix, &path, &meta);
                    self.writer.push(&record);
                    self.stats.announces_emitted += 1;
                }
            }
        }
    }

    fn take_dump(&mut self, time: SimTime) {
        let mut writer = MrtWriter::new();
        let peers: Vec<PeerEntry> = self
            .config
            .peers
            .iter()
            .map(|p| PeerEntry {
                bgp_id: p.bgp_id,
                addr: p.addr,
                asn: p.asn,
            })
            .collect();
        writer.push(&MrtRecord::new(
            time,
            MrtBody::PeerIndex(PeerIndexTable {
                collector_id: self.config.collectors[0].bgp_id,
                view_name: String::new(),
                peers,
            }),
        ));
        // Union of prefixes across routers with live sessions.
        let mut prefixes: Vec<Prefix> = self
            .routers
            .iter()
            .filter(|r| r.session_up)
            .flat_map(|r| r.rib.keys().copied())
            .collect();
        prefixes.sort_unstable();
        prefixes.dedup();
        for (seq, prefix) in prefixes.into_iter().enumerate() {
            let mut entries = Vec::new();
            for (i, router) in self.routers.iter().enumerate() {
                if !router.session_up {
                    continue;
                }
                if let Some((path, meta, installed)) = router.rib.get(&prefix) {
                    entries.push(RibEntry {
                        peer_index: i as u16,
                        originated: *installed,
                        attrs: rib_attrs(&self.config.peers[i], prefix, path, meta),
                    });
                }
            }
            writer.push(&MrtRecord::new(
                time,
                MrtBody::Rib(RibSnapshot {
                    sequence: seq as u32,
                    prefix,
                    entries,
                }),
            ));
        }
        self.rib_dumps.push((time, writer.finish()));
        self.stats.dumps += 1;
    }

    // -- record builders ------------------------------------------------

    fn session_header(&self, router: usize) -> SessionHeader {
        let peer = &self.config.peers[router];
        let collector = &self.config.collectors[peer.collector];
        // The session header's address family is the *session's*, which
        // can differ from the routes' (the paper's 176.119.234.201 case).
        let local_ip = match peer.addr {
            IpAddr::V4(_) => IpAddr::V4(collector.bgp_id),
            IpAddr::V6(_) => collector.ip,
        };
        SessionHeader {
            peer_as: peer.asn,
            local_as: collector.asn,
            ifindex: 0,
            peer_ip: peer.addr,
            local_ip,
        }
    }

    fn announce_record(
        &self,
        router: usize,
        time: SimTime,
        prefix: Prefix,
        path: &Arc<AsPath>,
        meta: &RouteMeta,
    ) -> MrtRecord {
        let peer = &self.config.peers[router];
        let attrs = update_attrs(peer, prefix, path, meta, true);
        let update = match prefix.afi() {
            Afi::Ipv4 => BgpUpdate {
                withdrawn: vec![],
                attrs,
                nlri: vec![prefix],
            },
            Afi::Ipv6 => BgpUpdate {
                withdrawn: vec![],
                attrs,
                nlri: vec![],
            },
        };
        MrtRecord::new(
            time,
            MrtBody::Message(Bgp4mpMessage {
                session: self.session_header(router),
                message: BgpMessage::Update(update),
            }),
        )
    }

    fn withdraw_record(&self, router: usize, time: SimTime, prefix: Prefix) -> MrtRecord {
        let update = match prefix.afi() {
            Afi::Ipv4 => BgpUpdate {
                withdrawn: vec![prefix],
                ..BgpUpdate::default()
            },
            Afi::Ipv6 => BgpUpdate {
                attrs: PathAttributes {
                    mp_unreach: Some(MpUnreach {
                        afi: Afi::Ipv6,
                        safi: 1,
                        withdrawn: vec![prefix],
                    }),
                    ..PathAttributes::default()
                },
                ..BgpUpdate::default()
            },
        };
        MrtRecord::new(
            time,
            MrtBody::Message(Bgp4mpMessage {
                session: self.session_header(router),
                message: BgpMessage::Update(update),
            }),
        )
    }

    fn state_record(
        &self,
        router: usize,
        time: SimTime,
        old_state: BgpState,
        new_state: BgpState,
    ) -> MrtRecord {
        MrtRecord::new(
            time,
            MrtBody::StateChange(Bgp4mpStateChange {
                session: self.session_header(router),
                old_state,
                new_state,
            }),
        )
    }
}

/// The next-hop address a router reports for its routes.
fn router_next_hop_v6(peer: &RisPeerSpec) -> Ipv6Addr {
    match peer.addr {
        IpAddr::V6(a) => a,
        // IPv6 routes over an IPv4 session: an IPv4-mapped next hop.
        IpAddr::V4(a) => a.to_ipv6_mapped(),
    }
}

/// Path attributes for an UPDATE announcement. `with_nlri` includes the
/// prefix in MP_REACH (update stream); RIB dumps use the abbreviated form.
fn update_attrs(
    peer: &RisPeerSpec,
    prefix: Prefix,
    path: &Arc<AsPath>,
    meta: &RouteMeta,
    with_nlri: bool,
) -> PathAttributes {
    let mut attrs = PathAttributes {
        origin: Some(Origin::Igp),
        as_path: Some(path.as_ref().clone()),
        aggregator: meta.aggregator,
        ..PathAttributes::default()
    };
    match prefix.afi() {
        Afi::Ipv4 => {
            attrs.next_hop = Some(match peer.addr {
                IpAddr::V4(a) => a,
                IpAddr::V6(_) => peer.bgp_id,
            });
        }
        Afi::Ipv6 => {
            attrs.mp_reach = Some(MpReach {
                afi: Afi::Ipv6,
                safi: 1,
                next_hop: NextHop::V6 {
                    global: router_next_hop_v6(peer),
                    link_local: None,
                },
                nlri: if with_nlri { vec![prefix] } else { Vec::new() },
            });
        }
    }
    attrs
}

/// Attributes for a TABLE_DUMP_V2 entry (no NLRI in MP_REACH).
fn rib_attrs(
    peer: &RisPeerSpec,
    prefix: Prefix,
    path: &Arc<AsPath>,
    meta: &RouteMeta,
) -> PathAttributes {
    update_attrs(peer, prefix, path, meta, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{Collector, RisConfig, RisPeerSpec};
    use bgpz_mrt::MrtReader;
    use bgpz_netsim::{FaultPlan, Tier, Topology};
    use bgpz_types::Asn;

    const ORIGIN: Asn = Asn(210_312);

    fn p(s: &str) -> Prefix {
        s.parse().unwrap()
    }

    fn tiny_world() -> (Topology, RisConfig) {
        let topo = Topology::builder()
            .node(Asn(100), Tier::Tier1)
            .node(Asn(200), Tier::Tier2)
            .node(ORIGIN, Tier::Stub)
            .provider_customer(Asn(100), Asn(200))
            .provider_customer(Asn(200), ORIGIN)
            .build();
        let config = RisConfig {
            collectors: vec![Collector::numbered(0)],
            peers: vec![
                RisPeerSpec::healthy(Asn(100), "2001:db8:90::1".parse().unwrap(), 0),
                RisPeerSpec::healthy(Asn(200), "2001:db8:90::2".parse().unwrap(), 0),
            ],
            rib_period: 8 * 3_600,
        };
        (topo, config)
    }

    #[test]
    fn archive_contains_announce_and_withdraw() {
        let (topo, config) = tiny_world();
        let mut sim = Simulator::new(topo, &FaultPlan::none(), 1);
        let mut ris = RisNetwork::new(config, SimTime(0), 7);
        ris.attach(&mut sim);
        let beacon = p("2a0d:3dc1:1145::/48");
        sim.schedule_announce(SimTime(10), ORIGIN, beacon, RouteMeta::default());
        sim.schedule_withdraw(SimTime(7_200), ORIGIN, beacon);
        ris.advance(&mut sim, SimTime(10_000));
        let archive = ris.finish();
        assert!(archive.stats.announces_emitted >= 2);
        assert!(archive.stats.withdraws_emitted >= 2);

        let mut reader = MrtReader::new(archive.updates.clone());
        let records = reader.collect_all();
        assert_eq!(reader.stats().skipped, 0);
        assert!(!records.is_empty());
        // Timestamps non-decreasing.
        for w in records.windows(2) {
            assert!(w[0].timestamp <= w[1].timestamp);
        }
        // First record for each peer announces the beacon with the right
        // path and family encoding.
        let first = records
            .iter()
            .find_map(|r| match &r.body {
                MrtBody::Message(m) => Some(m),
                _ => None,
            })
            .unwrap();
        let BgpMessage::Update(update) = &first.message else {
            panic!("expected update")
        };
        assert_eq!(update.announced(), vec![beacon]);
        assert!(update.nlri.is_empty(), "IPv6 must travel in MP_REACH");
    }

    #[test]
    fn rib_dumps_taken_every_period() {
        let (topo, config) = tiny_world();
        let mut sim = Simulator::new(topo, &FaultPlan::none(), 1);
        let mut ris = RisNetwork::new(config, SimTime(0), 7);
        ris.attach(&mut sim);
        let beacon = p("2a0d:3dc1:1145::/48");
        sim.schedule_announce(SimTime(10), ORIGIN, beacon, RouteMeta::default());
        // Keep it announced across two dump instants.
        ris.advance(&mut sim, SimTime(17 * 3_600));
        let archive = ris.finish();
        // Dumps at 0h, 8h, 16h.
        assert_eq!(archive.rib_dumps.len(), 3);
        assert_eq!(archive.stats.dumps, 3);
        // Dump at 0h: nothing announced yet.
        let mut reader = MrtReader::new(archive.rib_dumps[0].1.clone());
        let records = reader.collect_all();
        assert_eq!(records.len(), 1); // just the peer index
                                      // Dump at 8h: both peers hold the beacon.
        let mut reader = MrtReader::new(archive.rib_dumps[1].1.clone());
        let records = reader.collect_all();
        assert_eq!(records.len(), 2);
        let MrtBody::PeerIndex(index) = &records[0].body else {
            panic!("peer index first")
        };
        assert_eq!(index.peers.len(), 2);
        let MrtBody::Rib(rib) = &records[1].body else {
            panic!("rib second")
        };
        assert_eq!(rib.prefix, beacon);
        assert_eq!(rib.entries.len(), 2);
        // Entries reference valid peers and carry the path.
        for entry in &rib.entries {
            let peer = &index.peers[entry.peer_index as usize];
            assert!(peer.asn == Asn(100) || peer.asn == Asn(200));
            let path = entry.attrs.as_path.as_ref().unwrap();
            assert_eq!(path.origin(), Some(ORIGIN));
        }
    }

    #[test]
    fn sticky_router_keeps_stale_route_in_dump_but_peers_dont() {
        let (topo, mut config) = tiny_world();
        // AS100's router is sticky with certainty.
        config.peers[0] = config.peers[0].clone().with_sticky(1.0);
        let mut sim = Simulator::new(topo, &FaultPlan::none(), 1);
        let mut ris = RisNetwork::new(config, SimTime(0), 7);
        ris.attach(&mut sim);
        let beacon = p("2a0d:3dc1:1145::/48");
        sim.schedule_announce(SimTime(10), ORIGIN, beacon, RouteMeta::default());
        sim.schedule_withdraw(SimTime(7_200), ORIGIN, beacon);
        ris.advance(&mut sim, SimTime(9 * 3_600));
        let archive = ris.finish();
        assert!(archive.stats.sticky_drops > 0);
        // 8h dump: only the sticky router still holds the prefix.
        let (_, dump) = &archive.rib_dumps[1];
        let mut reader = MrtReader::new(dump.clone());
        let records = reader.collect_all();
        assert_eq!(records.len(), 2);
        let MrtBody::Rib(rib) = &records[1].body else {
            panic!()
        };
        assert_eq!(rib.entries.len(), 1);
        assert_eq!(rib.entries[0].peer_index, 0);
    }

    #[test]
    fn flap_emits_state_records_and_resync() {
        let (topo, mut config) = tiny_world();
        config.peers[1].flaps = vec![SimTime(3_600)];
        let mut sim = Simulator::new(topo, &FaultPlan::none(), 1);
        let mut ris = RisNetwork::new(config, SimTime(0), 7);
        ris.attach(&mut sim);
        let beacon = p("2a0d:3dc1:1145::/48");
        sim.schedule_announce(SimTime(10), ORIGIN, beacon, RouteMeta::default());
        ris.advance(&mut sim, SimTime(7_000));
        let archive = ris.finish();
        assert_eq!(archive.stats.flaps, 1);
        let mut reader = MrtReader::new(archive.updates.clone());
        let records = reader.collect_all();
        let states: Vec<&Bgp4mpStateChange> = records
            .iter()
            .filter_map(|r| match &r.body {
                MrtBody::StateChange(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(states.len(), 2);
        assert!(states[0].is_session_down());
        assert!(states[1].is_session_up());
        // Resync re-announce follows the up transition.
        let after_up: Vec<&MrtRecord> = records
            .iter()
            .filter(|r| r.timestamp >= SimTime(3_600 + FLAP_DOWN_SECS))
            .collect();
        assert!(after_up.iter().any(|r| matches!(
            &r.body,
            MrtBody::Message(m) if matches!(&m.message, BgpMessage::Update(u) if !u.announced().is_empty())
        )));
    }

    #[test]
    fn down_session_suppresses_updates_and_dump_entries() {
        let (topo, mut config) = tiny_world();
        // Peer 1 goes down just before the withdrawal and stays down past
        // the dump (flap up happens 60 s later though — so instead keep it
        // down by scheduling the flap right before the dump instant).
        config.peers[1].flaps = vec![SimTime(8 * 3_600 - 30)];
        let mut sim = Simulator::new(topo, &FaultPlan::none(), 1);
        let mut ris = RisNetwork::new(config, SimTime(0), 7);
        ris.attach(&mut sim);
        let beacon = p("2a0d:3dc1:1145::/48");
        sim.schedule_announce(SimTime(10), ORIGIN, beacon, RouteMeta::default());
        ris.advance(&mut sim, SimTime(8 * 3_600 + 300));
        let archive = ris.finish();
        // The 8h dump happened during the down window: only peer 0 present.
        let (t, dump) = &archive.rib_dumps[1];
        assert_eq!(t.secs(), 8 * 3_600);
        let mut reader = MrtReader::new(dump.clone());
        let records = reader.collect_all();
        let MrtBody::Rib(rib) = &records[1].body else {
            panic!()
        };
        assert_eq!(rib.entries.len(), 1);
        assert_eq!(rib.entries[0].peer_index, 0);
    }

    #[test]
    fn export_freeze_window_keeps_mirror_stale() {
        let (topo, mut config) = tiny_world();
        // Peer 0's export pipeline wedges from 1 h to 10 h.
        config.peers[0] =
            config.peers[0]
                .clone()
                .with_freeze(SimTime(3_600), SimTime(10 * 3_600), None);
        let mut sim = Simulator::new(topo, &FaultPlan::none(), 1);
        let mut ris = RisNetwork::new(config, SimTime(0), 7);
        ris.attach(&mut sim);
        let beacon = p("2a0d:3dc1:1145::/48");
        sim.schedule_announce(SimTime(10), ORIGIN, beacon, RouteMeta::default());
        sim.schedule_withdraw(SimTime(7_200), ORIGIN, beacon);
        ris.advance(&mut sim, SimTime(9 * 3_600));
        let archive = ris.finish();
        assert!(archive.stats.export_frozen_drops > 0);
        // The 8 h dump shows the frozen mirror still holding the route at
        // peer 0, while peer 1 withdrew.
        let (_, dump) = &archive.rib_dumps[1];
        let mut reader = MrtReader::new(dump.clone());
        let records = reader.collect_all();
        assert_eq!(records.len(), 2, "peer index + one stale rib entry");
        let MrtBody::Rib(rib) = &records[1].body else {
            panic!()
        };
        assert_eq!(rib.entries.len(), 1);
        assert_eq!(rib.entries[0].peer_index, 0);
    }

    #[test]
    fn collector_outage_emits_states_and_suppresses_exports() {
        let (topo, mut config) = tiny_world();
        // Peer 1's collector session is down across the withdrawal.
        config.peers[1] = config.peers[1]
            .clone()
            .with_outage(SimTime(3_600), SimTime(4 * 3_600));
        let mut sim = Simulator::new(topo, &FaultPlan::none(), 1);
        let mut ris = RisNetwork::new(config, SimTime(0), 7);
        ris.attach(&mut sim);
        let beacon = p("2a0d:3dc1:1145::/48");
        sim.schedule_announce(SimTime(10), ORIGIN, beacon, RouteMeta::default());
        sim.schedule_withdraw(SimTime(7_200), ORIGIN, beacon);
        ris.advance(&mut sim, SimTime(5 * 3_600));
        let archive = ris.finish();
        let mut reader = MrtReader::new(archive.updates.clone());
        let records = reader.collect_all();
        // Exactly one down + one up STATE record for peer 1.
        let states: Vec<_> = records
            .iter()
            .filter_map(|r| match &r.body {
                MrtBody::StateChange(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(states.len(), 2);
        assert!(states[0].is_session_down());
        assert_eq!(states[0].session.peer_as, Asn(200));
        assert!(states[1].is_session_up());
        // No peer-1 update records while down: the withdrawal (at ~2 h)
        // falls inside the outage, so peer 1's withdraw never appears —
        // only its resync announce after the up edge... and since the
        // route was withdrawn in the mirror meanwhile, the resync carries
        // nothing. The detector must rely on the STATE record.
        let peer1_updates: Vec<_> = records
            .iter()
            .filter(|r| {
                matches!(&r.body, MrtBody::Message(m)
                    if m.session.peer_as == Asn(200)
                    && r.timestamp > SimTime(3_600)
                    && r.timestamp < SimTime(4 * 3_600))
            })
            .collect();
        assert!(peer1_updates.is_empty());
    }

    #[test]
    fn v4_beacon_uses_legacy_fields() {
        let topo = Topology::builder()
            .node(Asn(100), Tier::Tier1)
            .node(Asn(12_654), Tier::Stub)
            .provider_customer(Asn(100), Asn(12_654))
            .build();
        let config = RisConfig {
            collectors: vec![Collector::numbered(0)],
            peers: vec![RisPeerSpec::healthy(
                Asn(100),
                "193.0.10.1".parse().unwrap(),
                0,
            )],
            rib_period: 8 * 3_600,
        };
        let mut sim = Simulator::new(topo, &FaultPlan::none(), 1);
        let mut ris = RisNetwork::new(config, SimTime(0), 7);
        ris.attach(&mut sim);
        let beacon = Prefix::v4(84, 205, 64, 0, 24);
        sim.schedule_announce(SimTime(10), Asn(12_654), beacon, RouteMeta::default());
        sim.schedule_withdraw(SimTime(7_200), Asn(12_654), beacon);
        ris.advance(&mut sim, SimTime(9_000));
        let archive = ris.finish();
        let mut reader = MrtReader::new(archive.updates.clone());
        let records = reader.collect_all();
        let updates: Vec<&BgpUpdate> = records
            .iter()
            .filter_map(|r| match &r.body {
                MrtBody::Message(m) => match &m.message {
                    BgpMessage::Update(u) => Some(u),
                    _ => None,
                },
                _ => None,
            })
            .collect();
        assert_eq!(updates.len(), 2);
        assert_eq!(updates[0].nlri, vec![beacon]);
        assert!(updates[0].attrs.mp_reach.is_none());
        assert_eq!(updates[1].withdrawn, vec![beacon]);
        assert!(updates[1].attrs.mp_unreach.is_none());
    }
}
