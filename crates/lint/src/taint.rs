//! Phase-2 determinism taint: nondeterminism sources reachable from
//! artifact-writing code, anywhere in the workspace.
//!
//! The paper's headline reproducibility claim is byte-identical
//! artifacts at any `--jobs`/shard count, so everything a metrics /
//! report / cache-payload writer (see [`crate::policy::artifact_module`])
//! can transitively reach must be order-deterministic. The pass:
//!
//! 1. takes every non-test fn defined in an artifact module as a root,
//! 2. walks the phase-1 call graph to the set of reachable fns, tagging
//!    each with the (deterministically first) root that reaches it,
//! 3. flags nondeterminism sources inside that set: unordered
//!    `HashMap`/`HashSet` iteration (unless an adjacent sort / ordered
//!    collect / order-independent reduction neutralizes it — the same
//!    window the old per-file `hash_iteration` lint used) and
//!    `thread::current().id()` feeding artifact-visible values.
//!
//! This subsumes the old intra-file `hash_iteration` lint: the same
//! sites fire when the iteration happens *inside* an artifact module,
//! and new ones fire when the iteration is three crates away. Jobs-count
//! and float-fold-order sources are documented limits (DESIGN.md §7a):
//! they need value-flow tracking, not just call reachability.
//! Findings are ratcheted via `lint-baseline.toml` and carry the
//! `// lint: allow(determinism_taint) — <reason>` escape.

use std::collections::BTreeSet;

use crate::lexer::TokenKind;
use crate::lints::{allowed, hash_bindings, hash_iteration_sites, order_safe};
use crate::policy;
use crate::resolve::{is_path_sep, text, Workspace};
use crate::Finding;

pub fn taint_pass(ws: &Workspace) -> Vec<Finding> {
    // Roots: non-test fns defined in artifact modules, in key order so
    // every witness assignment is deterministic.
    let mut roots: Vec<usize> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|(_, f)| {
            !f.in_test
                && ws
                    .files
                    .get(f.file)
                    .is_some_and(|sf| policy::artifact_module(&sf.path))
        })
        .map(|(i, _)| i)
        .collect();
    roots.sort_by(|a, b| {
        let ka = ws.fn_def(*a).map(|f| f.key.as_str()).unwrap_or("");
        let kb = ws.fn_def(*b).map(|f| f.key.as_str()).unwrap_or("");
        ka.cmp(kb)
    });
    // Multi-source BFS: first root (by key) to reach a fn wins.
    let mut witness: Vec<Option<usize>> = ws.fns.iter().map(|_| None).collect();
    for &root in &roots {
        let mut queue = vec![root];
        while let Some(f) = queue.pop() {
            if witness.get(f).is_some_and(Option::is_some) {
                continue;
            }
            if let Some(slot) = witness.get_mut(f) {
                *slot = Some(root);
            }
            for c in ws.calls.get(f).into_iter().flatten() {
                queue.push(c.target);
            }
        }
    }
    // Nondeterminism sources, cached per file.
    let mut out = Vec::new();
    let mut seen: BTreeSet<(String, usize, String)> = BTreeSet::new();
    // Per file: (hash-iteration sites with their receiver, thread-id sites).
    type FileSites = (Vec<(usize, String)>, Vec<usize>);
    let per_file: Vec<FileSites> = ws
        .files
        .iter()
        .map(|file| {
            let bindings = hash_bindings(&file.tokens);
            (
                hash_iteration_sites(&file.tokens, &bindings),
                thread_id_sites(file),
            )
        })
        .collect();
    for (fidx, w) in witness.iter().enumerate() {
        let Some(&root) = w.as_ref() else {
            continue;
        };
        let Some(def) = ws.fn_def(fidx) else {
            continue;
        };
        let Some(file) = ws.files.get(def.file) else {
            continue;
        };
        let root_key = ws.fn_def(root).map(|f| f.key.as_str()).unwrap_or("?");
        let first = file.tokens.get(def.body.0).map(|t| t.line).unwrap_or(0);
        let last = file
            .tokens
            .get(def.body.1.saturating_sub(1))
            .map(|t| t.line)
            .unwrap_or(usize::MAX);
        let in_body = |line: usize| line >= first && line <= last;
        let (hash_sites, id_sites) = per_file.get(def.file).cloned().unwrap_or_default();
        for (line, name) in hash_sites {
            if !in_body(line)
                || order_safe(&file.masked, line)
                || allowed(&file.masked, line, "determinism_taint")
                || !seen.insert((file.path.clone(), line, name.clone()))
            {
                continue;
            }
            out.push(Finding {
                file: file.path.clone(),
                line,
                lint: "determinism_taint",
                message: format!(
                    "iteration over hash-ordered `{name}` reaches artifact output (via `{root_key}`); sort or collect into a BTreeMap first"
                ),
            });
        }
        for line in id_sites {
            if !in_body(line)
                || allowed(&file.masked, line, "determinism_taint")
                || !seen.insert((file.path.clone(), line, "thread::id".to_string()))
            {
                continue;
            }
            out.push(Finding {
                file: file.path.clone(),
                line,
                lint: "determinism_taint",
                message: format!(
                    "`thread::current().id()` reaches artifact output (via `{root_key}`); derive stable ids from the work items instead"
                ),
            });
        }
    }
    out.sort_by(|a, b| (a.file.as_str(), a.line).cmp(&(b.file.as_str(), b.line)));
    out
}

/// Lines with a `thread::current().id()` chain outside tests.
fn thread_id_sites(file: &crate::resolve::SourceFile) -> Vec<usize> {
    let tokens = &file.tokens;
    let mut lines = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident || t.text != "current" {
            continue;
        }
        let qualified = is_path_sep(tokens, i.wrapping_sub(1))
            && i.checked_sub(3)
                .is_some_and(|p| text(tokens, p) == "thread");
        if qualified
            && text(tokens, i + 1) == "("
            && text(tokens, i + 2) == ")"
            && text(tokens, i + 3) == "."
            && text(tokens, i + 4) == "id"
            && text(tokens, i + 5) == "("
        {
            lines.push(t.line);
        }
    }
    lines
}

#[cfg(test)]
mod tests {
    use super::*;

    fn findings(files: &[(&str, &str)]) -> Vec<Finding> {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(p, s)| (p.to_string(), s.to_string()))
            .collect();
        let ws = Workspace::build(&sources);
        taint_pass(&ws)
    }

    #[test]
    fn hash_iteration_inside_an_artifact_module_still_fires() {
        let src =
            "fn render(m: &HashMap<u32, u32>) -> Vec<u32> {\n    m.keys().copied().collect()\n}\n";
        let got = findings(&[("crates/analysis/src/demo.rs", src)]);
        assert_eq!(got.len(), 1, "{got:?}");
        let f = got.first().map(|f| (f.line, f.lint));
        assert_eq!(f, Some((2, "determinism_taint")));
    }

    #[test]
    fn taint_crosses_crates_through_the_call_graph() {
        let core = "pub fn summarize(m: &HashMap<u32, u32>) -> Vec<u32> {\n    m.values().copied().collect()\n}\n";
        let analysis =
            "use bgpz_core::stats::summarize;\npub fn render(m: &HashMap<u32, u32>) {\n    summarize(m);\n}\n";
        let got = findings(&[
            ("crates/core/src/stats.rs", core),
            ("crates/analysis/src/demo.rs", analysis),
        ]);
        assert_eq!(got.len(), 1, "{got:?}");
        let f = got.first();
        assert!(
            f.is_some_and(|f| f.file == "crates/core/src/stats.rs" && f.line == 2),
            "{got:?}"
        );
        assert!(
            f.is_some_and(|f| f.message.contains("analysis::demo::render")),
            "{got:?}"
        );
    }

    #[test]
    fn unreached_code_is_not_tainted() {
        let core = "pub fn summarize(m: &HashMap<u32, u32>) -> Vec<u32> {\n    m.values().copied().collect()\n}\n";
        let got = findings(&[("crates/core/src/stats.rs", core)]);
        assert!(got.is_empty(), "{got:?}");
    }

    #[test]
    fn sorted_windows_and_markers_suppress() {
        let sorted = "fn render(m: &HashMap<u32, u32>) -> Vec<u32> {\n    let mut v: Vec<u32> = m.keys().copied().collect();\n    v.sort_unstable();\n    v\n}\n";
        assert!(findings(&[("crates/analysis/src/demo.rs", sorted)]).is_empty());
        let marked = "fn render(m: &HashMap<u32, u32>) -> u32 {\n    // lint: allow(determinism_taint) \u{2014} reduced through a commutative xor\n    m.keys().fold2()\n}\n";
        assert!(findings(&[("crates/analysis/src/demo.rs", marked)]).is_empty());
    }

    #[test]
    fn thread_id_in_reachable_code_is_flagged() {
        let src = "pub fn tag() -> String {\n    format!(\"{:?}\", thread::current().id())\n}\n";
        let got = findings(&[("crates/bench/src/demo.rs", src)]);
        assert_eq!(got.len(), 1, "{got:?}");
        assert!(
            got.first()
                .is_some_and(|f| f.message.contains("thread::current")),
            "{got:?}"
        );
    }
}
