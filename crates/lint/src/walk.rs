//! Workspace source discovery.
//!
//! The lint pass covers library/binary sources only: `src/**/*.rs` at the
//! workspace root plus `crates/*/src/**/*.rs`. Integration tests and
//! benches are exempt from every lint (see [`crate::policy`]), so they are
//! not walked at all. Paths are returned workspace-relative with `/`
//! separators, sorted, so output order is deterministic on every platform.

use std::io;
use std::path::{Path, PathBuf};

/// All lintable sources under `root`: `(workspace-relative path, absolute
/// path)` pairs, sorted by relative path.
pub fn workspace_sources(root: &Path) -> io::Result<Vec<(String, PathBuf)>> {
    let mut out = Vec::new();
    let root_src = root.join("src");
    if root_src.is_dir() {
        collect(&root_src, root, &mut out)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut members: Vec<PathBuf> = std::fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .collect();
        members.sort();
        for member in members {
            let src = member.join("src");
            if src.is_dir() {
                collect(&src, root, &mut out)?;
            }
        }
    }
    out.sort();
    Ok(out)
}

fn collect(dir: &Path, root: &Path, out: &mut Vec<(String, PathBuf)>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            collect(&path, root, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .components()
                .map(|c| c.as_os_str().to_string_lossy())
                .collect::<Vec<_>>()
                .join("/");
            out.push((rel, path));
        }
    }
    Ok(())
}
