//! The lint passes. Each pass walks the token stream produced by
//! [`crate::lexer`] and emits [`Finding`]s; which passes run for a given
//! file is decided by [`crate::policy`].
//!
//! Hard lints (`truncating_cast`, `wall_clock`, `println`,
//! `forbid_unsafe`, `metric_name`) and the workspace graph lints
//! (`lock_order`, `channel_topology`, `determinism_taint` — see
//! [`crate::graphs`] and [`crate::taint`]) can be suppressed with an
//! inline marker on the finding line or the line above:
//!
//! ```text
//! // lint: allow(truncating_cast) — header length is <= u16::MAX by construction
//! ```
//!
//! A marker without a reason does not suppress. The panic-family lints
//! (`unwrap`, `expect`, `panic`, `indexing`) take no markers — they are
//! governed by the baseline ratchet instead.

use crate::lexer::{mask, tokenize, Masked, Token, TokenKind};
use crate::policy;
use crate::Finding;

/// Lints governed by the `lint-baseline.toml` ratchet.
pub const PANIC_LINTS: &[&str] = &["unwrap", "expect", "panic", "indexing"];

/// All ratcheted lints: the panic family plus the workspace graph
/// families added by the two-phase analyzer.
pub const RATCHETED: &[&str] = &[
    "unwrap",
    "expect",
    "panic",
    "indexing",
    "lock_order",
    "channel_topology",
    "determinism_taint",
];

/// Analyzes one source file. `path` is workspace-relative with `/`
/// separators; it selects which passes apply.
pub fn analyze(path: &str, source: &str) -> Vec<Finding> {
    if policy::is_test_path(path) {
        return Vec::new();
    }
    let masked = mask(source);
    let tokens = tokenize(&masked);
    let mut out = Vec::new();
    if policy::panic_scope(path) {
        panic_pass(path, &tokens, &mut out);
    }
    if policy::cast_scope(path) {
        cast_pass(path, &masked, &tokens, &mut out);
    }
    if !policy::wallclock_allowed(path) {
        wallclock_pass(path, &masked, &tokens, &mut out);
    }
    if !policy::println_allowed(path) {
        println_pass(path, &masked, &tokens, &mut out);
    }
    if policy::lib_root(path) {
        forbid_unsafe_pass(path, &masked, &mut out);
    }
    metric_name_pass(path, &masked, &tokens, &mut out);
    out.sort_by(|a, b| {
        (a.line, a.lint, a.message.as_str()).cmp(&(b.line, b.lint, b.message.as_str()))
    });
    out
}

fn finding(path: &str, line: usize, lint: &'static str, message: &str) -> Finding {
    Finding {
        file: path.to_owned(),
        line,
        lint,
        message: message.to_owned(),
    }
}

/// True when a `// lint: allow(<lint>) — <reason>` marker with a
/// non-empty reason sits on `line` or the line above.
pub(crate) fn allowed(masked: &Masked, line: usize, lint: &str) -> bool {
    let check = |idx: Option<usize>| {
        idx.and_then(|i| masked.comments.get(i))
            .is_some_and(|c| marker_allows(c, lint))
    };
    check(line.checked_sub(1)) || check(line.checked_sub(2))
}

fn marker_allows(comment: &str, lint: &str) -> bool {
    let Some(pos) = comment.find("lint: allow(") else {
        return false;
    };
    let rest = comment.get(pos + 12..).unwrap_or("");
    let Some(close) = rest.find(')') else {
        return false;
    };
    if rest.get(..close).unwrap_or("").trim() != lint {
        return false;
    }
    let reason = rest.get(close + 1..).unwrap_or("").trim_matches(|c: char| {
        c.is_whitespace() || c == '\u{2014}' || c == '-' || c == ':' || c == ','
    });
    !reason.is_empty()
}

fn tok_text(tokens: &[Token], i: usize) -> &str {
    tokens.get(i).map(|t| t.text.as_str()).unwrap_or("")
}

// ---------------------------------------------------------------------------
// panic family: unwrap / expect / panic / indexing
// ---------------------------------------------------------------------------

/// Idents that legitimately precede `[` without being an indexed value
/// (slice patterns, array types, attribute positions).
const NON_INDEX_KEYWORDS: &[&str] = &[
    "as", "async", "await", "box", "break", "const", "continue", "dyn", "else", "enum", "fn",
    "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub", "ref",
    "return", "static", "struct", "trait", "type", "unsafe", "use", "where", "while",
];

fn panic_pass(path: &str, tokens: &[Token], out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.in_test {
            continue;
        }
        match t.kind {
            TokenKind::Ident => {
                let prev_dot = i.checked_sub(1).is_some_and(|p| tok_text(tokens, p) == ".");
                match t.text.as_str() {
                    "unwrap" if prev_dot && tok_text(tokens, i + 1) == "(" => {
                        out.push(finding(
                            path,
                            t.line,
                            "unwrap",
                            "`.unwrap()` in library code; propagate an error (ratcheted by lint-baseline.toml)",
                        ));
                    }
                    "expect"
                        if prev_dot
                            && tok_text(tokens, i + 1) == "("
                            && tokens.get(i + 2).is_some_and(|t| t.kind == TokenKind::Str) =>
                    {
                        out.push(finding(
                            path,
                            t.line,
                            "expect",
                            "`.expect(..)` in library code; propagate an error (ratcheted by lint-baseline.toml)",
                        ));
                    }
                    "panic" if tok_text(tokens, i + 1) == "!" => {
                        out.push(finding(
                            path,
                            t.line,
                            "panic",
                            "`panic!` in library code; return an error (ratcheted by lint-baseline.toml)",
                        ));
                    }
                    _ => {}
                }
            }
            TokenKind::Punct if t.text == "[" => {
                // A lifetime lexes as `'` + Ident, so an ident preceded by
                // `'` (`&'a [u8]`) is a slice *type*, never an indexing op.
                let prev_is_lifetime = |p: usize| {
                    p.checked_sub(1)
                        .and_then(|q| tokens.get(q))
                        .is_some_and(|q| q.kind == TokenKind::Punct && q.text == "'")
                };
                let indexed = i
                    .checked_sub(1)
                    .and_then(|p| tokens.get(p).map(|prev| (p, prev)))
                    .is_some_and(|(p, prev)| match prev.kind {
                        TokenKind::Ident => {
                            !NON_INDEX_KEYWORDS.contains(&prev.text.as_str())
                                && !prev_is_lifetime(p)
                        }
                        TokenKind::Punct => prev.text == ")" || prev.text == "]",
                        _ => false,
                    });
                if indexed {
                    out.push(finding(
                        path,
                        t.line,
                        "indexing",
                        "slice/array indexing can panic; prefer `.get(..)` (ratcheted by lint-baseline.toml)",
                    ));
                }
            }
            _ => {}
        }
    }
}

// ---------------------------------------------------------------------------
// truncating_cast
// ---------------------------------------------------------------------------

fn int_width(name: &str) -> Option<u32> {
    match name {
        "u8" | "i8" => Some(8),
        "u16" | "i16" => Some(16),
        "u32" | "i32" => Some(32),
        "u64" | "i64" | "usize" | "isize" => Some(64),
        "u128" | "i128" => Some(128),
        _ => None,
    }
}

/// Bit width produced by a known callee in this workspace (`bytes`-style
/// readers, our `Cur` cursor, length accessors).
fn callee_width(name: &str) -> Option<u32> {
    match name {
        "get_u8" | "u8" => Some(8),
        "get_u16" | "u16" => Some(16),
        "get_u32" | "u32" => Some(32),
        "get_u64" | "u64" | "secs" => Some(64),
        "len" | "wire_len" | "remaining" => Some(64),
        // Helpers follow the `foo_u32` return-width naming convention.
        n if n.ends_with("_u8") => Some(8),
        n if n.ends_with("_u16") => Some(16),
        n if n.ends_with("_u32") => Some(32),
        n if n.ends_with("_u64") => Some(64),
        _ => None,
    }
}

fn literal_value(text: &str) -> Option<u128> {
    let t = text.replace('_', "").to_ascii_lowercase();
    let (radix, digits) = if let Some(h) = t.strip_prefix("0x") {
        (16, h)
    } else if let Some(o) = t.strip_prefix("0o") {
        (8, o)
    } else if let Some(b) = t.strip_prefix("0b") {
        (2, b)
    } else {
        (10, t.as_str())
    };
    let run: String = digits.chars().take_while(|c| c.is_digit(radix)).collect();
    if run.is_empty() {
        return None;
    }
    u128::from_str_radix(&run, radix).ok()
}

fn fits(value: u128, target: &str, width: u32) -> bool {
    let max = if width >= 128 {
        u128::MAX
    } else if target.starts_with('i') {
        (1u128 << (width - 1)) - 1
    } else {
        (1u128 << width) - 1
    };
    value <= max
}

/// Index of the `(` matching the `)` at `close`, scanning backwards.
fn open_paren(tokens: &[Token], close: usize) -> Option<usize> {
    let mut depth = 0u32;
    let mut k = close;
    loop {
        let t = tokens.get(k)?;
        if t.kind == TokenKind::Punct {
            if t.text == ")" {
                depth += 1;
            } else if t.text == "(" {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(k);
                }
            }
        }
        k = k.checked_sub(1)?;
    }
}

/// Bit width of the expression ending just before the `as` at `as_idx`,
/// when it can be proven from the token stream; `None` means unknown.
fn source_width(tokens: &[Token], as_idx: usize) -> Option<SourceWidth> {
    let mut j = as_idx.checked_sub(1)?;
    while tok_text(tokens, j) == "?" {
        j = j.checked_sub(1)?;
    }
    let t = tokens.get(j)?;
    match t.kind {
        TokenKind::Int => literal_value(&t.text).map(SourceWidth::Literal),
        TokenKind::Ident => int_width(&t.text).map(SourceWidth::Bits),
        TokenKind::Punct if t.text == ")" => {
            let open = open_paren(tokens, j)?;
            let callee = open.checked_sub(1)?;
            let c = tokens.get(callee)?;
            if c.kind != TokenKind::Ident {
                return None;
            }
            if c.text == "from_be_bytes" || c.text == "from_le_bytes" || c.text == "from" {
                // `u32::from_be_bytes(..)` — width from the path's type.
                let colon2 = callee.checked_sub(1)?;
                let colon1 = colon2.checked_sub(1)?;
                if tok_text(tokens, colon2) == ":" && tok_text(tokens, colon1) == ":" {
                    let ty = colon1.checked_sub(1)?;
                    return int_width(tok_text(tokens, ty)).map(SourceWidth::Bits);
                }
                None
            } else {
                callee_width(&c.text).map(SourceWidth::Bits)
            }
        }
        _ => None,
    }
}

enum SourceWidth {
    Bits(u32),
    Literal(u128),
}

fn cast_pass(path: &str, masked: &Masked, tokens: &[Token], out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident || t.text != "as" {
            continue;
        }
        let Some(target) = tokens.get(i + 1) else {
            continue;
        };
        let Some(target_width) = int_width(&target.text) else {
            continue; // `use x as y`, float casts, pointer casts
        };
        let safe = match source_width(tokens, i) {
            Some(SourceWidth::Bits(w)) => w <= target_width,
            Some(SourceWidth::Literal(v)) => fits(v, &target.text, target_width),
            None => false,
        };
        if !safe && !allowed(masked, t.line, "truncating_cast") {
            out.push(finding(
                path,
                t.line,
                "truncating_cast",
                &format!(
                    "cast to `{}` may truncate in a wire path; use `try_from`/`from` or add `// lint: allow(truncating_cast) \u{2014} <reason>`",
                    target.text
                ),
            ));
        }
    }
}

// ---------------------------------------------------------------------------
// hash-iteration helpers (used by the determinism_taint pass)
// ---------------------------------------------------------------------------

pub(crate) const ITER_METHODS: &[&str] = &[
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
];

/// Substrings that make iteration order-safe when they appear on the
/// finding line or within the next two lines: an explicit sort, a
/// collect into an ordered map, or an order-independent reduction.
const ORDER_SAFE: &[&str] = &[
    ".sort", "BTreeMap", "BTreeSet", ".sum", ".count", ".max", ".min", ".any(", ".all(", ".fold(",
];

pub(crate) fn order_safe(masked: &Masked, line: usize) -> bool {
    (line.saturating_sub(1)..=line.saturating_add(1)).any(|idx| {
        masked
            .code
            .get(idx)
            .is_some_and(|l| ORDER_SAFE.iter().any(|p| l.contains(p)))
    })
}

/// Names bound to `HashMap`/`HashSet` in this file: `name: HashMap<..>`
/// (let, field, or param position, through `&`/`mut`) and
/// `name = HashMap::new()`.
pub(crate) fn hash_bindings(tokens: &[Token]) -> Vec<String> {
    let mut names = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.kind != TokenKind::Ident || (t.text != "HashMap" && t.text != "HashSet") {
            continue;
        }
        let mut j = match i.checked_sub(1) {
            Some(j) => j,
            None => continue,
        };
        while tok_text(tokens, j) == "&" || tok_text(tokens, j) == "mut" {
            j = match j.checked_sub(1) {
                Some(j) => j,
                None => break,
            };
        }
        let sep = tok_text(tokens, j);
        if sep != ":" && sep != "=" {
            continue;
        }
        // Exclude the `::` of a qualified path (`collections::HashMap`).
        let Some(prev) = j.checked_sub(1).and_then(|p| tokens.get(p)) else {
            continue;
        };
        if prev.kind == TokenKind::Ident && !names.contains(&prev.text) {
            names.push(prev.text.clone());
        }
    }
    names
}

pub(crate) fn is_hash_name(name: &str, bindings: &[String]) -> bool {
    bindings.iter().any(|b| b == name) || policy::HASH_FIELDS.contains(&name)
}

/// Hash-ordered iteration sites in one token stream: `name.iter()`-family
/// calls on hash-typed bindings and `for pat in [&][mut] name` loops.
/// Returns `(line, name)` pairs; order-safety and allow markers are the
/// caller's concern. The old per-file `hash_iteration` lint used this
/// directly; today it feeds the interprocedural `determinism_taint` pass.
pub(crate) fn hash_iteration_sites(tokens: &[Token], bindings: &[String]) -> Vec<(usize, String)> {
    let mut sites = Vec::new();
    for (i, t) in tokens.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident {
            continue;
        }
        // `recv.iter()` family.
        if ITER_METHODS.contains(&t.text.as_str())
            && i.checked_sub(1).is_some_and(|p| tok_text(tokens, p) == ".")
            && tok_text(tokens, i + 1) == "("
        {
            if let Some(recv) = i.checked_sub(2).and_then(|p| tokens.get(p)) {
                if recv.kind == TokenKind::Ident && is_hash_name(&recv.text, bindings) {
                    sites.push((t.line, recv.text.clone()));
                }
            }
        }
        // `for pat in [&][mut] name {` (no method call in the iterable).
        if t.text == "for" {
            let Some(in_idx) = (i + 1..i + 12).find(|&k| tok_text(tokens, k) == "in") else {
                continue;
            };
            let mut k = in_idx + 1;
            let mut last_ident: Option<usize> = None;
            let mut has_call = false;
            while k < in_idx + 8 {
                match tok_text(tokens, k) {
                    "{" => break,
                    "(" => {
                        has_call = true;
                        break;
                    }
                    "&" | "mut" | "." => {}
                    _ => {
                        if tokens.get(k).is_some_and(|t| t.kind == TokenKind::Ident) {
                            last_ident = Some(k);
                        } else {
                            has_call = true; // unexpected shape — don't guess
                            break;
                        }
                    }
                }
                k += 1;
            }
            if has_call {
                continue;
            }
            if let Some(l) = last_ident.and_then(|k| tokens.get(k)) {
                if is_hash_name(&l.text, bindings) {
                    sites.push((l.line, l.text.clone()));
                }
            }
        }
    }
    sites
}

// ---------------------------------------------------------------------------
// metric_name
// ---------------------------------------------------------------------------

/// The metric-name registry: the inventory of every literal
/// `(target, name)` pair the bgpz-obs recording surfaces accept.
const METRIC_REGISTRY: &str = include_str!("../../obs/metric_names.txt");

/// bgpz-obs recording and lookup functions whose first two arguments are
/// the `(target, name)` registry key. The pattern additionally requires
/// both arguments to be string literals, so generically-named methods on
/// other types (`timeline.add(roa, ..)`) never match.
const METRIC_FNS: &[&str] = &[
    "counter",
    "observe",
    "gauge",
    "set_gauge",
    "add",
    "record_span",
    "span",
    "scoped",
    "emit",
    "histogram",
    "counter_value",
    "span_count",
    "gauge_history",
];

fn metric_registry() -> &'static std::collections::BTreeSet<(String, String)> {
    static REGISTRY: std::sync::OnceLock<std::collections::BTreeSet<(String, String)>> =
        std::sync::OnceLock::new();
    REGISTRY.get_or_init(|| {
        METRIC_REGISTRY
            .lines()
            .filter_map(|line| {
                let line = line.trim();
                if line.is_empty() || line.starts_with('#') {
                    return None;
                }
                let (target, name) = line.split_once(' ')?;
                Some((target.trim().to_string(), name.trim().to_string()))
            })
            .collect()
    })
}

/// Content of the string literal token at `idx`, when the lexer captured
/// it (`None` for non-`Str` tokens, multi-line literals, and lines that
/// continue a string from the previous line).
fn str_content<'a>(masked: &'a Masked, tokens: &[Token], idx: usize) -> Option<&'a str> {
    let tok = tokens.get(idx)?;
    if tok.kind != TokenKind::Str {
        return None;
    }
    let line_idx = tok.line.checked_sub(1)?;
    if *masked.starts_in_str.get(line_idx)? {
        return None;
    }
    let ordinal = tokens
        .get(..idx)?
        .iter()
        .filter(|t| t.kind == TokenKind::Str && t.line == tok.line)
        .count();
    masked
        .literals
        .get(line_idx)?
        .get(ordinal)
        .map(String::as_str)
}

/// Every literal `(target, name)` pair passed to an obs recording
/// function must appear in `crates/obs/metric_names.txt` — a typo'd name
/// fails CI instead of silently forking a metric series. Dynamic names
/// (non-literal arguments) are skipped; they are inventoried as comments
/// in the registry file.
fn metric_name_pass(path: &str, masked: &Masked, tokens: &[Token], out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident || !METRIC_FNS.contains(&t.text.as_str()) {
            continue;
        }
        if tok_text(tokens, i + 1) != "(" || tok_text(tokens, i + 3) != "," {
            continue;
        }
        let (Some(target), Some(name)) = (
            str_content(masked, tokens, i + 2),
            str_content(masked, tokens, i + 4),
        ) else {
            continue;
        };
        // Anchor the finding to the name literal (rustfmt may wrap the
        // call); the marker is honoured at the call site or the literal.
        let line = tokens.get(i + 4).map_or(t.line, |n| n.line);
        if metric_registry().contains(&(target.to_string(), name.to_string()))
            || allowed(masked, t.line, "metric_name")
            || allowed(masked, line, "metric_name")
        {
            continue;
        }
        out.push(finding(
            path,
            line,
            "metric_name",
            &format!(
                "metric ({target:?}, {name:?}) is not in crates/obs/metric_names.txt; register it or fix the typo"
            ),
        ));
    }
}

// ---------------------------------------------------------------------------
// wall_clock / println / forbid_unsafe
// ---------------------------------------------------------------------------

fn wallclock_pass(path: &str, masked: &Masked, tokens: &[Token], out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident {
            continue;
        }
        if (t.text == "SystemTime" || t.text == "Instant")
            && tok_text(tokens, i + 1) == ":"
            && tok_text(tokens, i + 2) == ":"
            && tok_text(tokens, i + 3) == "now"
            && !allowed(masked, t.line, "wall_clock")
        {
            out.push(finding(
                path,
                t.line,
                "wall_clock",
                &format!(
                    "`{}::now` outside the obs/timings layer makes runs unreplayable; take time via bgpz-obs",
                    t.text
                ),
            ));
        }
    }
}

fn println_pass(path: &str, masked: &Masked, tokens: &[Token], out: &mut Vec<Finding>) {
    for (i, t) in tokens.iter().enumerate() {
        if t.in_test || t.kind != TokenKind::Ident {
            continue;
        }
        if matches!(t.text.as_str(), "println" | "eprintln" | "print" | "eprint")
            && tok_text(tokens, i + 1) == "!"
            && !allowed(masked, t.line, "println")
        {
            out.push(finding(
                path,
                t.line,
                "println",
                &format!(
                    "`{}!` outside crates/cli and the obs sinks; route output through bgpz-obs",
                    t.text
                ),
            ));
        }
    }
}

fn forbid_unsafe_pass(path: &str, masked: &Masked, out: &mut Vec<Finding>) {
    let present = masked.code.iter().any(|l| {
        let squeezed: String = l.chars().filter(|c| !c.is_whitespace()).collect();
        squeezed.contains("#![forbid(unsafe_code)]")
    });
    if !present {
        out.push(finding(
            path,
            1,
            "forbid_unsafe",
            "library crate root is missing `#![forbid(unsafe_code)]`",
        ));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lints_of(path: &str, src: &str) -> Vec<(&'static str, usize)> {
        analyze(path, src)
            .into_iter()
            .map(|f| (f.lint, f.line))
            .collect()
    }

    const LIB: &str = "crates/core/src/demo.rs";

    #[test]
    fn unwrap_expect_panic_flagged_outside_tests() {
        let src = "fn f(x: Option<u8>) -> u8 {\n    x.unwrap()\n}\nfn g() { panic!(\"no\") }\n#[cfg(test)]\nmod tests {\n    fn t() { None::<u8>.unwrap(); }\n}\n";
        let got = lints_of(LIB, src);
        assert_eq!(got, vec![("unwrap", 2), ("panic", 4)]);
    }

    #[test]
    fn expect_requires_string_literal_argument() {
        let src =
            "fn f(s: &S) { s.expect(interval); }\nfn g(x: Option<u8>) { x.expect(\"must\"); }\n";
        let got = lints_of(LIB, src);
        assert_eq!(got, vec![("expect", 2)]);
    }

    #[test]
    fn indexing_flagged_but_not_slice_patterns() {
        let src = "fn f(v: &[u8]) -> u8 {\n    let [a, _b] = [1u8, 2];\n    v[0] + a\n}\n";
        let got = lints_of(LIB, src);
        assert_eq!(got, vec![("indexing", 3)]);
    }

    #[test]
    fn lifetime_slice_types_are_not_indexing() {
        let src = "struct V<'a> {\n    run: &'a [u8],\n}\nfn f<'a>(v: &V<'a>) -> &'a [u8] {\n    v.run\n}\n";
        assert!(lints_of(LIB, src).is_empty());
    }

    #[test]
    fn doc_comments_and_strings_do_not_fire() {
        let src = "/// Call `.unwrap()` at your peril.\nfn f() -> &'static str {\n    \"panic! is a word\"\n}\n";
        assert!(lints_of(LIB, src).is_empty());
    }

    #[test]
    fn widening_casts_pass_truncating_casts_flagged() {
        let path = "crates/mrt/src/demo.rs";
        let src = "fn f(b: &mut B, n: u64) -> usize {\n    let _a = b.get_u16() as usize;\n    let _c = u32::from_be_bytes(w) as u64;\n    let _e = header_u32(b, 8) as usize;\n    let d = n as u16;\n    usize::from(d)\n}\n";
        let got = lints_of(path, src);
        assert_eq!(got, vec![("truncating_cast", 5)]);
    }

    #[test]
    fn cast_marker_with_reason_suppresses_without_reason_does_not() {
        let path = "crates/mrt/src/demo.rs";
        let src = "fn f(n: u64) -> (u16, u16) {\n    // lint: allow(truncating_cast) \u{2014} length checked above\n    let a = n as u16;\n    // lint: allow(truncating_cast)\n    let b = n as u16;\n    (a, b)\n}\n";
        let got = lints_of(path, src);
        assert_eq!(got, vec![("truncating_cast", 5)]);
    }

    #[test]
    fn literal_casts_use_value_not_width() {
        let path = "crates/mrt/src/demo.rs";
        let src = "fn f() -> (u8, u8) { (255 as u8, 0x1FF as u8) }\n";
        let got = lints_of(path, src);
        assert_eq!(got, vec![("truncating_cast", 1)]);
    }

    #[test]
    fn hash_iteration_sites_found_for_methods_fields_and_for_loops() {
        let src = "fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n    m.keys().copied().collect()\n}\nfn h(m: &HashMap<u32, u32>) {\n    for k in m {\n        use_it(k);\n    }\n}\nfn i(r: &ScanResult) -> usize {\n    r.histories.iter().count()\n}\n";
        let masked = mask(src);
        let tokens = tokenize(&masked);
        let bindings = hash_bindings(&tokens);
        let sites = hash_iteration_sites(&tokens, &bindings);
        assert_eq!(
            sites,
            vec![
                (2, "m".to_string()),
                (5, "m".to_string()),
                (10, "histories".to_string())
            ]
        );
    }

    #[test]
    fn order_safe_window_covers_adjacent_sort() {
        let src = "fn f(m: &HashMap<u32, u32>) -> Vec<u32> {\n    let mut v: Vec<u32> = m.keys().copied().collect();\n    v.sort_unstable();\n    v\n}\n";
        let masked = mask(src);
        assert!(order_safe(&masked, 2), "sort on the next line neutralizes");
        assert!(!order_safe(&masked, 5));
    }

    #[test]
    fn wall_clock_and_println_scoped() {
        let src = "fn f() {\n    let t = Instant::now();\n    println!(\"{t:?}\");\n}\n";
        let got = lints_of(LIB, src);
        assert_eq!(got, vec![("wall_clock", 2), ("println", 3)]);
        assert!(lints_of("crates/obs/src/logger.rs", src).is_empty());
        assert!(lints_of("crates/cli/src/render.rs", "fn f() { println!(\"ok\"); }\n").is_empty());
    }

    #[test]
    fn forbid_unsafe_checked_on_lib_roots() {
        let with = "#![forbid(unsafe_code)]\npub fn f() {}\n";
        let without = "pub fn f() {}\n";
        assert!(lints_of("crates/types/src/lib.rs", with).is_empty());
        assert_eq!(
            lints_of("crates/types/src/lib.rs", without),
            vec![("forbid_unsafe", 1)]
        );
        assert!(lints_of("crates/types/src/asn.rs", without).is_empty());
    }

    #[test]
    fn metric_names_checked_against_registry() {
        let path = "crates/serve/src/demo.rs";
        // Registered pairs pass; a typo'd name is flagged.
        let src = "fn f() {\n    bgpz_obs::metrics::counter(\"serve::ingest\", \"records\", 1);\n    bgpz_obs::metrics::counter(\"serve::ingest\", \"recrods\", 1);\n}\n";
        let got = lints_of(path, src);
        assert_eq!(got, vec![("metric_name", 3)]);
        // Multi-line (rustfmt-wrapped) call sites are still checked.
        let wrapped = "fn f() {\n    trace::emit(\n        \"serve::shard\",\n        \"detcet\",\n        0, ctx, t0, d,\n    );\n}\n";
        assert_eq!(lints_of(path, wrapped), vec![("metric_name", 4)]);
    }

    #[test]
    fn metric_name_dynamic_and_allowed_sites_skipped() {
        let path = "crates/serve/src/demo.rs";
        // Non-literal target or name: not statically checkable, skipped.
        let dynamic = "fn f(id: usize) {\n    bgpz_obs::metrics::counter(TARGET, \"misses\", 1);\n    bgpz_obs::metrics::gauge(\"serve::queue\", format!(\"shard{id}_depth\"), 3);\n}\n";
        assert!(lints_of(path, dynamic).is_empty());
        // A marker with a reason suppresses; unrelated methods named
        // `add` with non-string arguments never match.
        let src = "fn f(t: &mut T) {\n    // lint: allow(metric_name) \u{2014} experimental series\n    bgpz_obs::metrics::counter(\"serve::ingest\", \"experimental\", 1);\n    t.add(roa, SimTime::ZERO, None);\n}\n";
        assert!(lints_of(path, src).is_empty());
    }

    #[test]
    fn test_paths_fully_exempt() {
        let src = "fn t() { x.unwrap(); println!(\"hi\"); }\n";
        assert!(lints_of("crates/core/tests/e2e.rs", src).is_empty());
    }
}
