//! bgpz-lint: workspace-invariant static analysis for the bgp-zombies
//! pipeline.
//!
//! Clippy checks Rust; this crate checks *this repo's* contracts — the
//! invariants PRs 1–3 promised and integration tests only spot-check:
//!
//! * **determinism** (`hash_iteration`, `wall_clock`) — artifacts must be
//!   byte-identical at every `--jobs` count, so no hash-order iteration
//!   feeds serialization and no wall-clock reads happen outside the obs
//!   timing layer;
//! * **panic-safety** (`unwrap`, `expect`, `panic`, `indexing`) — library
//!   code propagates errors instead of panicking, ratcheted down through
//!   `lint-baseline.toml`;
//! * **wire-parsing soundness** (`truncating_cast`) — the MRT decoder
//!   never silently truncates a length or type field;
//! * **obs discipline** (`println`) — progress output flows through
//!   bgpz-obs, not stdout;
//! * **no unsafe** (`forbid_unsafe`) — every library crate root carries
//!   `#![forbid(unsafe_code)]`.
//!
//! The binary prints findings as `file:line: lint: message` in a
//! deterministic order and exits nonzero on any violation.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod lexer;
pub mod lints;
pub mod policy;
pub mod walk;

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use baseline::Baseline;
use lints::PANIC_LINTS;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative file path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Lint name (stable, used in baseline keys and allow markers).
    pub lint: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// The `file:line: lint: message` output line.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {}: {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Runs every lint over the workspace at `root`. Findings are sorted by
/// (file, line, lint).
pub fn analyze_tree(root: &Path) -> io::Result<Vec<Finding>> {
    let mut findings = Vec::new();
    for (rel, abs) in walk::workspace_sources(root)? {
        let source = std::fs::read_to_string(&abs)?;
        findings.extend(lints::analyze(&rel, &source));
    }
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.lint, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.lint,
            b.message.as_str(),
        ))
    });
    Ok(findings)
}

/// The result of checking findings against a baseline.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Enforcement {
    /// Findings that fail the run: every hard-lint finding, plus the
    /// panic-family findings of any file/lint pair over its baseline.
    pub violations: Vec<Finding>,
    /// Stale-baseline diagnostics: recorded counts higher than the tree
    /// (the ratchet must be re-tightened with `--update-baseline`).
    pub stale: Vec<String>,
}

impl Enforcement {
    /// True when the run should exit 0.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.stale.is_empty()
    }
}

/// Applies the baseline ratchet to `findings`.
pub fn enforce(findings: &[Finding], baseline: &Baseline) -> Enforcement {
    let mut result = Enforcement::default();
    let mut counts: BTreeMap<(&str, &str), usize> = BTreeMap::new();
    for f in findings {
        if PANIC_LINTS.contains(&f.lint) {
            *counts.entry((f.file.as_str(), f.lint)).or_insert(0) += 1;
        } else {
            result.violations.push(f.clone());
        }
    }
    for f in findings {
        if !PANIC_LINTS.contains(&f.lint) {
            continue;
        }
        let found = counts.get(&(f.file.as_str(), f.lint)).copied().unwrap_or(0);
        let accepted = baseline.get(&f.file, f.lint);
        if found > accepted {
            let mut f = f.clone();
            f.message = format!("{} [{found} found, baseline accepts {accepted}]", f.message);
            result.violations.push(f);
        }
    }
    // Baseline entries above the tree's actual count are stale: the
    // ratchet would silently slacken if we let them stand.
    for (file, lints) in &baseline.counts {
        for (lint, accepted) in lints {
            let found = counts
                .get(&(file.as_str(), lint.as_str()))
                .copied()
                .unwrap_or(0);
            if found < *accepted {
                result.stale.push(format!(
                    "lint-baseline.toml: stale: [\"{file}\"] {lint} = {accepted} but the tree has {found}; run `cargo run -p bgpz-lint --release -- --update-baseline`"
                ));
            }
        }
    }
    result.violations.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.lint, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.lint,
            b.message.as_str(),
        ))
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(file: &str, line: usize, lint: &'static str) -> Finding {
        Finding {
            file: file.to_owned(),
            line,
            lint,
            message: format!("{lint} here"),
        }
    }

    #[test]
    fn hard_lints_always_fail() {
        let findings = vec![f("a.rs", 3, "println")];
        let e = enforce(&findings, &Baseline::default());
        assert_eq!(e.violations.len(), 1);
        assert!(e.stale.is_empty());
    }

    #[test]
    fn baselined_counts_pass_exact_fail_above_stale_below() {
        let findings = vec![f("a.rs", 1, "unwrap"), f("a.rs", 9, "unwrap")];
        let two = Baseline::from_findings(&findings);
        assert!(enforce(&findings, &two).clean());

        let three = Baseline::parse("[\"a.rs\"]\nunwrap = 3\n").unwrap_or_default();
        let e = enforce(&findings, &three);
        assert!(e.violations.is_empty());
        assert_eq!(e.stale.len(), 1);

        let one = Baseline::parse("[\"a.rs\"]\nunwrap = 1\n").unwrap_or_default();
        let e = enforce(&findings, &one);
        assert_eq!(e.violations.len(), 2);
        assert!(e
            .violations
            .iter()
            .all(|v| v.message.contains("baseline accepts 1")));
    }

    #[test]
    fn removed_file_makes_baseline_stale() {
        let b = Baseline::parse("[\"gone.rs\"]\nexpect = 2\n").unwrap_or_default();
        let e = enforce(&[], &b);
        assert_eq!(e.stale.len(), 1);
        assert!(!e.clean());
    }
}
