//! bgpz-lint: workspace-invariant static analysis for the bgp-zombies
//! pipeline.
//!
//! Clippy checks Rust; this crate checks *this repo's* contracts — the
//! invariants PRs 1–3 promised and integration tests only spot-check.
//! Analysis runs in two phases: per-file lexical passes
//! ([`lints::analyze`]), then workspace graph passes over the
//! [`resolve`] symbol index and call graph:
//!
//! * **determinism** (`determinism_taint`, `wall_clock`) — artifacts
//!   must be byte-identical at every `--jobs` count, so no hash-order
//!   iteration or thread-id read may flow into artifact writers — even
//!   from three crates away — and no wall-clock reads happen outside
//!   the obs timing layer;
//! * **deadlock-freedom** (`lock_order`, `channel_topology`) — no
//!   blocking operation while a lock is held, no cycles in the
//!   lock-order graph, no unbounded channels, and no send/recv cycles
//!   over bounded channels in the serve event loop;
//! * **panic-safety** (`unwrap`, `expect`, `panic`, `indexing`) — library
//!   code propagates errors instead of panicking, ratcheted down through
//!   `lint-baseline.toml`;
//! * **wire-parsing soundness** (`truncating_cast`) — the MRT decoder
//!   never silently truncates a length or type field;
//! * **obs discipline** (`println`) — progress output flows through
//!   bgpz-obs, not stdout;
//! * **no unsafe** (`forbid_unsafe`) — every library crate root carries
//!   `#![forbid(unsafe_code)]`.
//!
//! The binary prints findings as `file:line: lint: message` in a
//! deterministic order (or a JSON report with `--format json`) and exits
//! nonzero on any violation. `--graph-dump [prefix]` renders the
//! recovered lock/channel graphs byte-deterministically for golden
//! checks in CI.

#![forbid(unsafe_code)]

pub mod baseline;
pub mod graphs;
pub mod lexer;
pub mod lints;
pub mod policy;
pub mod resolve;
pub mod taint;
pub mod walk;

use std::collections::BTreeMap;
use std::io;
use std::path::Path;

use baseline::Baseline;
use lints::RATCHETED;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative file path with `/` separators.
    pub file: String,
    /// 1-based line number.
    pub line: usize,
    /// Lint name (stable, used in baseline keys and allow markers).
    pub lint: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Finding {
    /// The `file:line: lint: message` output line.
    pub fn render(&self) -> String {
        format!(
            "{}:{}: {}: {}",
            self.file, self.line, self.lint, self.message
        )
    }
}

/// Runs every lint — per-file passes plus the workspace graph passes —
/// over in-memory `(path, source)` pairs. Findings are sorted by
/// (file, line, lint).
pub fn analyze_files(sources: &[(String, String)]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (rel, source) in sources {
        findings.extend(lints::analyze(rel, source));
    }
    let ws = resolve::Workspace::build(sources);
    findings.extend(graphs::analyze_graphs(&ws).findings);
    findings.extend(taint::taint_pass(&ws));
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.lint, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.lint,
            b.message.as_str(),
        ))
    });
    findings
}

/// Reads the workspace at `root` into `(relative path, source)` pairs.
pub fn read_tree(root: &Path) -> io::Result<Vec<(String, String)>> {
    let mut sources = Vec::new();
    for (rel, abs) in walk::workspace_sources(root)? {
        sources.push((rel, std::fs::read_to_string(&abs)?));
    }
    Ok(sources)
}

/// Runs every lint over the workspace at `root`.
pub fn analyze_tree(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(analyze_files(&read_tree(root)?))
}

/// Renders the lock/channel graphs of the workspace at `root`,
/// restricted to files under `prefix` (empty: everything).
pub fn graph_dump(sources: &[(String, String)], prefix: &str) -> String {
    let ws = resolve::Workspace::build(sources);
    let report = graphs::analyze_graphs(&ws);
    graphs::dump(&ws, &report, prefix)
}

/// Renders findings plus summary as a machine-readable JSON report.
pub fn render_json(
    findings: &[Finding],
    files_checked: usize,
    enforcement: &Enforcement,
) -> String {
    let mut out = String::from("{\"version\":1,\"findings\":[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "{{\"file\":{},\"line\":{},\"lint\":{},\"message\":{}}}",
            json_str(&f.file),
            f.line,
            json_str(f.lint),
            json_str(&f.message)
        ));
    }
    out.push_str(&format!(
        "],\"summary\":{{\"files\":{},\"findings\":{},\"violations\":{},\"stale\":{}}}}}",
        files_checked,
        findings.len(),
        enforcement.violations.len(),
        enforcement.stale.len()
    ));
    out.push('\n');
    out
}

fn json_str(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// The result of checking findings against a baseline.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Enforcement {
    /// Findings that fail the run: every hard-lint finding, plus the
    /// panic-family findings of any file/lint pair over its baseline.
    pub violations: Vec<Finding>,
    /// Stale-baseline diagnostics: recorded counts higher than the tree
    /// (the ratchet must be re-tightened with `--update-baseline`).
    pub stale: Vec<String>,
}

impl Enforcement {
    /// True when the run should exit 0.
    pub fn clean(&self) -> bool {
        self.violations.is_empty() && self.stale.is_empty()
    }
}

/// Applies the baseline ratchet to `findings`.
pub fn enforce(findings: &[Finding], baseline: &Baseline) -> Enforcement {
    let mut result = Enforcement::default();
    let mut counts: BTreeMap<(&str, &str), usize> = BTreeMap::new();
    for f in findings {
        if RATCHETED.contains(&f.lint) {
            *counts.entry((f.file.as_str(), f.lint)).or_insert(0) += 1;
        } else {
            result.violations.push(f.clone());
        }
    }
    for f in findings {
        if !RATCHETED.contains(&f.lint) {
            continue;
        }
        let found = counts.get(&(f.file.as_str(), f.lint)).copied().unwrap_or(0);
        let accepted = baseline.get(&f.file, f.lint);
        if found > accepted {
            let mut f = f.clone();
            f.message = format!("{} [{found} found, baseline accepts {accepted}]", f.message);
            result.violations.push(f);
        }
    }
    // Baseline entries above the tree's actual count are stale: the
    // ratchet would silently slacken if we let them stand.
    for (file, lints) in &baseline.counts {
        for (lint, accepted) in lints {
            let found = counts
                .get(&(file.as_str(), lint.as_str()))
                .copied()
                .unwrap_or(0);
            if found < *accepted {
                result.stale.push(format!(
                    "lint-baseline.toml: stale: [\"{file}\"] {lint} = {accepted} but the tree has {found}; run `cargo run -p bgpz-lint --release -- --update-baseline`"
                ));
            }
        }
    }
    result.violations.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.lint, a.message.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.lint,
            b.message.as_str(),
        ))
    });
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(file: &str, line: usize, lint: &'static str) -> Finding {
        Finding {
            file: file.to_owned(),
            line,
            lint,
            message: format!("{lint} here"),
        }
    }

    #[test]
    fn hard_lints_always_fail() {
        let findings = vec![f("a.rs", 3, "println")];
        let e = enforce(&findings, &Baseline::default());
        assert_eq!(e.violations.len(), 1);
        assert!(e.stale.is_empty());
    }

    #[test]
    fn baselined_counts_pass_exact_fail_above_stale_below() {
        let findings = vec![f("a.rs", 1, "unwrap"), f("a.rs", 9, "unwrap")];
        let two = Baseline::from_findings(&findings);
        assert!(enforce(&findings, &two).clean());

        let three = Baseline::parse("[\"a.rs\"]\nunwrap = 3\n").unwrap_or_default();
        let e = enforce(&findings, &three);
        assert!(e.violations.is_empty());
        assert_eq!(e.stale.len(), 1);

        let one = Baseline::parse("[\"a.rs\"]\nunwrap = 1\n").unwrap_or_default();
        let e = enforce(&findings, &one);
        assert_eq!(e.violations.len(), 2);
        assert!(e
            .violations
            .iter()
            .all(|v| v.message.contains("baseline accepts 1")));
    }

    #[test]
    fn removed_file_makes_baseline_stale() {
        let b = Baseline::parse("[\"gone.rs\"]\nexpect = 2\n").unwrap_or_default();
        let e = enforce(&[], &b);
        assert_eq!(e.stale.len(), 1);
        assert!(!e.clean());
    }
}
