//! The `lint-baseline.toml` ratchet.
//!
//! Only the ratcheted lints (the panic family plus the workspace graph
//! families) are baselined; every other lint is a hard failure. The file records per-file, per-lint counts for findings that
//! predate the lint pass. A count can only go down: new findings fail the
//! run, and after paying findings down the file must be regenerated with
//! `bgpz-lint --update-baseline` (a too-high recorded count is itself an
//! error, so the ratchet cannot silently slacken).
//!
//! The format is a small TOML subset written and parsed here so the lint
//! binary stays dependency-free:
//!
//! ```text
//! ["crates/core/src/scan.rs"]
//! expect = 2
//! unwrap = 1
//! ```

use std::collections::BTreeMap;

use crate::lints::RATCHETED;
use crate::Finding;

/// Per-file, per-lint accepted counts. Both maps are ordered so rendering
/// is canonical.
#[derive(Debug, Default, PartialEq, Eq)]
pub struct Baseline {
    pub counts: BTreeMap<String, BTreeMap<String, usize>>,
}

impl Baseline {
    /// Builds a baseline from the ratcheted findings in `findings`
    /// (hard lints are ignored — they cannot be baselined).
    pub fn from_findings(findings: &[Finding]) -> Self {
        let mut counts: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        for f in findings {
            if RATCHETED.contains(&f.lint) {
                *counts
                    .entry(f.file.clone())
                    .or_default()
                    .entry(f.lint.to_owned())
                    .or_insert(0) += 1;
            }
        }
        Baseline { counts }
    }

    /// Accepted count for one file/lint pair.
    pub fn get(&self, file: &str, lint: &str) -> usize {
        self.counts
            .get(file)
            .and_then(|m| m.get(lint))
            .copied()
            .unwrap_or(0)
    }

    /// Renders the canonical file contents.
    pub fn render(&self) -> String {
        let mut out = String::from(
            "# bgpz-lint ratchet baseline: accepted pre-existing findings per file.\n\
             # Counts may only shrink. Regenerate with `bgpz-lint --update-baseline`.\n",
        );
        for (file, lints) in &self.counts {
            out.push_str(&format!("\n[\"{file}\"]\n"));
            for (lint, count) in lints {
                out.push_str(&format!("{lint} = {count}\n"));
            }
        }
        out
    }

    /// Parses file contents produced by [`Baseline::render`] (or edited by
    /// hand in the same shape).
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut counts: BTreeMap<String, BTreeMap<String, usize>> = BTreeMap::new();
        let mut current: Option<String> = None;
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let lineno = idx + 1;
            if let Some(rest) = line.strip_prefix("[\"") {
                let Some(file) = rest.strip_suffix("\"]") else {
                    return Err(format!("line {lineno}: malformed section header `{line}`"));
                };
                counts.entry(file.to_owned()).or_default();
                current = Some(file.to_owned());
                continue;
            }
            let Some((key, value)) = line.split_once('=') else {
                return Err(format!(
                    "line {lineno}: expected `lint = count`, got `{line}`"
                ));
            };
            let lint = key.trim();
            if !RATCHETED.contains(&lint) {
                return Err(format!(
                    "line {lineno}: `{lint}` is not a ratcheted lint (only {RATCHETED:?} can be baselined)"
                ));
            }
            let count: usize = value
                .trim()
                .parse()
                .map_err(|_| format!("line {lineno}: bad count `{}`", value.trim()))?;
            let Some(file) = current.as_ref() else {
                return Err(format!(
                    "line {lineno}: `{lint}` appears before any [\"file\"] section"
                ));
            };
            if let Some(m) = counts.get_mut(file) {
                m.insert(lint.to_owned(), count);
            }
        }
        Ok(Baseline { counts })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(file: &str, lint: &'static str) -> Finding {
        Finding {
            file: file.to_owned(),
            line: 1,
            lint,
            message: String::new(),
        }
    }

    #[test]
    fn round_trips() {
        let findings = vec![
            f("crates/core/src/scan.rs", "expect"),
            f("crates/core/src/scan.rs", "expect"),
            f("crates/core/src/scan.rs", "unwrap"),
            f("crates/mrt/src/lazy.rs", "indexing"),
            f("crates/mrt/src/lazy.rs", "truncating_cast"), // not baselined
        ];
        let b = Baseline::from_findings(&findings);
        assert_eq!(b.get("crates/core/src/scan.rs", "expect"), 2);
        assert_eq!(b.get("crates/mrt/src/lazy.rs", "truncating_cast"), 0);
        let parsed = Baseline::parse(&b.render());
        assert_eq!(parsed.as_ref().ok(), Some(&b));
    }

    #[test]
    fn rejects_unknown_lint_and_garbage() {
        assert!(Baseline::parse("[\"a.rs\"]\nprintln = 3\n").is_err());
        assert!(Baseline::parse("unwrap = 1\n").is_err());
        assert!(Baseline::parse("[\"a.rs\"\nunwrap = 1\n").is_err());
        assert!(Baseline::parse("[\"a.rs\"]\nunwrap = many\n").is_err());
    }

    #[test]
    fn missing_entries_read_as_zero() {
        let b = Baseline::default();
        assert_eq!(b.get("x.rs", "unwrap"), 0);
    }
}
