//! Which lints apply where.
//!
//! The paths below are the repo's invariant map: every entry encodes a
//! contract established by an earlier PR (artifact determinism, tolerant
//! wire parsing, obs-routed output). Paths are workspace-relative with
//! `/` separators.

/// Test-only source: exempt from every lint.
pub fn is_test_path(path: &str) -> bool {
    path.contains("/tests/") || path.contains("/benches/") || path.starts_with("tests/")
}

/// Binary entry points: own their stdout/stderr and exit codes.
pub fn is_bin_path(path: &str) -> bool {
    path.contains("/src/bin/") || path.ends_with("/src/main.rs") || path == "src/main.rs"
}

/// Library code covered by the panic-safety ratchet (`unwrap`, `expect`,
/// `panic`, `indexing`). The CLI owns user-facing error reporting and the
/// bench harness is test support, so both are out of scope, as are binary
/// entry points of otherwise-library crates.
pub fn panic_scope(path: &str) -> bool {
    if is_test_path(path) || is_bin_path(path) {
        return false;
    }
    if path.starts_with("crates/cli/") || path.starts_with("crates/bench/") {
        return false;
    }
    path.starts_with("crates/") || path.starts_with("src/")
}

/// Modules that build or write run artifacts (`metrics.json`,
/// `timings.json`, experiment .txt/.csv/.json, BENCH_scan.json, `bgpz`
/// report output). Hash-order iteration here can leak nondeterminism into
/// bytes that PR 1/2 promise are identical at every `--jobs` count.
pub fn artifact_module(path: &str) -> bool {
    if is_test_path(path) {
        return false;
    }
    path.starts_with("crates/analysis/src/")
        || path.starts_with("crates/bench/src/")
        || path.starts_with("crates/cache/src/")
        || path == "crates/obs/src/metrics.rs"
        || path == "crates/obs/src/json.rs"
        || path == "crates/cli/src/render.rs"
        || path == "crates/cli/src/commands.rs"
}

/// Where reading the wall clock is legitimate: the obs timing layer and
/// the `timings.json` path (which exists to record wall time).
pub fn wallclock_allowed(path: &str) -> bool {
    is_test_path(path)
        || path.starts_with("crates/obs/")
        || path.starts_with("crates/bench/")
        || path == "crates/analysis/src/experiments/mod.rs"
        || path == "crates/analysis/src/bin/experiments.rs"
}

/// Where direct `println!`/`eprintln!` is legitimate: the CLI crate, the
/// obs sinks themselves, and binary entry points (their stdout is the
/// product; *progress* output still belongs to obs events).
pub fn println_allowed(path: &str) -> bool {
    is_test_path(path)
        || is_bin_path(path)
        || path.starts_with("crates/cli/")
        || path == "crates/obs/src/sink.rs"
        || path == "crates/obs/src/logger.rs"
}

/// Wire-decode soundness scope: every non-test source of the MRT crate.
pub fn cast_scope(path: &str) -> bool {
    path.starts_with("crates/mrt/src/") && !is_test_path(path)
}

/// Crate roots that must carry `#![forbid(unsafe_code)]`.
pub fn lib_root(path: &str) -> bool {
    path == "src/lib.rs" || (path.starts_with("crates/") && path.ends_with("/src/lib.rs"))
}

/// Struct fields known (from the workspace's data model) to be hash-keyed
/// collections: `ScanResult::histories`, `ScanResult::session_downs`.
/// Iterating them in an artifact module is hash-order iteration even when
/// the receiver is not a locally-declared binding.
pub const HASH_FIELDS: &[&str] = &["histories", "session_downs"];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes() {
        assert!(panic_scope("crates/core/src/scan.rs"));
        assert!(panic_scope("crates/analysis/src/stats.rs"));
        assert!(!panic_scope("crates/analysis/src/bin/experiments.rs"));
        assert!(!panic_scope("crates/cli/src/commands.rs"));
        assert!(!panic_scope("crates/bench/src/lib.rs"));
        assert!(!panic_scope("crates/core/tests/e2e_pipeline.rs"));

        assert!(artifact_module("crates/analysis/src/experiments/table5.rs"));
        assert!(artifact_module("crates/obs/src/metrics.rs"));
        assert!(artifact_module("crates/cache/src/store.rs"));
        assert!(!artifact_module("crates/core/src/scan.rs"));

        assert!(wallclock_allowed("crates/obs/src/logger.rs"));
        assert!(wallclock_allowed("crates/analysis/src/bin/experiments.rs"));
        assert!(!wallclock_allowed("crates/core/src/scan.rs"));

        assert!(println_allowed("crates/cli/src/render.rs"));
        assert!(println_allowed("crates/analysis/src/bin/experiments.rs"));
        assert!(!println_allowed("crates/obs/src/metrics.rs"));

        assert!(cast_scope("crates/mrt/src/record.rs"));
        assert!(!cast_scope("crates/core/src/scan.rs"));

        assert!(lib_root("crates/types/src/lib.rs"));
        assert!(lib_root("src/lib.rs"));
        assert!(!lib_root("crates/types/src/asn.rs"));
    }
}
