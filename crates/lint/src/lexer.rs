//! A lightweight Rust lexer: just enough structure for line-oriented
//! repo lints.
//!
//! The lexer does two things a regex over raw source cannot:
//!
//! * **masking** — comments are stripped and string/char literal *contents*
//!   are blanked (delimiters kept), so token matching never fires inside a
//!   doc comment that says "`.unwrap()`" or a log message quoting
//!   `println!`. Line comments are captured separately so allow markers
//!   (`// lint: allow(name) — reason`) stay visible to the lint driver.
//! * **tokenizing** — masked code is split into identifier / integer /
//!   string / punctuation tokens with line numbers, and every token is
//!   annotated with whether it sits inside a `#[cfg(test)]` item, so test
//!   code is exempt from library lints without any parsing of the tree.
//!
//! This is deliberately not a full parser: block structure is tracked by
//! brace depth only, which is exact for rustfmt-formatted sources.

/// One lexed token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Token kind.
    pub kind: TokenKind,
    /// Token text (`""` for string literals — contents are masked).
    pub text: String,
    /// 1-based source line.
    pub line: usize,
    /// True when the token is inside a `#[cfg(test)]` / `#[test]` item.
    pub in_test: bool,
}

/// Token kinds the lints distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// Identifier or keyword.
    Ident,
    /// Integer literal (decimal, hex, octal, binary; `_` separators kept).
    Int,
    /// String literal (contents masked away).
    Str,
    /// Single punctuation character.
    Punct,
}

/// A masked source file: raw lines, code-only lines, per-line comments.
#[derive(Debug)]
pub struct Masked {
    /// Code with comments removed and literal contents blanked, per line.
    pub code: Vec<String>,
    /// Text of `//` comments per line (without the slashes), `""` if none.
    pub comments: Vec<String>,
    /// Contents of string literals that open *and* close on the line, in
    /// opening order. The `k`-th entry pairs with the `k`-th `Str` token
    /// [`tokenize`] produces for the line (literals spanning lines are
    /// not captured and sort after every captured one, so the pairing
    /// holds). The metric-name lint reads these.
    pub literals: Vec<Vec<String>>,
    /// True when the line begins inside a string continued from the
    /// previous line — its first `Str` token is the continuation, so the
    /// ordinal pairing above does not apply on such lines.
    pub starts_in_str: Vec<bool>,
}

/// Strips comments and blanks literal contents. See the module docs.
pub fn mask(source: &str) -> Masked {
    #[derive(PartialEq)]
    enum State {
        Code,
        Block(u32),
        Str { raw_hashes: Option<u32> },
        Char,
    }
    let mut code = Vec::new();
    let mut comments = Vec::new();
    let mut literals = Vec::new();
    let mut starts_in_str = Vec::new();
    let mut state = State::Code;
    // Capture buffer for the string literal currently open; `single_line`
    // stays true only while the literal has not crossed a line boundary.
    let mut buf = String::new();
    let mut single_line = false;
    for line in source.lines() {
        starts_in_str.push(matches!(state, State::Str { .. }));
        let mut line_literals: Vec<String> = Vec::new();
        let mut code_line = String::with_capacity(line.len());
        let mut comment_line = String::new();
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars.get(i).copied().unwrap_or(' ');
            let next = chars.get(i + 1).copied();
            match &mut state {
                State::Code => match c {
                    '/' if next == Some('/') => {
                        // Line comment: capture the text, stop lexing code.
                        comment_line = chars.iter().skip(i + 2).collect();
                        i = chars.len();
                        continue;
                    }
                    '/' if next == Some('*') => {
                        state = State::Block(1);
                        code_line.push(' ');
                        i += 2;
                        continue;
                    }
                    '"' => {
                        code_line.push('"');
                        buf.clear();
                        single_line = true;
                        state = State::Str { raw_hashes: None };
                    }
                    'r' | 'b' => {
                        // Possible raw / byte string prefix. `br#"`, `r"`,
                        // `b"`, `r#"` … scan the prefix run.
                        let mut j = i;
                        while matches!(chars.get(j), Some('r') | Some('b')) {
                            j += 1;
                        }
                        let mut hashes = 0u32;
                        let mut k = j;
                        while chars.get(k) == Some(&'#') {
                            hashes += 1;
                            k += 1;
                        }
                        let is_raw = chars.get(i..j).is_some_and(|p| p.contains(&'r'))
                            && chars.get(k) == Some(&'"');
                        let is_plain_byte_str = hashes == 0
                            && chars.get(j) == Some(&'"')
                            && chars.get(i..j).is_some_and(|p| !p.contains(&'r'));
                        // Only treat as a literal prefix when the run is not
                        // part of a longer identifier (`raw`, `bytes`, …).
                        let prev_is_ident = i
                            .checked_sub(1)
                            .and_then(|p| chars.get(p))
                            .is_some_and(|p| p.is_alphanumeric() || *p == '_');
                        if !prev_is_ident && is_raw {
                            code_line.push('"');
                            buf.clear();
                            single_line = true;
                            state = State::Str {
                                raw_hashes: Some(hashes),
                            };
                            i = k + 1;
                            continue;
                        } else if !prev_is_ident && is_plain_byte_str {
                            code_line.push('"');
                            buf.clear();
                            single_line = true;
                            state = State::Str { raw_hashes: None };
                            i = j + 1;
                            continue;
                        }
                        code_line.push(c);
                    }
                    '\'' => {
                        // Char literal vs lifetime: a literal closes within
                        // a few chars; a lifetime never closes.
                        if next == Some('\\') {
                            code_line.push('\'');
                            state = State::Char;
                            i += 2; // skip the backslash
                            continue;
                        }
                        if chars.get(i + 2) == Some(&'\'') && next != Some('\'') {
                            code_line.push('\'');
                            state = State::Char;
                            i += 2; // position on the closing quote
                            continue;
                        }
                        code_line.push('\''); // lifetime
                    }
                    _ => code_line.push(c),
                },
                State::Block(depth) => {
                    if c == '*' && next == Some('/') {
                        *depth -= 1;
                        if *depth == 0 {
                            state = State::Code;
                        }
                        i += 2;
                        continue;
                    }
                    if c == '/' && next == Some('*') {
                        *depth += 1;
                        i += 2;
                        continue;
                    }
                }
                State::Str { raw_hashes } => match raw_hashes {
                    None => {
                        if c == '\\' {
                            // Captured verbatim, escape sequence included.
                            buf.push('\\');
                            buf.extend(next);
                            i += 2; // skip escaped char (incl. \" and \\)
                            continue;
                        }
                        if c == '"' {
                            code_line.push('"');
                            if single_line {
                                line_literals.push(std::mem::take(&mut buf));
                            }
                            state = State::Code;
                        } else {
                            buf.push(c);
                            code_line.push(' ');
                        }
                    }
                    Some(hashes) => {
                        let n = *hashes as usize;
                        let closes = c == '"' && (0..n).all(|k| chars.get(i + 1 + k) == Some(&'#'));
                        if closes {
                            code_line.push('"');
                            if single_line {
                                line_literals.push(std::mem::take(&mut buf));
                            }
                            state = State::Code;
                            i += 1 + n;
                            continue;
                        }
                        buf.push(c);
                        code_line.push(' ');
                    }
                },
                State::Char => {
                    if c == '\\' {
                        i += 2;
                        continue;
                    }
                    if c == '\'' {
                        code_line.push('\'');
                        state = State::Code;
                    }
                }
            }
            i += 1;
        }
        // Unterminated string/char at EOL: strings can span lines (keep
        // state); chars cannot — that was a lifetime-ish stray, recover.
        if state == State::Char {
            state = State::Code;
        }
        if matches!(state, State::Str { .. }) {
            // The literal spans lines: not captured.
            single_line = false;
            buf.clear();
        }
        code.push(code_line);
        comments.push(comment_line);
        literals.push(line_literals);
    }
    Masked {
        code,
        comments,
        literals,
        starts_in_str,
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Tokenizes masked code lines (see [`mask`]).
pub fn tokenize(masked: &Masked) -> Vec<Token> {
    let mut tokens = Vec::new();
    for (line_idx, line) in masked.code.iter().enumerate() {
        // On a line that began inside a multi-line (possibly raw) string,
        // the first `"` in the masked code *closes* that string. Treating
        // it as an opener would swallow every real token after it up to
        // the next quote or end of line.
        let mut close_pending = masked.starts_in_str.get(line_idx).copied().unwrap_or(false);
        let chars: Vec<char> = line.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            let c = chars.get(i).copied().unwrap_or(' ');
            if c.is_whitespace() {
                i += 1;
                continue;
            }
            if is_ident_start(c) {
                let start = i;
                while chars.get(i).copied().is_some_and(is_ident_continue) {
                    i += 1;
                }
                let text: String = chars.get(start..i).unwrap_or(&[]).iter().collect();
                tokens.push(Token {
                    kind: TokenKind::Ident,
                    text,
                    line: line_idx + 1,
                    in_test: false,
                });
                continue;
            }
            if c.is_ascii_digit() {
                let start = i;
                while chars
                    .get(i)
                    .copied()
                    .is_some_and(|c| c.is_alphanumeric() || c == '_')
                {
                    i += 1;
                }
                let text: String = chars.get(start..i).unwrap_or(&[]).iter().collect();
                tokens.push(Token {
                    kind: TokenKind::Int,
                    text,
                    line: line_idx + 1,
                    in_test: false,
                });
                continue;
            }
            if c == '"' {
                if close_pending {
                    // Closing quote of a string continued from the
                    // previous line: one `Str` token, and everything
                    // after it on the line is ordinary code.
                    close_pending = false;
                    tokens.push(Token {
                        kind: TokenKind::Str,
                        text: String::new(),
                        line: line_idx + 1,
                        in_test: false,
                    });
                    i += 1;
                    continue;
                }
                // Masked literal: `"` … `"` with blanks between; a quote
                // with no closer on the line opens a multi-line string
                // whose remainder is already blanked.
                let mut j = i + 1;
                while j < chars.len() && chars.get(j) != Some(&'"') {
                    j += 1;
                }
                tokens.push(Token {
                    kind: TokenKind::Str,
                    text: String::new(),
                    line: line_idx + 1,
                    in_test: false,
                });
                i = j + 1;
                continue;
            }
            tokens.push(Token {
                kind: TokenKind::Punct,
                text: c.to_string(),
                line: line_idx + 1,
                in_test: false,
            });
            i += 1;
        }
    }
    mark_test_regions(&mut tokens);
    tokens
}

/// Marks every token inside a `#[cfg(test)]` / `#[test]` item.
///
/// Detection: on seeing the attribute, the *next* item's braces (or its
/// terminating `;` for brace-less items) delimit the test region. Nested
/// braces are tracked by depth, which is exact for well-formed code.
fn mark_test_regions(tokens: &mut [Token]) {
    let mut i = 0;
    let mut pending_test_attr = false;
    let mut region_stack: Vec<usize> = Vec::new(); // depths of open test braces
    let mut depth: usize = 0;
    while i < tokens.len() {
        let in_test = !region_stack.is_empty();
        if let Some(tok) = tokens.get_mut(i) {
            tok.in_test = in_test;
        }
        let text = tokens.get(i).map(|t| t.text.clone()).unwrap_or_default();
        match text.as_str() {
            "#" if is_test_attribute(tokens, i) => {
                pending_test_attr = true;
                // The attribute tokens themselves count as test code.
                if let Some(end) = attribute_end(tokens, i) {
                    for tok in tokens.iter_mut().take(end + 1).skip(i) {
                        tok.in_test = true;
                    }
                    i = end + 1;
                    continue;
                }
            }
            "{" => {
                depth += 1;
                if pending_test_attr {
                    region_stack.push(depth);
                    pending_test_attr = false;
                    if let Some(tok) = tokens.get_mut(i) {
                        tok.in_test = true;
                    }
                }
            }
            "}" => {
                if region_stack.last() == Some(&depth) {
                    region_stack.pop();
                }
                depth = depth.saturating_sub(1);
            }
            // A brace-less item (`#[cfg(test)] mod tests;`) ends here.
            ";" if pending_test_attr && region_stack.is_empty() => {
                pending_test_attr = false;
            }
            _ => {}
        }
        i += 1;
    }
}

/// Does the attribute starting at `tokens[i] == "#"` contain `test`?
/// Matches `#[test]`, `#[cfg(test)]`, `#[cfg(all(test, …))]`, …
fn is_test_attribute(tokens: &[Token], i: usize) -> bool {
    if tokens.get(i + 1).map(|t| t.text.as_str()) != Some("[") {
        return false;
    }
    let Some(end) = attribute_end(tokens, i) else {
        return false;
    };
    tokens
        .get(i..=end)
        .unwrap_or(&[])
        .iter()
        .any(|t| t.kind == TokenKind::Ident && t.text == "test")
}

/// Index of the `]` closing the attribute starting at `tokens[i] == "#"`.
fn attribute_end(tokens: &[Token], i: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, tok) in tokens.iter().enumerate().skip(i + 1) {
        match tok.text.as_str() {
            "[" => depth += 1,
            "]" => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(tokens: &[Token]) -> Vec<&str> {
        tokens.iter().map(|t| t.text.as_str()).collect()
    }

    #[test]
    fn comments_and_strings_masked() {
        let m = mask("let x = \"a.unwrap()\"; // .expect(\nlet y = 1; /* panic! */ let z = 2;");
        let tokens = tokenize(&m);
        assert!(!texts(&tokens).contains(&"unwrap"), "{tokens:?}");
        assert!(!texts(&tokens).contains(&"panic"), "{tokens:?}");
        assert_eq!(m.comments.first().map(String::as_str), Some(" .expect("));
        assert!(m.code.get(1).is_some_and(|l| l.contains("let z = 2;")));
    }

    #[test]
    fn raw_strings_masked() {
        let m = mask("let s = r#\"no \"quotes\" issue\"#; let t = 3;");
        let code = m.code.first().cloned().unwrap_or_default();
        assert!(code.contains("let t = 3;"), "{code}");
        assert!(!code.contains("quotes"), "{code}");
    }

    #[test]
    fn char_literals_and_lifetimes() {
        let m = mask("fn f<'a>(x: &'a str) -> char { ',' }");
        let code = m.code.first().cloned().unwrap_or_default();
        assert!(code.contains("fn f<'a>(x: &'a str)"), "{code}");
        // The comma inside the char literal is masked.
        let tokens = tokenize(&m);
        assert!(!texts(&tokens).contains(&","), "{tokens:?}");
    }

    #[test]
    fn block_comments_nest() {
        let m = mask("a /* x /* y */ z */ b");
        assert_eq!(m.code.first().map(String::as_str), Some("a   b"));
    }

    #[test]
    fn multiline_raw_string_close_line_keeps_trailing_code() {
        // Regression: the closing line of a multi-line raw string used to
        // swallow every token after the close quote, hiding real code
        // (here a `.unwrap()`) from the lints.
        let src = "fn f(o: Option<u8>) {\n    let s = r#\"first\nsecond\"#; o.unwrap();\n}\n";
        let tokens = tokenize(&mask(src));
        assert!(texts(&tokens).contains(&"unwrap"), "{tokens:?}");
        // Same shape for plain multi-line strings.
        let src = "fn f(o: Option<u8>) {\n    let s = \"first\nsecond\"; o.unwrap();\n}\n";
        let tokens = tokenize(&mask(src));
        assert!(texts(&tokens).contains(&"unwrap"), "{tokens:?}");
    }

    #[test]
    fn multiline_string_close_then_reopen_same_line() {
        // A closing line that also *opens* a new literal: the code between
        // the two quotes must still tokenize.
        let src = "let s = \"a\nb\"; t.push(\"x\"); o.unwrap();\n";
        let tokens = tokenize(&mask(src));
        assert!(texts(&tokens).contains(&"push"), "{tokens:?}");
        assert!(texts(&tokens).contains(&"unwrap"), "{tokens:?}");
        // The continuation close and the new literal are separate tokens
        // on line 2 (the opener on line 1 is a third).
        let strs = tokens
            .iter()
            .filter(|t| t.kind == TokenKind::Str && t.line == 2)
            .count();
        assert_eq!(strs, 2, "{tokens:?}");
    }

    #[test]
    fn multiline_strings_keep_state() {
        let m = mask("let s = \"line one\nline .unwrap() two\";\nlet x = 1;");
        let tokens = tokenize(&m);
        assert!(!texts(&tokens).contains(&"unwrap"), "{tokens:?}");
        assert!(texts(&tokens).contains(&"x"));
    }

    #[test]
    fn cfg_test_region_marked() {
        let src = "fn lib() { a.unwrap(); }\n#[cfg(test)]\nmod tests {\n fn t() { b.unwrap(); }\n}\nfn lib2() {}";
        let tokens = tokenize(&mask(src));
        let unwraps: Vec<&Token> = tokens.iter().filter(|t| t.text == "unwrap").collect();
        assert_eq!(unwraps.len(), 2);
        assert!(!unwraps.first().is_some_and(|t| t.in_test));
        assert!(unwraps.get(1).is_some_and(|t| t.in_test));
        assert!(tokens
            .iter()
            .filter(|t| t.text == "lib2")
            .all(|t| !t.in_test));
    }

    #[test]
    fn braceless_cfg_test_item_does_not_leak() {
        let src = "#[cfg(test)]\nmod tests;\nfn lib() { a.unwrap(); }";
        let tokens = tokenize(&mask(src));
        let unwrap = tokens.iter().find(|t| t.text == "unwrap");
        assert!(unwrap.is_some_and(|t| !t.in_test));
    }

    #[test]
    fn single_line_literal_contents_captured() {
        let m = mask("counter(\"serve::ingest\", \"records\", 1); // \"not code\"");
        assert_eq!(
            m.literals.first().map(Vec::as_slice),
            Some(&["serve::ingest".to_string(), "records".to_string()][..])
        );
        assert_eq!(m.starts_in_str.first(), Some(&false));
        // Escapes ride along verbatim; raw strings capture their body.
        let esc = mask("f(\"a\\\"b\", r#\"raw \"body\"\"#);");
        assert_eq!(
            esc.literals.first().map(Vec::as_slice),
            Some(&["a\\\"b".to_string(), "raw \"body\"".to_string()][..])
        );
        // Multi-line literals are not captured, on either line.
        let multi = mask("let s = \"first\nsecond\"; g(\"after\");");
        assert_eq!(multi.literals.first().map(Vec::len), Some(0));
        assert_eq!(multi.starts_in_str.get(1), Some(&true));
        assert_eq!(
            multi.literals.get(1).map(Vec::as_slice),
            Some(&["after".to_string()][..])
        );
    }

    #[test]
    fn byte_strings_masked() {
        let m = mask("let b = b\"bytes.unwrap()\"; let r = 1;");
        let tokens = tokenize(&m);
        assert!(!texts(&tokens).contains(&"unwrap"), "{tokens:?}");
        assert!(texts(&tokens).contains(&"r"));
    }
}
